// Hyper-parameter ablations beyond the paper's figures (design choices
// called out in Sec 4.3): window size w, number of attention heads, and
// member-embedding size, each swept on one MCAR workload.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/parallel.h"
#include "core/deepmvi.h"

namespace deepmvi {
namespace bench {
namespace {

DeepMviConfig ProfileConfig(const BenchOptions& options) {
  DeepMviConfig config;
  if (options.profile == BenchOptions::Profile::kQuick) {
    config.max_epochs = 2;
    config.samples_per_epoch = 16;
    config.patience = 1;
  } else if (options.profile == BenchOptions::Profile::kFull) {
    config.max_epochs = 30;
  } else {
    config.max_epochs = 25;
    config.samples_per_epoch = 96;
    config.batch_size = 4;
    config.patience = 3;
  }
  return config;
}

void Sweep(const std::string& axis, const std::vector<int>& values,
           const BenchOptions& options) {
  DataTensor data = MakeDataset("Electricity", options.dataset_scale(), 1);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 41;

  std::vector<ExperimentResult> results(values.size());
  ParallelFor(static_cast<int>(values.size()), options.threads, [&](int i) {
    DeepMviConfig config = ProfileConfig(options);
    if (axis == "window") config.window = values[i];
    if (axis == "heads") config.num_heads = values[i];
    if (axis == "embedding_dim") config.embedding_dim = values[i];
    DeepMviImputer imputer(config);
    results[i] = RunExperiment(data, scenario, imputer);
  });
  TablePrinter table({axis, "mae", "runtime_s"});
  for (size_t i = 0; i < values.size(); ++i) {
    table.AddRow({std::to_string(values[i]),
                  TablePrinter::FormatDouble(results[i].mae),
                  TablePrinter::FormatDouble(results[i].runtime_seconds, 2)});
  }
  std::printf("== Hyper-parameter ablation: %s (Electricity, MCAR 100%%) ==\n",
              axis.c_str());
  EmitTable(table, "ablation_" + axis, options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  auto options = deepmvi::bench::ParseOptions(argc, argv);
  deepmvi::bench::Sweep("window", {5, 10, 20, 40}, options);
  deepmvi::bench::Sweep("heads", {1, 2, 4, 8}, options);
  deepmvi::bench::Sweep("embedding_dim", {2, 10, 24}, options);
  return 0;
}
