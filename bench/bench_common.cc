#include "bench/bench_common.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "baselines/dynammo.h"
#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "baselines/stmvl.h"
#include "baselines/tkcm.h"
#include "baselines/trmf.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "core/deepmvi.h"
#include "deep/brits.h"
#include "deep/gpvae.h"
#include "deep/mrnn.h"
#include "deep/transformer_imputer.h"

namespace deepmvi {
namespace bench {

BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.profile = BenchOptions::Profile::kFull;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.profile = BenchOptions::Profile::kQuick;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.output_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    }
  }
  return options;
}

std::unique_ptr<Imputer> MakeImputer(const std::string& name,
                                     const BenchOptions& options) {
  const bool quick = options.profile == BenchOptions::Profile::kQuick;
  const bool full = options.profile == BenchOptions::Profile::kFull;

  if (name == "Mean") return std::make_unique<MeanImputer>();
  if (name == "LinearInterp") return std::make_unique<LinearInterpolationImputer>();
  if (name == "SVDImp") return std::make_unique<SvdImputer>();
  if (name == "SoftImpute") return std::make_unique<SoftImputer>();
  if (name == "SVT") return std::make_unique<SvtImputer>();
  if (name == "CDRec") return std::make_unique<CdRecImputer>();
  if (name == "TRMF") {
    TrmfImputer::Config config;
    if (quick) config.outer_iterations = 4;
    return std::make_unique<TrmfImputer>(config);
  }
  if (name == "DynaMMO") {
    DynammoImputer::Config config;
    if (quick) config.em_iterations = 3;
    return std::make_unique<DynammoImputer>(config);
  }
  if (name == "STMVL") return std::make_unique<StmvlImputer>();
  if (name == "TKCM") return std::make_unique<TkcmImputer>();
  if (name == "MRNN") {
    MrnnImputer::Config config;
    config.max_epochs = quick ? 2 : (full ? 20 : 8);
    return std::make_unique<MrnnImputer>(config);
  }
  if (name == "BRITS") {
    BritsImputer::Config config;
    config.max_epochs = quick ? 2 : (full ? 30 : 10);
    config.hidden_dim = quick ? 16 : 64;
    return std::make_unique<BritsImputer>(config);
  }
  if (name == "GPVAE") {
    GpVaeImputer::Config config;
    config.max_epochs = quick ? 2 : (full ? 40 : 20);
    return std::make_unique<GpVaeImputer>(config);
  }
  if (name == "Transformer") {
    TransformerImputer::Config config;
    config.max_epochs = quick ? 2 : (full ? 30 : 12);
    config.samples_per_epoch = quick ? 8 : (full ? 48 : 24);
    return std::make_unique<TransformerImputer>(config);
  }
  // DeepMVI family.
  DeepMviConfig config;
  config.max_epochs = quick ? 2 : 30;
  config.samples_per_epoch = quick ? 16 : 128;
  config.batch_size = 4;
  config.patience = quick ? 1 : 4;
  if (name == "DeepMVI") return std::make_unique<DeepMviImputer>(config);
  if (name == "DeepMVI1D") {
    config.flatten_multidim = true;
    return std::make_unique<DeepMviImputer>(config);
  }
  if (name == "DeepMVI-NoTT") {
    config.use_temporal_transformer = false;
    return std::make_unique<DeepMviImputer>(config);
  }
  if (name == "DeepMVI-NoContext") {
    config.use_context_window = false;
    return std::make_unique<DeepMviImputer>(config);
  }
  if (name == "DeepMVI-NoKR") {
    config.use_kernel_regression = false;
    return std::make_unique<DeepMviImputer>(config);
  }
  if (name == "DeepMVI-NoFG") {
    config.use_fine_grained = false;
    return std::make_unique<DeepMviImputer>(config);
  }
  DMVI_LOG(Fatal) << "Unknown imputer name: " << name;
  return nullptr;
}

void RunJobs(std::vector<Job>& jobs, const BenchOptions& options) {
  ParallelFor(static_cast<int>(jobs.size()), options.threads, [&](int i) {
    Job& job = jobs[i];
    DataTensor data = MakeDataset(job.dataset, options.dataset_scale(),
                                  /*seed=*/1);
    std::unique_ptr<Imputer> imputer = MakeImputer(job.imputer, options);
    job.result = RunExperiment(data, job.scenario, *imputer);
  });
}

void EmitTable(const TablePrinter& table, const std::string& name,
               const BenchOptions& options) {
  std::printf("%s\n", table.ToAscii().c_str());
  std::error_code ec;
  std::filesystem::create_directories(options.output_dir, ec);
  const std::string path = options.output_dir + "/" + name + ".csv";
  Status status = table.WriteCsv(path);
  if (!status.ok()) {
    DMVI_LOG(Warning) << "could not write " << path << ": " << status.ToString();
  } else {
    std::printf("wrote %s\n\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace deepmvi
