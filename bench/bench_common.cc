#include "bench/bench_common.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "baselines/dynammo.h"
#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "baselines/stmvl.h"
#include "baselines/tkcm.h"
#include "baselines/trmf.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "core/deepmvi.h"
#include "deep/brits.h"
#include "deep/gpvae.h"
#include "deep/mrnn.h"
#include "deep/transformer_imputer.h"

namespace deepmvi {
namespace bench {

BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.profile = BenchOptions::Profile::kFull;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.profile = BenchOptions::Profile::kQuick;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.output_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    }
  }
  return options;
}

namespace {

bool IsQuick(const BenchOptions& options) {
  return options.profile == BenchOptions::Profile::kQuick;
}
bool IsFull(const BenchOptions& options) {
  return options.profile == BenchOptions::Profile::kFull;
}

// Single registry of benchmark imputer names: both MakeImputer and
// IsImputerName resolve against this table, so the two cannot drift.
using ImputerFactoryFn = std::unique_ptr<Imputer> (*)(const BenchOptions&);
struct NamedImputerFactory {
  const char* name;
  ImputerFactoryFn make;
};

const NamedImputerFactory kImputerFactories[] = {
    {"Mean",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<MeanImputer>();
     }},
    {"LinearInterp",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<LinearInterpolationImputer>();
     }},
    {"SVDImp",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<SvdImputer>();
     }},
    {"SoftImpute",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<SoftImputer>();
     }},
    {"SVT",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<SvtImputer>();
     }},
    {"CDRec",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<CdRecImputer>();
     }},
    {"TRMF",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       TrmfImputer::Config config;
       if (IsQuick(options)) config.outer_iterations = 4;
       return std::make_unique<TrmfImputer>(config);
     }},
    {"DynaMMO",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       DynammoImputer::Config config;
       if (IsQuick(options)) config.em_iterations = 3;
       return std::make_unique<DynammoImputer>(config);
     }},
    {"STMVL",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<StmvlImputer>();
     }},
    {"TKCM",
     [](const BenchOptions&) -> std::unique_ptr<Imputer> {
       return std::make_unique<TkcmImputer>();
     }},
    {"MRNN",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       MrnnImputer::Config config;
       config.max_epochs = IsQuick(options) ? 2 : (IsFull(options) ? 20 : 8);
       return std::make_unique<MrnnImputer>(config);
     }},
    {"BRITS",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       BritsImputer::Config config;
       config.max_epochs = IsQuick(options) ? 2 : (IsFull(options) ? 30 : 10);
       config.hidden_dim = IsQuick(options) ? 16 : 64;
       return std::make_unique<BritsImputer>(config);
     }},
    {"GPVAE",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       GpVaeImputer::Config config;
       config.max_epochs = IsQuick(options) ? 2 : (IsFull(options) ? 40 : 20);
       return std::make_unique<GpVaeImputer>(config);
     }},
    {"Transformer",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       TransformerImputer::Config config;
       config.max_epochs = IsQuick(options) ? 2 : (IsFull(options) ? 30 : 12);
       config.samples_per_epoch =
           IsQuick(options) ? 8 : (IsFull(options) ? 48 : 24);
       return std::make_unique<TransformerImputer>(config);
     }},
    {"DeepMVI",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       return std::make_unique<DeepMviImputer>(DeepMviBenchConfig(options));
     }},
    {"DeepMVI1D",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       DeepMviConfig config = DeepMviBenchConfig(options);
       config.flatten_multidim = true;
       return std::make_unique<DeepMviImputer>(config);
     }},
    {"DeepMVI-NoTT",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       DeepMviConfig config = DeepMviBenchConfig(options);
       config.use_temporal_transformer = false;
       return std::make_unique<DeepMviImputer>(config);
     }},
    {"DeepMVI-NoContext",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       DeepMviConfig config = DeepMviBenchConfig(options);
       config.use_context_window = false;
       return std::make_unique<DeepMviImputer>(config);
     }},
    {"DeepMVI-NoKR",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       DeepMviConfig config = DeepMviBenchConfig(options);
       config.use_kernel_regression = false;
       return std::make_unique<DeepMviImputer>(config);
     }},
    {"DeepMVI-NoFG",
     [](const BenchOptions& options) -> std::unique_ptr<Imputer> {
       DeepMviConfig config = DeepMviBenchConfig(options);
       config.use_fine_grained = false;
       return std::make_unique<DeepMviImputer>(config);
     }},
};

const NamedImputerFactory* FindImputerFactory(const std::string& name) {
  for (const NamedImputerFactory& entry : kImputerFactories) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

DeepMviConfig DeepMviBenchConfig(const BenchOptions& options) {
  const bool quick = IsQuick(options);
  DeepMviConfig config;
  config.max_epochs = quick ? 2 : 30;
  config.samples_per_epoch = quick ? 16 : 128;
  config.batch_size = 4;
  config.patience = quick ? 1 : 4;
  return config;
}

bool IsImputerName(const std::string& name) {
  return FindImputerFactory(name) != nullptr;
}

std::unique_ptr<Imputer> MakeImputer(const std::string& name,
                                     const BenchOptions& options) {
  const NamedImputerFactory* factory = FindImputerFactory(name);
  if (factory == nullptr) {
    DMVI_LOG(Fatal) << "Unknown imputer name: " << name;
    return nullptr;
  }
  return factory->make(options);
}

void RunJobs(std::vector<Job>& jobs, const BenchOptions& options) {
  ParallelFor(static_cast<int>(jobs.size()), options.threads, [&](int i) {
    Job& job = jobs[i];
    DataTensor data = MakeDataset(job.dataset, options.dataset_scale(),
                                  /*seed=*/1);
    std::unique_ptr<Imputer> imputer = MakeImputer(job.imputer, options);
    job.result = RunExperiment(data, job.scenario, *imputer);
  });
}

void EmitTable(const TablePrinter& table, const std::string& name,
               const BenchOptions& options) {
  std::printf("%s\n", table.ToAscii().c_str());
  std::error_code ec;
  std::filesystem::create_directories(options.output_dir, ec);
  const std::string path = options.output_dir + "/" + name + ".csv";
  Status status = table.WriteCsv(path);
  if (!status.ok()) {
    DMVI_LOG(Warning) << "could not write " << path << ": " << status.ToString();
  } else {
    std::printf("wrote %s\n\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace deepmvi
