#ifndef DEEPMVI_BENCH_BENCH_COMMON_H_
#define DEEPMVI_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/deepmvi_config.h"
#include "data/imputer.h"
#include "data/presets.h"
#include "eval/runner.h"
#include "scenario/scenarios.h"

namespace deepmvi {
namespace bench {

/// Command-line options shared by every bench binary.
///   --full   paper-scale datasets and training budgets
///   --quick  smoke-test budgets (CI)
///   --out DIR  CSV output directory (default "bench_results")
///   --threads N  parallel experiment workers (default: hardware)
struct BenchOptions {
  enum class Profile { kQuick, kDefault, kFull };
  Profile profile = Profile::kDefault;
  std::string output_dir = "bench_results";
  int threads = 0;  // 0 = hardware concurrency.

  DatasetScale dataset_scale() const {
    return profile == Profile::kFull ? DatasetScale::kFull
                                     : DatasetScale::kReduced;
  }
};

BenchOptions ParseOptions(int argc, char** argv);

/// Creates an imputer by benchmark name with budgets matched to the
/// selected profile. Known names: Mean, LinearInterp, SVDImp, SoftImpute,
/// SVT, CDRec, TRMF, DynaMMO, STMVL, TKCM, BRITS, GPVAE, Transformer,
/// MRNN, DeepMVI,
/// DeepMVI1D, DeepMVI-NoTT, DeepMVI-NoContext, DeepMVI-NoKR, DeepMVI-NoFG.
std::unique_ptr<Imputer> MakeImputer(const std::string& name,
                                     const BenchOptions& options);

/// The DeepMVI training budget MakeImputer("DeepMVI", ...) uses for the
/// selected profile; exported so the out-of-core suite path (which calls
/// Fit on a DataSource instead of going through the Imputer interface)
/// trains with the same budget as the in-core cells.
DeepMviConfig DeepMviBenchConfig(const BenchOptions& options);

/// True if `name` is accepted by MakeImputer (which aborts on unknown
/// names — check first when the name comes from user input).
bool IsImputerName(const std::string& name);

/// One experiment job of a bench grid.
struct Job {
  std::string dataset;
  std::string imputer;
  ScenarioConfig scenario;
  /// Free-form key identifying the grid point (e.g. "x=50").
  std::string point;
  ExperimentResult result;  // Filled by RunJobs.
};

/// Runs all jobs in parallel (dataset generation + imputation per job) and
/// fills their results. Jobs are independent and individually seeded, so
/// the output is identical to a serial run.
void RunJobs(std::vector<Job>& jobs, const BenchOptions& options);

/// Prints the table to stdout and writes CSV to options.output_dir/name.csv.
void EmitTable(const TablePrinter& table, const std::string& name,
               const BenchOptions& options);

}  // namespace bench
}  // namespace deepmvi

#endif  // DEEPMVI_BENCH_BENCH_COMMON_H_
