// Figure 10a: absolute runtime per method on datasets of increasing size
// (AirQ, Climate, Meteo, BAFU, JanataHack; MCAR with all series
// incomplete). Figure 10b: DeepMVI runtime as a function of series length
// (10 series, lengths swept).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "core/deepmvi.h"
#include "data/synthetic.h"

namespace deepmvi {
namespace bench {
namespace {

void RuntimeByDataset(const BenchOptions& options) {
  const std::vector<std::string> datasets = {"AirQ", "Climate", "Meteo", "BAFU",
                                             "JanataHack"};
  const std::vector<std::string> methods = {"CDRec",       "DynaMMO", "TRMF",
                                            "SVDImp",      "Transformer",
                                            "DeepMVI"};
  std::vector<Job> jobs;
  for (const auto& dataset : datasets) {
    for (const auto& method : methods) {
      Job job;
      job.dataset = dataset;
      job.imputer = method;
      job.scenario.kind = ScenarioKind::kMcar;
      job.scenario.percent_incomplete = 1.0;
      job.scenario.seed = 23;
      jobs.push_back(job);
    }
  }
  RunJobs(jobs, options);

  std::vector<std::string> header = {"dataset"};
  header.insert(header.end(), methods.begin(), methods.end());
  TablePrinter table(header);
  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset};
    for (const auto& method : methods) {
      for (const Job& job : jobs) {
        if (job.dataset == dataset && job.imputer == method) {
          row.push_back(
              TablePrinter::FormatDouble(job.result.runtime_seconds, 3));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf("== Figure 10a: runtime (seconds), MCAR x=100%% ==\n");
  EmitTable(table, "fig10a_runtime", options);
}

void RuntimeByLength(const BenchOptions& options) {
  std::vector<int> lengths =
      options.profile == BenchOptions::Profile::kFull
          ? std::vector<int>{1000, 5000, 10000, 50000}
          : std::vector<int>{500, 1000, 1500, 2000};
  if (options.profile == BenchOptions::Profile::kQuick) {
    lengths = {300, 600};
  }

  TablePrinter table({"length", "deepmvi_seconds"});
  for (int length : lengths) {
    SyntheticConfig data_config;
    data_config.num_series = 10;
    data_config.length = length;
    data_config.seasonal_periods = {64.0};
    data_config.seasonality_strength = 0.7;
    data_config.seed = 29;
    DataTensor data = DataTensor::FromMatrix(GenerateSeriesMatrix(data_config));
    ScenarioConfig scenario;
    scenario.kind = ScenarioKind::kMcar;
    scenario.percent_incomplete = 1.0;
    scenario.seed = 31;
    auto imputer = MakeImputer("DeepMVI", options);
    ExperimentResult result = RunExperiment(data, scenario, *imputer);
    table.AddRow({std::to_string(length),
                  TablePrinter::FormatDouble(result.runtime_seconds, 3)});
  }
  std::printf("== Figure 10b: DeepMVI runtime vs series length (10 series) ==\n");
  EmitTable(table, "fig10b_scaling", options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  auto options = deepmvi::bench::ParseOptions(argc, argv);
  deepmvi::bench::RuntimeByDataset(options);
  deepmvi::bench::RuntimeByLength(options);
  return 0;
}
