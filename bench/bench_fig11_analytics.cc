// Figure 11: impact on downstream analytics. For each dataset (Climate,
// Electricity, JanataHack, M5; MCAR with all series incomplete), reports
// MAE(DropCell) - MAE(method) on the aggregate statistic (average over the
// first dimension). Positive values mean imputation beats dropping the
// missing cells.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> datasets = {"Climate", "Electricity",
                                             "JanataHack", "M5"};
  const std::vector<std::string> methods = {"CDRec", "BRITS", "GPVAE",
                                            "Transformer", "DeepMVI"};
  std::vector<Job> jobs;
  for (const auto& dataset : datasets) {
    for (const auto& method : methods) {
      Job job;
      job.dataset = dataset;
      job.imputer = method;
      job.scenario.kind = ScenarioKind::kMcar;
      job.scenario.percent_incomplete = 1.0;
      job.scenario.seed = 37;
      jobs.push_back(job);
    }
  }
  RunJobs(jobs, options);

  std::vector<std::string> header = {"dataset"};
  header.insert(header.end(), methods.begin(), methods.end());
  TablePrinter table(header);
  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset};
    for (const auto& method : methods) {
      for (const Job& job : jobs) {
        if (job.dataset == dataset && job.imputer == method) {
          row.push_back(
              TablePrinter::FormatDouble(job.result.analytics_gain, 5));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf(
      "== Figure 11: analytics gain MAE(DropCell) - MAE(method); positive"
      " means imputation beats dropping missing cells ==\n");
  EmitTable(table, "fig11_analytics", options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
