// Figure 4: visual comparison of imputations on the Electricity dataset
// under MCAR (top row) and Blackout (bottom row). Prints, for each missing
// block of one illustrative series, the ground truth alongside CDRec,
// DynaMMO, and DeepMVI imputations, and writes the full series to CSV for
// plotting.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/parallel.h"

namespace deepmvi {
namespace bench {
namespace {

void RunScenario(const std::string& label, const ScenarioConfig& scenario,
                 const BenchOptions& options) {
  DataTensor data = MakeDataset("Electricity", options.dataset_scale(), 1);
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());

  const std::vector<std::string> methods = {"CDRec", "DynaMMO", "DeepMVI"};
  std::vector<ImputedSeries> results(methods.size());
  ParallelFor(static_cast<int>(methods.size()), options.threads, [&](int i) {
    auto imputer = MakeImputer(methods[i], options);
    results[i] = ImputeAndExtractSeries(data, mask, *imputer, /*series_row=*/0);
  });

  TablePrinter table({"t", "missing", "truth", "CDRec", "DynaMMO", "DeepMVI"});
  for (int t = 0; t < data.num_times(); ++t) {
    table.AddRow({std::to_string(t), results[0].missing[t] ? "1" : "0",
                  TablePrinter::FormatDouble(results[0].truth[t]),
                  TablePrinter::FormatDouble(results[0].imputed[t]),
                  TablePrinter::FormatDouble(results[1].imputed[t]),
                  TablePrinter::FormatDouble(results[2].imputed[t])});
  }
  // Print only the neighbourhoods of missing blocks to stdout.
  std::printf("== Figure 4 (%s): series 0, missing blocks ==\n", label.c_str());
  TablePrinter excerpt({"t", "truth", "CDRec", "DynaMMO", "DeepMVI"});
  for (int t = 0; t < data.num_times(); ++t) {
    if (!results[0].missing[t]) continue;
    excerpt.AddRow({std::to_string(t),
                    TablePrinter::FormatDouble(results[0].truth[t]),
                    TablePrinter::FormatDouble(results[0].imputed[t]),
                    TablePrinter::FormatDouble(results[1].imputed[t]),
                    TablePrinter::FormatDouble(results[2].imputed[t])});
  }
  std::printf("%s\n", excerpt.ToAscii().c_str());
  EmitTable(table, "fig4_visual_" + label, options);
}

void Main(const BenchOptions& options) {
  ScenarioConfig mcar;
  mcar.kind = ScenarioKind::kMcar;
  mcar.percent_incomplete = 1.0;
  mcar.seed = 4;

  ScenarioConfig blackout;
  blackout.kind = ScenarioKind::kBlackout;
  blackout.block_size = 20;
  blackout.seed = 5;

  RunScenario("mcar", mcar, options);
  RunScenario("blackout", blackout, options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
