// Figure 5: MAE of the conventional methods (CDRec, DynaMMO, TRMF, SVDImp)
// and DeepMVI on five datasets (Chlorine, Temperature, Gas, Meteo, BAFU)
// under all four missing scenarios with x = 10% of series incomplete.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> datasets = {"Chlorine", "Temperature", "Gas",
                                             "Meteo", "BAFU"};
  const std::vector<std::string> methods = {"CDRec", "DynaMMO", "TRMF",
                                            "SVDImp", "DeepMVI"};

  std::vector<Job> jobs;
  for (ScenarioKind kind : HeadlineScenarios()) {
    for (const auto& dataset : datasets) {
      for (const auto& method : methods) {
        Job job;
        job.dataset = dataset;
        job.imputer = method;
        job.scenario.kind = kind;
        job.scenario.percent_incomplete = 0.1;
        job.scenario.block_size = 10;
        job.scenario.seed = 42;
        jobs.push_back(job);
      }
    }
  }
  RunJobs(jobs, options);

  for (ScenarioKind kind : HeadlineScenarios()) {
    std::vector<std::string> header = {"dataset"};
    header.insert(header.end(), methods.begin(), methods.end());
    TablePrinter table(header);
    for (const auto& dataset : datasets) {
      std::vector<std::string> row = {dataset};
      for (const auto& method : methods) {
        for (const Job& job : jobs) {
          if (job.dataset == dataset && job.imputer == method &&
              job.result.scenario_name == ScenarioName(kind)) {
            row.push_back(TablePrinter::FormatDouble(job.result.mae));
          }
        }
      }
      table.AddRow(row);
    }
    std::printf("== Figure 5: MAE, scenario %s, x=10%% ==\n",
                ScenarioName(kind).c_str());
    EmitTable(table, "fig5_" + ScenarioName(kind), options);
  }
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
