// Figure 6: MAE sweeps on AirQ, Climate, and Electricity under the four
// scenarios. For MCAR / MissDisj / MissOver the x-axis is the percentage
// of incomplete series; for Blackout it is the missing block size.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> datasets = {"AirQ", "Climate", "Electricity"};
  const std::vector<std::string> methods = {"CDRec", "DynaMMO", "TRMF",
                                            "SVDImp", "DeepMVI"};
  const std::vector<int> percents = {10, 50, 100};
  const std::vector<int> blackout_sizes = {10, 50, 100};

  std::vector<Job> jobs;
  for (const auto& dataset : datasets) {
    for (ScenarioKind kind : HeadlineScenarios()) {
      const std::vector<int>& sweep =
          kind == ScenarioKind::kBlackout ? blackout_sizes : percents;
      for (int value : sweep) {
        for (const auto& method : methods) {
          Job job;
          job.dataset = dataset;
          job.imputer = method;
          job.scenario.kind = kind;
          job.scenario.seed = 7;
          if (kind == ScenarioKind::kBlackout) {
            job.scenario.block_size = value;
            job.point = "block=" + std::to_string(value);
          } else {
            job.scenario.percent_incomplete = value / 100.0;
            job.scenario.block_size = 10;
            job.point = "x=" + std::to_string(value);
          }
          jobs.push_back(job);
        }
      }
    }
  }
  RunJobs(jobs, options);

  for (const auto& dataset : datasets) {
    for (ScenarioKind kind : HeadlineScenarios()) {
      const std::vector<int>& sweep =
          kind == ScenarioKind::kBlackout ? blackout_sizes : percents;
      std::vector<std::string> header = {
          kind == ScenarioKind::kBlackout ? "block_size" : "pct_incomplete"};
      header.insert(header.end(), methods.begin(), methods.end());
      TablePrinter table(header);
      for (int value : sweep) {
        const std::string point =
            (kind == ScenarioKind::kBlackout ? "block=" : "x=") +
            std::to_string(value);
        std::vector<std::string> row = {std::to_string(value)};
        for (const auto& method : methods) {
          for (const Job& job : jobs) {
            if (job.dataset == dataset && job.imputer == method &&
                job.point == point &&
                job.result.scenario_name == ScenarioName(kind)) {
              row.push_back(TablePrinter::FormatDouble(job.result.mae));
            }
          }
        }
        table.AddRow(row);
      }
      std::printf("== Figure 6: %s, scenario %s ==\n", dataset.c_str(),
                  ScenarioName(kind).c_str());
      EmitTable(table, "fig6_" + dataset + "_" + ScenarioName(kind), options);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
