// Figure 7: ablation of DeepMVI's modules (no temporal transformer, no
// context window, no kernel regression) on AirQ, Climate, and Electricity
// under MCAR, sweeping the percentage of incomplete series.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> datasets = {"AirQ", "Climate", "Electricity"};
  const std::vector<std::string> variants = {"DeepMVI-NoTT", "DeepMVI-NoContext",
                                             "DeepMVI-NoKR", "DeepMVI"};
  const std::vector<int> percents = {10, 50, 100};

  std::vector<Job> jobs;
  for (const auto& dataset : datasets) {
    for (int pct : percents) {
      for (const auto& variant : variants) {
        Job job;
        job.dataset = dataset;
        job.imputer = variant;
        job.scenario.kind = ScenarioKind::kMcar;
        job.scenario.percent_incomplete = pct / 100.0;
        job.scenario.seed = 13;
        job.point = "x=" + std::to_string(pct);
        jobs.push_back(job);
      }
    }
  }
  RunJobs(jobs, options);

  for (const auto& dataset : datasets) {
    std::vector<std::string> header = {"pct_incomplete"};
    header.insert(header.end(), variants.begin(), variants.end());
    TablePrinter table(header);
    for (int pct : percents) {
      std::vector<std::string> row = {std::to_string(pct)};
      for (const auto& variant : variants) {
        for (const Job& job : jobs) {
          if (job.dataset == dataset && job.imputer == variant &&
              job.point == "x=" + std::to_string(pct)) {
            row.push_back(TablePrinter::FormatDouble(job.result.mae));
          }
        }
      }
      table.AddRow(row);
    }
    std::printf("== Figure 7: ablations on %s (MCAR) ==\n", dataset.c_str());
    EmitTable(table, "fig7_ablation_" + dataset, options);
  }
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
