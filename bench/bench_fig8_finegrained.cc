// Figure 8: role of the fine-grained local signal. MCAR variant with 10%
// of the cells of every series missing and the block size varied from 1
// to 10 (Sec 5.5.3); compares DeepMVI with and without the fine-grained
// signal against CDRec on the Climate dataset.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> methods = {"CDRec", "DeepMVI-NoFG", "DeepMVI"};
  const std::vector<int> block_sizes = {1, 2, 4, 6, 8, 10};

  std::vector<Job> jobs;
  for (int block : block_sizes) {
    for (const auto& method : methods) {
      Job job;
      job.dataset = "Climate";
      job.imputer = method;
      job.scenario.kind = ScenarioKind::kMissPoint;
      job.scenario.missing_fraction = 0.1;
      job.scenario.block_size = block;
      job.scenario.seed = 17;
      job.point = std::to_string(block);
      jobs.push_back(job);
    }
  }
  RunJobs(jobs, options);

  std::vector<std::string> header = {"block_size"};
  for (const auto& m : methods) {
    header.push_back(m == "DeepMVI-NoFG" ? "NoFineGrained"
                                         : (m == "DeepMVI" ? "FineGrained" : m));
  }
  TablePrinter table(header);
  for (int block : block_sizes) {
    std::vector<std::string> row = {std::to_string(block)};
    for (const auto& method : methods) {
      for (const Job& job : jobs) {
        if (job.imputer == method && job.point == std::to_string(block)) {
          row.push_back(TablePrinter::FormatDouble(job.result.mae));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf("== Figure 8: fine-grained signal vs block size (Climate) ==\n");
  EmitTable(table, "fig8_finegrained", options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
