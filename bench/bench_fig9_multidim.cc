// Figure 9: effect of the multidimensional kernel regression on
// JanataHack (store x SKU). Compares DeepMVI (per-dimension embeddings)
// against DeepMVI1D (flattened index, doubled embedding) and the
// conventional baselines, under MCAR with increasing percentage of
// incomplete series.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> methods = {"CDRec",  "DynaMMO",  "TRMF",
                                            "SVDImp", "DeepMVI1D", "DeepMVI"};
  const std::vector<int> percents = {20, 60, 100};

  std::vector<Job> jobs;
  for (int pct : percents) {
    for (const auto& method : methods) {
      Job job;
      job.dataset = "JanataHack";
      job.imputer = method;
      job.scenario.kind = ScenarioKind::kMcar;
      job.scenario.percent_incomplete = pct / 100.0;
      job.scenario.seed = 19;
      job.point = std::to_string(pct);
      jobs.push_back(job);
    }
  }
  RunJobs(jobs, options);

  std::vector<std::string> header = {"pct_incomplete"};
  header.insert(header.end(), methods.begin(), methods.end());
  TablePrinter table(header);
  for (int pct : percents) {
    std::vector<std::string> row = {std::to_string(pct)};
    for (const auto& method : methods) {
      for (const Job& job : jobs) {
        if (job.imputer == method && job.point == std::to_string(pct)) {
          row.push_back(TablePrinter::FormatDouble(job.result.mae));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf("== Figure 9: multidimensional KR on JanataHack (MCAR) ==\n");
  EmitTable(table, "fig9_multidim", options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
