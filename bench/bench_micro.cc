// Micro-benchmarks (google-benchmark) for the substrates: dense matmul,
// Jacobi SVD, centroid decomposition, autodiff attention forward/backward,
// kernel regression features, and one DeepMVI training step.

#include <benchmark/benchmark.h>

#include "autodiff/ops.h"
#include "core/deepmvi.h"
#include "core/kernel_regression.h"
#include "core/temporal_transformer.h"
#include "data/synthetic.h"
#include "linalg/centroid.h"
#include "linalg/svd.h"
#include "nn/layers.h"
#include "tensor/matmul_kernel.h"

namespace deepmvi {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

// The naive ijk reference the blocked kernel is tested against; kept as a
// benchmark so the blocked-vs-naive speedup stays visible PR over PR.
void BM_MatMulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    Matrix c(n, n);
    internal::MatMulNaive(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_TransposeMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.TransposeMatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_TransposeMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTranspose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMulTranspose(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMulTranspose)->Arg(64)->Arg(128)->Arg(256);

// One full DeepMVI training step fanned over worker threads; Arg is the
// thread count. Results are bit-identical across Args — only time moves.
void BM_DeepMviFitThreads(benchmark::State& state) {
  SyntheticConfig data_config;
  data_config.num_series = 8;
  data_config.length = 240;
  data_config.seed = 21;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(8, 240);
  for (int r = 0; r < 8; ++r) mask.SetMissingRange(r, 30 * r, 30 * r + 12);
  DeepMviConfig config;
  config.max_epochs = 2;
  config.samples_per_epoch = 32;
  config.batch_size = 8;
  config.patience = 1;
  config.filters = 16;
  config.num_heads = 2;
  config.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DeepMviImputer imputer(config);
    benchmark::DoNotOptimize(imputer.Fit(data, mask));
  }
}
BENCHMARK(BM_DeepMviFitThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_JacobiSvd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(n, 2 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JacobiSvd(a));
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(16)->Arg(32)->Arg(64);

void BM_CentroidDecomposition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(n, 4 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CentroidDecomposition(a, 3));
  }
}
BENCHMARK(BM_CentroidDecomposition)->Arg(16)->Arg(64);

void BM_MaskedAttentionForwardBackward(benchmark::State& state) {
  const int t_len = static_cast<int>(state.range(0));
  Rng rng(4);
  nn::ParameterStore store;
  nn::MultiHeadSelfAttention attn(&store, "attn",
                                  {.model_dim = 32, .num_heads = 4}, rng);
  Matrix x = Matrix::RandomGaussian(t_len, 32, rng);
  std::vector<double> avail(t_len, 1.0);
  for (auto _ : state) {
    ad::Tape tape;
    ad::Var out = attn.Forward(tape, tape.Leaf(x), avail);
    tape.Backward(ad::Sum(ad::Square(out)));
    benchmark::DoNotOptimize(out.grad());
  }
}
BENCHMARK(BM_MaskedAttentionForwardBackward)->Arg(64)->Arg(128)->Arg(256);

void BM_TemporalTransformerForward(benchmark::State& state) {
  const int t_len = static_cast<int>(state.range(0));
  Rng rng(5);
  nn::ParameterStore store;
  DeepMviConfig config;
  config.window = 10;
  TemporalTransformer tt(&store, config, rng);
  Matrix series = Matrix::RandomGaussian(1, t_len, rng);
  std::vector<double> avail(t_len / 10, 1.0);
  for (auto _ : state) {
    ad::Tape tape;
    benchmark::DoNotOptimize(tt.Forward(tape, series, avail));
  }
}
BENCHMARK(BM_TemporalTransformerForward)->Arg(500)->Arg(1000)->Arg(2000);

void BM_KernelRegressionForward(benchmark::State& state) {
  const int num_sib = static_cast<int>(state.range(0));
  Rng rng(6);
  Dimension dim{"series", {}};
  for (int i = 0; i <= num_sib; ++i) dim.members.push_back("s" + std::to_string(i));
  Matrix values = Matrix::RandomGaussian(num_sib + 1, 256, rng);
  DataTensor data({dim}, values);
  Mask mask(num_sib + 1, 256);
  nn::ParameterStore store;
  DeepMviConfig config;
  KernelRegression kr(&store, data.dims(), config, rng);
  std::vector<int> times;
  for (int t = 100; t < 120; ++t) times.push_back(t);
  for (auto _ : state) {
    ad::Tape tape;
    benchmark::DoNotOptimize(kr.Forward(tape, data, values, mask, 0, times));
  }
}
BENCHMARK(BM_KernelRegressionForward)->Arg(10)->Arg(50)->Arg(200);

}  // namespace
}  // namespace deepmvi

BENCHMARK_MAIN();
