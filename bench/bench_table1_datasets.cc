// Table 1: dataset summary. Prints, for every synthetic preset, its
// dimensions and the measured repetition (seasonality) and relatedness
// scores, verifying that the generators reproduce the paper's qualitative
// judgments.

#include <cstdio>

#include "bench/bench_common.h"
#include <algorithm>

#include "data/synthetic.h"

namespace deepmvi {
namespace bench {
namespace {

std::string Qualitative(double score, double low, double high) {
  if (score < low) return "Low";
  if (score < high) return "Moderate";
  return "High";
}

void Main(const BenchOptions& options) {
  TablePrinter table({"dataset", "num_series", "length", "dims",
                      "seasonality", "repetition", "relatedness_score",
                      "relatedness"});
  for (const auto& name : AllDatasetNames()) {
    DataTensor data = MakeDataset(name, options.dataset_scale(), 1);
    SeriesCharacteristics chars = MeasureCharacteristics(data.values());
    if (data.num_dims() >= 2) {
      // Multidimensional datasets: relatedness is across siblings along
      // the first dimension (same item, different store), not arbitrary
      // series pairs.
      double corr = 0.0;
      int pairs = 0;
      for (int i = 0; i < data.dim(1).size() && pairs < 40; ++i) {
        corr += PearsonCorrelation(
            data.values().Row(data.FlattenIndex({0, i})),
            data.values().Row(data.FlattenIndex({1, i})));
        ++pairs;
      }
      chars.relatedness_score = pairs > 0 ? std::max(corr / pairs, 0.0) : 0.0;
    }
    std::string dims;
    for (int i = 0; i < data.num_dims(); ++i) {
      if (i > 0) dims += "x";
      dims += std::to_string(data.dim(i).size());
    }
    table.AddRow({name, std::to_string(data.num_series()),
                  std::to_string(data.num_times()), dims,
                  TablePrinter::FormatDouble(chars.seasonality_score, 3),
                  Qualitative(chars.seasonality_score, 0.35, 0.6),
                  TablePrinter::FormatDouble(chars.relatedness_score, 3),
                  Qualitative(chars.relatedness_score, 0.2, 0.5)});
  }
  std::printf("== Table 1: synthetic dataset characteristics ==\n");
  EmitTable(table, "table1_datasets", options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
