// Table 2: comparison with the deep-learning methods (BRITS, GPVAE,
// vanilla Transformer, DeepMVI). M5 and JanataHack run MCAR with 100% of
// series incomplete; Climate, Electricity, and Meteo run both MCAR (100%)
// and Blackout.

#include <cstdio>

#include "bench/bench_common.h"

namespace deepmvi {
namespace bench {
namespace {

void Main(const BenchOptions& options) {
  const std::vector<std::string> methods = {"BRITS", "GPVAE", "Transformer",
                                            "DeepMVI"};
  struct Column {
    std::string dataset;
    ScenarioKind kind;
  };
  // Blackout block size is 100 in the paper; the reduced profile uses 50
  // so the block stays a small fraction of the shorter series.
  const int blackout_block =
      options.profile == BenchOptions::Profile::kFull ? 100 : 50;
  const std::vector<Column> columns = {
      {"M5", ScenarioKind::kMcar},
      {"JanataHack", ScenarioKind::kMcar},
      {"Climate", ScenarioKind::kMcar},
      {"Climate", ScenarioKind::kBlackout},
      {"Electricity", ScenarioKind::kMcar},
      {"Electricity", ScenarioKind::kBlackout},
      {"Meteo", ScenarioKind::kMcar},
      {"Meteo", ScenarioKind::kBlackout},
  };

  std::vector<Job> jobs;
  for (const auto& column : columns) {
    for (const auto& method : methods) {
      Job job;
      job.dataset = column.dataset;
      job.imputer = method;
      job.scenario.kind = column.kind;
      job.scenario.percent_incomplete = 1.0;
      job.scenario.block_size =
          column.kind == ScenarioKind::kBlackout ? blackout_block : 10;
      job.scenario.seed = 11;
      job.point = column.dataset + "/" + ScenarioName(column.kind);
      jobs.push_back(job);
    }
  }
  RunJobs(jobs, options);

  std::vector<std::string> header = {"model"};
  for (const auto& column : columns) {
    header.push_back(column.dataset + " " + ScenarioName(column.kind));
  }
  TablePrinter table(header);
  for (const auto& method : methods) {
    std::vector<std::string> row = {method};
    for (const auto& column : columns) {
      const std::string point =
          column.dataset + "/" + ScenarioName(column.kind);
      for (const Job& job : jobs) {
        if (job.imputer == method && job.point == point) {
          row.push_back(TablePrinter::FormatDouble(job.result.mae, 2));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf("== Table 2: MAE vs deep learning methods ==\n");
  EmitTable(table, "table2_deep", options);
}

}  // namespace
}  // namespace bench
}  // namespace deepmvi

int main(int argc, char** argv) {
  deepmvi::bench::Main(deepmvi::bench::ParseOptions(argc, argv));
  return 0;
}
