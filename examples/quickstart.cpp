// Quickstart: impute missing values in a small time-series dataset with
// DeepMVI and compare against simple baselines.
//
//   build/examples/quickstart
//
// Walks through the whole public API: build a DataTensor, mark cells
// missing with a Mask (here via a scenario generator), run imputers, and
// score them with the evaluation helpers.

#include <cstdio>

#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "core/deepmvi.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "scenario/scenarios.h"

int main() {
  using namespace deepmvi;

  // 1. Create a dataset: 8 correlated seasonal series of length 400.
  //    (Real applications would fill a Matrix from their own storage.)
  SyntheticConfig data_config;
  data_config.num_series = 8;
  data_config.length = 400;
  data_config.seasonal_periods = {24.0};
  data_config.seasonality_strength = 0.8;
  data_config.cross_correlation = 0.6;
  data_config.noise_level = 0.08;
  data_config.seed = 7;
  Matrix truth = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(truth, "sensor");

  // 2. Hide 10% of every series in blocks of 12 steps (the paper's MCAR
  //    scenario). The mask tells imputers which cells they may read.
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.missing_fraction = 0.1;
  scenario.block_size = 12;
  scenario.seed = 8;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());
  std::printf("dataset: %d series x %d steps, %lld cells missing\n",
              data.num_series(), data.num_times(),
              static_cast<long long>(mask.CountMissing()));

  // 3. Impute with DeepMVI and two baselines.
  DeepMviConfig config;          // Paper defaults (Sec 4.3).
  config.max_epochs = 25;        // Trimmed for a fast demo.
  DeepMviImputer deepmvi(config);
  CdRecImputer cdrec;
  LinearInterpolationImputer interp;

  for (Imputer* imputer :
       std::initializer_list<Imputer*>{&interp, &cdrec, &deepmvi}) {
    Matrix imputed = imputer->Impute(data, mask);
    std::printf("%-14s MAE = %.4f   RMSE = %.4f\n", imputer->name().c_str(),
                MaeOnMissing(imputed, truth, mask),
                RmseOnMissing(imputed, truth, mask));
  }
  return 0;
}
