// Retail demand imputation on a MULTIDIMENSIONAL dataset (store x product
// x week), the setting that motivates the paper's kernel regression
// (Sec 4.2). Shows how sibling series along each dimension carry the
// signal, why flattening the index (DeepMVI1D) loses accuracy, and how
// imputation quality propagates to the aggregate statistics an analyst
// would chart (Sec 5.7).
//
//   build/examples/retail_sales

#include <cstdio>

#include "baselines/matrix_completion.h"
#include "core/deepmvi.h"
#include "data/presets.h"
#include "eval/analytics.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "scenario/scenarios.h"

int main() {
  using namespace deepmvi;

  // JanataHack-style sales tensor: stores x SKUs x weeks, with strong
  // coherence across stores for a given SKU.
  DataTensor data = MakeDataset("JanataHack", DatasetScale::kReduced, 3);
  std::printf("retail tensor: %d %ss x %d %ss x %d weeks\n",
              data.dim(0).size(), data.dim(0).name.c_str(), data.dim(1).size(),
              data.dim(1).name.c_str(), data.num_times());

  // Every series loses 10% of its history in blocks (reporting outages).
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 4;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());

  DeepMviConfig config;
  config.max_epochs = 25;
  config.samples_per_epoch = 128;
  DeepMviImputer deepmvi(config);

  DeepMviConfig flat_config = config;
  flat_config.flatten_multidim = true;  // Ablation: drop the (store, SKU)
                                        // structure before modelling.
  DeepMviImputer deepmvi_1d(flat_config);

  CdRecImputer cdrec;

  std::printf("\n%-12s %8s %10s %22s\n", "method", "MAE", "RMSE",
              "analytics gain vs drop");
  for (Imputer* imputer : std::initializer_list<Imputer*>{
           &cdrec, &deepmvi_1d, &deepmvi}) {
    ExperimentResult result = RunExperimentWithMask(data, mask, *imputer);
    std::printf("%-12s %8.4f %10.4f %22.5f\n", imputer->name().c_str(),
                result.mae, result.rmse, result.analytics_gain);
  }
  std::printf(
      "\nThe analytics gain is MAE(DropCell) - MAE(method) on the per-SKU\n"
      "store-average an analyst would chart: higher (less negative) means\n"
      "the imputed aggregate tracks the truth better. DeepMVI's\n"
      "per-dimension embeddings beat both CDRec and the flattened\n"
      "DeepMVI1D because sibling stores of the same SKU are informative\n"
      "(the paper's Figure 9 / Figure 11 story).\n");
  return 0;
}
