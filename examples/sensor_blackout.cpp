// Recovering a sensor-network BLACKOUT: every sensor goes dark over the
// same time range (a network outage), so no cross-series information
// exists inside the gap — the hardest scenario in the paper's evaluation.
// Matrix-completion methods degrade to interpolation here; DeepMVI's
// temporal transformer can still match the gap's surrounding context
// against repeating patterns elsewhere in each series (Sec 5.3).
//
//   build/examples/sensor_blackout

#include <cstdio>
#include <string>

#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "core/deepmvi.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "scenario/scenarios.h"

namespace {

/// Tiny ASCII sparkline of a value sequence.
std::string Sparkline(const std::vector<double>& values, int from, int to) {
  static const char* kLevels[] = {"_", ".", "-", "=", "^", "#"};
  double lo = 1e300, hi = -1e300;
  for (int t = from; t < to; ++t) {
    lo = std::min(lo, values[t]);
    hi = std::max(hi, values[t]);
  }
  std::string out;
  for (int t = from; t < to; ++t) {
    const double frac = hi > lo ? (values[t] - lo) / (hi - lo) : 0.5;
    out += kLevels[std::min(5, static_cast<int>(frac * 6))];
  }
  return out;
}

}  // namespace

int main() {
  using namespace deepmvi;

  // Strongly periodic sensors (e.g. temperature with a daily cycle) with
  // weak cross-correlation.
  SyntheticConfig data_config;
  data_config.num_series = 6;
  data_config.length = 480;
  data_config.seasonal_periods = {48.0};
  data_config.seasonality_strength = 0.9;
  data_config.cross_correlation = 0.2;
  data_config.noise_level = 0.05;
  data_config.seed = 11;
  Matrix truth = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(truth, "sensor");

  // Blackout of 40 steps across ALL sensors.
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kBlackout;
  scenario.block_size = 40;
  scenario.blackout_start_fraction = 0.4;
  scenario.seed = 12;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());

  LinearInterpolationImputer interp;
  CdRecImputer cdrec;
  DeepMviConfig config;
  config.max_epochs = 18;
  DeepMviImputer deepmvi(config);

  const int gap_start = static_cast<int>(0.4 * data.num_times());
  std::printf("blackout: steps %d..%d missing in all %d sensors\n\n", gap_start,
              gap_start + 39, data.num_series());
  const int view_from = gap_start - 12;
  const int view_to = gap_start + 52;

  ImputedSeries reference;
  for (Imputer* imputer :
       std::initializer_list<Imputer*>{&interp, &cdrec, &deepmvi}) {
    ImputedSeries series = ImputeAndExtractSeries(data, mask, *imputer, 0);
    if (imputer == &interp) {
      std::printf("truth        %s\n",
                  Sparkline(series.truth, view_from, view_to).c_str());
    }
    Matrix imputed = imputer->Impute(data, mask);
    std::printf("%-12s %s  (MAE %.4f)\n", imputer->name().c_str(),
                Sparkline(series.imputed, view_from, view_to).c_str(),
                MaeOnMissing(imputed, truth, mask));
  }
  std::printf(
      "\nInterpolation draws a line through the gap; CDRec cannot use other\n"
      "sensors (they are dark too); DeepMVI reproduces the daily cycle by\n"
      "attending to matching windows elsewhere in the same series.\n");
  return 0;
}
