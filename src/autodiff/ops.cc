#include "autodiff/ops.h"

#include <algorithm>
#include <cmath>

namespace deepmvi {
namespace ad {
namespace {

Tape* SameTape(const Var& a, const Var& b) {
  DMVI_CHECK(a.valid());
  DMVI_CHECK(b.valid());
  DMVI_CHECK_EQ(a.tape(), b.tape());
  return a.tape();
}

void CheckSameShape(const Var& a, const Var& b) {
  DMVI_CHECK_EQ(a.rows(), b.rows());
  DMVI_CHECK_EQ(a.cols(), b.cols());
}

/// Adds `delta` into the gradient of node `index` if that node wants one.
void Accumulate(Tape& tape, int index, const Matrix& delta) {
  if (!tape.needs_grad(index)) return;
  tape.grad(index) += delta;
}

bool NeedsGrad(Tape* tape, const Var& a) { return tape->needs_grad(a.index()); }

/// Shared implementation for elementwise unary ops given forward values and
/// a pointwise derivative computed from (input, output).
Var UnaryOp(const Var& a, double (*fwd)(double),
            double (*dfn)(double in, double out)) {
  Tape* tape = a.tape();
  DMVI_CHECK(a.valid());
  const Matrix& av = a.value();
  Matrix out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out(r, c) = fwd(av(r, c));
  }
  const int ia = a.index();
  return tape->MakeNode(
      std::move(out),
      [ia, dfn](Tape& t, const Matrix& gout) {
        const Matrix& in = t.value(ia);
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        // Re-evaluating fwd would be wasteful; derivative gets both input
        // and the (recomputed) output when it needs it.
        for (int r = 0; r < in.rows(); ++r) {
          for (int c = 0; c < in.cols(); ++c) {
            ga(r, c) += gout(r, c) * dfn(in(r, c), 0.0);
          }
        }
      },
      NeedsGrad(tape, a));
}

}  // namespace

// ---- Elementwise arithmetic ----------------------------------------------

Var Add(const Var& a, const Var& b) {
  Tape* tape = SameTape(a, b);
  CheckSameShape(a, b);
  const int ia = a.index(), ib = b.index();
  return tape->MakeNode(
      a.value() + b.value(),
      [ia, ib](Tape& t, const Matrix& gout) {
        Accumulate(t, ia, gout);
        Accumulate(t, ib, gout);
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, b));
}

Var Sub(const Var& a, const Var& b) {
  Tape* tape = SameTape(a, b);
  CheckSameShape(a, b);
  const int ia = a.index(), ib = b.index();
  return tape->MakeNode(
      a.value() - b.value(),
      [ia, ib](Tape& t, const Matrix& gout) {
        Accumulate(t, ia, gout);
        if (t.needs_grad(ib)) t.grad(ib) -= gout;
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, b));
}

Var Mul(const Var& a, const Var& b) {
  Tape* tape = SameTape(a, b);
  CheckSameShape(a, b);
  const int ia = a.index(), ib = b.index();
  return tape->MakeNode(
      a.value().CwiseProduct(b.value()),
      [ia, ib](Tape& t, const Matrix& gout) {
        if (t.needs_grad(ia)) t.grad(ia) += gout.CwiseProduct(t.value(ib));
        if (t.needs_grad(ib)) t.grad(ib) += gout.CwiseProduct(t.value(ia));
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, b));
}

Var Div(const Var& a, const Var& b) {
  Tape* tape = SameTape(a, b);
  CheckSameShape(a, b);
  const int ia = a.index(), ib = b.index();
  return tape->MakeNode(
      a.value().CwiseQuotient(b.value()),
      [ia, ib](Tape& t, const Matrix& gout) {
        const Matrix& bv = t.value(ib);
        if (t.needs_grad(ia)) t.grad(ia) += gout.CwiseQuotient(bv);
        if (t.needs_grad(ib)) {
          const Matrix& av = t.value(ia);
          Matrix gb(gout.rows(), gout.cols());
          for (int r = 0; r < gout.rows(); ++r) {
            for (int c = 0; c < gout.cols(); ++c) {
              gb(r, c) = -gout(r, c) * av(r, c) / (bv(r, c) * bv(r, c));
            }
          }
          t.grad(ib) += gb;
        }
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, b));
}

Var Neg(const Var& a) { return Scale(a, -1.0); }

Var Scale(const Var& a, double s) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  return tape->MakeNode(
      a.value() * s,
      [ia, s](Tape& t, const Matrix& gout) {
        if (t.needs_grad(ia)) t.grad(ia) += gout * s;
      },
      NeedsGrad(tape, a));
}

Var AddScalar(const Var& a, double s) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  Matrix out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += s;
  }
  return tape->MakeNode(
      std::move(out),
      [ia](Tape& t, const Matrix& gout) { Accumulate(t, ia, gout); },
      NeedsGrad(tape, a));
}

Var MulConst(const Var& a, const Matrix& m) {
  DMVI_CHECK(a.valid());
  DMVI_CHECK_EQ(a.rows(), m.rows());
  DMVI_CHECK_EQ(a.cols(), m.cols());
  Tape* tape = a.tape();
  const int ia = a.index();
  return tape->MakeNode(
      a.value().CwiseProduct(m),
      [ia, m](Tape& t, const Matrix& gout) {
        if (t.needs_grad(ia)) t.grad(ia) += gout.CwiseProduct(m);
      },
      NeedsGrad(tape, a));
}

// ---- Elementwise nonlinearities -------------------------------------------

Var Relu(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return x > 0.0 ? x : 0.0; },
      +[](double in, double) { return in > 0.0 ? 1.0 : 0.0; });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return std::tanh(x); },
      +[](double in, double) {
        const double th = std::tanh(in);
        return 1.0 - th * th;
      });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      +[](double in, double) {
        const double s = 1.0 / (1.0 + std::exp(-in));
        return s * (1.0 - s);
      });
}

Var Exp(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return std::exp(x); },
      +[](double in, double) { return std::exp(in); });
}

Var Log(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return std::log(x); },
      +[](double in, double) { return 1.0 / in; });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return x * x; },
      +[](double in, double) { return 2.0 * in; });
}

Var Sqrt(const Var& a, double eps) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  const Matrix& av = a.value();
  Matrix out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out(r, c) = std::sqrt(av(r, c) + eps);
  }
  return tape->MakeNode(
      std::move(out),
      [ia, eps](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        const Matrix& in = t.value(ia);
        Matrix& ga = t.grad(ia);
        for (int r = 0; r < in.rows(); ++r) {
          for (int c = 0; c < in.cols(); ++c) {
            ga(r, c) += gout(r, c) * 0.5 / std::sqrt(in(r, c) + eps);
          }
        }
      },
      NeedsGrad(tape, a));
}

Var Abs(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return std::fabs(x); },
      +[](double in, double) { return in > 0.0 ? 1.0 : (in < 0.0 ? -1.0 : 0.0); });
}

// ---- Linear algebra -------------------------------------------------------

Var MatMul(const Var& a, const Var& b) {
  Tape* tape = SameTape(a, b);
  DMVI_CHECK_EQ(a.cols(), b.rows());
  const int ia = a.index(), ib = b.index();
  return tape->MakeNode(
      a.value().MatMul(b.value()),
      [ia, ib](Tape& t, const Matrix& gout) {
        if (t.needs_grad(ia)) t.grad(ia) += gout.MatMulTranspose(t.value(ib));
        if (t.needs_grad(ib)) t.grad(ib) += t.value(ia).TransposeMatMul(gout);
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, b));
}

Var Transpose(const Var& a) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  return tape->MakeNode(
      a.value().Transpose(),
      [ia](Tape& t, const Matrix& gout) {
        if (t.needs_grad(ia)) t.grad(ia) += gout.Transpose();
      },
      NeedsGrad(tape, a));
}

// ---- Shape manipulation ------------------------------------------------------

Var Reshape(const Var& a, int rows, int cols) {
  DMVI_CHECK(a.valid());
  DMVI_CHECK_EQ(a.value().size(), static_cast<int64_t>(rows) * cols);
  Tape* tape = a.tape();
  const int ia = a.index();
  const Matrix& av = a.value();
  Matrix out(rows, cols);
  std::copy(av.data(), av.data() + av.size(), out.data());
  return tape->MakeNode(
      std::move(out),
      [ia](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        const double* src = gout.data();
        double* dst = ga.data();
        for (int64_t i = 0; i < ga.size(); ++i) dst[i] += src[i];
      },
      NeedsGrad(tape, a));
}

Var SliceRows(const Var& a, int r0, int count) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  Matrix out = a.value().Block(r0, 0, count, a.cols());
  return tape->MakeNode(
      std::move(out),
      [ia, r0](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        for (int r = 0; r < gout.rows(); ++r) {
          double* dst = ga.row_ptr(r0 + r);
          const double* src = gout.row_ptr(r);
          for (int c = 0; c < gout.cols(); ++c) dst[c] += src[c];
        }
      },
      NeedsGrad(tape, a));
}

Var SliceCols(const Var& a, int c0, int count) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  Matrix out = a.value().Block(0, c0, a.rows(), count);
  return tape->MakeNode(
      std::move(out),
      [ia, c0](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        for (int r = 0; r < gout.rows(); ++r) {
          double* dst = ga.row_ptr(r) + c0;
          const double* src = gout.row_ptr(r);
          for (int c = 0; c < gout.cols(); ++c) dst[c] += src[c];
        }
      },
      NeedsGrad(tape, a));
}

Var ConcatCols(const std::vector<Var>& parts) {
  DMVI_CHECK(!parts.empty());
  Tape* tape = parts[0].tape();
  const int rows = parts[0].rows();
  int total_cols = 0;
  bool ng = false;
  std::vector<int> indices;
  std::vector<int> offsets;
  for (const Var& p : parts) {
    DMVI_CHECK_EQ(p.tape(), tape);
    DMVI_CHECK_EQ(p.rows(), rows);
    offsets.push_back(total_cols);
    total_cols += p.cols();
    indices.push_back(p.index());
    ng = ng || tape->needs_grad(p.index());
  }
  Matrix out(rows, total_cols);
  for (size_t i = 0; i < parts.size(); ++i) {
    out.SetBlock(0, offsets[i], parts[i].value());
  }
  return tape->MakeNode(
      std::move(out),
      [indices, offsets](Tape& t, const Matrix& gout) {
        for (size_t i = 0; i < indices.size(); ++i) {
          const int idx = indices[i];
          if (!t.needs_grad(idx)) continue;
          Matrix& g = t.grad(idx);
          for (int r = 0; r < g.rows(); ++r) {
            const double* src = gout.row_ptr(r) + offsets[i];
            double* dst = g.row_ptr(r);
            for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
          }
        }
      },
      ng);
}

Var ConcatRows(const std::vector<Var>& parts) {
  DMVI_CHECK(!parts.empty());
  Tape* tape = parts[0].tape();
  const int cols = parts[0].cols();
  int total_rows = 0;
  bool ng = false;
  std::vector<int> indices;
  std::vector<int> offsets;
  for (const Var& p : parts) {
    DMVI_CHECK_EQ(p.tape(), tape);
    DMVI_CHECK_EQ(p.cols(), cols);
    offsets.push_back(total_rows);
    total_rows += p.rows();
    indices.push_back(p.index());
    ng = ng || tape->needs_grad(p.index());
  }
  Matrix out(total_rows, cols);
  for (size_t i = 0; i < parts.size(); ++i) {
    out.SetBlock(offsets[i], 0, parts[i].value());
  }
  return tape->MakeNode(
      std::move(out),
      [indices, offsets](Tape& t, const Matrix& gout) {
        for (size_t i = 0; i < indices.size(); ++i) {
          const int idx = indices[i];
          if (!t.needs_grad(idx)) continue;
          Matrix& g = t.grad(idx);
          for (int r = 0; r < g.rows(); ++r) {
            const double* src = gout.row_ptr(offsets[i] + r);
            double* dst = g.row_ptr(r);
            for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
          }
        }
      },
      ng);
}

Var GatherRows(const Var& a, const std::vector<int>& indices) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  const Matrix& av = a.value();
  Matrix out(static_cast<int>(indices.size()), av.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    DMVI_CHECK_GE(indices[i], 0);
    DMVI_CHECK_LT(indices[i], av.rows());
    std::copy(av.row_ptr(indices[i]), av.row_ptr(indices[i]) + av.cols(),
              out.row_ptr(static_cast<int>(i)));
  }
  return tape->MakeNode(
      std::move(out),
      [ia, indices](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        for (size_t i = 0; i < indices.size(); ++i) {
          double* dst = ga.row_ptr(indices[i]);
          const double* src = gout.row_ptr(static_cast<int>(i));
          for (int c = 0; c < gout.cols(); ++c) dst[c] += src[c];
        }
      },
      NeedsGrad(tape, a));
}

// ---- Broadcasts ----------------------------------------------------------------

namespace {

Var RowBroadcastOp(const Var& a, const Var& row, bool subtract) {
  Tape* tape = SameTape(a, row);
  DMVI_CHECK_EQ(row.rows(), 1);
  DMVI_CHECK_EQ(row.cols(), a.cols());
  const int ia = a.index(), ir = row.index();
  const double sign = subtract ? -1.0 : 1.0;
  Matrix out = a.value();
  const Matrix& rv = row.value();
  for (int r = 0; r < out.rows(); ++r) {
    double* p = out.row_ptr(r);
    for (int c = 0; c < out.cols(); ++c) p[c] += sign * rv(0, c);
  }
  return tape->MakeNode(
      std::move(out),
      [ia, ir, sign](Tape& t, const Matrix& gout) {
        Accumulate(t, ia, gout);
        if (t.needs_grad(ir)) {
          Matrix& gr = t.grad(ir);
          for (int r = 0; r < gout.rows(); ++r) {
            const double* src = gout.row_ptr(r);
            for (int c = 0; c < gout.cols(); ++c) gr(0, c) += sign * src[c];
          }
        }
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, row));
}

}  // namespace

Var AddRowVector(const Var& a, const Var& row) {
  return RowBroadcastOp(a, row, /*subtract=*/false);
}

Var SubRowVector(const Var& a, const Var& row) {
  return RowBroadcastOp(a, row, /*subtract=*/true);
}

Var MulRowVector(const Var& a, const Var& row) {
  Tape* tape = SameTape(a, row);
  DMVI_CHECK_EQ(row.rows(), 1);
  DMVI_CHECK_EQ(row.cols(), a.cols());
  const int ia = a.index(), ir = row.index();
  Matrix out = a.value();
  const Matrix& rv = row.value();
  for (int r = 0; r < out.rows(); ++r) {
    double* p = out.row_ptr(r);
    for (int c = 0; c < out.cols(); ++c) p[c] *= rv(0, c);
  }
  return tape->MakeNode(
      std::move(out),
      [ia, ir](Tape& t, const Matrix& gout) {
        const Matrix& av = t.value(ia);
        const Matrix& rv = t.value(ir);
        if (t.needs_grad(ia)) {
          Matrix& ga = t.grad(ia);
          for (int r = 0; r < gout.rows(); ++r) {
            const double* src = gout.row_ptr(r);
            double* dst = ga.row_ptr(r);
            for (int c = 0; c < gout.cols(); ++c) dst[c] += src[c] * rv(0, c);
          }
        }
        if (t.needs_grad(ir)) {
          Matrix& gr = t.grad(ir);
          for (int r = 0; r < gout.rows(); ++r) {
            const double* src = gout.row_ptr(r);
            const double* arow = av.row_ptr(r);
            for (int c = 0; c < gout.cols(); ++c) gr(0, c) += src[c] * arow[c];
          }
        }
      },
      NeedsGrad(tape, a) || NeedsGrad(tape, row));
}

Var BroadcastScalar(const Var& a, int rows, int cols) {
  DMVI_CHECK(a.valid());
  DMVI_CHECK_EQ(a.rows(), 1);
  DMVI_CHECK_EQ(a.cols(), 1);
  Tape* tape = a.tape();
  const int ia = a.index();
  Matrix out(rows, cols, a.value()(0, 0));
  return tape->MakeNode(
      std::move(out),
      [ia](Tape& t, const Matrix& gout) {
        if (t.needs_grad(ia)) t.grad(ia)(0, 0) += gout.Sum();
      },
      NeedsGrad(tape, a));
}

// ---- Reductions -------------------------------------------------------------------

Var Sum(const Var& a) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  Matrix out(1, 1);
  out(0, 0) = a.value().Sum();
  return tape->MakeNode(
      std::move(out),
      [ia](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        const double g = gout(0, 0);
        double* p = ga.data();
        for (int64_t i = 0; i < ga.size(); ++i) p[i] += g;
      },
      NeedsGrad(tape, a));
}

Var Mean(const Var& a) {
  DMVI_CHECK(a.valid());
  return Scale(Sum(a), 1.0 / static_cast<double>(a.value().size()));
}

Var RowSum(const Var& a) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  const Matrix& av = a.value();
  Matrix out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    const double* p = av.row_ptr(r);
    double acc = 0.0;
    for (int c = 0; c < av.cols(); ++c) acc += p[c];
    out(r, 0) = acc;
  }
  return tape->MakeNode(
      std::move(out),
      [ia](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        for (int r = 0; r < ga.rows(); ++r) {
          double* dst = ga.row_ptr(r);
          const double g = gout(r, 0);
          for (int c = 0; c < ga.cols(); ++c) dst[c] += g;
        }
      },
      NeedsGrad(tape, a));
}

Var ColSum(const Var& a) {
  DMVI_CHECK(a.valid());
  Tape* tape = a.tape();
  const int ia = a.index();
  const Matrix& av = a.value();
  Matrix out(1, av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    const double* p = av.row_ptr(r);
    for (int c = 0; c < av.cols(); ++c) out(0, c) += p[c];
  }
  return tape->MakeNode(
      std::move(out),
      [ia](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        Matrix& ga = t.grad(ia);
        for (int r = 0; r < ga.rows(); ++r) {
          double* dst = ga.row_ptr(r);
          for (int c = 0; c < ga.cols(); ++c) dst[c] += gout(0, c);
        }
      },
      NeedsGrad(tape, a));
}

// ---- Softmax -----------------------------------------------------------------------

Var SoftmaxRows(const Var& a) {
  Matrix all_avail(a.rows(), a.cols(), 1.0);
  return MaskedSoftmaxRows(a, all_avail);
}

Var MaskedSoftmaxRows(const Var& a, const Matrix& avail) {
  DMVI_CHECK(a.valid());
  DMVI_CHECK_EQ(a.rows(), avail.rows());
  DMVI_CHECK_EQ(a.cols(), avail.cols());
  Tape* tape = a.tape();
  const int ia = a.index();
  const Matrix& av = a.value();
  Matrix out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    double maxv = -1e300;
    bool any = false;
    for (int c = 0; c < av.cols(); ++c) {
      if (avail(r, c) != 0.0) {
        maxv = std::max(maxv, av(r, c));
        any = true;
      }
    }
    if (!any) continue;  // Row stays all-zero.
    double denom = 0.0;
    for (int c = 0; c < av.cols(); ++c) {
      if (avail(r, c) != 0.0) {
        out(r, c) = std::exp(av(r, c) - maxv);
        denom += out(r, c);
      }
    }
    for (int c = 0; c < av.cols(); ++c) out(r, c) /= denom;
  }
  const int iout = tape->num_nodes();
  return tape->MakeNode(
      std::move(out),
      [ia, iout, avail](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ia)) return;
        const Matrix& y = t.value(iout);
        Matrix& ga = t.grad(ia);
        // dL/dx_rc = y_rc * (g_rc - sum_k g_rk y_rk) on available entries.
        for (int r = 0; r < y.rows(); ++r) {
          double dot = 0.0;
          for (int c = 0; c < y.cols(); ++c) dot += gout(r, c) * y(r, c);
          double* dst = ga.row_ptr(r);
          for (int c = 0; c < y.cols(); ++c) {
            if (avail(r, c) != 0.0) {
              dst[c] += y(r, c) * (gout(r, c) - dot);
            }
          }
        }
      },
      NeedsGrad(tape, a));
}

// ---- Losses ----------------------------------------------------------------------------

Var WeightedMseLoss(const Var& pred, const Matrix& target, const Matrix& weight) {
  DMVI_CHECK(pred.valid());
  DMVI_CHECK_EQ(pred.rows(), target.rows());
  DMVI_CHECK_EQ(pred.cols(), target.cols());
  DMVI_CHECK_EQ(pred.rows(), weight.rows());
  DMVI_CHECK_EQ(pred.cols(), weight.cols());
  Tape* tape = pred.tape();
  const int ip = pred.index();
  const Matrix& pv = pred.value();
  double wsum = std::max(weight.Sum(), 1.0);
  double loss = 0.0;
  for (int r = 0; r < pv.rows(); ++r) {
    for (int c = 0; c < pv.cols(); ++c) {
      const double d = pv(r, c) - target(r, c);
      loss += weight(r, c) * d * d;
    }
  }
  Matrix out(1, 1);
  out(0, 0) = loss / wsum;
  return tape->MakeNode(
      std::move(out),
      [ip, target, weight, wsum](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ip)) return;
        const Matrix& pv = t.value(ip);
        Matrix& gp = t.grad(ip);
        const double g = gout(0, 0);
        for (int r = 0; r < pv.rows(); ++r) {
          for (int c = 0; c < pv.cols(); ++c) {
            gp(r, c) +=
                g * 2.0 * weight(r, c) * (pv(r, c) - target(r, c)) / wsum;
          }
        }
      },
      NeedsGrad(tape, pred));
}

Var WeightedMaeLoss(const Var& pred, const Matrix& target, const Matrix& weight) {
  DMVI_CHECK(pred.valid());
  DMVI_CHECK_EQ(pred.rows(), target.rows());
  DMVI_CHECK_EQ(pred.cols(), target.cols());
  Tape* tape = pred.tape();
  const int ip = pred.index();
  const Matrix& pv = pred.value();
  double wsum = std::max(weight.Sum(), 1.0);
  double loss = 0.0;
  for (int r = 0; r < pv.rows(); ++r) {
    for (int c = 0; c < pv.cols(); ++c) {
      loss += weight(r, c) * std::fabs(pv(r, c) - target(r, c));
    }
  }
  Matrix out(1, 1);
  out(0, 0) = loss / wsum;
  return tape->MakeNode(
      std::move(out),
      [ip, target, weight, wsum](Tape& t, const Matrix& gout) {
        if (!t.needs_grad(ip)) return;
        const Matrix& pv = t.value(ip);
        Matrix& gp = t.grad(ip);
        const double g = gout(0, 0);
        for (int r = 0; r < pv.rows(); ++r) {
          for (int c = 0; c < pv.cols(); ++c) {
            const double d = pv(r, c) - target(r, c);
            const double sign = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
            gp(r, c) += g * weight(r, c) * sign / wsum;
          }
        }
      },
      NeedsGrad(tape, pred));
}

// ---- Testing utilities --------------------------------------------------------------------

std::vector<Matrix> NumericalGradient(
    const std::function<Var(Tape&, const std::vector<Var>&)>& f,
    const std::vector<Matrix>& inputs, double eps) {
  std::vector<Matrix> grads;
  auto eval = [&](const std::vector<Matrix>& points) {
    Tape tape;
    std::vector<Var> vars;
    vars.reserve(points.size());
    for (const Matrix& m : points) vars.push_back(tape.Leaf(m));
    Var loss = f(tape, vars);
    return loss.scalar();
  };
  for (size_t i = 0; i < inputs.size(); ++i) {
    Matrix g(inputs[i].rows(), inputs[i].cols());
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) {
        std::vector<Matrix> plus = inputs;
        std::vector<Matrix> minus = inputs;
        plus[i](r, c) += eps;
        minus[i](r, c) -= eps;
        g(r, c) = (eval(plus) - eval(minus)) / (2.0 * eps);
      }
    }
    grads.push_back(std::move(g));
  }
  return grads;
}

std::vector<Matrix> AnalyticGradient(
    const std::function<Var(Tape&, const std::vector<Var>&)>& f,
    const std::vector<Matrix>& inputs) {
  Tape tape;
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (const Matrix& m : inputs) vars.push_back(tape.Leaf(m));
  Var loss = f(tape, vars);
  tape.Backward(loss);
  std::vector<Matrix> grads;
  grads.reserve(vars.size());
  for (const Var& v : vars) grads.push_back(v.grad());
  return grads;
}

}  // namespace ad
}  // namespace deepmvi
