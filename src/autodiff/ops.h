#ifndef DEEPMVI_AUTODIFF_OPS_H_
#define DEEPMVI_AUTODIFF_OPS_H_

#include <vector>

#include "autodiff/tape.h"

namespace deepmvi {
namespace ad {

// All operations create a new node on the inputs' tape and return its
// handle. Shapes are checked with DMVI_CHECK. Gradient formulas follow the
// standard matrix-calculus conventions (dL/dX has the shape of X).

// ---- Elementwise arithmetic ------------------------------------------------

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
/// Elementwise (Hadamard) product.
Var Mul(const Var& a, const Var& b);
/// Elementwise division a / b.
Var Div(const Var& a, const Var& b);
Var Neg(const Var& a);
Var Scale(const Var& a, double s);
Var AddScalar(const Var& a, double s);
/// Elementwise product with a constant matrix (e.g., an availability mask).
Var MulConst(const Var& a, const Matrix& m);

// ---- Elementwise nonlinearities -------------------------------------------

Var Relu(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Exp(const Var& a);
/// Natural log; input must be strictly positive.
Var Log(const Var& a);
Var Square(const Var& a);
/// sqrt(a + eps), elementwise.
Var Sqrt(const Var& a, double eps = 0.0);
Var Abs(const Var& a);

// ---- Linear algebra --------------------------------------------------------

Var MatMul(const Var& a, const Var& b);
Var Transpose(const Var& a);

// ---- Shape manipulation ----------------------------------------------------

/// Row-major reshape preserving element order.
Var Reshape(const Var& a, int rows, int cols);
Var SliceRows(const Var& a, int r0, int count);
Var SliceCols(const Var& a, int c0, int count);
/// Horizontal concatenation (same row count).
Var ConcatCols(const std::vector<Var>& parts);
/// Vertical concatenation (same column count).
Var ConcatRows(const std::vector<Var>& parts);
/// Selects rows by index; duplicate indices accumulate gradient
/// (embedding-lookup semantics).
Var GatherRows(const Var& a, const std::vector<int>& indices);

// ---- Broadcasts -------------------------------------------------------------

/// Adds a 1 x cols row vector to every row of a.
Var AddRowVector(const Var& a, const Var& row);
/// Subtracts a 1 x cols row vector from every row of a.
Var SubRowVector(const Var& a, const Var& row);
/// Multiplies every row of a elementwise by a 1 x cols row vector.
Var MulRowVector(const Var& a, const Var& row);
/// Tiles a 1x1 scalar node to rows x cols.
Var BroadcastScalar(const Var& a, int rows, int cols);

// ---- Reductions --------------------------------------------------------------

/// Sum of all entries -> 1x1.
Var Sum(const Var& a);
/// Mean of all entries -> 1x1.
Var Mean(const Var& a);
/// Per-row sums -> rows x 1.
Var RowSum(const Var& a);
/// Per-column sums -> 1 x cols.
Var ColSum(const Var& a);

// ---- Softmax ------------------------------------------------------------------

/// Row-wise softmax.
Var SoftmaxRows(const Var& a);

/// Row-wise softmax restricted to entries where `avail`(r,c) != 0.
/// Unavailable entries get weight exactly 0. Rows with no available entry
/// produce all-zero weights (callers must handle the degenerate case).
Var MaskedSoftmaxRows(const Var& a, const Matrix& avail);

// ---- Losses ----------------------------------------------------------------------

/// Weighted mean squared error: sum(w * (pred - target)^2) / max(sum(w), 1).
Var WeightedMseLoss(const Var& pred, const Matrix& target, const Matrix& weight);

/// Weighted mean absolute error (smooth near zero is NOT applied; the
/// subgradient at 0 is taken as 0).
Var WeightedMaeLoss(const Var& pred, const Matrix& target, const Matrix& weight);

// ---- Testing utilities --------------------------------------------------------------

/// Central finite-difference gradient of `f` with respect to `inputs`
/// evaluated at the given points. `f` receives a fresh tape and leaf vars
/// (one per input matrix) and must return a scalar Var on that tape.
/// Used by the gradient-check tests.
std::vector<Matrix> NumericalGradient(
    const std::function<Var(Tape&, const std::vector<Var>&)>& f,
    const std::vector<Matrix>& inputs, double eps = 1e-5);

/// Analytic gradients of the same function via the tape.
std::vector<Matrix> AnalyticGradient(
    const std::function<Var(Tape&, const std::vector<Var>&)>& f,
    const std::vector<Matrix>& inputs);

}  // namespace ad
}  // namespace deepmvi

#endif  // DEEPMVI_AUTODIFF_OPS_H_
