#include "autodiff/tape.h"

namespace deepmvi {
namespace ad {

const Matrix& Var::value() const {
  DMVI_CHECK(valid());
  return tape_->value(index_);
}

const Matrix& Var::grad() const {
  DMVI_CHECK(valid());
  return tape_->grad_or_zero(index_);
}

double Var::scalar() const {
  const Matrix& v = value();
  DMVI_CHECK_EQ(v.rows(), 1);
  DMVI_CHECK_EQ(v.cols(), 1);
  return v(0, 0);
}

Var Tape::Leaf(Matrix value) {
  Node node;
  node.value = std::move(value);
  node.needs_grad = true;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::LeafFor(const void* key, const Matrix& value) {
  auto it = keyed_leaves_.find(key);
  if (it != keyed_leaves_.end()) return Var(this, it->second);
  Var leaf = Leaf(value);
  keyed_leaves_.emplace(key, leaf.index());
  return leaf;
}

int Tape::LeafIndexFor(const void* key) const {
  auto it = keyed_leaves_.find(key);
  return it == keyed_leaves_.end() ? -1 : it->second;
}

Var Tape::Constant(Matrix value) {
  Node node;
  node.value = std::move(value);
  node.needs_grad = false;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::MakeNode(Matrix value, BackwardFn backward, bool needs_grad) {
  Node node;
  node.value = std::move(value);
  node.needs_grad = needs_grad;
  if (needs_grad) node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

void Tape::Backward(const Var& loss) {
  DMVI_CHECK(loss.valid());
  DMVI_CHECK_EQ(loss.tape(), this);
  DMVI_CHECK_EQ(loss.value().rows(), 1);
  DMVI_CHECK_EQ(loss.value().cols(), 1);
  grad(loss.index())(0, 0) = 1.0;
  for (int i = loss.index(); i >= 0; --i) {
    Node& node = nodes_[i];
    if (!node.needs_grad || !node.backward) continue;
    if (!node.grad_allocated) continue;  // No gradient flowed here.
    node.backward(*this, node.grad);
  }
}

void Tape::Reset() {
  nodes_.clear();
  keyed_leaves_.clear();
}

Matrix& Tape::grad(int index) {
  Node& node = nodes_[index];
  if (!node.grad_allocated) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
    node.grad_allocated = true;
  }
  return node.grad;
}

const Matrix* Tape::AllocatedGrad(int index) const {
  const Node& node = nodes_[index];
  return node.grad_allocated ? &node.grad : nullptr;
}

const Matrix& Tape::grad_or_zero(int index) const {
  const Node& node = nodes_[index];
  if (node.grad_allocated) return node.grad;
  if (empty_grad_.rows() != node.value.rows() ||
      empty_grad_.cols() != node.value.cols()) {
    // Lazily keep a zero matrix of the right shape. const_cast is confined
    // to this cache; callers only read.
    const_cast<Tape*>(this)->empty_grad_ =
        Matrix(node.value.rows(), node.value.cols());
  }
  return empty_grad_;
}

}  // namespace ad
}  // namespace deepmvi
