#ifndef DEEPMVI_AUTODIFF_TAPE_H_
#define DEEPMVI_AUTODIFF_TAPE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"

namespace deepmvi {
namespace ad {

class Tape;

/// Lightweight handle to a matrix-valued node on a Tape.
///
/// Vars are created by Tape::Leaf / Tape::Constant and by the operator
/// functions in ops.h. A Var is only valid while its Tape is alive and has
/// not been Reset.
class Var {
 public:
  Var() : tape_(nullptr), index_(-1) {}
  Var(Tape* tape, int index) : tape_(tape), index_(index) {}

  bool valid() const { return tape_ != nullptr; }
  Tape* tape() const { return tape_; }
  int index() const { return index_; }

  const Matrix& value() const;
  const Matrix& grad() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Value of a 1x1 node.
  double scalar() const;

 private:
  Tape* tape_;
  int index_;
};

/// Reverse-mode automatic differentiation tape over matrix-valued nodes.
///
/// Usage: create leaves (parameters / inputs), build the computation with
/// the ops in ops.h, then call Backward on a scalar (1x1) node. Gradients
/// accumulate into each node's grad matrix; parameter gradients are read
/// back through the Var handles. Reset() clears the graph between steps
/// while keeping allocated capacity.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Creates a differentiable leaf (e.g., a parameter or input).
  Var Leaf(Matrix value);

  /// Creates (or returns the previously created) leaf for `key`. A
  /// parameter shared between submodules materializes once per tape so its
  /// gradient accumulates correctly; the registry lives on the tape rather
  /// than on the parameter so that several tapes can hold the same
  /// parameter concurrently (one tape per training worker slot).
  Var LeafFor(const void* key, const Matrix& value);

  /// Node index of the keyed leaf, or -1 when `key` never materialized on
  /// this tape (since the last Reset).
  int LeafIndexFor(const void* key) const;

  /// Creates a non-differentiable constant node. Backward never propagates
  /// into constants.
  Var Constant(Matrix value);

  /// Runs reverse-mode accumulation from `loss` (must be 1x1). The loss
  /// seed gradient is 1. May be called once per graph.
  void Backward(const Var& loss);

  /// Drops all nodes. Invalidates every Var created since construction or
  /// the previous Reset.
  void Reset();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // ---- Internal API used by ops.h ---------------------------------------

  /// Backward closure: receives the tape and the accumulated gradient of
  /// the node's own output, and must add contributions into the gradients
  /// of its input nodes.
  using BackwardFn = std::function<void(Tape&, const Matrix& gout)>;

  /// Creates an interior node with the given forward value and backward
  /// closure. `needs_grad` should be true when any input requires grad.
  Var MakeNode(Matrix value, BackwardFn backward, bool needs_grad);

  const Matrix& value(int index) const { return nodes_[index].value; }
  Matrix& mutable_value(int index) { return nodes_[index].value; }
  bool needs_grad(int index) const { return nodes_[index].needs_grad; }

  /// Gradient accessor; allocates a zero matrix on first touch.
  Matrix& grad(int index);
  const Matrix& grad_or_zero(int index) const;

  /// The node's gradient if Backward allocated one, else nullptr. Unlike
  /// grad_or_zero this never touches the shared zero-matrix cache, so the
  /// returned pointer stays valid (and correctly shaped) across further
  /// gradient queries — callers that collect pointers for several nodes
  /// must use this.
  const Matrix* AllocatedGrad(int index) const;

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    bool grad_allocated = false;
    bool needs_grad = false;
    BackwardFn backward;  // Empty for leaves/constants.
  };

  std::vector<Node> nodes_;
  std::unordered_map<const void*, int> keyed_leaves_;
  Matrix empty_grad_;
};

}  // namespace ad
}  // namespace deepmvi

#endif  // DEEPMVI_AUTODIFF_TAPE_H_
