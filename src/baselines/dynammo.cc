#include "baselines/dynammo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/simple.h"
#include "common/rng.h"
#include "linalg/solvers.h"

namespace deepmvi {
namespace internal_dynammo {

std::vector<std::vector<int>> GroupSeries(const Matrix& interpolated,
                                          int group_size) {
  const int n = interpolated.rows();
  std::vector<bool> assigned(n, false);
  std::vector<std::vector<int>> groups;
  for (int seed = 0; seed < n; ++seed) {
    if (assigned[seed]) continue;
    std::vector<int> group = {seed};
    assigned[seed] = true;
    // Rank unassigned peers by |correlation| with the seed.
    std::vector<std::pair<double, int>> ranked;
    for (int j = 0; j < n; ++j) {
      if (assigned[j]) continue;
      ranked.emplace_back(
          std::fabs(PearsonCorrelation(interpolated.Row(seed),
                                       interpolated.Row(j))),
          j);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [corr, j] : ranked) {
      if (static_cast<int>(group.size()) >= group_size) break;
      group.push_back(j);
      assigned[j] = true;
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace internal_dynammo

namespace {

/// Symmetrizes and adds jitter so downstream inversions stay stable.
Matrix Stabilize(const Matrix& m, double jitter = 1e-8) {
  Matrix out = (m + m.Transpose()) * 0.5;
  for (int i = 0; i < out.rows(); ++i) out(i, i) += jitter;
  return out;
}

struct LdsParams {
  Matrix a;    // h x h transition
  Matrix c;    // m x h emission
  Matrix q;    // h x h process noise
  std::vector<double> r;  // m observation noise (diagonal)
  Matrix mu0;  // h x 1
  Matrix v0;   // h x h
};

struct SmoothedState {
  std::vector<Matrix> mean;       // z_t, h x 1
  std::vector<Matrix> cov;        // P_t, h x h
  std::vector<Matrix> cross_cov;  // E[z_t z_{t+1}^T] - mean outer, size T-1
};

/// Kalman filter + RTS smoother over a group's observations handling
/// missing entries by conditioning only on the observed components.
SmoothedState KalmanSmooth(const LdsParams& p, const Matrix& x,
                           const Mask& mask, const std::vector<int>& rows) {
  const int t_len = x.cols();
  const int h = p.a.rows();
  const int m = static_cast<int>(rows.size());

  std::vector<Matrix> filt_mean(t_len), filt_cov(t_len);
  std::vector<Matrix> pred_mean(t_len), pred_cov(t_len);

  Matrix z = p.mu0;
  Matrix v = p.v0;
  for (int t = 0; t < t_len; ++t) {
    if (t == 0) {
      pred_mean[t] = p.mu0;
      pred_cov[t] = p.v0;
    } else {
      pred_mean[t] = p.a.MatMul(filt_mean[t - 1]);
      pred_cov[t] = Stabilize(p.a.MatMul(filt_cov[t - 1]).MatMulTranspose(p.a) + p.q);
    }
    // Observed components at t.
    std::vector<int> obs;
    for (int j = 0; j < m; ++j) {
      if (mask.available(rows[j], t)) obs.push_back(j);
    }
    if (obs.empty()) {
      filt_mean[t] = pred_mean[t];
      filt_cov[t] = pred_cov[t];
      continue;
    }
    const int mo = static_cast<int>(obs.size());
    Matrix c_obs(mo, h);
    Matrix resid(mo, 1);
    for (int a = 0; a < mo; ++a) {
      const int j = obs[a];
      for (int b = 0; b < h; ++b) c_obs(a, b) = p.c(j, b);
      double pred = 0.0;
      for (int b = 0; b < h; ++b) pred += p.c(j, b) * pred_mean[t](b, 0);
      resid(a, 0) = x(rows[j], t) - pred;
    }
    Matrix s = c_obs.MatMul(pred_cov[t]).MatMulTranspose(c_obs);
    for (int a = 0; a < mo; ++a) s(a, a) += p.r[obs[a]];
    s = Stabilize(s);
    // K = P C^T S^{-1}  via solving S K^T = C P.
    Matrix kt = SolveSpd(s, c_obs.MatMul(pred_cov[t]));  // mo x h
    Matrix k = kt.Transpose();                            // h x mo
    filt_mean[t] = pred_mean[t] + k.MatMul(resid);
    filt_cov[t] =
        Stabilize(pred_cov[t] - k.MatMul(c_obs).MatMul(pred_cov[t]));
  }

  // RTS backward pass.
  SmoothedState out;
  out.mean.resize(t_len);
  out.cov.resize(t_len);
  out.cross_cov.resize(std::max(t_len - 1, 0));
  out.mean[t_len - 1] = filt_mean[t_len - 1];
  out.cov[t_len - 1] = filt_cov[t_len - 1];
  for (int t = t_len - 2; t >= 0; --t) {
    // J = P_t A^T (P_pred_{t+1})^{-1}, via solving P_pred J^T = A P_t.
    Matrix jt = SolveSpd(Stabilize(pred_cov[t + 1]),
                         p.a.MatMul(filt_cov[t]));  // h x h
    Matrix j = jt.Transpose();
    out.mean[t] =
        filt_mean[t] + j.MatMul(out.mean[t + 1] - pred_mean[t + 1]);
    out.cov[t] = Stabilize(
        filt_cov[t] +
        j.MatMul(out.cov[t + 1] - pred_cov[t + 1]).MatMulTranspose(j));
    // E[z_t z_{t+1}^T] second central moment: J * P_s_{t+1}.
    out.cross_cov[t] = j.MatMul(out.cov[t + 1]);
  }
  return out;
}

}  // namespace

Matrix DynammoImputer::Impute(const DataTensor& data, const Mask& mask) {
  const Matrix& x = data.values();
  const int t_len = x.cols();
  Matrix interpolated = InterpolateMissing(x, mask);
  auto groups = internal_dynammo::GroupSeries(interpolated, config_.group_size);

  Rng rng(config_.seed);
  Matrix out = x;

  for (const auto& rows : groups) {
    const int m = static_cast<int>(rows.size());
    const int h = std::max(1, std::min(config_.hidden_dim, m * 2));

    LdsParams p;
    p.a = Matrix::Identity(h) * 0.98 +
          Matrix::RandomGaussian(h, h, rng, 0.0, 0.01);
    p.c = Matrix::RandomGaussian(m, h, rng, 0.0, 0.5);
    p.q = Matrix::Identity(h) * 0.1;
    p.r.assign(m, 0.1);
    p.mu0 = Matrix(h, 1);
    p.v0 = Matrix::Identity(h);

    SmoothedState s;
    for (int iter = 0; iter < config_.em_iterations; ++iter) {
      // ---- E-step -----------------------------------------------------
      s = KalmanSmooth(p, x, mask, rows);

      // Sufficient statistics.
      Matrix s00(h, h), s10(h, h), s11(h, h), szz(h, h);
      for (int t = 0; t < t_len; ++t) {
        Matrix ezz = s.cov[t] + s.mean[t].MatMulTranspose(s.mean[t]);
        szz += ezz;
        if (t > 0) s11 += ezz;
        if (t < t_len - 1) {
          Matrix ezz_prev = s.cov[t] + s.mean[t].MatMulTranspose(s.mean[t]);
          s00 += ezz_prev;
          // E[z_{t+1} z_t^T] = (cross)^T + mean_{t+1} mean_t^T.
          s10 += s.cross_cov[t].Transpose() +
                 s.mean[t + 1].MatMulTranspose(s.mean[t]);
        }
      }

      // ---- M-step -----------------------------------------------------
      // A = S10 * S00^{-1} (solve S00 A^T = S10^T).
      Matrix at = SolveSpd(Stabilize(s00, 1e-6), s10.Transpose());
      p.a = at.Transpose();
      // Q = (S11 - A S10^T) / (T-1).
      if (t_len > 1) {
        p.q = Stabilize((s11 - p.a.MatMul(s10.Transpose())) *
                            (1.0 / (t_len - 1)),
                        1e-6);
      }
      // C: rows solved independently using expected x (observed values,
      // smoothed expectation where missing).
      Matrix sxz(m, h);
      for (int t = 0; t < t_len; ++t) {
        for (int j = 0; j < m; ++j) {
          double xv;
          if (mask.available(rows[j], t)) {
            xv = x(rows[j], t);
          } else {
            xv = 0.0;
            for (int b = 0; b < h; ++b) xv += p.c(j, b) * s.mean[t](b, 0);
          }
          for (int b = 0; b < h; ++b) sxz(j, b) += xv * s.mean[t](b, 0);
        }
      }
      Matrix ct = SolveSpd(Stabilize(szz, 1e-6), sxz.Transpose());
      Matrix c_new = ct.Transpose();
      // R (diagonal): average squared emission residual on observed cells.
      for (int j = 0; j < m; ++j) {
        double acc = 0.0;
        int count = 0;
        for (int t = 0; t < t_len; ++t) {
          if (!mask.available(rows[j], t)) continue;
          double pred = 0.0;
          for (int b = 0; b < h; ++b) pred += c_new(j, b) * s.mean[t](b, 0);
          const double d = x(rows[j], t) - pred;
          // Include the variance of the prediction, c_j P c_j^T.
          double cvar = 0.0;
          for (int a = 0; a < h; ++a) {
            for (int b = 0; b < h; ++b) {
              cvar += c_new(j, a) * s.cov[t](a, b) * c_new(j, b);
            }
          }
          acc += d * d + cvar;
          ++count;
        }
        if (count > 0) p.r[j] = std::max(acc / count, 1e-6);
      }
      p.c = std::move(c_new);
      p.mu0 = s.mean[0];
      p.v0 = Stabilize(s.cov[0], 1e-6);
    }

    // ---- Impute from the final smoothed states. -----------------------
    for (int t = 0; t < t_len; ++t) {
      for (int j = 0; j < m; ++j) {
        if (mask.missing(rows[j], t)) {
          double pred = 0.0;
          for (int b = 0; b < p.a.rows(); ++b) {
            pred += p.c(j, b) * s.mean[t](b, 0);
          }
          out(rows[j], t) = pred;
        }
      }
    }
  }
  return out;
}

}  // namespace deepmvi
