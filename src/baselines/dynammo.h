#ifndef DEEPMVI_BASELINES_DYNAMMO_H_
#define DEEPMVI_BASELINES_DYNAMMO_H_

#include <string>
#include <vector>

#include "data/imputer.h"

namespace deepmvi {

/// DynaMMO (Li, McCann, Pollard, Faloutsos, KDD 2009): groups co-evolving
/// series by correlation, fits a linear dynamical system per group with EM
/// (Kalman filter + RTS smoother handling missing observations), and
/// imputes the missing cells from the smoothed latent states.
///
/// Model per group of m series:  z_{t+1} = A z_t + w,  x_t = C z_t + v
/// with hidden dimension h. The E-step runs the standard Kalman/RTS
/// recursions using only the observed components of each x_t; the M-step
/// uses the closed-form complete-data updates with missing entries filled
/// by their smoothed expectations.
class DynammoImputer : public Imputer {
 public:
  struct Config {
    /// Maximum series per group.
    int group_size = 4;
    /// Latent state dimension.
    int hidden_dim = 4;
    int em_iterations = 10;
    uint64_t seed = 17;
  };

  DynammoImputer() = default;
  explicit DynammoImputer(Config config) : config_(config) {}
  std::string name() const override { return "DynaMMO"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

namespace internal_dynammo {

/// Greedy correlation grouping: repeatedly seeds a group with the first
/// unassigned series and adds its most correlated unassigned peers until
/// `group_size` is reached. Exposed for testing.
std::vector<std::vector<int>> GroupSeries(const Matrix& interpolated,
                                          int group_size);

}  // namespace internal_dynammo
}  // namespace deepmvi

#endif  // DEEPMVI_BASELINES_DYNAMMO_H_
