#include "baselines/matrix_completion.h"

#include <algorithm>
#include <cmath>

#include "baselines/simple.h"
#include "linalg/centroid.h"
#include "linalg/svd.h"

namespace deepmvi {
namespace {

/// Normalized Frobenius distance restricted to the missing cells.
double MissingCellChange(const Matrix& a, const Matrix& b, const Mask& mask) {
  double diff2 = 0.0, norm2 = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int t = 0; t < a.cols(); ++t) {
      if (mask.missing(r, t)) {
        const double d = a(r, t) - b(r, t);
        diff2 += d * d;
        norm2 += b(r, t) * b(r, t);
      }
    }
  }
  return std::sqrt(diff2) / std::max(std::sqrt(norm2), 1e-12);
}

/// Overwrites the missing cells of `current` with those of `reconstruction`.
void RefreshMissing(Matrix& current, const Matrix& reconstruction,
                    const Mask& mask) {
  for (int r = 0; r < current.rows(); ++r) {
    for (int t = 0; t < current.cols(); ++t) {
      if (mask.missing(r, t)) current(r, t) = reconstruction(r, t);
    }
  }
}

int ClampRank(int rank, const Matrix& x) {
  return std::clamp(rank, 1, std::min(x.rows(), x.cols()));
}

}  // namespace

Matrix SvdImputer::Impute(const DataTensor& data, const Mask& mask) {
  Matrix x = InterpolateMissing(data.values(), mask);
  const int rank = ClampRank(config_.rank, x);
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    Matrix reconstruction = TruncatedSvdReconstruct(x, rank);
    Matrix next = x;
    RefreshMissing(next, reconstruction, mask);
    const double change = MissingCellChange(next, x, mask);
    x = std::move(next);
    if (change < config_.tolerance) break;
  }
  return x;
}

Matrix SoftImputer::Impute(const DataTensor& data, const Mask& mask) {
  Matrix x = InterpolateMissing(data.values(), mask);
  double threshold = -1.0;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    SvdResult svd = JacobiSvd(x);
    if (threshold < 0.0) {
      threshold = config_.shrinkage_fraction * svd.singular_values[0];
    }
    // Soft-threshold the spectrum.
    SvdResult shrunk = svd;
    for (auto& s : shrunk.singular_values) s = std::max(s - threshold, 0.0);
    Matrix reconstruction = shrunk.Reconstruct();
    Matrix next = x;
    RefreshMissing(next, reconstruction, mask);
    const double change = MissingCellChange(next, x, mask);
    x = std::move(next);
    if (change < config_.tolerance) break;
  }
  return x;
}

Matrix SvtImputer::Impute(const DataTensor& data, const Mask& mask) {
  const Matrix& observed = data.values();
  // Y accumulates the scaled residual on observed entries; X is the
  // current thresholded reconstruction.
  Matrix y(observed.rows(), observed.cols());
  for (int r = 0; r < y.rows(); ++r) {
    for (int t = 0; t < y.cols(); ++t) {
      if (mask.available(r, t)) y(r, t) = observed(r, t);
    }
  }
  double threshold = -1.0;
  Matrix x = y;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    SvdResult svd = JacobiSvd(y);
    if (threshold < 0.0) {
      threshold = config_.threshold_fraction * svd.singular_values[0];
    }
    SvdResult shrunk = svd;
    for (auto& s : shrunk.singular_values) s = std::max(s - threshold, 0.0);
    Matrix next = shrunk.Reconstruct();
    const double change = MissingCellChange(next, x, mask);
    x = std::move(next);
    if (change < config_.tolerance && iter > 0) break;
    // Gradient step on the observed residual.
    for (int r = 0; r < y.rows(); ++r) {
      for (int t = 0; t < y.cols(); ++t) {
        if (mask.available(r, t)) {
          y(r, t) += config_.step_size * (observed(r, t) - x(r, t));
        }
      }
    }
  }
  // Keep observed entries exact.
  Matrix out = observed;
  RefreshMissing(out, x, mask);
  return out;
}

Matrix CdRecImputer::Impute(const DataTensor& data, const Mask& mask) {
  Matrix x = InterpolateMissing(data.values(), mask);
  const int rank = ClampRank(config_.rank, x);
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    CentroidResult cd = CentroidDecomposition(x, rank);
    Matrix reconstruction = cd.Reconstruct();
    Matrix next = x;
    RefreshMissing(next, reconstruction, mask);
    const double change = MissingCellChange(next, x, mask);
    x = std::move(next);
    if (change < config_.tolerance) break;
  }
  return x;
}

}  // namespace deepmvi
