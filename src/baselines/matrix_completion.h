#ifndef DEEPMVI_BASELINES_MATRIX_COMPLETION_H_
#define DEEPMVI_BASELINES_MATRIX_COMPLETION_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// Shared knobs of the iterative matrix-completion baselines.
struct MatrixCompletionConfig {
  /// Truncation rank (number of kept components). Clamped to the matrix
  /// dimensions at run time.
  int rank = 3;
  /// Convergence threshold on the normalized Frobenius distance between
  /// consecutive iterates, measured on the imputed cells.
  double tolerance = 1e-5;
  int max_iterations = 100;
};

/// SVDImp (Troyanskaya et al., 2001): initialize with interpolation, then
/// iterate  X_miss <- rank-k SVD reconstruction of X  until convergence.
class SvdImputer : public Imputer {
 public:
  SvdImputer() = default;
  explicit SvdImputer(MatrixCompletionConfig config) : config_(config) {}
  std::string name() const override { return "SVDImp"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  MatrixCompletionConfig config_;
};

/// SoftImpute (Mazumder et al., 2010): iterative soft-thresholding of the
/// singular values.
class SoftImputer : public Imputer {
 public:
  struct Config {
    /// Shrinkage applied to each singular value, as a fraction of the
    /// largest singular value of the first iterate.
    double shrinkage_fraction = 0.15;
    double tolerance = 1e-5;
    int max_iterations = 100;
  };
  SoftImputer() = default;
  explicit SoftImputer(Config config) : config_(config) {}
  std::string name() const override { return "SoftImpute"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

/// SVT (Cai et al., 2010): singular value thresholding on the observed
/// entries with a step size, keeping components above the threshold.
class SvtImputer : public Imputer {
 public:
  struct Config {
    /// Threshold as a fraction of the largest singular value.
    double threshold_fraction = 0.2;
    double step_size = 1.2;
    double tolerance = 1e-4;
    int max_iterations = 100;
  };
  SvtImputer() = default;
  explicit SvtImputer(Config config) : config_(config) {}
  std::string name() const override { return "SVT"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

/// CDRec (Khayati et al., 2019): interpolation/extrapolation init, then
/// iterate truncated centroid decomposition X ~= L_k R_k^T, refreshing the
/// missing entries until the normalized Frobenius norm change is small.
class CdRecImputer : public Imputer {
 public:
  CdRecImputer() = default;
  explicit CdRecImputer(MatrixCompletionConfig config) : config_(config) {}
  std::string name() const override { return "CDRec"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  MatrixCompletionConfig config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_BASELINES_MATRIX_COMPLETION_H_
