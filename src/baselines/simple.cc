#include "baselines/simple.h"

namespace deepmvi {

Matrix MeanImputer::Impute(const DataTensor& data, const Mask& mask) {
  const Matrix& x = data.values();
  DMVI_CHECK_EQ(x.rows(), mask.rows());
  DMVI_CHECK_EQ(x.cols(), mask.cols());

  double global_sum = 0.0;
  int64_t global_count = 0;
  for (int r = 0; r < x.rows(); ++r) {
    for (int t = 0; t < x.cols(); ++t) {
      if (mask.available(r, t)) {
        global_sum += x(r, t);
        ++global_count;
      }
    }
  }
  const double global_mean = global_count > 0 ? global_sum / global_count : 0.0;

  Matrix out = x;
  for (int r = 0; r < x.rows(); ++r) {
    double sum = 0.0;
    int count = 0;
    for (int t = 0; t < x.cols(); ++t) {
      if (mask.available(r, t)) {
        sum += x(r, t);
        ++count;
      }
    }
    const double fill = count > 0 ? sum / count : global_mean;
    for (int t = 0; t < x.cols(); ++t) {
      if (mask.missing(r, t)) out(r, t) = fill;
    }
  }
  return out;
}

Matrix InterpolateMissing(const Matrix& values, const Mask& mask) {
  Matrix out = values;
  const int t_len = values.cols();
  for (int r = 0; r < values.rows(); ++r) {
    // Collect available positions for this series.
    int prev = -1;
    int t = 0;
    while (t < t_len) {
      if (mask.available(r, t)) {
        prev = t;
        ++t;
        continue;
      }
      // Find the end of this missing run.
      int next = t;
      while (next < t_len && mask.missing(r, next)) ++next;
      const bool has_left = prev >= 0;
      const bool has_right = next < t_len;
      for (int u = t; u < next; ++u) {
        if (has_left && has_right) {
          const double alpha = static_cast<double>(u - prev) / (next - prev);
          out(r, u) = (1.0 - alpha) * values(r, prev) + alpha * values(r, next);
        } else if (has_left) {
          out(r, u) = values(r, prev);
        } else if (has_right) {
          out(r, u) = values(r, next);
        } else {
          out(r, u) = 0.0;  // Fully-missing series.
        }
      }
      t = next;
    }
  }
  return out;
}

Matrix LinearInterpolationImputer::Impute(const DataTensor& data,
                                          const Mask& mask) {
  DMVI_CHECK_EQ(data.values().rows(), mask.rows());
  DMVI_CHECK_EQ(data.values().cols(), mask.cols());
  return InterpolateMissing(data.values(), mask);
}

}  // namespace deepmvi
