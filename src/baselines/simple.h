#ifndef DEEPMVI_BASELINES_SIMPLE_H_
#define DEEPMVI_BASELINES_SIMPLE_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// Fills each missing cell with its series' mean over available cells
/// (global mean for fully-missing series).
class MeanImputer : public Imputer {
 public:
  std::string name() const override { return "Mean"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;
};

/// Per-series linear interpolation between the nearest available
/// neighbours; constant extrapolation at the boundaries. This is also the
/// initialization used by the matrix-completion baselines (CDRec et al.).
class LinearInterpolationImputer : public Imputer {
 public:
  std::string name() const override { return "LinearInterp"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;
};

/// Stateless helper shared by the iterative matrix-completion methods:
/// linear interpolation of the missing cells of `values`.
Matrix InterpolateMissing(const Matrix& values, const Mask& mask);

}  // namespace deepmvi

#endif  // DEEPMVI_BASELINES_SIMPLE_H_
