#include "baselines/stmvl.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/solvers.h"

namespace deepmvi {
namespace {

/// Pearson similarity between two series restricted to cells observed in
/// both; 0 when the overlap is too small.
double SeriesSimilarity(const Matrix& x, const Mask& mask, int a, int b) {
  std::vector<double> va, vb;
  for (int t = 0; t < x.cols(); ++t) {
    if (mask.available(a, t) && mask.available(b, t)) {
      va.push_back(x(a, t));
      vb.push_back(x(b, t));
    }
  }
  if (va.size() < 8) return 0.0;
  return PearsonCorrelation(va, vb);
}

struct ViewEstimates {
  double ucf = 0.0;
  double ses = 0.0;
  double icf = 0.0;
  double tes = 0.0;
  bool any = false;
};

}  // namespace

Matrix StmvlImputer::Impute(const DataTensor& data, const Mask& mask) {
  const Matrix& x = data.values();
  const int n = x.rows();
  const int t_len = x.cols();

  // Precompute pairwise series similarities (positive part).
  Matrix sim(n, n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double s = std::max(SeriesSimilarity(x, mask, a, b), 0.0);
      sim(a, b) = s;
      sim(b, a) = s;
    }
  }

  // Per-series mean over available cells (fallback estimate).
  std::vector<double> series_mean(n, 0.0);
  double global_mean = 0.0;
  int64_t global_count = 0;
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    int count = 0;
    for (int t = 0; t < t_len; ++t) {
      if (mask.available(i, t)) {
        sum += x(i, t);
        ++count;
        global_mean += x(i, t);
        ++global_count;
      }
    }
    series_mean[i] = count > 0 ? sum / count : 0.0;
  }
  if (global_count > 0) global_mean /= global_count;

  auto estimate_views = [&](int i, int t, int hidden_t) {
    ViewEstimates v;
    // UCF / SES: other series at time t.
    double ucf_num = 0.0, ucf_den = 0.0, ses_num = 0.0, ses_den = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i || !mask.available(j, t)) continue;
      const double s = sim(i, j);
      if (s <= 0.0) continue;
      ucf_num += s * x(j, t);
      ucf_den += s;
      const double sharp = std::pow(s, config_.similarity_power);
      ses_num += sharp * x(j, t);
      ses_den += sharp;
    }
    // ICF / TES: same series in a temporal window.
    double icf_num = 0.0, icf_den = 0.0, tes_num = 0.0, tes_den = 0.0;
    const int lo = std::max(t - config_.window, 0);
    const int hi = std::min(t + config_.window, t_len - 1);
    for (int u = lo; u <= hi; ++u) {
      if (u == t || u == hidden_t || !mask.available(i, u)) continue;
      const double dist = std::fabs(static_cast<double>(u - t));
      const double idw = 1.0 / (dist * dist);
      icf_num += idw * x(i, u);
      icf_den += idw;
      const double expw = std::exp(-dist / config_.temporal_decay);
      tes_num += expw * x(i, u);
      tes_den += expw;
    }
    const double fallback = series_mean[i] != 0.0 ? series_mean[i] : global_mean;
    v.ucf = ucf_den > 0.0 ? ucf_num / ucf_den : fallback;
    v.ses = ses_den > 0.0 ? ses_num / ses_den : fallback;
    v.icf = icf_den > 0.0 ? icf_num / icf_den : fallback;
    v.tes = tes_den > 0.0 ? tes_num / tes_den : fallback;
    v.any = ucf_den > 0.0 || icf_den > 0.0;
    return v;
  };

  // ---- Fit the view-blending weights on sampled available cells. --------
  auto available = mask.AvailableIndices();
  Rng rng(config_.seed);
  const int samples = std::min<int>(config_.training_samples,
                                    static_cast<int>(available.size()));
  Matrix design(samples, 5);  // 4 views + bias
  Matrix target(samples, 1);
  for (int s = 0; s < samples; ++s) {
    const CellIndex cell = available[rng.UniformInt(static_cast<int>(available.size()))];
    // Hide the cell itself when computing its views.
    ViewEstimates v = estimate_views(cell.series, cell.time, cell.time);
    design(s, 0) = v.ucf;
    design(s, 1) = v.ses;
    design(s, 2) = v.icf;
    design(s, 3) = v.tes;
    design(s, 4) = 1.0;
    target(s, 0) = x(cell.series, cell.time);
  }
  Matrix weights = RidgeSolve(design, target, 1e-3);

  // ---- Impute. ------------------------------------------------------------
  Matrix out = x;
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < t_len; ++t) {
      if (!mask.missing(i, t)) continue;
      ViewEstimates v = estimate_views(i, t, -1);
      out(i, t) = weights(0, 0) * v.ucf + weights(1, 0) * v.ses +
                  weights(2, 0) * v.icf + weights(3, 0) * v.tes + weights(4, 0);
    }
  }
  return out;
}

}  // namespace deepmvi
