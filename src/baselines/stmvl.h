#ifndef DEEPMVI_BASELINES_STMVL_H_
#define DEEPMVI_BASELINES_STMVL_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// STMVL (Yi et al., 2016, simplified): spatio-temporal multi-view
/// imputation. Four view estimators are computed for every cell:
///   - UCF: cross-series collaborative filtering — weighted average of the
///     other series' values at the same time, weighted by series
///     similarity (Pearson correlation on commonly observed cells),
///   - SES: like UCF but with exponentially sharpened weights,
///   - ICF: within-series collaborative filtering over a temporal window,
///     weighted by how similar the data columns are,
///   - TES: temporal exponential smoothing of the series' neighbours.
/// The views are blended by a linear model fit on available cells
/// (each one temporarily hidden to create a training target).
class StmvlImputer : public Imputer {
 public:
  struct Config {
    /// Temporal window half-width for the ICF / TES views.
    int window = 12;
    /// Decay constant of the temporal exponential weights.
    double temporal_decay = 4.0;
    /// Power applied to series similarity in SES.
    double similarity_power = 4.0;
    /// Number of available cells sampled to fit the view-blending weights.
    int training_samples = 2000;
    uint64_t seed = 11;
  };

  StmvlImputer() = default;
  explicit StmvlImputer(Config config) : config_(config) {}
  std::string name() const override { return "STMVL"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_BASELINES_STMVL_H_
