#include "baselines/tkcm.h"

#include <algorithm>
#include <cmath>

#include "baselines/simple.h"

namespace deepmvi {

Matrix TkcmImputer::Impute(const DataTensor& data, const Mask& mask) {
  const Matrix& x = data.values();
  const int n = x.rows();
  const int t_len = x.cols();
  const int half = config_.pattern_half_width;
  // Interpolated copy: pattern extraction needs complete reference values.
  Matrix filled = InterpolateMissing(x, mask);

  Matrix out = x;
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) {
      if (!mask.missing(r, t)) continue;

      // Pattern: other series' values in [t-half, t+half].
      const int lo = std::max(t - half, 0);
      const int hi = std::min(t + half, t_len - 1);
      const int width = hi - lo + 1;
      std::vector<double> pattern;
      pattern.reserve(static_cast<size_t>(n - 1) * width);
      for (int j = 0; j < n; ++j) {
        if (j == r) continue;
        for (int u = lo; u <= hi; ++u) pattern.push_back(filled(j, u));
      }

      // Slide over candidate anchors; a candidate is valid when series r
      // is available at the anchor.
      std::vector<std::pair<double, int>> matches;  // (correlation, anchor)
      std::vector<double> candidate(pattern.size());
      for (int c = half; c + half < t_len; ++c) {
        if (std::abs(c - t) <= 2 * half) continue;  // Exclude the query zone.
        if (!mask.available(r, c)) continue;
        size_t idx = 0;
        for (int j = 0; j < n; ++j) {
          if (j == r) continue;
          for (int u = c - half; u <= c - half + width - 1; ++u) {
            candidate[idx++] = filled(j, u);
          }
        }
        matches.emplace_back(PearsonCorrelation(pattern, candidate), c);
      }
      if (matches.empty()) {
        // No usable history: fall back to interpolation.
        out(r, t) = filled(r, t);
        continue;
      }
      const int k = std::min<int>(config_.top_k, static_cast<int>(matches.size()));
      std::partial_sort(matches.begin(), matches.begin() + k, matches.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      double acc = 0.0;
      for (int i = 0; i < k; ++i) acc += x(r, matches[i].second);
      out(r, t) = acc / k;
    }
  }
  return out;
}

}  // namespace deepmvi
