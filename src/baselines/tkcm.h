#ifndef DEEPMVI_BASELINES_TKCM_H_
#define DEEPMVI_BASELINES_TKCM_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// TKCM (Wellenzohn et al., EDBT 2017): pattern-based imputation using
/// top-k case matching. For a missing cell (r, t) it takes the pattern of
/// values across the OTHER series in a window around t, slides it over the
/// history to find the k most similar windows (Pearson correlation), and
/// imputes the average of series r's values at the matched offsets.
///
/// The paper discusses TKCM (Sec 2.2) and excludes it from the main
/// comparison because it trails CDRec on every dataset; it is included
/// here for completeness and to reproduce that observation.
class TkcmImputer : public Imputer {
 public:
  struct Config {
    /// Window half-width of the pattern.
    int pattern_half_width = 5;
    /// Number of matched cases averaged.
    int top_k = 5;
  };

  TkcmImputer() = default;
  explicit TkcmImputer(Config config) : config_(config) {}

  std::string name() const override { return "TKCM"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_BASELINES_TKCM_H_
