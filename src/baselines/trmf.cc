#include "baselines/trmf.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/solvers.h"

namespace deepmvi {

Matrix TrmfImputer::Impute(const DataTensor& data, const Mask& mask) {
  const Matrix& x = data.values();
  const int n = x.rows();
  const int t_len = x.cols();
  const int k = std::clamp(config_.rank, 1, std::min(n, t_len));
  const int max_lag =
      config_.lags.empty() ? 0 : *std::max_element(config_.lags.begin(),
                                                   config_.lags.end());

  Rng rng(config_.seed);
  Matrix f = Matrix::RandomGaussian(n, k, rng, 0.0, 0.1);  // series factors
  Matrix w = Matrix::RandomGaussian(k, t_len, rng, 0.0, 0.1);  // temporal
  // Per-factor AR coefficients, k x |lags|.
  Matrix theta(k, static_cast<int>(config_.lags.size()));

  for (int outer = 0; outer < config_.outer_iterations; ++outer) {
    // ---- 1. Update F: per-series ridge on observed cells. ----------------
    for (int i = 0; i < n; ++i) {
      Matrix gram(k, k);
      Matrix rhs(k, 1);
      int observed = 0;
      for (int t = 0; t < t_len; ++t) {
        if (!mask.available(i, t)) continue;
        ++observed;
        for (int a = 0; a < k; ++a) {
          rhs(a, 0) += w(a, t) * x(i, t);
          for (int b = 0; b < k; ++b) gram(a, b) += w(a, t) * w(b, t);
        }
      }
      if (observed == 0) continue;
      for (int a = 0; a < k; ++a) gram(a, a) += config_.lambda_f;
      Matrix fi = SolveSpd(gram, rhs);
      for (int a = 0; a < k; ++a) f(i, a) = fi(a, 0);
    }

    // ---- 2. Update theta: per-factor least squares over lags. -----------
    const int num_lags = static_cast<int>(config_.lags.size());
    if (num_lags > 0) {
      for (int r = 0; r < k; ++r) {
        Matrix gram(num_lags, num_lags);
        Matrix rhs(num_lags, 1);
        for (int t = max_lag; t < t_len; ++t) {
          for (int a = 0; a < num_lags; ++a) {
            const double wa = w(r, t - config_.lags[a]);
            rhs(a, 0) += wa * w(r, t);
            for (int b = 0; b < num_lags; ++b) {
              gram(a, b) += wa * w(r, t - config_.lags[b]);
            }
          }
        }
        for (int a = 0; a < num_lags; ++a) gram(a, a) += config_.lambda_theta;
        Matrix th = SolveSpd(gram, rhs);
        for (int a = 0; a < num_lags; ++a) theta(r, a) = th(a, 0);
      }
    }

    // ---- 3. Update W: coordinate sweeps over time. ------------------------
    for (int sweep = 0; sweep < config_.w_sweeps; ++sweep) {
      for (int t = 0; t < t_len; ++t) {
        // Data term: observed series at time t.
        Matrix gram(k, k);
        Matrix rhs(k, 1);
        for (int i = 0; i < n; ++i) {
          if (!mask.available(i, t)) continue;
          for (int a = 0; a < k; ++a) {
            rhs(a, 0) += f(i, a) * x(i, t);
            for (int b = 0; b < k; ++b) gram(a, b) += f(i, a) * f(i, b);
          }
        }
        // AR terms are separable per factor: contribute to the diagonal
        // and the right-hand side only.
        for (int r = 0; r < k; ++r) {
          double diag = 1e-6;  // light ridge
          double lin = 0.0;
          // w_{r,t} as the AR target.
          if (t >= max_lag && num_lags > 0) {
            double pred = 0.0;
            for (int a = 0; a < num_lags; ++a) {
              pred += theta(r, a) * w(r, t - config_.lags[a]);
            }
            diag += config_.lambda_w;
            lin += config_.lambda_w * pred;
          }
          // w_{r,t} as a regressor for later targets t + lag.
          for (int a = 0; a < num_lags; ++a) {
            const int target = t + config_.lags[a];
            if (target >= max_lag && target < t_len) {
              // Residual excluding w_{r,t}'s own contribution.
              double rest = w(r, target);
              for (int b = 0; b < num_lags; ++b) {
                if (b == a) continue;
                rest -= theta(r, b) * w(r, target - config_.lags[b]);
              }
              diag += config_.lambda_w * theta(r, a) * theta(r, a);
              lin += config_.lambda_w * theta(r, a) * rest;
            }
          }
          gram(r, r) += diag;
          rhs(r, 0) += lin;
        }
        Matrix wt = SolveSpd(gram, rhs);
        for (int r = 0; r < k; ++r) w(r, t) = wt(r, 0);
      }
    }
  }

  // Impute missing cells from the factorization.
  Matrix out = x;
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < t_len; ++t) {
      if (mask.missing(i, t)) {
        double acc = 0.0;
        for (int a = 0; a < k; ++a) acc += f(i, a) * w(a, t);
        out(i, t) = acc;
      }
    }
  }
  return out;
}

}  // namespace deepmvi
