#ifndef DEEPMVI_BASELINES_TRMF_H_
#define DEEPMVI_BASELINES_TRMF_H_

#include <string>
#include <vector>

#include "data/imputer.h"

namespace deepmvi {

/// TRMF (Yu, Rao, Dhillon, NeurIPS 2016): temporal regularized matrix
/// factorization  X ~= F W  with an autoregressive penalty on the columns
/// of W,  w_{r,t} ~ sum_l theta_{r,l} w_{r,t-l},  fit by alternating
/// minimization:
///   1. series factors F: per-series ridge regression on observed cells,
///   2. AR coefficients theta: per-factor least squares,
///   3. temporal factors W: coordinate sweeps over time solving the
///      per-step k x k system that couples the data term and the AR terms.
class TrmfImputer : public Imputer {
 public:
  struct Config {
    int rank = 4;
    std::vector<int> lags = {1, 2, 3};
    double lambda_f = 0.5;   // factor ridge
    double lambda_w = 0.5;   // AR penalty weight
    double lambda_theta = 1.0;
    int outer_iterations = 12;
    int w_sweeps = 2;  // coordinate sweeps over time per outer iteration
    uint64_t seed = 7;
  };

  TrmfImputer() = default;
  explicit TrmfImputer(Config config) : config_(config) {}
  std::string name() const override { return "TRMF"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_BASELINES_TRMF_H_
