#include "common/logging.h"

#include <cstdio>
#include <iostream>

#include "common/mutex.h"

namespace deepmvi {

LogSeverity& MinLogSeverity() {
  static LogSeverity severity = LogSeverity::kInfo;
  return severity;
}

LogFormat& GlobalLogFormat() {
  static LogFormat format = LogFormat::kPlain;
  return format;
}

bool ParseLogSeverity(const std::string& text, LogSeverity* out) {
  if (text == "debug") {
    *out = LogSeverity::kDebug;
  } else if (text == "info") {
    *out = LogSeverity::kInfo;
  } else if (text == "warning" || text == "warn") {
    *out = LogSeverity::kWarning;
  } else if (text == "error") {
    *out = LogSeverity::kError;
  } else {
    return false;
  }
  return true;
}

bool ParseLogFormat(const std::string& text, LogFormat* out) {
  if (text == "plain") {
    *out = LogFormat::kPlain;
  } else if (text == "kv" || text == "keyvalue") {
    *out = LogFormat::kKeyValue;
  } else if (text == "json") {
    *out = LogFormat::kJson;
  } else {
    return false;
  }
  return true;
}

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

namespace {

/// Serializes emission so lines from concurrent request workers never
/// interleave mid-line.
Mutex& EmitMutex() {
  static Mutex mutex;
  return mutex;
}

void AppendJsonEscaped(std::string* out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

bool NeedsKvQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendKvValue(std::string* out, const std::string& value) {
  if (!NeedsKvQuoting(value)) {
    *out += value;
    return;
  }
  *out += '"';
  AppendJsonEscaped(out, value);
  *out += '"';
}

}  // namespace

std::string FormatLogEvent(const LogEvent& event, LogFormat format) {
  std::string out;
  switch (format) {
    case LogFormat::kPlain: {
      out += "[";
      out += LogSeverityName(event.severity);
      out += " ";
      out += event.source;
      out += "] ";
      out += event.message;
      for (const LogField& field : event.fields) {
        out += " ";
        out += field.key;
        out += "=";
        AppendKvValue(&out, field.value);
      }
      break;
    }
    case LogFormat::kKeyValue: {
      out += "level=";
      out += LogSeverityName(event.severity);
      out += " src=";
      out += event.source;
      out += " msg=";
      AppendKvValue(&out, event.message);
      for (const LogField& field : event.fields) {
        out += " ";
        out += field.key;
        out += "=";
        AppendKvValue(&out, field.value);
      }
      break;
    }
    case LogFormat::kJson: {
      out += "{\"level\":\"";
      out += LogSeverityName(event.severity);
      out += "\",\"src\":\"";
      AppendJsonEscaped(&out, event.source);
      out += "\",\"msg\":\"";
      AppendJsonEscaped(&out, event.message);
      out += "\"";
      for (const LogField& field : event.fields) {
        out += ",\"";
        AppendJsonEscaped(&out, field.key);
        out += "\":\"";
        AppendJsonEscaped(&out, field.value);
        out += "\"";
      }
      out += "}";
      break;
    }
  }
  return out;
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Strip directories for terseness.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  source_ = base;
  source_ += ":";
  source_ += std::to_string(line);
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    LogEvent event;
    event.severity = severity_;
    event.source = source_;
    event.message = stream_.str();
    event.fields = std::move(fields_);
    const std::string line = FormatLogEvent(event, GlobalLogFormat());
    {
      MutexLock lock(&EmitMutex());
      std::cerr << line << std::endl;
    }
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace deepmvi
