#include "common/logging.h"

namespace deepmvi {

LogSeverity& MinLogSeverity() {
  static LogSeverity severity = LogSeverity::kInfo;
  return severity;
}

namespace internal_logging {
namespace {

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Strip directories for terseness.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace deepmvi
