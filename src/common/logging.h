#ifndef DEEPMVI_COMMON_LOGGING_H_
#define DEEPMVI_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace deepmvi {

/// Severity levels for the lightweight logging facility.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Returns the global minimum severity that is actually emitted.
/// Defaults to kInfo; tests raise it to silence expected warnings.
LogSeverity& MinLogSeverity();

namespace internal_logging {

/// Stream-style log message collector. Emits on destruction; aborts the
/// process for kFatal messages (used by the DMVI_CHECK family).
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace deepmvi

#define DMVI_LOG(severity)                                             \
  ::deepmvi::internal_logging::LogMessage(                             \
      ::deepmvi::LogSeverity::k##severity, __FILE__, __LINE__)         \
      .stream()

/// Aborts with a message when `condition` is false. Used for programmer
/// invariants (argument shapes, index bounds); recoverable conditions use
/// Status instead.
#define DMVI_CHECK(condition)                                          \
  if (!(condition))                                                    \
  DMVI_LOG(Fatal) << "Check failed: " #condition " "

#define DMVI_CHECK_EQ(a, b) DMVI_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_NE(a, b) DMVI_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_LT(a, b) DMVI_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_LE(a, b) DMVI_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_GT(a, b) DMVI_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_GE(a, b) DMVI_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DEEPMVI_COMMON_LOGGING_H_
