#ifndef DEEPMVI_COMMON_LOGGING_H_
#define DEEPMVI_COMMON_LOGGING_H_

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace deepmvi {

/// Severity levels for the logging facility. kDebug is below the default
/// threshold: per-request logs live there so a serving binary is quiet
/// unless --log-level debug is given.
enum class LogSeverity {
  kDebug = -1,
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3
};

/// Returns the global minimum severity that is actually emitted.
/// Defaults to kInfo; tests raise it to silence expected warnings, tools
/// lower it via --log-level debug.
LogSeverity& MinLogSeverity();

/// How emitted lines are rendered. kPlain is the historical human format;
/// kKeyValue and kJson are machine-parseable structured lines where every
/// attached field (request_id, path, status, ...) becomes its own column.
enum class LogFormat { kPlain = 0, kKeyValue = 1, kJson = 2 };

/// Global output format, defaulting to kPlain; tools set it from
/// --log-format.
LogFormat& GlobalLogFormat();

/// Parses "debug" / "info" / "warning" ("warn") / "error". Returns false
/// (and leaves `out` alone) on unknown input.
bool ParseLogSeverity(const std::string& text, LogSeverity* out);
/// Parses "plain" / "kv" ("keyvalue") / "json". Returns false on unknown.
bool ParseLogFormat(const std::string& text, LogFormat* out);

/// One structured field attached to a log line.
struct LogField {
  std::string key;
  std::string value;
};

/// A fully assembled log line before rendering. `source` is file:line
/// with directories stripped.
struct LogEvent {
  LogSeverity severity = LogSeverity::kInfo;
  std::string source;
  std::string message;
  std::vector<LogField> fields;
};

const char* LogSeverityName(LogSeverity severity);

/// Renders an event in the given format — pure function, so tests can pin
/// the exact output. kPlain: `[INFO file:line] message key=value`.
/// kKeyValue: `level=INFO src=file:line msg="message" key="value"`.
/// kJson: one JSON object per line with "level", "src", "msg", and one
/// member per field.
std::string FormatLogEvent(const LogEvent& event, LogFormat format);

namespace internal_logging {

/// Stream-style log message collector. Emits on destruction (rendered via
/// FormatLogEvent in the global format, serialized by a process-wide
/// mutex so concurrent workers never interleave); aborts the process for
/// kFatal messages (used by the DMVI_CHECK family).
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

  /// Attaches a structured field; in kPlain format fields trail the
  /// message as key=value pairs.
  LogMessage& Field(std::string key, std::string value) {
    fields_.push_back(LogField{std::move(key), std::move(value)});
    return *this;
  }

 private:
  LogSeverity severity_;
  std::string source_;
  std::ostringstream stream_;
  std::vector<LogField> fields_;
};

}  // namespace internal_logging
}  // namespace deepmvi

#define DMVI_LOG(severity)                                             \
  ::deepmvi::internal_logging::LogMessage(                             \
      ::deepmvi::LogSeverity::k##severity, __FILE__, __LINE__)         \
      .stream()

/// Structured variant: yields the LogMessage itself so fields can be
/// chained before streaming the message text:
///   DMVI_SLOG(Debug).Field("request_id", id).stream() << "served";
#define DMVI_SLOG(severity)                                            \
  ::deepmvi::internal_logging::LogMessage(                             \
      ::deepmvi::LogSeverity::k##severity, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Used for programmer
/// invariants (argument shapes, index bounds); recoverable conditions use
/// Status instead.
#define DMVI_CHECK(condition)                                          \
  if (!(condition))                                                    \
  DMVI_LOG(Fatal) << "Check failed: " #condition " "

#define DMVI_CHECK_EQ(a, b) DMVI_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_NE(a, b) DMVI_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_LT(a, b) DMVI_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_LE(a, b) DMVI_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_GT(a, b) DMVI_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DMVI_CHECK_GE(a, b) DMVI_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DEEPMVI_COMMON_LOGGING_H_
