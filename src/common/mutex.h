#ifndef DEEPMVI_COMMON_MUTEX_H_
#define DEEPMVI_COMMON_MUTEX_H_

#include <chrono>               // NOLINT(build/c++11)
#include <condition_variable>   // dmvi-lint: allow-sync-primitive
#include <mutex>                // dmvi-lint: allow-sync-primitive

#include "common/thread_annotations.h"

namespace deepmvi {

class CondVar;

/// The repo's one mutex type: std::mutex wrapped as an annotated Clang
/// thread-safety capability. Every locked class declares
///
///   mutable Mutex mu_;
///   int guarded_field_ DMVI_GUARDED_BY(mu_);
///
/// and takes the lock with MutexLock; `clang -Wthread-safety -Werror`
/// (CI `thread-safety` job) then rejects any access to guarded state
/// without the lock, and tools/dmvi_lint rejects any use of the raw std
/// primitives outside this header. Non-clang builds compile the same
/// code with the annotations erased.
class DMVI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DMVI_ACQUIRE() { raw_.lock(); }
  void Unlock() DMVI_RELEASE() { raw_.unlock(); }
  /// Acquires the lock iff it returns true.
  bool TryLock() DMVI_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII scope holding a Mutex, the only idiom the repo uses for plain
/// critical sections (the std::lock_guard / std::unique_lock shapes are
/// linted out):
///
///   MutexLock lock(&mu_);
class DMVI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DMVI_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DMVI_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Waits atomically release the
/// mutex and reacquire it before returning, so the caller's capability
/// set is unchanged across a Wait — which is what DMVI_REQUIRES(mu)
/// expresses. Spurious wakeups happen; callers loop on their condition:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
///
/// (Explicit while-loops instead of predicate lambdas: the analysis
/// cannot see capabilities inside a lambda body, the loop form it can.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). *mu must be held.
  void Wait(Mutex* mu) DMVI_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->raw_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // Ownership stays with the caller's MutexLock.
  }

  /// Wait bounded by a deadline; returns false iff the deadline passed.
  bool WaitUntil(Mutex* mu,
                 std::chrono::steady_clock::time_point deadline)
      DMVI_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wait bounded by a duration; returns false iff it timed out.
  bool WaitForSeconds(Mutex* mu, double seconds) DMVI_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() +
                             std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(seconds)));
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_COMMON_MUTEX_H_
