#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace deepmvi {
namespace {

/// Shared bookkeeping of one ParallelForWithSlot invocation, used by both
/// the pooled and the spawn-per-call execution paths.
struct Job {
  int n = 0;
  int num_slots = 0;
  const std::function<void(int, int)>* f = nullptr;
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  Mutex error_mutex;
  std::exception_ptr first_error DMVI_GUARDED_BY(error_mutex);

  /// Claims and runs iterations on worker slot `slot` until the range is
  /// exhausted or a failure is observed. Failure handling: the first
  /// exception (in completion order) is parked, remaining iterations are
  /// abandoned, and the caller rethrows after every worker is done.
  void RunSlot(int slot) {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1);
      if (i >= n) return;
      try {
        (*f)(i, slot);
      } catch (...) {
        MutexLock lock(&error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }

  /// The parked exception, if any. Called after every worker is joined /
  /// acknowledged, but takes the lock anyway — cheap, and it keeps the
  /// field's GUARDED_BY contract unconditional.
  std::exception_ptr TakeError() {
    MutexLock lock(&error_mutex);
    return first_error;
  }
};

/// Marks threads that belong to the worker pool (or to a spawn-per-call
/// fan-out), so nested ParallelFor calls never wait on the pool they are
/// running inside of.
thread_local bool t_inside_parallel_worker = false;

/// Pool worker threads created so far (see ParallelPoolThreadsCreated).
std::atomic<int64_t> g_pool_threads_created{0};

/// Historical execution path: spawn threads for this call, join, done.
/// Kept for nested calls and for when the pool is busy with another
/// caller's job — the worst case is exactly the old behavior.
void RunWithSpawnedThreads(Job& job) {
  std::vector<std::thread> threads;
  threads.reserve(job.num_slots);
  for (int slot = 0; slot < job.num_slots; ++slot) {
    threads.emplace_back([&job, slot] {
      t_inside_parallel_worker = true;
      job.RunSlot(slot);
    });
  }
  for (auto& t : threads) t.join();
}

/// Persistent worker pool: threads are created on first parallel use (and
/// grown when a call wants more slots) and then reused across calls, so
/// per-mini-batch training fan-out stops paying a spawn/join per batch.
/// One job runs at a time; concurrent callers fall back to spawned
/// threads rather than queueing, preserving the old concurrency behavior.
///
/// The schedule stays dynamic (workers claim iterations from a shared
/// counter) — callers own determinism by construction, as before: the
/// training loop reduces in sample order, the eval suite writes to
/// per-cell slots.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool* pool = new WorkerPool();  // Leaked: see ~WorkerPool.
    return *pool;
  }

  /// Tries to run `job` on the pool. Returns false when the pool is
  /// occupied by another caller (caller should spawn its own threads).
  bool TryRun(Job& job) DMVI_EXCLUDES(caller_mutex_, mutex_) {
    if (!caller_mutex_.TryLock()) return false;

    {
      MutexLock lock(&mutex_);
      EnsureThreadsLocked(job.num_slots);
      job_ = &job;
      active_workers_ = job.num_slots;
      ++generation_;
    }
    work_ready_.SignalAll();

    {
      MutexLock lock(&mutex_);
      while (active_workers_ != 0) work_done_.Wait(&mutex_);
      job_ = nullptr;
    }
    caller_mutex_.Unlock();
    return true;
  }

 private:
  WorkerPool() = default;
  // The singleton is intentionally leaked: worker threads may still be
  // parked in Wait() during static destruction, and tearing down the
  // condition variables under them is undefined. Leaking a process-wide
  // pool at exit is benign (the OS reclaims the threads).
  ~WorkerPool() = delete;

  void EnsureThreadsLocked(int wanted) DMVI_REQUIRES(mutex_) {
    while (static_cast<int>(threads_.size()) < wanted) {
      const int slot = static_cast<int>(threads_.size());
      threads_.emplace_back([this, slot] { WorkerLoop(slot); });
      g_pool_threads_created.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void WorkerLoop(int slot) DMVI_EXCLUDES(mutex_) {
    t_inside_parallel_worker = true;
    uint64_t seen_generation = 0;
    while (true) {
      Job* job = nullptr;
      {
        MutexLock lock(&mutex_);
        while (generation_ == seen_generation) work_ready_.Wait(&mutex_);
        seen_generation = generation_;
        // Threads beyond the job's slot count sit this round out but must
        // still acknowledge it so active_workers_ reaches zero.
        if (job_ != nullptr && slot < job_->num_slots) job = job_;
      }
      if (job != nullptr) job->RunSlot(slot);
      {
        MutexLock lock(&mutex_);
        if (job != nullptr && --active_workers_ == 0) work_done_.SignalAll();
      }
    }
  }

  /// Serializes callers: at most one job occupies the pool. Always taken
  /// before mutex_ (TryRun is the only acquirer of both).
  Mutex caller_mutex_ DMVI_ACQUIRED_BEFORE(mutex_);

  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  std::vector<std::thread> threads_ DMVI_GUARDED_BY(mutex_);
  Job* job_ DMVI_GUARDED_BY(mutex_) = nullptr;
  int active_workers_ DMVI_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ DMVI_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int64_t ParallelPoolThreadsCreated() {
  return g_pool_threads_created.load(std::memory_order_relaxed);
}

int EffectiveThreads(int n, int num_threads) {
  if (n <= 0) return 0;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  return std::min(num_threads, n);
}

void ParallelForWithSlot(int n, int num_threads,
                         const std::function<void(int, int)>& f) {
  if (n <= 0) return;
  num_threads = EffectiveThreads(n, num_threads);
  if (num_threads == 1 || n == 1) {
    for (int i = 0; i < n; ++i) f(i, 0);
    return;
  }

  Job job;
  job.n = n;
  job.num_slots = num_threads;
  job.f = &f;

  // Nested calls (f itself fanning out) must not wait on the pool they
  // may be running inside of; they spawn their own threads, exactly as
  // every call did before the pool existed.
  if (t_inside_parallel_worker || !WorkerPool::Instance().TryRun(job)) {
    RunWithSpawnedThreads(job);
  }
  if (std::exception_ptr error = job.TakeError()) {
    std::rethrow_exception(error);
  }
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& f) {
  if (n <= 0) return;
  ParallelForWithSlot(n, num_threads, [&f](int i, int /*slot*/) { f(i); });
}

}  // namespace deepmvi
