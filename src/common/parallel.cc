#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace deepmvi {

int EffectiveThreads(int n, int num_threads) {
  if (n <= 0) return 0;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  return std::min(num_threads, n);
}

void ParallelForWithSlot(int n, int num_threads,
                         const std::function<void(int, int)>& f) {
  if (n <= 0) return;
  num_threads = EffectiveThreads(n, num_threads);
  if (num_threads == 1 || n == 1) {
    for (int i = 0; i < n; ++i) f(i, 0);
    return;
  }

  // Failure handling: the historical implementation let an exception
  // escape a worker thread, which calls std::terminate. Instead the first
  // exception (in completion order) is parked, the remaining iterations
  // are abandoned, every worker is joined, and the exception rethrows on
  // the caller.
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&](int slot) {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1);
      if (i >= n) return;
      try {
        f(i, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int slot = 0; slot < num_threads; ++slot) {
    threads.emplace_back(worker, slot);
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& f) {
  if (n <= 0) return;
  ParallelForWithSlot(n, num_threads, [&f](int i, int /*slot*/) { f(i); });
}

}  // namespace deepmvi
