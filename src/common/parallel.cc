#include "common/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace deepmvi {

int EffectiveThreads(int n, int num_threads) {
  if (n <= 0) return 0;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  return std::min(num_threads, n);
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& f) {
  if (n <= 0) return;
  num_threads = EffectiveThreads(n, num_threads);
  if (num_threads == 1 || n == 1) {
    for (int i = 0; i < n; ++i) f(i);
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&]() {
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= n) return;
      f(i);
    }
  };
  std::vector<std::thread> threads;
  const int count = std::min(num_threads, n);
  threads.reserve(count);
  for (int i = 0; i < count; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
}

}  // namespace deepmvi
