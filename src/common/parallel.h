#ifndef DEEPMVI_COMMON_PARALLEL_H_
#define DEEPMVI_COMMON_PARALLEL_H_

#include <functional>

namespace deepmvi {

/// Runs f(0), ..., f(n-1) across up to `num_threads` worker threads
/// (hardware concurrency when num_threads <= 0). Blocks until all calls
/// complete. Tasks must be independent; the benchmark harness uses this to
/// run (dataset, scenario, imputer) experiments concurrently — every
/// experiment seeds its own RNGs, so results are identical to a serial run.
///
/// Exceptions: when an f(i) throws, the first exception (in completion
/// order) is captured, every worker is joined, and the exception is
/// rethrown on the calling thread. Iterations not yet started when the
/// failure is observed are skipped.
void ParallelFor(int n, int num_threads, const std::function<void(int)>& f);

/// Like ParallelFor, but each call also receives the index of the worker
/// slot it runs on, in [0, EffectiveThreads(n, num_threads)). At most one
/// call runs per slot at a time, so f can own per-slot scratch state (the
/// training loop keeps one autodiff tape per slot). Same exception
/// contract as ParallelFor.
void ParallelForWithSlot(int n, int num_threads,
                         const std::function<void(int i, int slot)>& f);

/// Number of worker threads ParallelFor(n, num_threads, ...) actually
/// uses: hardware concurrency (fallback 4) when num_threads <= 0, clamped
/// to n. For reporting/telemetry alongside a ParallelFor call.
int EffectiveThreads(int n, int num_threads);

/// Observability for the persistent worker pool behind ParallelFor /
/// ParallelForWithSlot: total pool worker threads created since process
/// start. Repeated parallel regions at the same width reuse the pool's
/// threads, so this stays flat across mini-batches — the property the
/// pool exists for (and what the common_test regression test asserts).
/// Nested calls run on freshly spawned threads, which are not counted.
int64_t ParallelPoolThreadsCreated();

}  // namespace deepmvi

#endif  // DEEPMVI_COMMON_PARALLEL_H_
