#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace deepmvi {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa for a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  DMVI_CHECK_GT(n, 0);
  // Lemire's nearly-divisionless unbiased range reduction: map the 64-bit
  // draw into [0, n) via the high half of a 128-bit product, rejecting the
  // (at most n-1 out of 2^64) draws that would overweight small residues.
  // The modulo it replaces was biased toward low values for n not dividing
  // 2^64. Seed streams stay deterministic; the values differ from the
  // modulo-based ones.
  const uint64_t bound = static_cast<uint64_t>(n);
  uint64_t x = NextUint64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod n.
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<int>(m >> 64);
}

int Rng::UniformInt(int lo, int hi) {
  DMVI_CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  DMVI_CHECK_GE(n, count);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first `count` positions are needed.
  for (int i = 0; i < count; ++i) {
    int j = UniformInt(i, n - 1);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace deepmvi
