#ifndef DEEPMVI_COMMON_RNG_H_
#define DEEPMVI_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace deepmvi {

/// Deterministic, seedable pseudo-random number generator based on
/// xoshiro256** (Blackman & Vigna). Every stochastic component in the
/// library takes an Rng (or a seed) explicitly so experiments are exactly
/// reproducible across runs and platforms.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Samples `count` distinct integers from [0, n) in random order.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Spawns an independent child generator (useful for per-worker streams).
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace deepmvi

#endif  // DEEPMVI_COMMON_RNG_H_
