#ifndef DEEPMVI_COMMON_STATUS_H_
#define DEEPMVI_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/logging.h"

namespace deepmvi {

/// Error category for recoverable failures (I/O, ill-posed numeric input,
/// invalid user configuration). Invariant violations abort via DMVI_CHECK
/// instead of returning a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kNotConverged,
};

/// Lightweight Status in the style of absl::Status / arrow::Status.
/// [[nodiscard]] on the class makes every function returning a Status
/// warn when the result is silently dropped — callers must check, return,
/// or explicitly discard with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error result, in the style of absl::StatusOr.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit conversions mirror absl::StatusOr ergonomics.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DMVI_CHECK(!status_.ok()) << "StatusOr constructed from OK status without value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DMVI_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    DMVI_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    DMVI_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace deepmvi

/// Propagates a non-OK Status to the caller.
#define DMVI_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::deepmvi::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // DEEPMVI_COMMON_STATUS_H_
