#ifndef DEEPMVI_COMMON_STOPWATCH_H_
#define DEEPMVI_COMMON_STOPWATCH_H_

#include <chrono>

namespace deepmvi {

/// Monotonic wall-clock stopwatch used by the runtime experiments (Fig 10).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_COMMON_STOPWATCH_H_
