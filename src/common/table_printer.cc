#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace deepmvi {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DMVI_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DMVI_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
    return os.str();
  };
  std::ostringstream os;
  std::string sep = "+";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";
  os << sep << render_row(header_) << sep;
  for (const auto& row : rows_) os << render_row(row);
  os << sep;
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToCsv();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace deepmvi
