#ifndef DEEPMVI_COMMON_TABLE_PRINTER_H_
#define DEEPMVI_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace deepmvi {

/// Collects rows of strings and renders them as an aligned ASCII table
/// (for stdout) and as CSV (for plotting). Used by every bench binary so
/// the paper's tables and figure series are printed uniformly.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string FormatDouble(double v, int precision = 4);

  /// Renders an aligned, boxed ASCII table.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_COMMON_TABLE_PRINTER_H_
