#ifndef DEEPMVI_COMMON_THREAD_ANNOTATIONS_H_
#define DEEPMVI_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (no-ops on other compilers).
///
/// These macros declare the lock discipline of a class in its header so
/// `clang -Wthread-safety -Werror` (the CI `thread-safety` job) proves at
/// compile time that every access to a guarded field happens with the
/// right mutex held. Conventions in this repo:
///
///   - every mutex is a `common::Mutex` (see common/mutex.h) — the raw
///     std primitives are banned outside the wrapper by tools/dmvi_lint;
///   - every field a mutex protects is annotated
///     `DMVI_GUARDED_BY(mu_)`;
///   - private helpers that assume the lock is already held are named
///     `*Locked()` and annotated `DMVI_REQUIRES(mu_)`;
///   - public entry points that must not be called with the lock held
///     (they take it themselves) may add `DMVI_EXCLUDES(mu_)` where a
///     re-entrant call is a plausible bug.
///
/// The spelling mirrors the macro layer used by absel/LLVM so the
/// annotations read familiarly; only the DMVI_ prefix is ours.
#if defined(__clang__)
#define DMVI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DMVI_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define DMVI_CAPABILITY(x) DMVI_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define DMVI_SCOPED_CAPABILITY DMVI_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written with `x` held.
#define DMVI_GUARDED_BY(x) DMVI_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer field's pointee is protected by `x` (the pointer
/// itself is not).
#define DMVI_PT_GUARDED_BY(x) DMVI_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function must be called with the listed capabilities
/// held (and does not release them).
#define DMVI_REQUIRES(...) \
  DMVI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The annotated function must be called *without* the listed
/// capabilities held (it acquires them itself; calling with them held
/// would self-deadlock).
#define DMVI_EXCLUDES(...) \
  DMVI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return.
#define DMVI_ACQUIRE(...) \
  DMVI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The annotated function releases a held capability.
#define DMVI_RELEASE(...) \
  DMVI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability; holds it on
/// return iff the return value equals `b`.
#define DMVI_TRY_ACQUIRE(b, ...) \
  DMVI_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Lock-ordering declaration: this mutex must be acquired after / before
/// the listed ones (clang checks declared orders for inversions).
#define DMVI_ACQUIRED_AFTER(...) \
  DMVI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define DMVI_ACQUIRED_BEFORE(...) \
  DMVI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// The annotated function returns a reference to the given capability
/// (accessor for a member mutex).
#define DMVI_RETURN_CAPABILITY(x) \
  DMVI_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions whose locking is deliberately invisible to
/// the analysis (condition-variable internals, test shims). Use sparingly
/// and say why at the site.
#define DMVI_NO_THREAD_SAFETY_ANALYSIS \
  DMVI_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DEEPMVI_COMMON_THREAD_ANNOTATIONS_H_
