#include "core/deepmvi.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/deepmvi_modules.h"
#include "core/quality_profile.h"
#include "nn/adam.h"
#include "obs/trace.h"

namespace deepmvi {
namespace {

using ad::Tape;
using ad::Var;
using internal::Chunk;
using internal::DeepMviModules;
using internal::MakeChunk;
using internal::PredictPositions;

/// One simulated-missing training instance (Sec 3): a synthetic block of
/// `block_len` steps starting at `block_start` is hidden in series `row`;
/// the same range is hidden in `blackout_rows` of other series to mimic
/// the dataset's observed cross-series missing overlap. Loss is taken on
/// the anchor series' hidden positions whose truth is known.
struct TrainSample {
  int row = 0;
  int block_start = 0;
  int block_len = 0;
  std::vector<int> blackout_rows;
  std::vector<int> target_times;
};

/// Empirical description of the dataset's missing pattern, used to sample
/// identically-distributed synthetic blocks.
struct MissingShapeDistribution {
  std::vector<int> block_lengths;
  std::vector<double> column_fractions;

  int SampleLength(Rng& rng) const {
    if (block_lengths.empty()) return 5;
    return block_lengths[rng.UniformInt(static_cast<int>(block_lengths.size()))];
  }
  double SampleColumnFraction(Rng& rng) const {
    if (column_fractions.empty()) return 0.0;
    return column_fractions[rng.UniformInt(
        static_cast<int>(column_fractions.size()))];
  }
};

MissingShapeDistribution MeasureMissingShapes(const Mask& mask) {
  MissingShapeDistribution dist;
  dist.block_lengths = mask.MissingBlockLengths();
  // Fraction of series missing at the columns of (up to 256) missing
  // cells. The cells are every stride-th missing cell in row-major order
  // — the same ones a materialized MissingIndices() list would yield, but
  // walked in place: the index list of a beyond-memory dataset would cost
  // 8 bytes per missing cell.
  const int64_t num_missing = mask.CountMissing();
  if (num_missing == 0) return dist;
  const int64_t stride = std::max<int64_t>(num_missing / 256, 1);
  int64_t seen = 0;
  for (int r = 0; r < mask.rows(); ++r) {
    for (int t = 0; t < mask.cols(); ++t) {
      if (!mask.missing(r, t)) continue;
      if (seen % stride == 0) {
        int count = 0;
        for (int rr = 0; rr < mask.rows(); ++rr) count += mask.missing(rr, t);
        // Exclude the anchor series itself from the cross-series fraction.
        dist.column_fractions.push_back(
            mask.rows() > 1 ? static_cast<double>(count - 1) /
                                  static_cast<double>(mask.rows() - 1)
                            : 0.0);
      }
      ++seen;
    }
  }
  return dist;
}

}  // namespace

std::string DeepMviImputer::name() const {
  if (config_.flatten_multidim) return "DeepMVI1D";
  std::string name = "DeepMVI";
  if (!config_.use_temporal_transformer) name += "-NoTT";
  if (!config_.use_context_window) name += "-NoContext";
  if (!config_.use_kernel_regression) name += "-NoKR";
  if (!config_.use_fine_grained) name += "-NoFG";
  return name;
}

TrainedDeepMvi DeepMviImputer::Fit(const DataTensor& raw_data, const Mask& mask) {
  DMVI_CHECK_EQ(raw_data.num_series(), mask.rows());
  DMVI_CHECK_EQ(raw_data.num_times(), mask.cols());
  storage::InMemoryDataSource source(&raw_data);
  StatusOr<TrainedDeepMvi> trained = Fit(source, mask);
  // In-core window reads cannot fail, so any error here is a caller bug
  // (shape mismatch) that historically aborted too.
  DMVI_CHECK(trained.ok()) << trained.status().ToString();
  return std::move(trained).value();
}

StatusOr<TrainedDeepMvi> DeepMviImputer::Fit(const storage::DataSource& source,
                                             const Mask& mask) {
  if (source.num_series() != mask.rows() || source.num_times() != mask.cols()) {
    return Status::InvalidArgument(
        "mask shape " + std::to_string(mask.rows()) + "x" +
        std::to_string(mask.cols()) + " does not match data " +
        std::to_string(source.num_series()) + "x" +
        std::to_string(source.num_times()));
  }

  // Imputer-contract hygiene: stale diagnostics from a previous call must
  // not leak into this one.
  train_stats_ = TrainStats();

  obs::Span fit_span = obs::GlobalSpan("train.fit");
  if (fit_span.active()) {
    fit_span.AddArg("num_series", std::to_string(source.num_series()));
    fit_span.AddArg("num_times", std::to_string(source.num_times()));
  }

  // Flattening (DeepMVI1D) only rewrites the index metadata; the values
  // and their row order are untouched, so it needs no data pass.
  const std::vector<Dimension> dims = config_.flatten_multidim
                                          ? FlattenedDims(source.dims())
                                          : source.dims();
  const DataTensor layout = DataTensor::LayoutOnly(dims);
  const int t_len = source.num_times();
  const int num_series = source.num_series();

  // Normalize per series on available cells; all modelling happens in
  // z-score space (windows are normalized by the reader) and predictions
  // are denormalized at the end.
  StatusOr<DataTensor::NormalizationStats> stats_or =
      source.ComputeNormalization(mask);
  if (!stats_or.ok()) return stats_or.status();
  DataTensor::NormalizationStats stats = std::move(stats_or).value();

  // ---- Resolve the window (Sec 4.3). ------------------------------------
  DeepMviConfig config = config_;
  if (config.window <= 0) {
    const auto lengths = mask.MissingBlockLengths();
    double mean_len = 0.0;
    for (int len : lengths) mean_len += len;
    if (!lengths.empty()) mean_len /= static_cast<double>(lengths.size());
    config.window = mean_len > 100.0 ? 20 : 10;
  }
  // Degenerate short series: shrink the window so the transformer still
  // has at least two windows.
  while (config.window > 1 && t_len < 2 * config.window) config.window /= 2;
  train_stats_.window_used = config.window;

  Rng rng(config.seed);

  // ---- Build the model. ----------------------------------------------------
  TrainedDeepMvi trained;
  trained.store_ = std::make_unique<nn::ParameterStore>();
  DeepMviModules model =
      internal::BuildDeepMviModules(trained.store_.get(), config, dims, rng);
  nn::ParameterStore& store = *trained.store_;
  nn::Adam adam(&store, {.learning_rate = config.learning_rate});

  // The windowed reader: every training read goes through it, fetching
  // only the time stripe a sample's chunk spans.
  StatusOr<std::unique_ptr<storage::WindowReader>> reader_or =
      source.MakeReader(stats);
  if (!reader_or.ok()) return reader_or.status();
  const storage::WindowReader& reader = **reader_or;

  // ---- Build training + validation samples (Sec 3). -----------------------
  MissingShapeDistribution shape_dist = MeasureMissingShapes(mask);
  auto make_sample = [&](Rng& sample_rng) {
    TrainSample sample;
    for (int attempt = 0; attempt < 50; ++attempt) {
      sample.row = sample_rng.UniformInt(num_series);
      sample.block_len = std::min(shape_dist.SampleLength(sample_rng), t_len / 2);
      sample.block_len = std::max(sample.block_len, 1);
      const int anchor = sample_rng.UniformInt(t_len);
      sample.block_start = std::clamp(
          anchor - sample_rng.UniformInt(sample.block_len), 0,
          t_len - sample.block_len);
      sample.target_times.clear();
      for (int t = sample.block_start; t < sample.block_start + sample.block_len;
           ++t) {
        if (mask.available(sample.row, t)) sample.target_times.push_back(t);
      }
      if (sample.target_times.empty()) continue;  // Block fell on real misses.
      // Cross-series blackout simulation.
      sample.blackout_rows.clear();
      const double fraction = shape_dist.SampleColumnFraction(sample_rng);
      if (fraction > 0.0) {
        for (int r = 0; r < num_series; ++r) {
          if (r != sample.row && sample_rng.Bernoulli(fraction)) {
            sample.blackout_rows.push_back(r);
          }
        }
      }
      return sample;
    }
    return sample;  // May have empty targets; caller skips those.
  };

  const int total_samples = config.samples_per_epoch;
  const int val_count = std::max(
      1, static_cast<int>(std::lround(config.validation_fraction * total_samples)));
  std::vector<TrainSample> val_samples;
  Rng val_rng = rng.Split();
  for (int i = 0; i < val_count; ++i) {
    TrainSample s = make_sample(val_rng);
    if (!s.target_times.empty()) val_samples.push_back(std::move(s));
  }

  // Forward + loss for one sample on the given tape. Reads go through a
  // value window covering the sample's chunk and an availability overlay
  // that applies the synthetic block without copying the mask (the
  // historical per-sample full-mask copy was O(num_series x num_times)
  // bytes). Window I/O errors land in *io_status.
  auto sample_loss = [&](Tape& tape, const TrainSample& sample,
                         Status* io_status) {
    Chunk chunk = MakeChunk(t_len, config.window, config.max_context,
                            sample.block_start + sample.block_len / 2);
    // Keep only targets inside the chunk.
    std::vector<int> targets;
    for (int t : sample.target_times) {
      if (t >= chunk.start && t < chunk.start + chunk.len) targets.push_back(t);
    }
    if (targets.empty()) return Var();
    StatusOr<ValueWindow> window = reader.Read(chunk.start, chunk.len);
    if (!window.ok()) {
      *io_status = window.status();
      return Var();
    }
    std::vector<uint8_t> block_rows(num_series, 0);
    block_rows[sample.row] = 1;
    for (int r : sample.blackout_rows) block_rows[r] = 1;
    MaskOverlay synthetic(mask, sample.block_start,
                          sample.block_start + sample.block_len, block_rows);
    Var pred = PredictPositions(tape, model, config, layout, *window, synthetic,
                                sample.row, chunk, targets);
    Matrix truth(static_cast<int>(targets.size()), 1);
    for (size_t i = 0; i < targets.size(); ++i) {
      truth(static_cast<int>(i), 0) = (*window)(sample.row, targets[i]);
    }
    Matrix weight(static_cast<int>(targets.size()), 1, 1.0);
    return ad::WeightedMseLoss(pred, truth, weight);
  };

  // ---- Training loop with early stopping. ----------------------------------
  //
  // Batch-level data parallelism: the per-sample forward/backward passes
  // of each mini-batch run concurrently over worker slots, one Tape per
  // slot (tapes are reused across batches to keep their allocations warm).
  // Everything order-sensitive stays sequential on the calling thread —
  // sample generation draws from the single `rng` stream before workers
  // start, per-sample gradients reduce in sample order, and the Adam step
  // sees one already-reduced gradient per parameter — so the result is
  // bit-identical for every config.num_threads value, 1 included (the
  // serial path runs the same per-sample code).
  const auto& params = store.params();
  const size_t num_params = params.size();
  const int max_concurrent =
      std::max({1, config.batch_size, static_cast<int>(val_samples.size())});
  const int num_slots =
      std::max(1, EffectiveThreads(max_concurrent, config.num_threads));
  std::vector<std::unique_ptr<Tape>> slot_tapes;
  for (int s = 0; s < num_slots; ++s) {
    slot_tapes.push_back(std::make_unique<Tape>());
  }

  // One sample's contribution: its loss value and (for training samples)
  // its per-parameter gradient, extracted from the worker tape so the
  // reduction can run after the tape is reused. `status` carries window
  // read failures out of the worker.
  struct SampleEval {
    bool valid = false;
    double loss = 0.0;
    std::vector<Matrix> grads;  // Aligned with params; 0x0 when absent.
    Status status;
  };
  auto evaluate_sample = [&](Tape& tape, const TrainSample& sample,
                             bool with_grads, SampleEval* out) {
    tape.Reset();
    Var loss = sample_loss(tape, sample, &out->status);
    if (!loss.valid()) return;
    out->valid = true;
    out->loss = loss.scalar();
    if (!with_grads) return;
    tape.Backward(loss);
    out->grads.resize(num_params);
    for (size_t pi = 0; pi < num_params; ++pi) {
      const int leaf = tape.LeafIndexFor(params[pi].get());
      if (leaf < 0) continue;
      // Copy only gradients Backward actually produced; a materialized
      // parameter with no loss path contributes nothing to the sum.
      if (const Matrix* g = tape.AllocatedGrad(leaf)) out->grads[pi] = *g;
    }
  };
  // First window-read failure of a fanned-out batch, in sample order so
  // the surfaced error is deterministic.
  auto first_error = [](const std::vector<SampleEval>& evals) {
    for (const SampleEval& eval : evals) {
      if (!eval.status.ok()) return eval.status;
    }
    return Status::OK();
  };

  double best_val = 1e300;
  int epochs_without_improvement = 0;
  // Snapshot of the best parameters (by value).
  std::vector<Matrix> best_params;
  auto snapshot = [&]() {
    best_params.clear();
    for (const auto& p : store.params()) best_params.push_back(p->value());
  };
  auto restore = [&]() {
    if (best_params.empty()) return;
    for (size_t i = 0; i < best_params.size(); ++i) {
      store.params()[i]->value() = best_params[i];
    }
  };
  snapshot();

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    obs::Span epoch_span = obs::GlobalSpan("train.epoch");
    if (epoch_span.active()) epoch_span.AddArg("epoch", std::to_string(epoch));
    double train_loss = 0.0;
    int train_batches = 0;
    int made = 0;
    while (made < total_samples) {
      obs::Span batch_span = obs::GlobalSpan("train.batch");
      // Sample generation consumes the shared rng stream sequentially, so
      // it happens before the workers start.
      std::vector<TrainSample> batch;
      for (int b = 0; b < config.batch_size && made < total_samples; ++b, ++made) {
        TrainSample sample = make_sample(rng);
        if (sample.target_times.empty()) continue;
        batch.push_back(std::move(sample));
      }
      if (batch.empty()) continue;
      if (batch_span.active()) {
        batch_span.AddArg("batch_size", std::to_string(batch.size()));
      }

      std::vector<SampleEval> evals(batch.size());
      ParallelForWithSlot(
          static_cast<int>(batch.size()), config.num_threads,
          [&](int i, int slot) {
            evaluate_sample(*slot_tapes[slot], batch[i], /*with_grads=*/true,
                            &evals[i]);
          });
      DMVI_RETURN_IF_ERROR(first_error(evals));

      // Fixed-order reduction: losses and gradients sum in sample order
      // regardless of which slot evaluated which sample.
      double batch_loss = 0.0;
      int batch_count = 0;
      std::vector<Matrix> reduced(num_params);
      for (const SampleEval& eval : evals) {
        if (!eval.valid) continue;
        ++batch_count;
        batch_loss += eval.loss;
        for (size_t pi = 0; pi < num_params; ++pi) {
          const Matrix& g = eval.grads[pi];
          if (g.size() == 0) continue;
          if (reduced[pi].size() == 0) {
            reduced[pi] = g;
          } else {
            reduced[pi] += g;
          }
        }
      }
      if (batch_count == 0) continue;
      const double inv_count = 1.0 / static_cast<double>(batch_count);
      batch_loss *= inv_count;
      std::vector<const Matrix*> grad_ptrs(num_params, nullptr);
      for (size_t pi = 0; pi < num_params; ++pi) {
        if (reduced[pi].size() == 0) continue;
        reduced[pi] *= inv_count;
        grad_ptrs[pi] = &reduced[pi];
      }
      adam.StepWithGrads(grad_ptrs);
      train_loss += batch_loss;
      ++train_batches;
    }
    train_stats_.final_train_loss =
        train_batches > 0 ? train_loss / train_batches : 0.0;

    // Validation: forward-only, fanned out the same way; the loss sum runs
    // in sample order.
    obs::Span val_span = obs::GlobalSpan("train.validate");
    std::vector<SampleEval> val_evals(val_samples.size());
    ParallelForWithSlot(
        static_cast<int>(val_samples.size()), config.num_threads,
        [&](int i, int slot) {
          evaluate_sample(*slot_tapes[slot], val_samples[i],
                          /*with_grads=*/false, &val_evals[i]);
        });
    DMVI_RETURN_IF_ERROR(first_error(val_evals));
    double val_loss = 0.0;
    int val_batches = 0;
    for (const SampleEval& eval : val_evals) {
      if (eval.valid) {
        val_loss += eval.loss;
        ++val_batches;
      }
    }
    val_loss = val_batches > 0 ? val_loss / val_batches : 0.0;
    val_span.End();
    train_stats_.epochs_run = epoch + 1;

    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      train_stats_.best_validation_loss = val_loss;
      snapshot();
      epochs_without_improvement = 0;
    } else if (++epochs_without_improvement >= config.patience) {
      break;
    }
  }
  restore();

  // Reference profile for serving-time drift detection. Single-threaded
  // streaming pass in fixed stripes over the same source, so the record —
  // and therefore the checkpoint bytes — is identical across thread
  // counts and between in-core and chunked training.
  {
    obs::Span profile_span = obs::GlobalSpan("train.quality_profile");
    StatusOr<QualityProfile> profile = ComputeQualityProfile(source, mask);
    if (!profile.ok()) return profile.status();
    trained.profile_ = std::move(profile).value();
    trained.has_profile_ = true;
  }

  trained.config_ = config;
  trained.dims_ = dims;
  trained.stats_ = std::move(stats);
  trained.modules_ = model;
  return trained;
}

Matrix DeepMviImputer::Impute(const DataTensor& raw_data, const Mask& mask) {
  // Train-once + inference-only: identical (bit for bit) to the historical
  // single-shot implementation; tests/core_test.cc's determinism contract
  // locks this in.
  return Fit(raw_data, mask).Predict(raw_data, mask);
}

}  // namespace deepmvi
