#ifndef DEEPMVI_CORE_DEEPMVI_H_
#define DEEPMVI_CORE_DEEPMVI_H_

#include <string>

#include "core/deepmvi_config.h"
#include "data/imputer.h"

namespace deepmvi {

/// DeepMVI (Bansal, Deshpande, Sarawagi — VLDB 2021): deep missing-value
/// imputation for multidimensional time series.
///
/// The model combines, per missing cell (k, t):
///  - a Temporal Transformer capturing coarse within-series repetition
///    (Sec 4.1),
///  - a fine-grained local signal: the masked mean of the window around t
///    (Eq. 15),
///  - kernel regression over learned member embeddings pooling the values
///    of sibling series at time t, per dimension (Sec 4.2),
/// and a linear output head (Eq. 6), trained with simulated missing blocks
/// around available anchor cells so that training inputs are distributed
/// like the real missing data (Sec 3). Training uses Adam with validation
/// early stopping.
///
/// Impute() trains a fresh model on the given dataset and returns the
/// completed matrix; the class is stateless between calls apart from the
/// configuration.
class DeepMviImputer : public Imputer {
 public:
  DeepMviImputer() = default;
  explicit DeepMviImputer(DeepMviConfig config) : config_(config) {}

  std::string name() const override;
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

  /// Diagnostics from the most recent Impute call.
  struct TrainStats {
    int epochs_run = 0;
    double best_validation_loss = 0.0;
    double final_train_loss = 0.0;
    int window_used = 0;
  };
  const TrainStats& train_stats() const { return train_stats_; }

  DeepMviConfig& config() { return config_; }

 private:
  DeepMviConfig config_;
  TrainStats train_stats_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_DEEPMVI_H_
