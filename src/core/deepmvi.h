#ifndef DEEPMVI_CORE_DEEPMVI_H_
#define DEEPMVI_CORE_DEEPMVI_H_

#include <string>

#include "core/deepmvi_config.h"
#include "core/trained_deepmvi.h"
#include "data/imputer.h"
#include "storage/data_source.h"

namespace deepmvi {

/// DeepMVI (Bansal, Deshpande, Sarawagi — VLDB 2021): deep missing-value
/// imputation for multidimensional time series.
///
/// The model combines, per missing cell (k, t):
///  - a Temporal Transformer capturing coarse within-series repetition
///    (Sec 4.1),
///  - a fine-grained local signal: the masked mean of the window around t
///    (Eq. 15),
///  - kernel regression over learned member embeddings pooling the values
///    of sibling series at time t, per dimension (Sec 4.2),
/// and a linear output head (Eq. 6), trained with simulated missing blocks
/// around available anchor cells so that training inputs are distributed
/// like the real missing data (Sec 3). Training uses Adam with validation
/// early stopping.
///
/// The training/serving split: Fit() trains a fresh model on the given
/// dataset and returns a TrainedDeepMvi (weights, normalization stats,
/// resolved config) that answers inference-only Predict() queries and can
/// be checkpointed via Save/Load. Impute() is Fit + Predict on the same
/// input — one-shot behavior and bit-for-bit results are unchanged — and
/// the class stays stateless between calls apart from the configuration
/// (train_stats_ is diagnostics only and reset at the top of every Fit).
class DeepMviImputer : public Imputer {
 public:
  DeepMviImputer() = default;
  explicit DeepMviImputer(DeepMviConfig config) : config_(config) {}

  std::string name() const override;
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

  /// Trains a model on `data`/`mask` (Sec 3 simulated-missing protocol,
  /// Adam, validation early stopping) without running final inference.
  /// Deterministic in config().seed; mini-batches evaluate data-parallel
  /// over config().num_threads workers with bit-identical results for
  /// every thread count (samples are generated from one RNG stream and
  /// gradients reduce in sample order).
  TrainedDeepMvi Fit(const DataTensor& data, const Mask& mask);

  /// Out-of-core variant: trains from any storage::DataSource — typically
  /// a ChunkedDataSource over a store directory — touching only the value
  /// windows each training sample spans, so peak residency stays bounded
  /// by the chunk-cache budget instead of the dense tensor. The in-core
  /// Fit above routes through this same code path (wrapped in an
  /// InMemoryDataSource), and the two produce byte-identical checkpoints:
  /// same RNG sample schedule, same reduction order, any num_threads.
  /// I/O failures (corrupt or truncated chunks) surface as Status errors.
  StatusOr<TrainedDeepMvi> Fit(const storage::DataSource& source,
                               const Mask& mask);

  /// Diagnostics from the most recent Fit (or Impute) call.
  struct TrainStats {
    int epochs_run = 0;
    double best_validation_loss = 0.0;
    double final_train_loss = 0.0;
    int window_used = 0;
  };
  const TrainStats& train_stats() const { return train_stats_; }

  DeepMviConfig& config() { return config_; }

 private:
  DeepMviConfig config_;
  TrainStats train_stats_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_DEEPMVI_H_
