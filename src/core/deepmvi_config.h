#ifndef DEEPMVI_CORE_DEEPMVI_CONFIG_H_
#define DEEPMVI_CORE_DEEPMVI_CONFIG_H_

#include <cstdint>

namespace deepmvi {

/// Hyper-parameters of DeepMVI. Defaults follow Sec 4.3 of the paper:
/// p = 32 filters, window w = 10 (20 when the mean missing block exceeds
/// 100), 4 attention heads, member-embedding size 10, Adam lr = 1e-3.
struct DeepMviConfig {
  // ---- Architecture ----------------------------------------------------
  /// Convolution filter count p (feature width of the transformer).
  int filters = 32;
  /// Window size w of the non-overlapping convolution. When <= 0 the
  /// window is chosen automatically: 10, or 20 if the mean missing block
  /// in the dataset is larger than 100 steps.
  int window = 0;
  int num_heads = 4;
  /// Embedding size d_i of each dimension's members (kernel regression).
  int embedding_dim = 10;
  /// RBF kernel sharpness gamma (Eq. 17).
  double kernel_gamma = 1.0;
  /// Pre-selection size L for large dimensions (Sec 4.2).
  int top_siblings = 20;

  // ---- Training ----------------------------------------------------------
  double learning_rate = 1e-3;
  int max_epochs = 30;
  /// Training anchors sampled per epoch.
  int samples_per_epoch = 128;
  int batch_size = 4;
  /// Early-stopping patience in epochs without validation improvement.
  int patience = 4;
  /// Fraction of sampled anchors held out for validation.
  double validation_fraction = 0.2;
  /// Longest context (in time steps) processed at once; longer series are
  /// windowed around the imputation target. Keeps attention quadratic cost
  /// bounded for 50k-step series (BAFU).
  int max_context = 1024;
  uint64_t seed = 123;
  /// Worker threads for batch-level data parallelism inside Fit (forward/
  /// backward of a mini-batch's samples run concurrently, one autodiff
  /// tape per worker slot; gradients reduce in sample order before each
  /// optimizer step). <= 0 means hardware concurrency. Results are
  /// bit-identical for every value — the thread count only changes
  /// wall-clock time. Default 1 keeps nested parallelism out of callers
  /// that already fan out (eval suite, serving).
  int num_threads = 1;

  // ---- Ablation switches (Sec 5.5) -----------------------------------------
  /// Disables the temporal transformer ("No Temporal Transformer").
  bool use_temporal_transformer = true;
  /// Replaces the context-window queries/keys by positional encodings only
  /// ("No Context Window").
  bool use_context_window = true;
  /// Disables kernel regression ("No Kernel Regression").
  bool use_kernel_regression = true;
  /// Disables the fine-grained local signal (Sec 5.5.3).
  bool use_fine_grained = true;
  /// Flattens the multidimensional index before modelling (DeepMVI1D,
  /// Sec 5.5.4). The embedding size is doubled to keep parameters equal.
  bool flatten_multidim = false;
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_DEEPMVI_CONFIG_H_
