#include "core/deepmvi_modules.h"

#include <algorithm>

namespace deepmvi {
namespace internal {

using ad::Tape;
using ad::Var;

DeepMviModules BuildDeepMviModules(nn::ParameterStore* store,
                                   const DeepMviConfig& config,
                                   const std::vector<Dimension>& dims,
                                   Rng& rng) {
  DMVI_CHECK_GT(config.window, 0) << "window must be resolved before build";
  DeepMviModules model;
  model.transformer = TemporalTransformer(store, config, rng);
  model.kernel_regression = KernelRegression(store, dims, config, rng);
  model.feature_dim = config.filters + 1 + 3 * static_cast<int>(dims.size());
  model.output = nn::Linear(store, "head", model.feature_dim, 1, rng);
  return model;
}

Chunk MakeChunk(int t_len, int window, int max_context, int center) {
  Chunk chunk;
  chunk.len = std::min((t_len / window) * window, (max_context / window) * window);
  chunk.len = std::max(chunk.len, std::min(2 * window, (t_len / window) * window));
  chunk.start = std::clamp(center - chunk.len / 2, 0, t_len - chunk.len);
  return chunk;
}

Matrix FineGrainedSignal(const ValueWindow& values, const MaskOverlay& avail,
                         int row, int chunk_start, int window,
                         const std::vector<int>& times) {
  Matrix out(static_cast<int>(times.size()), 1);
  for (size_t i = 0; i < times.size(); ++i) {
    const int local = times[i] - chunk_start;
    const int w0 = chunk_start + (local / window) * window;
    double sum = 0.0;
    int count = 0;
    for (int t = w0; t < w0 + window; ++t) {
      if (t >= values.t_begin() && t < values.t_end() &&
          avail.available(row, t)) {
        sum += values(row, t);
        ++count;
      }
    }
    out(static_cast<int>(i), 0) = count > 0 ? sum / count : 0.0;
  }
  return out;
}

Var PredictPositions(Tape& tape, const DeepMviModules& model,
                     const DeepMviConfig& config, const DataTensor& data,
                     const ValueWindow& values, const MaskOverlay& avail,
                     int row, const Chunk& chunk,
                     const std::vector<int>& target_times) {
  const int n_pos = static_cast<int>(target_times.size());
  const int window = model.transformer.window();
  const int num_windows = chunk.len / window;

  std::vector<Var> features;

  // ---- Temporal transformer features. ---------------------------------
  if (config.use_temporal_transformer && num_windows >= 2) {
    Matrix series(1, chunk.len);
    std::vector<double> window_avail(num_windows, 1.0);
    for (int t = 0; t < chunk.len; ++t) {
      const int abs_t = chunk.start + t;
      if (avail.available(row, abs_t)) {
        series(0, t) = values(row, abs_t);
      } else {
        window_avail[t / window] = 0.0;
      }
    }
    Var htt_all = model.transformer.Forward(tape, series, window_avail);
    std::vector<int> local(n_pos);
    for (int i = 0; i < n_pos; ++i) local[i] = target_times[i] - chunk.start;
    features.push_back(ad::GatherRows(htt_all, local));
  } else {
    features.push_back(tape.Constant(Matrix(n_pos, config.filters)));
  }

  // ---- Fine-grained local signal. ----------------------------------------
  if (config.use_fine_grained) {
    features.push_back(tape.Constant(FineGrainedSignal(
        values, avail, row, chunk.start, window, target_times)));
  } else {
    features.push_back(tape.Constant(Matrix(n_pos, 1)));
  }

  // ---- Kernel regression features. -----------------------------------------
  if (config.use_kernel_regression && data.num_series() > 1) {
    features.push_back(model.kernel_regression.Forward(tape, data, values, avail,
                                                       row, target_times));
  } else {
    features.push_back(
        tape.Constant(Matrix(n_pos, 3 * data.num_dims())));
  }

  // ---- Output head (Eq. 6). --------------------------------------------------
  return model.output.Forward(tape, ad::ConcatCols(features));
}

Matrix ImputeMissingNormalized(const DeepMviModules& model,
                               const DeepMviConfig& config,
                               const DataTensor& data, const Matrix& values,
                               const Mask& mask) {
  const int t_len = data.num_times();
  Tape tape;
  Matrix imputed = values;
  for (int row = 0; row < data.num_series(); ++row) {
    // Collect this series' missing times and cover them chunk by chunk.
    std::vector<int> missing;
    for (int t = 0; t < t_len; ++t) {
      if (mask.missing(row, t)) missing.push_back(t);
    }
    size_t next = 0;
    while (next < missing.size()) {
      Chunk chunk = MakeChunk(t_len, config.window, config.max_context,
                              missing[next]);
      std::vector<int> targets;
      while (next < missing.size() &&
             missing[next] < chunk.start + chunk.len) {
        if (missing[next] >= chunk.start) targets.push_back(missing[next]);
        ++next;
      }
      if (targets.empty()) break;  // Should not happen; guards looping.
      tape.Reset();
      Var pred = PredictPositions(tape, model, config, data, values, mask, row,
                                  chunk, targets);
      for (size_t i = 0; i < targets.size(); ++i) {
        imputed(row, targets[i]) = pred.value()(static_cast<int>(i), 0);
      }
    }
  }
  return imputed;
}

}  // namespace internal
}  // namespace deepmvi
