#ifndef DEEPMVI_CORE_DEEPMVI_MODULES_H_
#define DEEPMVI_CORE_DEEPMVI_MODULES_H_

#include <vector>

#include "core/deepmvi_config.h"
#include "core/kernel_regression.h"
#include "core/temporal_transformer.h"
#include "nn/layers.h"
#include "tensor/data_tensor.h"
#include "tensor/value_window.h"

namespace deepmvi {
namespace internal {

/// The assembled DeepMVI model: all modules share one parameter store.
/// The struct itself is cheap to copy (it only holds Parameter pointers
/// into the store); whoever owns the ParameterStore owns the weights.
///
/// This used to live inside deepmvi.cc; it is a header now so that the
/// training path (DeepMviImputer::Fit) and the serving path
/// (TrainedDeepMvi::Predict, checkpoint loading) assemble and run exactly
/// the same model.
struct DeepMviModules {
  TemporalTransformer transformer;
  KernelRegression kernel_regression;
  nn::Linear output;
  int feature_dim = 0;
};

/// Builds the modules in the canonical order (transformer, kernel
/// regression, output head), drawing initial values from `rng` exactly as
/// training does. A model rebuilt from the same config and dimensions is
/// therefore parameter-for-parameter (name and shape) compatible with a
/// checkpoint written from a trained instance. `config.window` must
/// already be resolved (> 0).
DeepMviModules BuildDeepMviModules(nn::ParameterStore* store,
                                   const DeepMviConfig& config,
                                   const std::vector<Dimension>& dims,
                                   Rng& rng);

/// Chunk geometry: [start, start + len) with len a positive multiple of
/// the window size, len <= max_context, covering as much of the series as
/// possible around `center`.
struct Chunk {
  int start = 0;
  int len = 0;
};

Chunk MakeChunk(int t_len, int window, int max_context, int center);

/// Per-position fine-grained signal (Eq. 15): masked mean of the window
/// containing each target position. All windows containing a target lie
/// inside [chunk_start, chunk_start + chunk_len) and therefore inside
/// `values` when the window covers the chunk.
Matrix FineGrainedSignal(const ValueWindow& values, const MaskOverlay& avail,
                         int row, int chunk_start, int window,
                         const std::vector<int>& times);

/// Runs the full forward pass for one (series, chunk, targets) triple and
/// returns the predictions (|targets| x 1). `values` is a normalized value
/// window covering at least the chunk's time range (in-core callers pass
/// the full matrix, which converts implicitly) and `avail` the
/// availability view the forward pass may read. `data` supplies index
/// metadata only (dims, siblings) and may be values-free (LayoutOnly):
/// every data read goes through `values`.
ad::Var PredictPositions(ad::Tape& tape, const DeepMviModules& model,
                         const DeepMviConfig& config, const DataTensor& data,
                         const ValueWindow& values, const MaskOverlay& avail,
                         int row, const Chunk& chunk,
                         const std::vector<int>& target_times);

/// Inference only: fills every cell missing in `mask` with the model's
/// prediction, chunk by chunk, and returns the completed matrix in
/// normalized space (available cells pass through from `values`).
/// Deterministic — no RNG is consumed — so repeated calls are bit-equal.
Matrix ImputeMissingNormalized(const DeepMviModules& model,
                               const DeepMviConfig& config,
                               const DataTensor& data, const Matrix& values,
                               const Mask& mask);

}  // namespace internal
}  // namespace deepmvi

#endif  // DEEPMVI_CORE_DEEPMVI_MODULES_H_
