#include "core/forecaster.h"

namespace deepmvi {

Matrix DeepMviForecaster::Forecast(const DataTensor& data, const Mask& mask,
                                   int horizon) {
  DMVI_CHECK_GT(horizon, 0);
  DMVI_CHECK_EQ(data.num_series(), mask.rows());
  DMVI_CHECK_EQ(data.num_times(), mask.cols());
  const int n = data.num_series();
  const int t_len = data.num_times();

  // Extend every series with `horizon` missing steps.
  Matrix extended(n, t_len + horizon);
  extended.SetBlock(0, 0, data.values());
  Mask extended_mask(n, t_len + horizon);
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) {
      extended_mask.set_available(r, t, mask.available(r, t));
    }
    extended_mask.SetMissingRange(r, t_len, t_len + horizon);
  }
  DataTensor extended_data(data.dims(), std::move(extended));

  DeepMviImputer imputer(config_);
  Matrix completed = imputer.Impute(extended_data, extended_mask);
  return completed.Block(0, t_len, n, horizon);
}

}  // namespace deepmvi
