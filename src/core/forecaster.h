#ifndef DEEPMVI_CORE_FORECASTER_H_
#define DEEPMVI_CORE_FORECASTER_H_

#include "core/deepmvi.h"

namespace deepmvi {

/// Forecasting with the DeepMVI architecture — the paper's stated future
/// work (Sec 6): "applying our neural architecture to other time-series
/// tasks including forecasting".
///
/// A horizon-h forecast is cast as imputation of a missing block appended
/// at the right edge of every series: the history is extended by h
/// all-missing steps and DeepMVI fills them. The simulated-missing
/// training procedure automatically generates right-edge blocks (blocks
/// are placed uniformly, including flush against the series end), so the
/// model learns to extrapolate from left context and sibling series alone.
class DeepMviForecaster {
 public:
  DeepMviForecaster() = default;
  explicit DeepMviForecaster(DeepMviConfig config) : config_(config) {}

  /// Forecasts `horizon` steps past the end of every series of `data`.
  /// `mask` marks availability of the historical values (use an
  /// all-available mask when the history is complete). Returns a
  /// num_series x horizon matrix of forecasts.
  Matrix Forecast(const DataTensor& data, const Mask& mask, int horizon);

 private:
  DeepMviConfig config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_FORECASTER_H_
