#include "core/kernel_regression.h"

#include <algorithm>
#include <cmath>

namespace deepmvi {

using ad::Tape;
using ad::Var;

KernelRegression::KernelRegression(nn::ParameterStore* store,
                                   const std::vector<Dimension>& dims,
                                   const DeepMviConfig& config, Rng& rng)
    : gamma_(config.kernel_gamma), top_siblings_(config.top_siblings) {
  // DeepMVI1D doubles the embedding size to keep the parameter budget
  // comparable (Sec 5.5.4).
  const int dim_size = config.flatten_multidim ? 2 * config.embedding_dim
                                               : config.embedding_dim;
  for (size_t i = 0; i < dims.size(); ++i) {
    embeddings_.emplace_back(store, "kr.embed." + dims[i].name + std::to_string(i),
                             dims[i].size(), dim_size, rng);
  }
}

Var KernelRegression::Forward(Tape& tape, const DataTensor& data,
                              const ValueWindow& values,
                              const MaskOverlay& avail, int row,
                              const std::vector<int>& times) const {
  DMVI_CHECK_EQ(static_cast<int>(embeddings_.size()), data.num_dims());
  const int n_pos = static_cast<int>(times.size());
  DMVI_CHECK_GT(n_pos, 0);
  const std::vector<int> k = data.UnflattenRow(row);

  std::vector<Var> features;  // 3 per dimension, each n_pos x 1.
  for (int dim = 0; dim < data.num_dims(); ++dim) {
    std::vector<int> siblings = data.Siblings(row, dim);

    // Pre-select the top-L siblings by current kernel similarity when the
    // dimension is large (Sec 4.2). Selection reads the embedding values
    // directly; gradients still flow through the kept siblings.
    if (static_cast<int>(siblings.size()) > top_siblings_) {
      const Matrix& table = embeddings_[dim].table_value();
      const int own_member = k[dim];
      std::vector<std::pair<double, int>> scored;
      scored.reserve(siblings.size());
      for (int sib_row : siblings) {
        const int member = data.UnflattenRow(sib_row)[dim];
        double dist2 = 0.0;
        for (int c = 0; c < table.cols(); ++c) {
          const double d = table(own_member, c) - table(member, c);
          dist2 += d * d;
        }
        scored.emplace_back(dist2, sib_row);
      }
      std::nth_element(scored.begin(), scored.begin() + top_siblings_,
                       scored.end());
      siblings.clear();
      for (int i = 0; i < top_siblings_; ++i) siblings.push_back(scored[i].second);
    }

    if (siblings.empty()) {
      // Singleton dimension: features are identically zero.
      Var zeros = tape.Constant(Matrix(n_pos, 1));
      features.push_back(zeros);
      features.push_back(zeros);
      features.push_back(zeros);
      continue;
    }
    const int num_sib = static_cast<int>(siblings.size());

    // ---- Kernel weights from embeddings (Eq. 17). ----------------------
    std::vector<int> sib_members(num_sib);
    for (int s = 0; s < num_sib; ++s) {
      sib_members[s] = data.UnflattenRow(siblings[s])[dim];
    }
    Var own_embed = embeddings_[dim].Forward(tape, {k[dim]});       // 1 x d
    Var sib_embed = embeddings_[dim].Forward(tape, sib_members);    // L x d
    Var diff = ad::SubRowVector(sib_embed, own_embed);
    Var dist2 = ad::RowSum(ad::Square(diff));                       // L x 1
    Var kernel = ad::Exp(ad::Scale(dist2, -gamma_));                // L x 1
    Var kernel_t = ad::Transpose(kernel);                           // 1 x L

    // ---- Sibling data at the requested times (constants). --------------
    Matrix sib_values(num_sib, n_pos);   // masked: unavailable -> 0
    Matrix sib_avail(num_sib, n_pos);    // 0/1
    for (int s = 0; s < num_sib; ++s) {
      for (int p = 0; p < n_pos; ++p) {
        const int t = times[p];
        if (avail.available(siblings[s], t)) {
          sib_avail(s, p) = 1.0;
          sib_values(s, p) = values(siblings[s], t);
        }
      }
    }

    // ---- U (Eq. 18), W (Eq. 19): differentiable in the embeddings. -----
    Var numerator = ad::MatMul(kernel_t, tape.Constant(sib_values));  // 1 x P
    Var weight_sum = ad::MatMul(kernel_t, tape.Constant(sib_avail));  // 1 x P
    Var u = ad::Div(numerator, ad::AddScalar(weight_sum, 1e-8));

    // ---- V (Eq. 20): plain sibling variance, a data constant. -----------
    Matrix variance(1, n_pos);
    for (int p = 0; p < n_pos; ++p) {
      double sum = 0.0, sum2 = 0.0;
      int count = 0;
      for (int s = 0; s < num_sib; ++s) {
        if (sib_avail(s, p) != 0.0) {
          sum += sib_values(s, p);
          sum2 += sib_values(s, p) * sib_values(s, p);
          ++count;
        }
      }
      if (count > 1) {
        const double mean = sum / count;
        variance(0, p) = std::max(sum2 / count - mean * mean, 0.0);
      }
    }

    features.push_back(ad::Transpose(u));
    features.push_back(ad::Transpose(weight_sum));
    features.push_back(tape.Constant(variance.Transpose()));
  }
  return ad::ConcatCols(features);  // n_pos x 3n (Eq. 21)
}

}  // namespace deepmvi
