#ifndef DEEPMVI_CORE_KERNEL_REGRESSION_H_
#define DEEPMVI_CORE_KERNEL_REGRESSION_H_

#include <vector>

#include "core/deepmvi_config.h"
#include "nn/layers.h"
#include "tensor/data_tensor.h"
#include "tensor/value_window.h"

namespace deepmvi {

/// The paper's Kernel Regression module (Sec 4.2).
///
/// Every member of every non-time dimension gets a learned embedding; the
/// relatedness of two series that differ in exactly one dimension
/// ("siblings", Eq. 16) is an RBF kernel over the differing members'
/// embeddings (Eq. 17). For a cell (k, t) the module outputs, per
/// dimension i, the kernel-weighted average of the available sibling
/// values at time t (Eq. 18), the total kernel weight (Eq. 19), and the
/// sibling variance (Eq. 20), concatenated into a 3n-vector (Eq. 21).
/// Gradients flow into the member embeddings through the kernel weights.
class KernelRegression {
 public:
  KernelRegression() = default;
  KernelRegression(nn::ParameterStore* store, const std::vector<Dimension>& dims,
                   const DeepMviConfig& config, Rng& rng);

  /// Feature width of the output (3 per dimension).
  int feature_dim() const { return 3 * static_cast<int>(embeddings_.size()); }

  /// Computes the kernel-regression features for series `row` of `data` at
  /// the given absolute time indices. `values` / `avail` are the
  /// (normalized) value window and the availability view used for sibling
  /// reads; every requested time must lie inside the window (a full
  /// Matrix / plain Mask convert implicitly). `data` supplies only index
  /// metadata (dims, siblings) and may be values-free (LayoutOnly).
  /// Returns a |times| x 3n matrix Var.
  ad::Var Forward(ad::Tape& tape, const DataTensor& data,
                  const ValueWindow& values, const MaskOverlay& avail, int row,
                  const std::vector<int>& times) const;

 private:
  double gamma_ = 1.0;
  int top_siblings_ = 20;
  std::vector<nn::Embedding> embeddings_;  // One per dimension.
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_KERNEL_REGRESSION_H_
