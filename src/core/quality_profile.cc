#include "core/quality_profile.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "nn/serialize.h"
#include "obs/quantile_sketch.h"

namespace deepmvi {
namespace {

// Trailing checkpoint record: magic + version, then the body below.
constexpr char kProfileMagic[4] = {'D', 'M', 'V', 'Q'};
constexpr uint32_t kProfileVersion = 1;

// Fixed stripe length for the streaming pass. The constant (not the
// source's chunk layout) defines the read schedule, so in-core and
// chunked sources observe identical value sequences.
constexpr int kStripeLen = 4096;

// Plausibility guard mirroring the checkpoint reader's limits.
constexpr int64_t kMaxProfileSeries = int64_t{1} << 26;

}  // namespace

double QualityProfile::MissingRate() const {
  int64_t cells = 0;
  int64_t missing = 0;
  for (const Series& s : series) {
    cells += s.count + s.missing;
    missing += s.missing;
  }
  return cells > 0 ? static_cast<double>(missing) / static_cast<double>(cells)
                   : 0.0;
}

StatusOr<QualityProfile> ComputeQualityProfile(
    const storage::DataSource& source, const Mask& mask) {
  const int num_series = source.num_series();
  const int num_times = source.num_times();
  if (mask.rows() != num_series || mask.cols() != num_times) {
    return Status::InvalidArgument("quality profile: mask shape mismatch");
  }

  // Identity stats make the reader's (v - mean) / stddev a bit-preserving
  // no-op, so the profile summarizes raw values through the same windowed
  // read path training uses.
  DataTensor::NormalizationStats identity;
  identity.mean.assign(static_cast<size_t>(num_series), 0.0);
  identity.stddev.assign(static_cast<size_t>(num_series), 1.0);
  StatusOr<std::unique_ptr<storage::WindowReader>> reader =
      source.MakeReader(identity);
  if (!reader.ok()) return reader.status();

  std::vector<obs::DistributionSummary> summaries(
      static_cast<size_t>(num_series));
  std::vector<int64_t> available(static_cast<size_t>(num_series), 0);
  for (int t0 = 0; t0 < num_times; t0 += kStripeLen) {
    const int len = std::min(kStripeLen, num_times - t0);
    StatusOr<ValueWindow> window = (*reader)->Read(t0, len);
    if (!window.ok()) return window.status();
    for (int r = 0; r < num_series; ++r) {
      for (int t = t0; t < t0 + len; ++t) {
        if (mask.available(r, t)) {
          ++available[static_cast<size_t>(r)];
          summaries[static_cast<size_t>(r)].Observe((*window)(r, t));
        }
      }
    }
  }

  QualityProfile profile;
  profile.series.resize(static_cast<size_t>(num_series));
  for (int r = 0; r < num_series; ++r) {
    const obs::DistributionSummary& summary =
        summaries[static_cast<size_t>(r)];
    QualityProfile::Series& out = profile.series[static_cast<size_t>(r)];
    out.count = available[static_cast<size_t>(r)];
    out.missing = static_cast<int64_t>(num_times) - out.count;
    out.mean = summary.mean();
    out.stddev = summary.stddev();
    out.min = summary.min();
    out.max = summary.max();
    if (summary.count() > 0) {
      out.decile_edges.reserve(QualityProfile::kNumDecileEdges);
      for (int d = 1; d <= QualityProfile::kNumDecileEdges; ++d) {
        out.decile_edges.push_back(summary.sketch().Quantile(d / 10.0));
      }
    }
  }
  return profile;
}

Status AppendQualityProfileRecord(std::ostream& os,
                                  const QualityProfile& profile) {
  os.write(kProfileMagic, sizeof(kProfileMagic));
  nn::WritePod(os, kProfileVersion);
  nn::WritePod(os, static_cast<int64_t>(profile.series.size()));
  for (const QualityProfile::Series& s : profile.series) {
    nn::WritePod(os, s.count);
    nn::WritePod(os, s.missing);
    nn::WritePod(os, s.mean);
    nn::WritePod(os, s.stddev);
    nn::WritePod(os, s.min);
    nn::WritePod(os, s.max);
    nn::WritePod(os, static_cast<int32_t>(s.decile_edges.size()));
    for (double edge : s.decile_edges) nn::WritePod(os, edge);
  }
  if (!os) return Status::IoError("write failed for quality profile record");
  return Status::OK();
}

StatusOr<bool> ReadQualityProfileRecord(std::istream& is,
                                        QualityProfile* out) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (is.gcount() == 0) return false;  // Clean EOF: legacy checkpoint.
  if (is.gcount() != sizeof(magic) ||
      std::memcmp(magic, kProfileMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "corrupt file: trailing bytes are not a quality profile record");
  }
  uint32_t version = 0;
  if (!nn::ReadPod(is, &version)) {
    return Status::IoError("truncated file: quality profile version missing");
  }
  if (version != kProfileVersion) {
    return Status::InvalidArgument("unsupported quality profile version " +
                                   std::to_string(version));
  }
  int64_t num_series = 0;
  if (!nn::ReadPod(is, &num_series)) {
    return Status::IoError("truncated file: quality profile header missing");
  }
  if (num_series < 0 || num_series > kMaxProfileSeries) {
    return Status::InvalidArgument(
        "corrupt file: implausible quality profile series count " +
        std::to_string(num_series));
  }
  QualityProfile profile;
  profile.series.resize(static_cast<size_t>(num_series));
  for (QualityProfile::Series& s : profile.series) {
    int32_t num_edges = 0;
    if (!nn::ReadPod(is, &s.count) || !nn::ReadPod(is, &s.missing) ||
        !nn::ReadPod(is, &s.mean) || !nn::ReadPod(is, &s.stddev) ||
        !nn::ReadPod(is, &s.min) || !nn::ReadPod(is, &s.max) ||
        !nn::ReadPod(is, &num_edges)) {
      return Status::IoError("truncated file: quality profile series missing");
    }
    if (num_edges < 0 || num_edges > 1024) {
      return Status::InvalidArgument(
          "corrupt file: implausible quality profile edge count " +
          std::to_string(num_edges));
    }
    s.decile_edges.resize(static_cast<size_t>(num_edges));
    for (double& edge : s.decile_edges) {
      if (!nn::ReadPod(is, &edge)) {
        return Status::IoError("truncated file: quality profile edges missing");
      }
    }
  }
  *out = std::move(profile);
  return true;
}

}  // namespace deepmvi
