#ifndef DEEPMVI_CORE_QUALITY_PROFILE_H_
#define DEEPMVI_CORE_QUALITY_PROFILE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "storage/data_source.h"
#include "tensor/mask.h"

namespace deepmvi {

/// Per-series snapshot of the training data distribution, computed at
/// Fit time and carried inside the checkpoint as a trailing versioned
/// "DMVQ" record (see trained_deepmvi.cc). The serving layer compares
/// live request inputs against these reference deciles (PSI / KS) to
/// detect distribution drift without ever touching the training data
/// again. Checkpoints written before this record existed simply end at
/// the parameter store; they load fine and report no profile.
struct QualityProfile {
  /// Number of interior decile edges stored per series (q = 0.1 .. 0.9).
  static constexpr int kNumDecileEdges = 9;

  struct Series {
    int64_t count = 0;    // Available cells at fit time.
    int64_t missing = 0;  // Missing cells at fit time.
    double mean = 0.0;    // Raw-value mean over available cells.
    double stddev = 0.0;  // Population stddev over available cells.
    double min = 0.0;
    double max = 0.0;
    /// Interior decile edges of the raw-value distribution (size
    /// kNumDecileEdges when count > 0, empty otherwise). Sketch
    /// estimates: deterministic, rank error O(n / sketch capacity).
    std::vector<double> decile_edges;
  };

  std::vector<Series> series;

  int num_series() const { return static_cast<int>(series.size()); }
  /// Overall training missing rate across all series; 0 when empty.
  double MissingRate() const;
};

/// Computes the profile with one single-threaded streaming pass over
/// `source` in fixed time stripes, observing available raw values per
/// series in ascending-time order. Identity normalization ((v - 0) / 1)
/// preserves value bits, and the fixed stripe size keeps the observation
/// sequence — hence the sketch state — bit-identical between in-core and
/// chunked sources and across training thread counts.
StatusOr<QualityProfile> ComputeQualityProfile(
    const storage::DataSource& source, const Mask& mask);

/// Appends the versioned "DMVQ" profile record to `os` (magic, version,
/// then per-series fields through nn/serialize primitives).
[[nodiscard]] Status AppendQualityProfileRecord(std::ostream& os,
                                                const QualityProfile& profile);

/// Reads the trailing profile record if the stream has one. Returns true
/// and fills `out` when a record was read; false on clean EOF (a legacy
/// profile-less checkpoint); an error Status on a partial magic, wrong
/// magic, unsupported version, or truncated body.
[[nodiscard]] StatusOr<bool> ReadQualityProfileRecord(std::istream& is,
                                                      QualityProfile* out);

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_QUALITY_PROFILE_H_
