#include "core/temporal_transformer.h"

#include <cmath>

namespace deepmvi {

using ad::Tape;
using ad::Var;

TemporalTransformer::TemporalTransformer(nn::ParameterStore* store,
                                         const DeepMviConfig& config, Rng& rng)
    : window_(config.window),
      filters_(config.filters),
      num_heads_(config.num_heads),
      use_context_window_(config.use_context_window),
      conv_(store, "tt.conv", config.window, config.filters, rng),
      decoder_fc1_(store, "tt.dec1", config.filters * config.num_heads,
                   config.filters, rng),
      decoder_fc2_(store, "tt.dec2", config.filters, config.filters, rng),
      decoder_out_(store, "tt.out", config.filters,
                   config.window * config.filters, rng) {
  DMVI_CHECK_GT(window_, 0);
  const int context_dim = 2 * config.filters;
  for (int h = 0; h < num_heads_; ++h) {
    const std::string prefix = "tt.head" + std::to_string(h);
    query_.emplace_back(store, prefix + ".q", context_dim, context_dim, rng);
    key_.emplace_back(store, prefix + ".k", context_dim, context_dim, rng);
    value_.emplace_back(store, prefix + ".v", config.filters, config.filters, rng);
  }
}

Var TemporalTransformer::Forward(
    Tape& tape, const Matrix& series,
    const std::vector<double>& window_fully_available) const {
  DMVI_CHECK_EQ(series.rows(), 1);
  DMVI_CHECK_EQ(series.cols() % window_, 0);
  const int num_windows = series.cols() / window_;
  DMVI_CHECK_EQ(static_cast<int>(window_fully_available.size()), num_windows);
  DMVI_CHECK_GE(num_windows, 2) << "series too short for the transformer";

  // ---- Window features (Eq. 7). -----------------------------------------
  Var x = tape.Constant(series);
  Var y = conv_.Forward(tape, x);  // num_windows x p

  // ---- Neighbour context [Y_{j-1}, Y_{j+1}] (Eq. 8-9). ------------------
  Var zero_row = tape.Constant(Matrix(1, filters_));
  Var y_prev = ad::ConcatRows({zero_row, ad::SliceRows(y, 0, num_windows - 1)});
  Var y_next = ad::ConcatRows({ad::SliceRows(y, 1, num_windows - 1), zero_row});
  Matrix pos_enc = nn::SinusoidalPositionalEncoding(num_windows, 2 * filters_);
  Var context;
  if (use_context_window_) {
    context = ad::Add(ad::ConcatCols({y_prev, y_next}), tape.Constant(pos_enc));
  } else {
    // Ablation "No Context Window": positional information only.
    context = tape.Constant(pos_enc);
  }

  // ---- Attention availability: keys must be fully-available windows and
  // self-attention to the own window is excluded (its key would leak the
  // values being imputed during training).
  Matrix avail(num_windows, num_windows);
  for (int q = 0; q < num_windows; ++q) {
    for (int k = 0; k < num_windows; ++k) {
      avail(q, k) = (k != q) ? window_fully_available[k] : 0.0;
    }
  }

  const double inv_sqrt = 1.0 / std::sqrt(2.0 * filters_);
  std::vector<Var> heads;
  heads.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    Var q = query_[h].Forward(tape, context);
    Var k = key_[h].Forward(tape, context);
    Var v = value_[h].Forward(tape, y);
    Var scores = ad::Scale(ad::MatMul(q, ad::Transpose(k)), inv_sqrt);
    Var weights = ad::MaskedSoftmaxRows(scores, avail);
    heads.push_back(ad::MatMul(weights, v));  // num_windows x p
  }
  Var h = ad::ConcatCols(heads);  // num_windows x (p * num_heads)

  // ---- Decoder (Eq. 13-14). ----------------------------------------------
  Var hff = ad::Relu(
      decoder_fc2_.Forward(tape, ad::Relu(decoder_fc1_.Forward(tape, ad::Relu(h)))));
  Var decoded = ad::Relu(decoder_out_.Forward(tape, hff));  // n x (w * p)
  // Row-major reshape: window j's w positions become w consecutive rows.
  return ad::Reshape(decoded, num_windows * window_, filters_);
}

}  // namespace deepmvi
