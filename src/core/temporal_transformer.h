#ifndef DEEPMVI_CORE_TEMPORAL_TRANSFORMER_H_
#define DEEPMVI_CORE_TEMPORAL_TRANSFORMER_H_

#include <vector>

#include "core/deepmvi_config.h"
#include "nn/layers.h"

namespace deepmvi {

/// The paper's Temporal Transformer (Sec 4.1).
///
/// Differences from a vanilla transformer:
///  - features are per-window (non-overlapping convolution, Eq. 7), not
///    per-position;
///  - the query/key of window j are built from the NEIGHBOUR windows
///    [Y_{j-1}, Y_{j+1}] plus a positional encoding (Eq. 8-9), so
///    attention matches the context around a missing block against the
///    context around candidate windows;
///  - keys of windows containing any missing value are removed from the
///    attention (the availability product in Eq. 9);
///  - a decoder maps each window's attention output back to per-position
///    vectors (Eq. 13-14).
class TemporalTransformer {
 public:
  TemporalTransformer() = default;
  TemporalTransformer(nn::ParameterStore* store, const DeepMviConfig& config,
                      Rng& rng);

  /// Runs the transformer over one series chunk.
  ///
  /// `series` is a 1 x T row (T divisible by the window size) with
  /// unavailable values zeroed; `window_fully_available[j]` is 1.0 when
  /// every value of window j is available. Returns a T x p matrix of
  /// per-position output vectors htt (Eq. 14).
  ad::Var Forward(ad::Tape& tape, const Matrix& series,
                  const std::vector<double>& window_fully_available) const;

  int window() const { return window_; }
  int filters() const { return filters_; }

 private:
  int window_ = 0;
  int filters_ = 0;
  int num_heads_ = 0;
  bool use_context_window_ = true;

  nn::Conv1dNonOverlap conv_;
  // Per-head projections: queries/keys act on the 2p-dim neighbour
  // context, values on the p-dim window feature (Eq. 8-10).
  std::vector<nn::Linear> query_;
  std::vector<nn::Linear> key_;
  std::vector<nn::Linear> value_;
  // Decoder (Eq. 13-14).
  nn::Linear decoder_fc1_;  // p * num_heads -> p
  nn::Linear decoder_fc2_;  // p -> p
  nn::Linear decoder_out_;  // p -> window * p
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_TEMPORAL_TRANSFORMER_H_
