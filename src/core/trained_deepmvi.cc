#include "core/trained_deepmvi.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>

#include "nn/serialize.h"

namespace deepmvi {
namespace {

constexpr char kCheckpointMagic[4] = {'D', 'M', 'V', 'C'};
constexpr uint32_t kCheckpointVersion = 1;

// Guards against allocating from a corrupt header.
constexpr uint32_t kMaxDims = 64;
constexpr uint32_t kMaxMembers = 1 << 24;
constexpr uint32_t kMaxSeries = 1 << 26;

using nn::ReadPod;
using nn::ReadString;
using nn::WritePod;
using nn::WriteString;

Status WriteConfig(std::ostream& os, const DeepMviConfig& config) {
  WritePod(os, static_cast<int32_t>(config.filters));
  WritePod(os, static_cast<int32_t>(config.window));
  WritePod(os, static_cast<int32_t>(config.num_heads));
  WritePod(os, static_cast<int32_t>(config.embedding_dim));
  WritePod(os, config.kernel_gamma);
  WritePod(os, static_cast<int32_t>(config.top_siblings));
  WritePod(os, config.learning_rate);
  WritePod(os, static_cast<int32_t>(config.max_epochs));
  WritePod(os, static_cast<int32_t>(config.samples_per_epoch));
  WritePod(os, static_cast<int32_t>(config.batch_size));
  WritePod(os, static_cast<int32_t>(config.patience));
  WritePod(os, config.validation_fraction);
  WritePod(os, static_cast<int32_t>(config.max_context));
  WritePod(os, config.seed);
  WritePod(os, static_cast<uint8_t>(config.use_temporal_transformer));
  WritePod(os, static_cast<uint8_t>(config.use_context_window));
  WritePod(os, static_cast<uint8_t>(config.use_kernel_regression));
  WritePod(os, static_cast<uint8_t>(config.use_fine_grained));
  WritePod(os, static_cast<uint8_t>(config.flatten_multidim));
  if (!os) return Status::IoError("write failed for checkpoint config");
  return Status::OK();
}

Status ReadConfig(std::istream& is, DeepMviConfig* config) {
  auto read_i32 = [&is](int* dst) {
    int32_t v = 0;
    if (!ReadPod(is, &v)) return false;
    *dst = v;
    return true;
  };
  auto read_bool = [&is](bool* dst) {
    uint8_t v = 0;
    if (!ReadPod(is, &v)) return false;
    *dst = v != 0;
    return true;
  };
  const bool ok = read_i32(&config->filters) && read_i32(&config->window) &&
                  read_i32(&config->num_heads) &&
                  read_i32(&config->embedding_dim) &&
                  ReadPod(is, &config->kernel_gamma) &&
                  read_i32(&config->top_siblings) &&
                  ReadPod(is, &config->learning_rate) &&
                  read_i32(&config->max_epochs) &&
                  read_i32(&config->samples_per_epoch) &&
                  read_i32(&config->batch_size) && read_i32(&config->patience) &&
                  ReadPod(is, &config->validation_fraction) &&
                  read_i32(&config->max_context) && ReadPod(is, &config->seed) &&
                  read_bool(&config->use_temporal_transformer) &&
                  read_bool(&config->use_context_window) &&
                  read_bool(&config->use_kernel_regression) &&
                  read_bool(&config->use_fine_grained) &&
                  read_bool(&config->flatten_multidim);
  if (!ok) return Status::IoError("truncated file: checkpoint config missing");
  if (config->filters <= 0 || config->window <= 0 || config->num_heads <= 0 ||
      config->embedding_dim <= 0) {
    return Status::InvalidArgument("corrupt file: implausible model config");
  }
  return Status::OK();
}

Status WriteDoubles(std::ostream& os, const std::vector<double>& values) {
  WritePod(os, static_cast<uint32_t>(values.size()));
  os.write(reinterpret_cast<const char*>(values.data()),
           static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!os) return Status::IoError("write failed for double vector");
  return Status::OK();
}

StatusOr<std::vector<double>> ReadDoubles(std::istream& is) {
  uint32_t count = 0;
  if (!ReadPod(is, &count)) {
    return Status::IoError("truncated file: vector length missing");
  }
  if (count > kMaxSeries) {
    return Status::InvalidArgument("corrupt file: implausible vector length " +
                                   std::to_string(count));
  }
  std::vector<double> out(count);
  const std::streamsize bytes =
      static_cast<std::streamsize>(count * sizeof(double));
  is.read(reinterpret_cast<char*>(out.data()), bytes);
  if (is.gcount() != bytes) {
    return Status::IoError("truncated file: vector body missing");
  }
  return out;
}

}  // namespace

TrainedDeepMvi::TrainedDeepMvi() = default;
TrainedDeepMvi::~TrainedDeepMvi() = default;
TrainedDeepMvi::TrainedDeepMvi(TrainedDeepMvi&&) noexcept = default;
TrainedDeepMvi& TrainedDeepMvi::operator=(TrainedDeepMvi&&) noexcept = default;

int64_t TrainedDeepMvi::num_parameters() const {
  return store_ ? store_->TotalSize() : 0;
}

Status TrainedDeepMvi::ValidateInput(const DataTensor& data,
                                     const Mask& mask) const {
  if (!trained()) {
    return Status::FailedPrecondition("model has not been trained or loaded");
  }
  if (data.num_series() != mask.rows() || data.num_times() != mask.cols()) {
    return Status::InvalidArgument(
        "mask shape " + std::to_string(mask.rows()) + "x" +
        std::to_string(mask.cols()) + " does not match data " +
        std::to_string(data.num_series()) + "x" +
        std::to_string(data.num_times()));
  }
  if (data.num_series() != num_series()) {
    return Status::InvalidArgument(
        "data has " + std::to_string(data.num_series()) +
        " series, model was trained on " + std::to_string(num_series()));
  }
  // A flattening model collapses the dims anyway, so only the row count
  // (checked above) matters there; otherwise every dimension must match
  // the training dataset member for member.
  if (!config_.flatten_multidim) {
    if (data.num_dims() != static_cast<int>(dims_.size())) {
      return Status::InvalidArgument(
          "data has " + std::to_string(data.num_dims()) +
          " dimensions, model was trained on " +
          std::to_string(dims_.size()));
    }
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (data.dim(static_cast<int>(i)).size() != dims_[i].size()) {
        return Status::InvalidArgument(
            "dimension '" + dims_[i].name + "' has " +
            std::to_string(data.dim(static_cast<int>(i)).size()) +
            " members, model was trained on " +
            std::to_string(dims_[i].size()));
      }
    }
  }
  // Below one window the chunk walk degenerates to an empty chunk and
  // Predict would return cells unimputed with no error — reject up front.
  // (Between one and two windows the transformer contributes nothing but
  // the fine-grained and kernel-regression paths still impute, matching
  // the historical Impute() behavior on degenerate-short series.)
  if (data.num_times() < config_.window) {
    return Status::InvalidArgument(
        "series of length " + std::to_string(data.num_times()) +
        " is shorter than one window (window " +
        std::to_string(config_.window) +
        "); the model cannot impute it — refit with a smaller window");
  }
  return Status::OK();
}

Matrix TrainedDeepMvi::Predict(const DataTensor& raw_data,
                               const Mask& mask) const {
  Status valid = ValidateInput(raw_data, mask);
  DMVI_CHECK(valid.ok()) << valid.ToString();

  const DataTensor shaped =
      config_.flatten_multidim ? raw_data.Flattened1D() : raw_data;

  // Project into the z-score space the model was trained in, using the
  // fit-time statistics: normalization is part of the model.
  DataTensor data = shaped.Normalized(stats_);
  Matrix imputed = internal::ImputeMissingNormalized(modules_, config_, data,
                                                     data.values(), mask);

  // Denormalize and restore available cells exactly.
  Matrix out = DataTensor::Denormalize(imputed, stats_);
  for (int r = 0; r < out.rows(); ++r) {
    for (int t = 0; t < out.cols(); ++t) {
      if (mask.available(r, t)) out(r, t) = raw_data.values()(r, t);
    }
  }
  return out;
}

StatusOr<std::vector<double>> TrainedDeepMvi::PredictCells(
    const storage::DataSource& source, const Mask& mask,
    const std::vector<CellIndex>& cells) const {
  if (!trained()) {
    return Status::FailedPrecondition("model has not been trained or loaded");
  }
  if (source.num_series() != mask.rows() || source.num_times() != mask.cols()) {
    return Status::InvalidArgument("mask shape does not match source");
  }
  if (source.num_series() != num_series()) {
    return Status::InvalidArgument(
        "source has " + std::to_string(source.num_series()) +
        " series, model was trained on " + std::to_string(num_series()));
  }
  const int t_len = source.num_times();
  if (t_len < config_.window) {
    return Status::InvalidArgument(
        "series of length " + std::to_string(t_len) +
        " is shorter than one window (window " +
        std::to_string(config_.window) + ")");
  }

  // Group the requested cells per series, ascending in time, remembering
  // where each prediction goes in the output.
  std::vector<std::vector<std::pair<int, size_t>>> by_row(source.num_series());
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellIndex& cell = cells[i];
    if (cell.series < 0 || cell.series >= source.num_series() ||
        cell.time < 0 || cell.time >= t_len) {
      return Status::InvalidArgument("cell out of range");
    }
    if (mask.available(cell.series, cell.time)) {
      return Status::InvalidArgument(
          "cell (" + std::to_string(cell.series) + "," +
          std::to_string(cell.time) +
          ") is available in the mask; PredictCells predicts missing cells");
    }
    by_row[cell.series].emplace_back(cell.time, i);
  }

  StatusOr<std::unique_ptr<storage::WindowReader>> reader_or =
      source.MakeReader(stats_);
  if (!reader_or.ok()) return reader_or.status();
  const storage::WindowReader& reader = **reader_or;
  const DataTensor layout = DataTensor::LayoutOnly(dims_);

  std::vector<double> out(cells.size(), 0.0);
  ad::Tape tape;
  for (int row = 0; row < source.num_series(); ++row) {
    auto& row_cells = by_row[row];
    if (row_cells.empty()) continue;
    std::sort(row_cells.begin(), row_cells.end());
    // Cover the row's cells chunk by chunk, as Predict covers its missing
    // cells (internal::ImputeMissingNormalized).
    size_t next = 0;
    while (next < row_cells.size()) {
      internal::Chunk chunk = internal::MakeChunk(
          t_len, config_.window, config_.max_context, row_cells[next].first);
      std::vector<int> targets;
      std::vector<size_t> target_outputs;
      while (next < row_cells.size() &&
             row_cells[next].first < chunk.start + chunk.len) {
        if (row_cells[next].first >= chunk.start) {
          targets.push_back(row_cells[next].first);
          target_outputs.push_back(row_cells[next].second);
        }
        ++next;
      }
      if (targets.empty()) break;  // Should not happen; guards looping.
      StatusOr<ValueWindow> window = reader.Read(chunk.start, chunk.len);
      if (!window.ok()) return window.status();
      tape.Reset();
      ad::Var pred = internal::PredictPositions(tape, modules_, config_, layout,
                                                *window, mask, row, chunk,
                                                targets);
      for (size_t i = 0; i < targets.size(); ++i) {
        // Same denormalization expression as DataTensor::Denormalize.
        out[target_outputs[i]] =
            pred.value()(static_cast<int>(i), 0) * stats_.stddev[row] +
            stats_.mean[row];
      }
    }
  }
  return out;
}

Status TrainedDeepMvi::Save(const std::string& path) const {
  if (!trained()) {
    return Status::FailedPrecondition("cannot save an untrained model");
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open " + path + " for writing");

  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  WritePod(os, kCheckpointVersion);
  DMVI_RETURN_IF_ERROR(WriteConfig(os, config_));

  WritePod(os, static_cast<uint32_t>(dims_.size()));
  for (const Dimension& dim : dims_) {
    DMVI_RETURN_IF_ERROR(WriteString(os, dim.name));
    WritePod(os, static_cast<uint32_t>(dim.members.size()));
    for (const std::string& member : dim.members) {
      DMVI_RETURN_IF_ERROR(WriteString(os, member));
    }
  }

  DMVI_RETURN_IF_ERROR(WriteDoubles(os, stats_.mean));
  DMVI_RETURN_IF_ERROR(WriteDoubles(os, stats_.stddev));
  DMVI_RETURN_IF_ERROR(nn::SaveParameterStore(*store_, os));
  // Trailing record: models without a profile (legacy loads) re-save
  // without one, so the legacy byte layout round-trips unchanged.
  if (has_profile_) {
    DMVI_RETURN_IF_ERROR(AppendQualityProfileRecord(os, profile_));
  }

  os.close();
  if (!os) return Status::IoError("write failed for " + path);
  return Status::OK();
}

StatusOr<TrainedDeepMvi> TrainedDeepMvi::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open " + path + " for reading");

  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (is.gcount() != sizeof(magic)) {
    return Status::IoError("truncated file: checkpoint header missing");
  }
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("corrupt file: " + path +
                                   " is not a DeepMVI checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(is, &version)) {
    return Status::IoError("truncated file: checkpoint version missing");
  }
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }

  TrainedDeepMvi model;
  DMVI_RETURN_IF_ERROR(ReadConfig(is, &model.config_));

  uint32_t num_dims = 0;
  if (!ReadPod(is, &num_dims)) {
    return Status::IoError("truncated file: dimension count missing");
  }
  if (num_dims == 0 || num_dims > kMaxDims) {
    return Status::InvalidArgument("corrupt file: implausible dimension count " +
                                   std::to_string(num_dims));
  }
  for (uint32_t d = 0; d < num_dims; ++d) {
    Dimension dim;
    StatusOr<std::string> name = ReadString(is);
    if (!name.ok()) return name.status();
    dim.name = std::move(name).value();
    uint32_t num_members = 0;
    if (!ReadPod(is, &num_members)) {
      return Status::IoError("truncated file: member count missing");
    }
    if (num_members == 0 || num_members > kMaxMembers) {
      return Status::InvalidArgument(
          "corrupt file: implausible member count " +
          std::to_string(num_members));
    }
    dim.members.reserve(num_members);
    for (uint32_t m = 0; m < num_members; ++m) {
      StatusOr<std::string> member = ReadString(is);
      if (!member.ok()) return member.status();
      dim.members.push_back(std::move(member).value());
    }
    model.dims_.push_back(std::move(dim));
  }

  StatusOr<std::vector<double>> mean = ReadDoubles(is);
  if (!mean.ok()) return mean.status();
  model.stats_.mean = std::move(mean).value();
  StatusOr<std::vector<double>> stddev = ReadDoubles(is);
  if (!stddev.ok()) return stddev.status();
  model.stats_.stddev = std::move(stddev).value();
  if (model.stats_.mean.size() != model.stats_.stddev.size()) {
    return Status::InvalidArgument(
        "corrupt file: normalization vectors disagree in length");
  }
  // The stats are per flattened series, one per member-combination of the
  // dims; a mismatch means a corrupt header and would otherwise surface
  // later as an out-of-bounds embedding lookup instead of a Status.
  uint64_t expected_series = 1;
  for (const Dimension& dim : model.dims_) {
    expected_series *= static_cast<uint64_t>(dim.size());
  }
  if (expected_series != model.stats_.mean.size()) {
    return Status::InvalidArgument(
        "corrupt file: dimensions imply " + std::to_string(expected_series) +
        " series but normalization stats cover " +
        std::to_string(model.stats_.mean.size()));
  }

  // Rebuild the model skeleton from the stored config and dimensions (the
  // Rng only feeds initial values, which the store load overwrites), then
  // restore every parameter by name.
  Rng rng(model.config_.seed);
  model.store_ = std::make_unique<nn::ParameterStore>();
  model.modules_ = internal::BuildDeepMviModules(model.store_.get(),
                                                 model.config_, model.dims_, rng);
  DMVI_RETURN_IF_ERROR(nn::LoadParameterStore(is, *model.store_));

  // Optional trailing quality-profile record. Checkpoints written before
  // the record existed end right here; they load with no profile.
  StatusOr<bool> has_profile = ReadQualityProfileRecord(is, &model.profile_);
  if (!has_profile.ok()) return has_profile.status();
  model.has_profile_ = has_profile.value();
  if (model.has_profile_ &&
      model.profile_.series.size() != model.stats_.mean.size()) {
    return Status::InvalidArgument(
        "corrupt file: quality profile covers " +
        std::to_string(model.profile_.series.size()) + " series but model has " +
        std::to_string(model.stats_.mean.size()));
  }
  return model;
}

}  // namespace deepmvi
