#ifndef DEEPMVI_CORE_TRAINED_DEEPMVI_H_
#define DEEPMVI_CORE_TRAINED_DEEPMVI_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/deepmvi_modules.h"
#include "core/quality_profile.h"
#include "storage/data_source.h"

namespace deepmvi {

/// A trained DeepMVI model, the unit of the train-once/serve-many split:
/// DeepMviImputer::Fit produces one, Predict runs inference only (no
/// training, no RNG), and Save/Load persist it as a versioned binary
/// checkpoint so a long-lived service can answer imputation queries
/// without ever retraining.
///
/// The artifact holds everything inference needs: the parameter store
/// (weights + Adam moments, so training could even be resumed), the
/// resolved config (window already chosen from the training mask), the
/// dimensions of the training dataset (member embeddings are positional in
/// them), and the per-series normalization statistics computed at fit time
/// — normalization is part of the model, so serving-time data is projected
/// into the same z-score space the weights were trained in.
///
/// Predict applies to data of the training dataset's shape (same series,
/// any time length >= one window — the transformer needs two to
/// contribute, shorter chunks fall back to the local/kernel signals — and
/// any missing pattern): the model's kernel regression embeds the
/// *members* of the training dimensions, so a different series universe
/// needs a new Fit.
class TrainedDeepMvi {
 public:
  TrainedDeepMvi();
  ~TrainedDeepMvi();
  TrainedDeepMvi(TrainedDeepMvi&&) noexcept;
  TrainedDeepMvi& operator=(TrainedDeepMvi&&) noexcept;
  TrainedDeepMvi(const TrainedDeepMvi&) = delete;
  TrainedDeepMvi& operator=(const TrainedDeepMvi&) = delete;

  /// True once the model holds trained weights (built by Fit or Load).
  bool trained() const { return store_ != nullptr; }

  /// Recoverable validation of a prediction input: shape against the
  /// training dataset, mask against the data. The serving layer calls this
  /// to turn bad requests into error responses instead of aborts.
  Status ValidateInput(const DataTensor& data, const Mask& mask) const;

  /// Inference only: fills the cells of `data` missing in `mask` and
  /// returns the completed matrix (available cells pass through
  /// bit-unchanged). Deterministic: repeated calls with the same input are
  /// bit-identical, and Fit(x, m).Predict(x, m) equals the historical
  /// single-shot Impute(x, m) bit for bit. Aborts on invalid input; call
  /// ValidateInput first when the input is untrusted.
  Matrix Predict(const DataTensor& data, const Mask& mask) const;

  /// Out-of-core inference at selected cells: predicts each requested
  /// (series, time) cell — all of which must be missing in `mask` — from a
  /// storage::DataSource, reading only the value windows the predictions
  /// need. Returns the predictions in `cells` order, denormalized to raw
  /// units like Predict. Per series, cells are covered chunk by chunk
  /// (the chunk partition follows the requested cells, as Predict's does
  /// its missing cells), so memory stays bounded by the source's cache
  /// budget plus one window. The eval suite uses this to score a chunked
  /// store's hidden cells without materializing the dense tensor.
  StatusOr<std::vector<double>> PredictCells(
      const storage::DataSource& source, const Mask& mask,
      const std::vector<CellIndex>& cells) const;

  /// Persists the model as a versioned binary checkpoint ("DMVC" header +
  /// config + dimensions + normalization stats + "DMVP" parameter store).
  Status Save(const std::string& path) const;

  /// Loads a checkpoint written by Save: rebuilds the model from the
  /// stored config/dimensions, then restores every parameter by name.
  /// Corrupt or truncated files yield Status errors, never crashes.
  static StatusOr<TrainedDeepMvi> Load(const std::string& path);

  /// The resolved configuration (window > 0) the model was trained with.
  const DeepMviConfig& config() const { return config_; }
  /// Dimensions of the (possibly flattened) training dataset.
  const std::vector<Dimension>& dims() const { return dims_; }
  /// Number of series the model was trained on.
  int num_series() const { return static_cast<int>(stats_.mean.size()); }
  /// Total trainable parameter count.
  int64_t num_parameters() const;

  /// Training-data reference profile (per-series moments + decile edges)
  /// computed at Fit time and persisted in the checkpoint's trailing
  /// "DMVQ" record. nullptr for checkpoints written before the record
  /// existed — such models still serve; drift scoring is simply
  /// unavailable for them.
  const QualityProfile* quality_profile() const {
    return has_profile_ ? &profile_ : nullptr;
  }

 private:
  friend class DeepMviImputer;

  DeepMviConfig config_;            // Resolved: window > 0.
  std::vector<Dimension> dims_;     // Of the shaped (post-flatten) data.
  DataTensor::NormalizationStats stats_;
  std::unique_ptr<nn::ParameterStore> store_;
  internal::DeepMviModules modules_;  // Pointers into *store_.
  QualityProfile profile_;          // Valid only when has_profile_.
  bool has_profile_ = false;
};

}  // namespace deepmvi

#endif  // DEEPMVI_CORE_TRAINED_DEEPMVI_H_
