#ifndef DEEPMVI_DATA_IMPUTER_H_
#define DEEPMVI_DATA_IMPUTER_H_

#include <memory>
#include <string>

#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {

/// Common interface of every imputation algorithm in this repository
/// (conventional baselines, deep baselines, and DeepMVI itself).
///
/// Impute receives the dataset and the availability mask and returns a
/// complete matrix of the same shape: available cells are passed through
/// unchanged and missing cells are filled with the algorithm's estimates.
/// Implementations must not read the values of missing cells (they contain
/// ground truth retained for evaluation).
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Short identifier used in benchmark tables ("CDRec", "DeepMVI", ...).
  virtual std::string name() const = 0;

  /// Fills the missing cells of `data` (as indicated by `mask`).
  virtual Matrix Impute(const DataTensor& data, const Mask& mask) = 0;
};

}  // namespace deepmvi

#endif  // DEEPMVI_DATA_IMPUTER_H_
