#include "data/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace deepmvi {
namespace {

std::vector<std::string> SplitString(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, sep)) out.push_back(field);
  // Trailing separator produces an implicit empty last field.
  if (!line.empty() && line.back() == sep) out.push_back("");
  return out;
}

}  // namespace

void WriteDataTensorToStream(const DataTensor& data, std::ostream& out,
                             const Mask* mask) {
  for (const Dimension& dim : data.dims()) {
    out << "# dim:" << dim.name << "=";
    for (int m = 0; m < dim.size(); ++m) {
      if (m > 0) out << "|";
      out << dim.members[m];
    }
    out << "\n";
  }
  out.precision(17);
  for (int r = 0; r < data.num_series(); ++r) {
    for (int t = 0; t < data.num_times(); ++t) {
      if (t > 0) out << ",";
      if (mask != nullptr && mask->missing(r, t)) {
        out << "nan";
      } else {
        out << data.values()(r, t);
      }
    }
    out << "\n";
  }
}

Status WriteDataTensor(const DataTensor& data, const std::string& path,
                       const Mask* mask) {
  if (mask != nullptr) {
    if (mask->rows() != data.num_series() || mask->cols() != data.num_times()) {
      return Status::InvalidArgument("mask shape does not match dataset");
    }
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteDataTensorToStream(data, out, mask);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

StatusOr<CsvSeriesReader> CsvSeriesReader::Open(const std::string& path) {
  CsvSeriesReader reader;
  reader.path_ = path;
  reader.in_ = std::make_unique<std::ifstream>(path);
  if (!*reader.in_) return Status::IoError("cannot open " + path);
  return reader;
}

StatusOr<bool> CsvSeriesReader::NextRow(std::vector<double>* values,
                                        std::vector<uint8_t>* missing) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (line.empty()) continue;
    if (line.rfind("# dim:", 0) == 0) {
      const std::string spec = line.substr(6);
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("malformed dimension header: " + line);
      }
      Dimension dim;
      dim.name = spec.substr(0, eq);
      dim.members = SplitString(spec.substr(eq + 1), '|');
      if (dim.members.empty()) {
        return Status::InvalidArgument("dimension with no members: " + line);
      }
      dims_.push_back(std::move(dim));
      continue;
    }
    if (line[0] == '#') continue;  // Other comments.
    std::vector<std::string> fields = SplitString(line, ',');
    values->clear();
    missing->clear();
    values->reserve(fields.size());
    missing->reserve(fields.size());
    for (const std::string& field : fields) {
      if (field.empty() || field == "nan" || field == "NaN" || field == "NA") {
        values->push_back(0.0);
        missing->push_back(1);
        continue;
      }
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument("non-numeric field '" + field + "'");
      }
      if (std::isnan(v)) {
        values->push_back(0.0);
        missing->push_back(1);
      } else {
        values->push_back(v);
        missing->push_back(0);
      }
    }
    if (num_cols_ < 0) {
      num_cols_ = static_cast<int>(values->size());
    } else if (static_cast<int>(values->size()) != num_cols_) {
      return Status::InvalidArgument("ragged rows in " + path_);
    }
    ++rows_read_;
    return true;
  }
  // getline stopped: distinguish a clean end of file from a stream I/O
  // failure — reporting a failing disk as EOF would silently truncate a
  // streaming conversion.
  if (in_->bad()) {
    return Status::IoError("read error in " + path_ + " after row " +
                           std::to_string(rows_read_));
  }
  return false;
}

StatusOr<DataTensor> ReadDataTensor(const std::string& path, Mask* mask_out) {
  // Materializing wrapper over the streaming reader: both paths parse the
  // bytes identically, so a CSV sharded row-by-row (dmvi_shard) and one
  // slurped in-core produce the same values cell for cell.
  StatusOr<CsvSeriesReader> reader = CsvSeriesReader::Open(path);
  if (!reader.ok()) return reader.status();

  std::vector<std::vector<double>> rows;
  std::vector<std::vector<uint8_t>> row_missing;
  std::vector<double> row_values;
  std::vector<uint8_t> row_miss;
  while (true) {
    StatusOr<bool> more = reader->NextRow(&row_values, &row_miss);
    if (!more.ok()) return more.status();
    if (!*more) break;
    // NextRow clears its outputs, so moving the buffers out is safe.
    rows.push_back(std::move(row_values));
    row_missing.push_back(std::move(row_miss));
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows in " + path);

  const int n = static_cast<int>(rows.size());
  const int t_len = reader->num_cols();
  Matrix values(n, t_len);
  Mask mask(n, t_len);
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) {
      values(r, t) = rows[r][t];
      if (row_missing[r][t] != 0) mask.set_missing(r, t);
    }
  }
  if (mask_out != nullptr) *mask_out = mask;

  const std::vector<Dimension>& dims = reader->dims();
  if (dims.empty()) {
    return DataTensor::FromMatrix(std::move(values));
  }
  int64_t expected = 1;
  for (const auto& dim : dims) expected *= dim.size();
  if (expected != n) {
    return Status::InvalidArgument(
        "dimension headers imply " + std::to_string(expected) +
        " series but file has " + std::to_string(n));
  }
  return DataTensor(dims, std::move(values));
}

Status WriteMask(const Mask& mask, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (int r = 0; r < mask.rows(); ++r) {
    for (int t = 0; t < mask.cols(); ++t) {
      if (t > 0) out << ",";
      out << (mask.available(r, t) ? 1 : 0);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

StatusOr<Mask> ReadMask(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::vector<bool>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitString(line, ',');
    std::vector<bool> row;
    row.reserve(fields.size());
    for (const std::string& field : fields) {
      if (field == "1") {
        row.push_back(true);
      } else if (field == "0") {
        row.push_back(false);
      } else {
        return Status::InvalidArgument("mask field must be 0/1, got '" +
                                       field + "'");
      }
    }
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::InvalidArgument("ragged rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("no rows in " + path);
  Mask mask(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < mask.rows(); ++r) {
    for (int t = 0; t < mask.cols(); ++t) {
      mask.set_available(r, t, rows[r][t]);
    }
  }
  return mask;
}

}  // namespace deepmvi
