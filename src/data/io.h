#ifndef DEEPMVI_DATA_IO_H_
#define DEEPMVI_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {

/// CSV persistence for datasets and masks.
///
/// Dataset format (series-major, one row per series):
///   # dim:<name>=<member>[|<member2>...]   (one header line per dimension)
///   v_00,v_01,...,v_0T
///   v_10,v_11,...
/// Missing cells may be written as the literal `nan` or an empty field;
/// ReadDataTensor reports them through the optional Mask output.
///
/// Mask format: same shape, fields are 1 (available) / 0 (missing).

/// Writes `data` to `path`. Cells missing in `mask` (when provided) are
/// written as `nan`.
Status WriteDataTensor(const DataTensor& data, const std::string& path,
                       const Mask* mask = nullptr);

/// Reads a dataset written by WriteDataTensor (or any plain numeric CSV
/// without the dimension headers — then a single anonymous dimension is
/// created). When `mask_out` is non-null, cells that are empty or `nan`
/// are marked missing (and stored as 0.0 in the tensor).
StatusOr<DataTensor> ReadDataTensor(const std::string& path,
                                    Mask* mask_out = nullptr);

/// Writes / reads an availability mask as 0/1 CSV.
Status WriteMask(const Mask& mask, const std::string& path);
StatusOr<Mask> ReadMask(const std::string& path);

}  // namespace deepmvi

#endif  // DEEPMVI_DATA_IO_H_
