#ifndef DEEPMVI_DATA_IO_H_
#define DEEPMVI_DATA_IO_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {

/// CSV persistence for datasets and masks.
///
/// Dataset format (series-major, one row per series):
///   # dim:<name>=<member>[|<member2>...]   (one header line per dimension)
///   v_00,v_01,...,v_0T
///   v_10,v_11,...
/// Missing cells may be written as the literal `nan` or an empty field;
/// ReadDataTensor reports them through the optional Mask output.
///
/// Mask format: same shape, fields are 1 (available) / 0 (missing).

/// Writes `data` to `path`. Cells missing in `mask` (when provided) are
/// written as `nan`.
Status WriteDataTensor(const DataTensor& data, const std::string& path,
                       const Mask* mask = nullptr);

/// The formatting core of WriteDataTensor, exposed so other emitters (the
/// HTTP layer's text/csv responses) produce byte-identical output to the
/// files the tools write — the cross-transport `cmp` checks depend on a
/// single formatting path. `mask` must already be shape-checked.
void WriteDataTensorToStream(const DataTensor& data, std::ostream& out,
                             const Mask* mask = nullptr);

/// Reads a dataset written by WriteDataTensor (or any plain numeric CSV
/// without the dimension headers — then a single anonymous dimension is
/// created). When `mask_out` is non-null, cells that are empty or `nan`
/// are marked missing (and stored as 0.0 in the tensor).
StatusOr<DataTensor> ReadDataTensor(const std::string& path,
                                    Mask* mask_out = nullptr);

/// Writes / reads an availability mask as 0/1 CSV.
Status WriteMask(const Mask& mask, const std::string& path);
StatusOr<Mask> ReadMask(const std::string& path);

/// Streaming row-by-row reader for the dataset CSV format: dimension
/// headers are parsed up front, then NextRow yields one series at a time,
/// so files larger than RAM can be converted (e.g. into a chunked store by
/// dmvi_shard) without ever materializing the full matrix. ReadDataTensor
/// is a thin materializing wrapper over this reader, so the two parse
/// identically.
class CsvSeriesReader {
 public:
  static StatusOr<CsvSeriesReader> Open(const std::string& path);

  /// Empty (unopened) reader; StatusOr needs this. Use Open().
  CsvSeriesReader() = default;

  /// Dimension headers seen so far; in the standard format they precede
  /// the data, so this is complete after the first NextRow (and certainly
  /// after the last). Empty for a plain numeric CSV — the caller then
  /// typically builds a single anonymous dimension.
  const std::vector<Dimension>& dims() const { return dims_; }

  /// Reads the next data row into `values` (missing cells stored as 0.0)
  /// and `missing` (1 = missing). Returns false at end of file, true when
  /// a row was produced; malformed rows (non-numeric fields, ragged
  /// lengths) are Status errors. Vectors are reused across calls.
  StatusOr<bool> NextRow(std::vector<double>* values,
                         std::vector<uint8_t>* missing);

  /// Number of columns, known after the first NextRow.
  int num_cols() const { return num_cols_; }
  /// Data rows produced so far.
  int rows_read() const { return rows_read_; }

 private:
  std::string path_;
  // Move-only: copies would share (and race on) one stream position.
  std::unique_ptr<std::ifstream> in_;
  std::vector<Dimension> dims_;
  int num_cols_ = -1;
  int rows_read_ = 0;
};

}  // namespace deepmvi

#endif  // DEEPMVI_DATA_IO_H_
