#include "data/presets.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "data/synthetic.h"

namespace deepmvi {
namespace {

DataTensor OneDimensional(const SyntheticConfig& config, const std::string& name) {
  Matrix values = GenerateSeriesMatrix(config);
  Dimension dim;
  dim.name = "station";
  for (int i = 0; i < config.num_series; ++i) {
    dim.members.push_back(name + "_s" + std::to_string(i));
  }
  return DataTensor({std::move(dim)}, std::move(values));
}

/// Two-dimensional retail-style generator (JanataHack / M5): sales of
/// `num_items` items across `num_stores` stores. Each item has a base
/// demand pattern; each store modulates it with a multiplicative scale and
/// an additive offset. `store_coherence` in [0,1] controls how similar a
/// product's series look across stores (high for JanataHack, low for M5).
DataTensor RetailDataset(const std::string& name, int num_stores, int num_items,
                         int length, double store_coherence, double weekly_period,
                         uint64_t seed) {
  Rng rng(seed);

  // Base demand pattern per item: weekly seasonality + smooth trend.
  SyntheticConfig item_config;
  item_config.num_series = num_items;
  item_config.length = length;
  item_config.seasonal_periods = {weekly_period, weekly_period * 4.3};
  item_config.seasonality_strength = 0.5;
  item_config.cross_correlation = 0.3;
  item_config.ar_coefficient = 0.9;
  item_config.noise_level = 0.0;
  item_config.seed = rng.NextUint64();
  Matrix item_base = GenerateSeriesMatrix(item_config);

  // Store effects.
  std::vector<double> store_scale(num_stores), store_offset(num_stores);
  for (int s = 0; s < num_stores; ++s) {
    store_scale[s] = rng.Uniform(0.6, 1.6);
    store_offset[s] = rng.Gaussian(0.0, 0.4);
  }

  const double idio_weight = 1.0 - store_coherence;
  Matrix values(num_stores * num_items, length);
  for (int s = 0; s < num_stores; ++s) {
    for (int i = 0; i < num_items; ++i) {
      const int row = s * num_items + i;
      // Per-(store,item) idiosyncratic AR path.
      double ar = 0.0;
      Rng cell_rng(seed ^ (static_cast<uint64_t>(row) * 0x9e3779b9ULL + 7));
      for (int t = 0; t < length; ++t) {
        ar = 0.9 * ar + 0.44 * cell_rng.Gaussian();
        values(row, t) = store_scale[s] * item_base(i, t) + store_offset[s] +
                         idio_weight * ar + 0.05 * cell_rng.Gaussian();
      }
    }
  }

  Dimension stores{"store", {}};
  for (int s = 0; s < num_stores; ++s) {
    stores.members.push_back(name + "_store" + std::to_string(s));
  }
  Dimension items{"item", {}};
  for (int i = 0; i < num_items; ++i) {
    items.members.push_back(name + "_item" + std::to_string(i));
  }
  return DataTensor({std::move(stores), std::move(items)}, std::move(values));
}

}  // namespace

DataTensor MakeDataset(const std::string& name, DatasetScale scale, uint64_t seed) {
  const bool full = scale == DatasetScale::kFull;
  SyntheticConfig c;
  c.seed = seed;

  if (name == "AirQ") {
    // Repeating patterns and jumps; strong cross-series correlation.
    c.num_series = 10;
    c.length = full ? 1000 : 600;
    c.seasonal_periods = {24.0, 168.0};
    c.seasonality_strength = 0.5;  // "Moderate" repetition.
    c.cross_correlation = 0.85;    // "High" relatedness.
    c.jump_probability = 0.004;
    c.jump_scale = 0.8;
    c.noise_level = 0.1;
    return OneDimensional(c, name);
  }
  if (name == "Chlorine") {
    // Clusters of similar series with repeating trends.
    c.num_series = full ? 50 : 20;
    c.length = full ? 1000 : 600;
    c.seasonal_periods = {48.0};
    c.seasonality_strength = 0.85;  // "High".
    c.cross_correlation = 0.8;      // "High".
    c.num_clusters = 5;
    c.noise_level = 0.05;
    return OneDimensional(c, name);
  }
  if (name == "Gas") {
    c.num_series = full ? 100 : 24;
    c.length = full ? 1000 : 600;
    c.seasonal_periods = {60.0};
    c.seasonality_strength = 0.8;  // "High".
    c.cross_correlation = 0.5;     // "Moderate".
    c.noise_level = 0.1;
    return OneDimensional(c, name);
  }
  if (name == "Climate") {
    // Irregular with sporadic spikes; low relatedness.
    c.num_series = 10;
    c.length = full ? 5000 : 1200;
    c.seasonal_periods = {12.0, 120.0};
    c.seasonality_strength = 0.8;  // "High".
    c.cross_correlation = 0.15;    // "Low".
    c.spike_probability = 0.003;
    c.spike_scale = 2.0;
    c.noise_level = 0.15;
    return OneDimensional(c, name);
  }
  if (name == "Electricity") {
    c.num_series = full ? 20 : 12;
    c.length = full ? 5000 : 1200;
    c.seasonal_periods = {96.0};
    c.seasonality_strength = 0.8;  // "High".
    c.cross_correlation = 0.2;     // "Low".
    c.noise_level = 0.12;
    return OneDimensional(c, name);
  }
  if (name == "Temperature") {
    c.num_series = full ? 50 : 20;
    c.length = full ? 5000 : 1200;
    c.seasonal_periods = {365.0, 30.0};
    c.seasonality_strength = 0.8;  // "High".
    c.cross_correlation = 0.9;     // "High" (paper: highly correlated).
    c.noise_level = 0.08;
    return OneDimensional(c, name);
  }
  if (name == "Meteo") {
    // Weak repetition, sporadic anomalies.
    c.num_series = 10;
    c.length = full ? 10000 : 1600;
    c.seasonal_periods = {300.0};
    c.seasonality_strength = 0.2;  // "Low".
    c.cross_correlation = 0.7;     // "Moderate".
    c.ar_coefficient = 0.98;
    c.spike_probability = 0.002;
    c.spike_scale = 3.0;
    c.noise_level = 0.15;
    return OneDimensional(c, name);
  }
  if (name == "BAFU") {
    // River discharge: synchronized irregular trends, weak seasonality.
    c.num_series = 10;
    c.length = full ? 50000 : 2000;
    c.seasonal_periods = {1000.0};
    c.seasonality_strength = 0.25;  // "Low".
    c.cross_correlation = 0.75;     // "Moderate".
    c.ar_coefficient = 0.995;
    c.jump_probability = 0.001;
    c.jump_scale = 0.6;
    c.noise_level = 0.1;
    return OneDimensional(c, name);
  }
  if (name == "JanataHack") {
    // 76 stores x 28 SKUs x 134 weeks; high relatedness across stores.
    const int stores = full ? 76 : 16;
    const int items = full ? 28 : 8;
    return RetailDataset(name, stores, items, 134, /*store_coherence=*/0.85,
                         /*weekly_period=*/13.0, seed);
  }
  if (name == "M5") {
    // 10 stores x 106 items x 1941 days; low relatedness.
    const int stores = full ? 10 : 6;
    const int items = full ? 106 : 20;
    const int length = full ? 1941 : 400;
    return RetailDataset(name, stores, items, length, /*store_coherence=*/0.2,
                         /*weekly_period=*/7.0, seed);
  }
  DMVI_LOG(Fatal) << "Unknown dataset preset: " << name;
  return DataTensor();  // Unreachable.
}

std::vector<std::string> AllDatasetNames() {
  return {"AirQ",        "Chlorine", "Gas",   "Climate", "Electricity",
          "Temperature", "Meteo",    "BAFU",  "JanataHack", "M5"};
}

bool IsDatasetName(const std::string& name) {
  for (const auto& n : AllDatasetNames()) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace deepmvi
