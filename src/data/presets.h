#ifndef DEEPMVI_DATA_PRESETS_H_
#define DEEPMVI_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "tensor/data_tensor.h"

namespace deepmvi {

/// Size mode for dataset presets. The paper's datasets range up to
/// 50k time steps and 2128 series; kReduced scales every preset down so
/// the whole benchmark suite runs on one CPU in minutes while keeping the
/// qualitative structure intact. kFull matches the paper's dimensions.
enum class DatasetScale { kReduced, kFull };

/// Synthetic stand-ins for the paper's ten evaluation datasets (Table 1).
/// Each preset reproduces the paper's qualitative axes: number of series,
/// series length, within-series repetition, and cross-series relatedness.
/// JanataHack and M5 are 2-dimensional (store x item/SKU).
///
/// Valid names: AirQ, Chlorine, Gas, Climate, Electricity, Temperature,
/// Meteo, BAFU, JanataHack, M5.
DataTensor MakeDataset(const std::string& name,
                       DatasetScale scale = DatasetScale::kReduced,
                       uint64_t seed = 1);

/// All preset names in Table 1 order.
std::vector<std::string> AllDatasetNames();

/// True if `name` is a valid preset.
bool IsDatasetName(const std::string& name);

}  // namespace deepmvi

#endif  // DEEPMVI_DATA_PRESETS_H_
