#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepmvi {

Matrix GenerateSeriesMatrix(const SyntheticConfig& config) {
  DMVI_CHECK_GT(config.num_series, 0);
  DMVI_CHECK_GT(config.length, 0);
  Rng rng(config.seed);
  const int n = config.num_series;
  const int t_len = config.length;

  // Shared latent factors: slow seasonal + random-walk mixtures.
  const int f = std::max(config.num_latent_factors, 1);
  Matrix factors(f, t_len);
  for (int k = 0; k < f; ++k) {
    const double period =
        config.seasonal_periods.empty()
            ? 64.0
            : config.seasonal_periods[k % config.seasonal_periods.size()] *
                  rng.Uniform(0.8, 1.2);
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    double walk = 0.0;
    for (int t = 0; t < t_len; ++t) {
      walk = 0.99 * walk + 0.1 * rng.Gaussian();
      factors(k, t) = std::sin(2.0 * M_PI * t / period + phase) + 0.5 * walk;
    }
  }

  // Cluster assignment for cluster-structured datasets.
  std::vector<int> cluster(n, 0);
  std::vector<double> cluster_phase;
  if (config.num_clusters > 0) {
    for (int i = 0; i < n; ++i) cluster[i] = i % config.num_clusters;
    for (int c = 0; c < config.num_clusters; ++c) {
      cluster_phase.push_back(rng.Uniform(0.0, 2.0 * M_PI));
    }
  }

  // Global phase per seasonal period: series phases concentrate around it
  // as cross_correlation rises, so that "high relatedness" datasets are
  // correlated through their seasonal components too (as in Temperature).
  std::vector<double> global_phase(config.seasonal_periods.size());
  for (auto& p : global_phase) p = rng.Uniform(0.0, 2.0 * M_PI);

  const double w_shared = config.cross_correlation;
  const double w_seasonal = config.seasonality_strength;
  // Idiosyncratic weight shrinks as shared/seasonal structure grows, so
  // strongly seasonal datasets actually look seasonal.
  const double w_idio = std::max(0.1, 1.0 - w_seasonal - 0.5 * w_shared);

  // Mean loading direction: series' factor loadings concentrate around it
  // as cross_correlation rises (random directions would have near-zero
  // expected pairwise correlation no matter the shared weight).
  std::vector<double> mean_loading(f);
  for (auto& v : mean_loading) v = rng.Gaussian();
  {
    const double norm = std::max(Norm(mean_loading), 1e-9);
    for (auto& v : mean_loading) v /= norm;
  }

  Matrix out(n, t_len);
  for (int i = 0; i < n; ++i) {
    // Loadings on the shared factors: blend of the common direction and a
    // per-series random direction, normalized to unit scale.
    std::vector<double> loading(f);
    for (int k = 0; k < f; ++k) {
      loading[k] = config.cross_correlation * mean_loading[k] +
                   (1.0 - config.cross_correlation) * rng.Gaussian(0.0, 1.0);
    }
    const double lnorm = std::max(Norm(loading), 1e-9);
    for (auto& v : loading) v /= lnorm;

    // Seasonal components: per-series amplitude; phase shared within a
    // cluster when clustering is on.
    struct Seasonal {
      double period, phase, amplitude;
    };
    std::vector<Seasonal> seasonals;
    for (size_t si = 0; si < config.seasonal_periods.size(); ++si) {
      Seasonal s;
      s.period = config.seasonal_periods[si];
      if (config.num_clusters > 0) {
        s.phase = cluster_phase[cluster[i]];
      } else {
        s.phase = global_phase[si] + (1.0 - config.cross_correlation) *
                                         rng.Uniform(0.0, 2.0 * M_PI);
      }
      s.amplitude = rng.Uniform(0.6, 1.4);
      seasonals.push_back(s);
    }

    const double trend_slope =
        config.trend_strength * rng.Gaussian() / std::max(t_len, 1);
    const double bias = rng.Gaussian(0.0, 0.3);

    double ar_state = 0.0;
    double level_shift = 0.0;
    const double ar_innov = std::sqrt(
        std::max(1.0 - config.ar_coefficient * config.ar_coefficient, 1e-4));
    for (int t = 0; t < t_len; ++t) {
      // Shared part.
      double shared = 0.0;
      for (int k = 0; k < f; ++k) shared += loading[k] * factors(k, t);
      // Seasonal part.
      double seasonal = 0.0;
      for (const auto& s : seasonals) {
        seasonal += s.amplitude * std::sin(2.0 * M_PI * t / s.period + s.phase);
      }
      if (!seasonals.empty()) {
        seasonal /= static_cast<double>(seasonals.size());
      }
      // Idiosyncratic AR(1).
      ar_state = config.ar_coefficient * ar_state + ar_innov * rng.Gaussian();
      // Jumps and spikes.
      if (config.jump_probability > 0.0 && rng.Bernoulli(config.jump_probability)) {
        level_shift += rng.Gaussian(0.0, config.jump_scale);
      }
      double spike = 0.0;
      if (config.spike_probability > 0.0 &&
          rng.Bernoulli(config.spike_probability)) {
        spike = rng.Gaussian(0.0, config.spike_scale);
      }
      out(i, t) = bias + trend_slope * t + w_shared * shared +
                  w_seasonal * seasonal + w_idio * ar_state + level_shift +
                  spike + config.noise_level * rng.Gaussian();
    }
  }
  return out;
}

double Autocorrelation(const std::vector<double>& series, int lag) {
  const int n = static_cast<int>(series.size());
  DMVI_CHECK_GT(lag, 0);
  if (lag >= n) return 0.0;
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= n;
  double num = 0.0, den = 0.0;
  for (int t = 0; t < n; ++t) {
    const double d = series[t] - mean;
    den += d * d;
    if (t + lag < n) num += d * (series[t + lag] - mean);
  }
  if (den <= 0.0) return 0.0;
  // Unbiased normalization so a pure sinusoid scores ~1 at its period.
  return (num / (n - lag)) / (den / n);
}

SeriesCharacteristics MeasureCharacteristics(const Matrix& series, int min_lag,
                                             int max_lag) {
  SeriesCharacteristics out;
  const int n = series.rows();
  max_lag = std::min(max_lag, series.cols() / 2);

  double season_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    auto row = series.Row(i);
    // Seasonality = strength of the largest LOCAL MAXIMUM of the ACF.
    // A smooth AR path has a monotonically decaying ACF (no local peak),
    // while a periodic signal peaks at its period. This separates
    // "repetition" from mere smoothness.
    std::vector<double> acf(max_lag + 1, 0.0);
    for (int lag = std::max(min_lag - 3, 1); lag <= max_lag; ++lag) {
      acf[lag] = Autocorrelation(row, lag);
    }
    double best = 0.0;
    const int margin = 3;
    for (int lag = min_lag; lag + margin <= max_lag; ++lag) {
      if (lag - margin < 1) continue;
      if (acf[lag] > acf[lag - margin] + 0.01 &&
          acf[lag] > acf[lag + margin] + 0.01) {
        best = std::max(best, acf[lag]);
      }
    }
    season_sum += best;
  }
  out.seasonality_score = season_sum / n;

  double corr_sum = 0.0;
  int pairs = 0;
  // Signed correlations: same-period series with random phases would score
  // ~2/pi under |corr| even when unrelated, so the mean signed correlation
  // is the honest relatedness measure. Cap pairs for very wide datasets.
  const int max_rows = std::min(n, 40);
  for (int i = 0; i < max_rows; ++i) {
    for (int j = i + 1; j < max_rows; ++j) {
      corr_sum += PearsonCorrelation(series.Row(i), series.Row(j));
      ++pairs;
    }
  }
  out.relatedness_score = pairs > 0 ? std::max(corr_sum / pairs, 0.0) : 0.0;
  return out;
}

}  // namespace deepmvi
