#ifndef DEEPMVI_DATA_SYNTHETIC_H_
#define DEEPMVI_DATA_SYNTHETIC_H_

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace deepmvi {

/// Configuration of the synthetic time-series composer.
///
/// Each series is a mixture of
///   - shared latent factors (controls cross-series relatedness),
///   - per-series seasonal components (controls repetition within series),
///   - a smooth AR(1) idiosyncratic path,
///   - optional linear trend, sporadic jumps (level shifts) and spikes,
///   - white observation noise.
///
/// The weights are chosen so that `cross_correlation` close to 1 makes
/// series move together while `seasonality_strength` close to 1 makes each
/// series strongly periodic — the two qualitative axes of the paper's
/// Table 1.
struct SyntheticConfig {
  int num_series = 10;
  int length = 1000;

  /// Periods of the seasonal components, in time steps.
  std::vector<double> seasonal_periods = {50.0};
  /// Relative weight of the seasonal components in [0, 1].
  double seasonality_strength = 0.7;

  /// Relative weight of shared latent factors in [0, 1].
  double cross_correlation = 0.5;
  int num_latent_factors = 3;

  /// AR(1) coefficient of the idiosyncratic path (0 disables it).
  double ar_coefficient = 0.95;

  /// Stddev of additive white noise.
  double noise_level = 0.1;

  /// Slope magnitude of a per-series linear trend (0 disables).
  double trend_strength = 0.0;

  /// Per-step probability of a persistent level shift ("jump").
  double jump_probability = 0.0;
  double jump_scale = 2.0;

  /// Per-step probability of a one-step spike ("anomaly").
  double spike_probability = 0.0;
  double spike_scale = 4.0;

  /// When > 0, series are grouped into `num_clusters` clusters that share
  /// seasonal phase/shape (Chlorine-style cluster structure).
  int num_clusters = 0;

  uint64_t seed = 1;
};

/// Generates a num_series x length matrix according to `config`.
/// Deterministic given config.seed.
Matrix GenerateSeriesMatrix(const SyntheticConfig& config);

/// Measured characteristics of a generated dataset, used by the Table 1
/// bench to verify the generators match the paper's qualitative judgments.
struct SeriesCharacteristics {
  /// Mean over series of the max autocorrelation over lags in
  /// [min_lag, max_lag]: high for strongly seasonal data.
  double seasonality_score = 0.0;
  /// Mean absolute pairwise Pearson correlation between series.
  double relatedness_score = 0.0;
};

SeriesCharacteristics MeasureCharacteristics(const Matrix& series,
                                             int min_lag = 5, int max_lag = 200);

/// Autocorrelation of one series at the given lag.
double Autocorrelation(const std::vector<double>& series, int lag);

}  // namespace deepmvi

#endif  // DEEPMVI_DATA_SYNTHETIC_H_
