#include "deep/brits.h"

#include <algorithm>

#include "nn/adam.h"
#include "nn/layers.h"

namespace deepmvi {
namespace {

using ad::Tape;
using ad::Var;

/// One direction of BRITS: GRU over columns with a pre-step regression.
struct Rits {
  nn::GruCell cell;
  nn::Linear regression;  // hidden -> n (column estimate)

  Rits() = default;
  Rits(nn::ParameterStore* store, const std::string& name, int num_series,
       int hidden_dim, Rng& rng)
      : cell(store, name + ".gru", 2 * num_series, hidden_dim, rng),
        regression(store, name + ".reg", hidden_dim, num_series, rng) {}

  /// Runs over the columns listed in `order` (forward or reversed).
  /// Returns per-step estimates (|order| x n, in `order`'s ordering) and
  /// adds the observed-cell reconstruction loss into `loss_terms`.
  Var Run(Tape& tape, const Matrix& values, const Mask& mask, int chunk_start,
          const std::vector<int>& order, std::vector<Var>* loss_terms) const {
    const int n = regression.out_features();
    Var h = tape.Constant(Matrix(1, cell.hidden_dim()));
    std::vector<Var> estimates;
    estimates.reserve(order.size());
    for (int idx : order) {
      const int t = chunk_start + idx;
      // Estimate the column from the state.
      Var x_hat = regression.Forward(tape, h);  // 1 x n
      estimates.push_back(x_hat);
      // Observed values and mask as constants.
      Matrix observed(1, n), m(1, n);
      for (int r = 0; r < n; ++r) {
        if (mask.available(r, t)) {
          observed(0, r) = values(r, t);
          m(0, r) = 1.0;
        }
      }
      loss_terms->push_back(ad::WeightedMaeLoss(x_hat, observed, m));
      // Complement: observed where available, estimate elsewhere.
      Var complement = ad::Add(tape.Constant(observed),
                               ad::MulConst(x_hat, Matrix(1, n, 1.0) - m));
      Var input = ad::ConcatCols({complement, tape.Constant(m)});
      h = cell.Forward(tape, input, h);
    }
    return ad::ConcatRows(estimates);
  }
};

}  // namespace

Matrix BritsImputer::Impute(const DataTensor& raw_data, const Mask& mask) {
  auto stats = raw_data.ComputeNormalization(mask);
  DataTensor data = raw_data.Normalized(stats);
  const Matrix& values = data.values();
  const int t_len = data.num_times();
  const int n = data.num_series();
  const int chunk_len = std::min(config_.max_chunk, t_len);

  Rng rng(config_.seed);
  nn::ParameterStore store;
  Rits forward_rits(&store, "fwd", n, config_.hidden_dim, rng);
  Rits backward_rits(&store, "bwd", n, config_.hidden_dim, rng);
  nn::Adam adam(&store, {.learning_rate = config_.learning_rate});

  std::vector<int> fwd_order(chunk_len), bwd_order(chunk_len);
  for (int i = 0; i < chunk_len; ++i) {
    fwd_order[i] = i;
    bwd_order[i] = chunk_len - 1 - i;
  }

  auto pass_loss = [&](Tape& tape, int chunk_start) {
    std::vector<Var> loss_terms;
    Var est_fwd =
        forward_rits.Run(tape, values, mask, chunk_start, fwd_order, &loss_terms);
    Var est_bwd_rev =
        backward_rits.Run(tape, values, mask, chunk_start, bwd_order, &loss_terms);
    // Reverse the backward estimates to align time.
    std::vector<Var> aligned;
    aligned.reserve(chunk_len);
    for (int i = chunk_len - 1; i >= 0; --i) {
      aligned.push_back(ad::SliceRows(est_bwd_rev, i, 1));
    }
    Var est_bwd = ad::ConcatRows(aligned);
    // Consistency between directions.
    Var diff = ad::Sub(est_fwd, est_bwd);
    loss_terms.push_back(
        ad::Scale(ad::Mean(ad::Square(diff)), config_.consistency_weight));
    Var total = loss_terms[0];
    for (size_t i = 1; i < loss_terms.size(); ++i) {
      total = ad::Add(total, loss_terms[i]);
    }
    return ad::Scale(total, 1.0 / static_cast<double>(loss_terms.size()));
  };

  // ---- Training. ---------------------------------------------------------
  Tape tape;
  double best_val = 1e300;
  int stale = 0;
  std::vector<Matrix> best_params;
  auto snapshot = [&] {
    best_params.clear();
    for (const auto& p : store.params()) best_params.push_back(p->value());
  };
  snapshot();
  const int val_chunk = t_len > chunk_len ? (t_len - chunk_len) / 2 : 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    for (int pass = 0; pass < config_.passes_per_epoch; ++pass) {
      const int start =
          t_len > chunk_len ? rng.UniformInt(t_len - chunk_len + 1) : 0;
      tape.Reset();
      Var loss = pass_loss(tape, start);
      tape.Backward(loss);
      adam.Step(tape);
    }
    tape.Reset();
    const double val = pass_loss(tape, val_chunk).scalar();
    tape.Reset();
    if (val < best_val - 1e-6) {
      best_val = val;
      snapshot();
      stale = 0;
    } else if (++stale >= config_.patience) {
      break;
    }
  }
  for (size_t i = 0; i < best_params.size(); ++i) {
    store.params()[i]->value() = best_params[i];
  }

  // ---- Imputation: average of both directions over covering chunks. ------
  Matrix out = raw_data.values();
  for (int start = 0; start < t_len; start += chunk_len) {
    const int s = std::min(start, t_len - chunk_len);
    tape.Reset();
    std::vector<Var> unused;
    Var est_fwd = forward_rits.Run(tape, values, mask, s, fwd_order, &unused);
    Var est_bwd = backward_rits.Run(tape, values, mask, s, bwd_order, &unused);
    for (int i = 0; i < chunk_len; ++i) {
      const int t = s + i;
      if (t < start) continue;  // Overlap from the clamped final chunk.
      for (int r = 0; r < n; ++r) {
        if (mask.missing(r, t)) {
          const double estimate = 0.5 * (est_fwd.value()(i, r) +
                                         est_bwd.value()(chunk_len - 1 - i, r));
          out(r, t) = estimate * stats.stddev[r] + stats.mean[r];
        }
      }
    }
  }
  tape.Reset();
  return out;
}

}  // namespace deepmvi
