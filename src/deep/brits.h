#ifndef DEEPMVI_DEEP_BRITS_H_
#define DEEPMVI_DEEP_BRITS_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// BRITS (Cao et al., NeurIPS 2018): bidirectional recurrent imputation.
///
/// A recurrent network runs over time; at each step t it first regresses
/// an estimate x̂_t of the whole data column from the previous hidden
/// state, computes the reconstruction loss on the observed entries, feeds
/// the complemented column (observed values where available, estimates
/// elsewhere) together with the missing-mask into a GRU, and moves on.
/// A second network runs in the reverse direction; the final imputation is
/// the average of the two estimates, with a consistency loss pulling the
/// directions together. The column-as-input design means the RNN state
/// must capture both temporal and cross-series structure — the aspect the
/// paper's analysis criticizes (Sec 3) and the cause of its poor Blackout
/// behaviour.
class BritsImputer : public Imputer {
 public:
  struct Config {
    int hidden_dim = 64;
    double learning_rate = 1e-3;
    int max_epochs = 30;
    /// Training passes per epoch (each over a random chunk).
    int passes_per_epoch = 4;
    /// Chunk of consecutive time steps per pass (bounds graph size).
    int max_chunk = 256;
    double consistency_weight = 0.1;
    int patience = 4;
    uint64_t seed = 37;
  };

  BritsImputer() = default;
  explicit BritsImputer(Config config) : config_(config) {}

  std::string name() const override { return "BRITS"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_DEEP_BRITS_H_
