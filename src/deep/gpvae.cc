#include "deep/gpvae.h"

#include <algorithm>
#include <cmath>

#include "nn/adam.h"
#include "nn/layers.h"

namespace deepmvi {
namespace {

using ad::Tape;
using ad::Var;

struct VaeModel {
  nn::ParameterStore store;
  nn::Linear enc1;      // n -> hidden
  nn::Linear enc_mu;    // hidden -> d
  nn::Linear enc_logv;  // hidden -> d
  nn::Linear dec1;      // d -> hidden
  nn::Linear dec2;      // hidden -> n
};

}  // namespace

Matrix GpVaeImputer::Impute(const DataTensor& raw_data, const Mask& mask) {
  auto stats = raw_data.ComputeNormalization(mask);
  DataTensor data = raw_data.Normalized(stats);
  const Matrix& values = data.values();
  const int t_len = data.num_times();
  const int n = data.num_series();
  const int chunk_len = std::min(config_.max_chunk, t_len);

  Rng rng(config_.seed);
  VaeModel model;
  model.enc1 = nn::Linear(&model.store, "enc1", n, config_.hidden_dim, rng);
  model.enc_mu = nn::Linear(&model.store, "mu", config_.hidden_dim,
                            config_.latent_dim, rng);
  model.enc_logv = nn::Linear(&model.store, "logv", config_.hidden_dim,
                              config_.latent_dim, rng);
  model.dec1 = nn::Linear(&model.store, "dec1", config_.latent_dim,
                          config_.hidden_dim, rng);
  model.dec2 = nn::Linear(&model.store, "dec2", config_.hidden_dim, n, rng);
  nn::Adam adam(&model.store, {.learning_rate = config_.learning_rate});

  // Columns as rows: chunk matrix is chunk_len x n with missing zeroed.
  auto chunk_inputs = [&](int start) {
    Matrix input(chunk_len, n), observed(chunk_len, n), weight(chunk_len, n);
    for (int i = 0; i < chunk_len; ++i) {
      for (int r = 0; r < n; ++r) {
        if (mask.available(r, start + i)) {
          input(i, r) = values(r, start + i);
          observed(i, r) = values(r, start + i);
          weight(i, r) = 1.0;
        }
      }
    }
    return std::make_tuple(input, observed, weight);
  };

  auto encode = [&](Tape& tape, const Matrix& input) {
    Var h = ad::Tanh(model.enc1.Forward(tape, tape.Constant(input)));
    Var mu = model.enc_mu.Forward(tape, h);
    Var logv = model.enc_logv.Forward(tape, h);
    return std::make_pair(mu, logv);
  };
  auto decode = [&](Tape& tape, const Var& z) {
    return model.dec2.Forward(tape, ad::Tanh(model.dec1.Forward(tape, z)));
  };

  auto pass_loss = [&](Tape& tape, int start, Rng& noise_rng) {
    auto [input, observed, weight] = chunk_inputs(start);
    auto [mu, logv] = encode(tape, input);
    // Reparameterized sample z = mu + exp(0.5 logv) * eps.
    Matrix eps(chunk_len, config_.latent_dim);
    for (int i = 0; i < chunk_len; ++i) {
      for (int d = 0; d < config_.latent_dim; ++d) eps(i, d) = noise_rng.Gaussian();
    }
    Var std_dev = ad::Exp(ad::Scale(logv, 0.5));
    Var z = ad::Add(mu, ad::Mul(std_dev, tape.Constant(eps)));
    Var recon = decode(tape, z);
    Var loss = ad::WeightedMseLoss(recon, observed, weight);
    // KL(q || N(0, I)) = 0.5 sum(exp(logv) + mu^2 - 1 - logv).
    Var kl = ad::Scale(
        ad::Sum(ad::Sub(ad::Add(ad::Exp(logv), ad::Square(mu)),
                        ad::AddScalar(logv, 1.0))),
        0.5 / static_cast<double>(chunk_len));
    loss = ad::Add(loss, ad::Scale(kl, config_.kl_weight));
    // GP/Wiener smoothness prior on the latent path.
    if (chunk_len > 1) {
      Var diff = ad::Sub(ad::SliceRows(mu, 1, chunk_len - 1),
                         ad::SliceRows(mu, 0, chunk_len - 1));
      loss = ad::Add(loss,
                     ad::Scale(ad::Mean(ad::Square(diff)),
                               config_.smoothness_weight));
    }
    return loss;
  };

  // ---- Training. -----------------------------------------------------------
  Tape tape;
  double best_val = 1e300;
  int stale = 0;
  std::vector<Matrix> best_params;
  auto snapshot = [&] {
    best_params.clear();
    for (const auto& p : model.store.params()) best_params.push_back(p->value());
  };
  snapshot();
  const int val_start = t_len > chunk_len ? (t_len - chunk_len) / 2 : 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    for (int pass = 0; pass < config_.passes_per_epoch; ++pass) {
      const int start =
          t_len > chunk_len ? rng.UniformInt(t_len - chunk_len + 1) : 0;
      tape.Reset();
      Var loss = pass_loss(tape, start, rng);
      tape.Backward(loss);
      adam.Step(tape);
    }
    Rng val_noise(12345);  // Fixed noise for comparable validation losses.
    tape.Reset();
    const double val = pass_loss(tape, val_start, val_noise).scalar();
    tape.Reset();
    if (val < best_val - 1e-6) {
      best_val = val;
      snapshot();
      stale = 0;
    } else if (++stale >= config_.patience) {
      break;
    }
  }
  for (size_t i = 0; i < best_params.size(); ++i) {
    model.store.params()[i]->value() = best_params[i];
  }

  // ---- Imputation from posterior means over covering chunks. --------------
  Matrix out = raw_data.values();
  for (int start = 0; start < t_len; start += chunk_len) {
    const int s = std::min(start, t_len - chunk_len);
    auto [input, observed, weight] = chunk_inputs(s);
    tape.Reset();
    auto [mu, logv] = encode(tape, input);
    (void)logv;
    Var recon = decode(tape, mu);
    for (int i = 0; i < chunk_len; ++i) {
      const int t = s + i;
      if (t < start) continue;
      for (int r = 0; r < n; ++r) {
        if (mask.missing(r, t)) {
          out(r, t) = recon.value()(i, r) * stats.stddev[r] + stats.mean[r];
        }
      }
    }
  }
  tape.Reset();
  return out;
}

}  // namespace deepmvi
