#ifndef DEEPMVI_DEEP_GPVAE_H_
#define DEEPMVI_DEEP_GPVAE_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// GP-VAE (Fortuin et al., AISTATS 2020), simplified: a variational
/// autoencoder over data columns with a temporal smoothness prior in
/// latent space.
///
/// Each column X_{:,t} is encoded into a latent Gaussian q(z_t); the
/// decoder reconstructs the column from z_t. The Gaussian-process prior
/// along time is realised as a Wiener-process penalty ||z_t - z_{t-1}||^2
/// on the latent path (the structured-variational simplification noted in
/// DESIGN.md). Training minimizes masked reconstruction + KL + smoothness;
/// missing cells are imputed from the decoded posterior mean.
class GpVaeImputer : public Imputer {
 public:
  struct Config {
    int latent_dim = 8;
    int hidden_dim = 64;
    double learning_rate = 1e-3;
    int max_epochs = 40;
    int passes_per_epoch = 4;
    /// Consecutive columns per training pass.
    int max_chunk = 128;
    double kl_weight = 0.05;
    double smoothness_weight = 0.5;
    int patience = 4;
    uint64_t seed = 41;
  };

  GpVaeImputer() = default;
  explicit GpVaeImputer(Config config) : config_(config) {}

  std::string name() const override { return "GPVAE"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_DEEP_GPVAE_H_
