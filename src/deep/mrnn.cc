#include "deep/mrnn.h"

#include <algorithm>

#include "nn/adam.h"
#include "nn/layers.h"

namespace deepmvi {
namespace {

using ad::Tape;
using ad::Var;

struct MrnnModel {
  nn::ParameterStore store;
  nn::GruCell fwd;        // input (value, mask) -> hidden
  nn::GruCell bwd;
  nn::Linear interp;      // 2 * hidden -> 1
  nn::Linear cross;       // n -> n (diagonal zeroed at every use)
};

}  // namespace

Matrix MrnnImputer::Impute(const DataTensor& raw_data, const Mask& mask) {
  auto stats = raw_data.ComputeNormalization(mask);
  DataTensor data = raw_data.Normalized(stats);
  const Matrix& values = data.values();
  const int t_len = data.num_times();
  const int n = data.num_series();
  const int chunk_len = std::min(config_.max_chunk, t_len);

  Rng rng(config_.seed);
  MrnnModel model;
  model.fwd = nn::GruCell(&model.store, "fwd", 2, config_.hidden_dim, rng);
  model.bwd = nn::GruCell(&model.store, "bwd", 2, config_.hidden_dim, rng);
  model.interp = nn::Linear(&model.store, "interp", 2 * config_.hidden_dim, 1, rng);
  model.cross = nn::Linear(&model.store, "cross", n, n, rng);
  nn::Adam adam(&model.store, {.learning_rate = config_.learning_rate});

  // Stage 1 for one series chunk: bidirectional GRU interpolation.
  // Returns a chunk_len x 1 estimate.
  auto interpolate_series = [&](Tape& tape, int row, int start) {
    // States BEFORE consuming each position, per direction: position i is
    // estimated from the forward state after position i-1 and the
    // backward state after position i+1, so its own value never leaks
    // into its estimate (the usual bidirectional-imputation protocol).
    std::vector<Var> fwd_before(chunk_len), bwd_before(chunk_len);
    Var hf = tape.Constant(Matrix(1, config_.hidden_dim));
    Var hb = tape.Constant(Matrix(1, config_.hidden_dim));
    for (int i = 0; i < chunk_len; ++i) {
      // Forward direction.
      fwd_before[i] = hf;
      Matrix xin_f(1, 2);
      const int tf = start + i;
      if (mask.available(row, tf)) {
        xin_f(0, 0) = values(row, tf);
        xin_f(0, 1) = 1.0;
      }
      hf = model.fwd.Forward(tape, tape.Constant(xin_f), hf);
      // Backward direction.
      bwd_before[chunk_len - 1 - i] = hb;
      Matrix xin_b(1, 2);
      const int tb = start + chunk_len - 1 - i;
      if (mask.available(row, tb)) {
        xin_b(0, 0) = values(row, tb);
        xin_b(0, 1) = 1.0;
      }
      hb = model.bwd.Forward(tape, tape.Constant(xin_b), hb);
    }
    std::vector<Var> estimates;
    estimates.reserve(chunk_len);
    for (int i = 0; i < chunk_len; ++i) {
      Var state = ad::ConcatCols({fwd_before[i], bwd_before[i]});
      estimates.push_back(model.interp.Forward(tape, state));
    }
    return ad::ConcatRows(estimates);  // chunk_len x 1
  };

  // Full two-stage forward over a chunk: returns final estimates
  // (chunk_len x n) and the training loss on observed cells.
  auto forward_chunk = [&](Tape& tape, int start, Var* loss_out) {
    std::vector<Var> stage1_cols;
    stage1_cols.reserve(n);
    for (int r = 0; r < n; ++r) {
      stage1_cols.push_back(interpolate_series(tape, r, start));
    }
    Var stage1 = ad::ConcatCols(stage1_cols);  // chunk_len x n

    // Complement: observed values where available, stage-1 elsewhere.
    Matrix observed(chunk_len, n), m(chunk_len, n);
    for (int i = 0; i < chunk_len; ++i) {
      for (int r = 0; r < n; ++r) {
        if (mask.available(r, start + i)) {
          observed(i, r) = values(r, start + i);
          m(i, r) = 1.0;
        }
      }
    }
    Var complement = ad::Add(tape.Constant(observed),
                             ad::MulConst(stage1, Matrix(chunk_len, n, 1.0) - m));
    // Stage 2: cross-stream regression. The identity shortcut (copying a
    // series' own observed value through the weight diagonal) would let
    // training ignore the other series, so the LOSS pass feeds stage-1
    // estimates only; the IMPUTATION pass feeds the complemented column.
    Var final_est = model.cross.Forward(tape, complement);
    if (loss_out != nullptr) {
      Var loss_est = model.cross.Forward(tape, stage1);
      Var stage1_loss = ad::WeightedMseLoss(stage1, observed, m);
      Var stage2_loss = ad::WeightedMseLoss(loss_est, observed, m);
      *loss_out = ad::Add(stage1_loss, stage2_loss);
    }
    return final_est;
  };

  // ---- Training. ----------------------------------------------------------
  Tape tape;
  double best_val = 1e300;
  int stale = 0;
  std::vector<Matrix> best_params;
  auto snapshot = [&] {
    best_params.clear();
    for (const auto& p : model.store.params()) best_params.push_back(p->value());
  };
  snapshot();
  const int val_start = t_len > chunk_len ? (t_len - chunk_len) / 2 : 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    for (int pass = 0; pass < config_.passes_per_epoch; ++pass) {
      const int start =
          t_len > chunk_len ? rng.UniformInt(t_len - chunk_len + 1) : 0;
      tape.Reset();
      Var loss;
      forward_chunk(tape, start, &loss);
      tape.Backward(loss);
      adam.Step(tape);
    }
    tape.Reset();
    Var val_loss;
    forward_chunk(tape, val_start, &val_loss);
    const double val = val_loss.scalar();
    tape.Reset();
    if (val < best_val - 1e-6) {
      best_val = val;
      snapshot();
      stale = 0;
    } else if (++stale >= config_.patience) {
      break;
    }
  }
  for (size_t i = 0; i < best_params.size(); ++i) {
    model.store.params()[i]->value() = best_params[i];
  }

  // ---- Imputation over covering chunks. ------------------------------------
  Matrix out = raw_data.values();
  for (int start = 0; start < t_len; start += chunk_len) {
    const int s = std::min(start, t_len - chunk_len);
    tape.Reset();
    Var estimates = forward_chunk(tape, s, nullptr);
    for (int i = 0; i < chunk_len; ++i) {
      const int t = s + i;
      if (t < start) continue;
      for (int r = 0; r < n; ++r) {
        if (mask.missing(r, t)) {
          out(r, t) =
              estimates.value()(i, r) * stats.stddev[r] + stats.mean[r];
        }
      }
    }
  }
  tape.Reset();
  return out;
}

}  // namespace deepmvi
