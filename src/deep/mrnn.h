#ifndef DEEPMVI_DEEP_MRNN_H_
#define DEEPMVI_DEEP_MRNN_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// MRNN (Yoon, Zame, van der Schaar, IEEE TBME 2019): multi-directional
/// recurrent imputation.
///
/// Two stages, trained jointly:
///  1. Within-stream interpolation: a bidirectional GRU (parameters shared
///     across series) runs over each series' (value, mask) sequence and
///     regresses an estimate per position from the states of both
///     directions.
///  2. Across-stream regression: a fully-connected layer with a zeroed
///     diagonal maps the data column at time t (observed values where
///     available, stage-1 estimates elsewhere) to a final estimate, so
///     each series is predicted from the OTHER series plus its own
///     temporal interpolation.
///
/// The paper's survey (Sec 2.4, citing the Mind-the-Gap study) found MRNN
/// markedly slower and less accurate than matrix-completion methods; this
/// implementation exists to reproduce its standing.
class MrnnImputer : public Imputer {
 public:
  struct Config {
    int hidden_dim = 16;
    double learning_rate = 2e-3;
    int max_epochs = 20;
    int passes_per_epoch = 4;
    /// Chunk of consecutive time steps per pass.
    int max_chunk = 192;
    int patience = 4;
    uint64_t seed = 43;
  };

  MrnnImputer() = default;
  explicit MrnnImputer(Config config) : config_(config) {}

  std::string name() const override { return "MRNN"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_DEEP_MRNN_H_
