#include "deep/transformer_imputer.h"

#include <algorithm>
#include <cmath>

#include "nn/adam.h"
#include "nn/layers.h"

namespace deepmvi {
namespace {

using ad::Tape;
using ad::Var;

struct TransformerModel {
  nn::ParameterStore store;
  nn::Linear embed;      // 1 -> p
  nn::MultiHeadSelfAttention attention;
  nn::FeedForward ffn;   // p -> p
  nn::Linear head;       // p -> 1
};

}  // namespace

Matrix TransformerImputer::Impute(const DataTensor& raw_data, const Mask& mask) {
  auto stats = raw_data.ComputeNormalization(mask);
  DataTensor data = raw_data.Normalized(stats);
  const Matrix& values = data.values();
  const int t_len = data.num_times();
  const int num_series = data.num_series();
  const int context = std::min(config_.max_context, t_len);

  Rng rng(config_.seed);
  TransformerModel model;
  model.embed = nn::Linear(&model.store, "embed", 1, config_.model_dim, rng);
  model.attention = nn::MultiHeadSelfAttention(
      &model.store, "attn",
      {.model_dim = config_.model_dim, .num_heads = config_.num_heads}, rng);
  model.ffn = nn::FeedForward(&model.store, "ffn", config_.model_dim,
                              2 * config_.model_dim, config_.model_dim, rng);
  model.head = nn::Linear(&model.store, "head", config_.model_dim, 1, rng);
  nn::Adam adam(&model.store, {.learning_rate = config_.learning_rate});

  const Matrix pos_enc =
      nn::SinusoidalPositionalEncoding(context, config_.model_dim);
  std::vector<int> block_lengths = mask.MissingBlockLengths();
  if (block_lengths.empty()) block_lengths = {5};

  // Forward over one chunk of one series. `hidden` marks positions whose
  // input value is zeroed (real missing plus training targets); outputs
  // are per-position predictions (context x 1).
  auto forward = [&](Tape& tape, int row, int start,
                     const std::vector<bool>& hidden) {
    Matrix input(context, 1);
    std::vector<double> key_avail(context, 1.0);
    for (int i = 0; i < context; ++i) {
      // Vanilla transformer: masked inputs are zeroed but remain keys.
      if (!hidden[i]) input(i, 0) = values(row, start + i);
    }
    // Scale the value embedding by sqrt(d_model) (standard practice) so
    // the positional encoding does not drown the value signal.
    Var e = ad::Add(ad::Scale(model.embed.Forward(tape, tape.Constant(input)),
                              std::sqrt(static_cast<double>(config_.model_dim))),
                    tape.Constant(pos_enc));
    Var attended = ad::Add(e, model.attention.Forward(tape, e, key_avail));
    Var encoded = ad::Add(attended, model.ffn.Forward(tape, attended));
    return model.head.Forward(tape, encoded);
  };

  // ---- Training: masked-span reconstruction. ----------------------------
  Tape tape;
  double best_val = 1e300;
  int stale = 0;
  std::vector<Matrix> best_params;
  auto snapshot = [&] {
    best_params.clear();
    for (const auto& p : model.store.params()) best_params.push_back(p->value());
  };
  snapshot();

  auto make_loss = [&](Tape& t, Rng& sample_rng) {
    const int row = sample_rng.UniformInt(num_series);
    const int start =
        t_len > context ? sample_rng.UniformInt(t_len - context + 1) : 0;
    std::vector<bool> hidden(context, false);
    std::vector<bool> synthetic(context, false);
    Matrix target(context, 1);
    Matrix weight(context, 1);
    // Hide several sampled blocks per pass (more loss positions per
    // attention computation); real missing cells stay hidden with no loss.
    for (int span = 0; span < 4; ++span) {
      const int len = std::min(
          block_lengths[sample_rng.UniformInt(
              static_cast<int>(block_lengths.size()))],
          context / 4);
      const int b0 = sample_rng.UniformInt(context - len + 1);
      for (int i = b0; i < b0 + len; ++i) synthetic[i] = true;
    }
    for (int i = 0; i < context; ++i) {
      const bool real_missing = mask.missing(row, start + i);
      hidden[i] = real_missing || synthetic[i];
      if (synthetic[i] && !real_missing) {
        target(i, 0) = values(row, start + i);
        weight(i, 0) = 1.0;
      }
    }
    if (weight.Sum() == 0.0) return Var();
    Var pred = forward(t, row, start, hidden);
    return ad::WeightedMseLoss(pred, target, weight);
  };

  Rng val_rng = rng.Split();
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    int made = 0;
    while (made < config_.samples_per_epoch) {
      tape.Reset();
      std::vector<Var> losses;
      for (int b = 0; b < config_.batch_size && made < config_.samples_per_epoch;
           ++b, ++made) {
        Var loss = make_loss(tape, rng);
        if (loss.valid()) losses.push_back(loss);
      }
      if (losses.empty()) continue;
      Var total = losses[0];
      for (size_t i = 1; i < losses.size(); ++i) total = ad::Add(total, losses[i]);
      total = ad::Scale(total, 1.0 / static_cast<double>(losses.size()));
      tape.Backward(total);
      adam.Step(tape);
    }
    // Validation with a fixed-seed stream.
    Rng vr = val_rng;  // Copy: same validation draws each epoch.
    double val = 0.0;
    int val_count = 0;
    for (int i = 0; i < 16; ++i) {
      tape.Reset();
      Var loss = make_loss(tape, vr);
      if (loss.valid()) {
        val += loss.scalar();
        ++val_count;
      }
    }
    tape.Reset();
    if (val_count > 0) val /= val_count;
    if (val < best_val - 1e-6) {
      best_val = val;
      snapshot();
      stale = 0;
    } else if (++stale >= config_.patience) {
      break;
    }
  }
  for (size_t i = 0; i < best_params.size(); ++i) {
    model.store.params()[i]->value() = best_params[i];
  }

  // ---- Imputation. -------------------------------------------------------
  Matrix out = raw_data.values();
  for (int row = 0; row < num_series; ++row) {
    std::vector<int> missing;
    for (int t = 0; t < t_len; ++t) {
      if (mask.missing(row, t)) missing.push_back(t);
    }
    size_t next = 0;
    while (next < missing.size()) {
      const int start =
          std::clamp(missing[next] - context / 2, 0, t_len - context);
      std::vector<bool> hidden(context, false);
      for (int i = 0; i < context; ++i) {
        hidden[i] = mask.missing(row, start + i);
      }
      tape.Reset();
      Var pred = forward(tape, row, start, hidden);
      while (next < missing.size() && missing[next] < start + context) {
        const int t = missing[next];
        out(row, t) =
            pred.value()(t - start, 0) * stats.stddev[row] + stats.mean[row];
        ++next;
      }
    }
  }
  tape.Reset();
  return out;
}

}  // namespace deepmvi
