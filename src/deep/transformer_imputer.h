#ifndef DEEPMVI_DEEP_TRANSFORMER_IMPUTER_H_
#define DEEPMVI_DEEP_TRANSFORMER_IMPUTER_H_

#include <string>

#include "data/imputer.h"

namespace deepmvi {

/// Vanilla Transformer baseline (Sec 2.3.2 / Sec 5.4): each series is
/// embedded position-by-position (value -> p-dim linear embedding plus
/// sinusoidal positional encoding), passed through standard multi-head
/// self-attention over positions, and decoded to one value per position.
/// Trained with masked reconstruction: random spans are hidden and the
/// loss is computed on the hidden positions only. Unlike DeepMVI there are
/// no window features, no neighbour-context keys, no kernel regression,
/// and no cross-series signal.
class TransformerImputer : public Imputer {
 public:
  struct Config {
    int model_dim = 32;
    int num_heads = 4;
    int num_layers = 1;
    double learning_rate = 3e-3;
    int max_epochs = 30;
    int samples_per_epoch = 48;
    int batch_size = 4;
    int patience = 4;
    /// Longest attention context; longer series are windowed.
    int max_context = 256;
    uint64_t seed = 31;
  };

  TransformerImputer() = default;
  explicit TransformerImputer(Config config) : config_(config) {}

  std::string name() const override { return "Transformer"; }
  Matrix Impute(const DataTensor& data, const Mask& mask) override;

 private:
  Config config_;
};

}  // namespace deepmvi

#endif  // DEEPMVI_DEEP_TRANSFORMER_IMPUTER_H_
