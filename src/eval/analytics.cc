#include "eval/analytics.h"

#include "common/logging.h"
#include "eval/metrics.h"

namespace deepmvi {
namespace {

int GroupCount(const DataTensor& data) {
  DMVI_CHECK_GE(data.num_dims(), 1);
  return data.num_series() / data.dim(0).size();
}

/// Row of the aggregated matrix that series `row` contributes to: the
/// flattened index over dimensions 1..n-1. Because dimension 0 is the
/// slowest-varying, this is simply row % GroupCount.
int GroupOf(const DataTensor& data, int row) {
  return row % GroupCount(data);
}

}  // namespace

Matrix AggregateOverFirstDim(const DataTensor& data, const Matrix& values) {
  DMVI_CHECK_EQ(values.rows(), data.num_series());
  const int groups = GroupCount(data);
  const int members = data.dim(0).size();
  Matrix out(groups, values.cols());
  for (int r = 0; r < values.rows(); ++r) {
    const int g = GroupOf(data, r);
    for (int t = 0; t < values.cols(); ++t) out(g, t) += values(r, t);
  }
  out *= 1.0 / members;
  return out;
}

Matrix AggregateDropCell(const DataTensor& data, const Matrix& values,
                         const Mask& mask) {
  DMVI_CHECK_EQ(values.rows(), data.num_series());
  const int groups = GroupCount(data);
  Matrix sums(groups, values.cols());
  Matrix counts(groups, values.cols());
  for (int r = 0; r < values.rows(); ++r) {
    const int g = GroupOf(data, r);
    for (int t = 0; t < values.cols(); ++t) {
      if (mask.available(r, t)) {
        sums(g, t) += values(r, t);
        counts(g, t) += 1.0;
      }
    }
  }
  Matrix fallback = AggregateOverFirstDim(data, values);
  Matrix out(groups, values.cols());
  for (int g = 0; g < groups; ++g) {
    for (int t = 0; t < values.cols(); ++t) {
      out(g, t) =
          counts(g, t) > 0.0 ? sums(g, t) / counts(g, t) : fallback(g, t);
    }
  }
  return out;
}

double AnalyticsGainOverDropCell(const DataTensor& data, const Matrix& truth,
                                 const Matrix& imputed, const Mask& mask) {
  Matrix truth_agg = AggregateOverFirstDim(data, truth);
  Matrix imputed_agg = AggregateOverFirstDim(data, imputed);
  Matrix dropcell_agg = AggregateDropCell(data, truth, mask);
  const double mae_dropcell = Mae(dropcell_agg, truth_agg);
  const double mae_method = Mae(imputed_agg, truth_agg);
  return mae_dropcell - mae_method;
}

}  // namespace deepmvi
