#ifndef DEEPMVI_EVAL_ANALYTICS_H_
#define DEEPMVI_EVAL_ANALYTICS_H_

#include "tensor/data_tensor.h"

namespace deepmvi {

/// Downstream-analytics protocol of Sec 5.7: the aggregate statistic is the
/// average over the FIRST dimension, producing an (n-1)-dimensional
/// aggregated time series — a single series for 1-dimensional datasets, a
/// per-item series for store x item datasets.

/// Averages `values` over dimension 0 of `data`'s index space. Output is
/// (num_series / |K_0|) x T; rows enumerate the remaining dimensions.
Matrix AggregateOverFirstDim(const DataTensor& data, const Matrix& values);

/// DropCell aggregation: like AggregateOverFirstDim but averaging only the
/// cells available in `mask` (the default analysts use when detailed data
/// is missing). Groups where every member is missing fall back to the
/// all-cells average of `values`.
Matrix AggregateDropCell(const DataTensor& data, const Matrix& values,
                         const Mask& mask);

/// MAE(DropCell) - MAE(method) for the aggregate statistic; positive means
/// imputing with the method beats dropping missing cells (Fig 11's y-axis).
double AnalyticsGainOverDropCell(const DataTensor& data, const Matrix& truth,
                                 const Matrix& imputed, const Mask& mask);

}  // namespace deepmvi

#endif  // DEEPMVI_EVAL_ANALYTICS_H_
