#include "eval/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace deepmvi {

double MaeOnMissing(const Matrix& imputed, const Matrix& truth, const Mask& mask) {
  DMVI_CHECK_EQ(imputed.rows(), truth.rows());
  DMVI_CHECK_EQ(imputed.cols(), truth.cols());
  DMVI_CHECK_EQ(imputed.rows(), mask.rows());
  DMVI_CHECK_EQ(imputed.cols(), mask.cols());
  double acc = 0.0;
  int64_t count = 0;
  for (int r = 0; r < imputed.rows(); ++r) {
    for (int t = 0; t < imputed.cols(); ++t) {
      if (mask.missing(r, t)) {
        acc += std::fabs(imputed(r, t) - truth(r, t));
        ++count;
      }
    }
  }
  DMVI_CHECK_GT(count, 0) << "no missing cells to evaluate";
  return acc / static_cast<double>(count);
}

double RmseOnMissing(const Matrix& imputed, const Matrix& truth, const Mask& mask) {
  DMVI_CHECK_EQ(imputed.rows(), truth.rows());
  DMVI_CHECK_EQ(imputed.cols(), truth.cols());
  double acc = 0.0;
  int64_t count = 0;
  for (int r = 0; r < imputed.rows(); ++r) {
    for (int t = 0; t < imputed.cols(); ++t) {
      if (mask.missing(r, t)) {
        const double d = imputed(r, t) - truth(r, t);
        acc += d * d;
        ++count;
      }
    }
  }
  DMVI_CHECK_GT(count, 0) << "no missing cells to evaluate";
  return std::sqrt(acc / static_cast<double>(count));
}

double Mae(const Matrix& a, const Matrix& b) {
  DMVI_CHECK_EQ(a.rows(), b.rows());
  DMVI_CHECK_EQ(a.cols(), b.cols());
  DMVI_CHECK_GT(a.size(), 0);
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) acc += std::fabs(a(r, c) - b(r, c));
  }
  return acc / static_cast<double>(a.size());
}

}  // namespace deepmvi
