#ifndef DEEPMVI_EVAL_METRICS_H_
#define DEEPMVI_EVAL_METRICS_H_

#include "tensor/mask.h"
#include "tensor/matrix.h"

namespace deepmvi {

/// Mean absolute error over the missing cells of `mask` (Eq. 1 with MAE).
double MaeOnMissing(const Matrix& imputed, const Matrix& truth, const Mask& mask);

/// Root mean squared error over the missing cells of `mask`.
double RmseOnMissing(const Matrix& imputed, const Matrix& truth, const Mask& mask);

/// MAE over every cell (used by downstream-analytics comparisons where the
/// aggregated series have no mask).
double Mae(const Matrix& a, const Matrix& b);

}  // namespace deepmvi

#endif  // DEEPMVI_EVAL_METRICS_H_
