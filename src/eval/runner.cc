#include "eval/runner.h"

#include "common/stopwatch.h"
#include "eval/analytics.h"
#include "eval/metrics.h"

namespace deepmvi {

ExperimentResult RunExperimentWithMask(const DataTensor& data, const Mask& mask,
                                       Imputer& imputer) {
  DMVI_CHECK_EQ(data.num_series(), mask.rows());
  DMVI_CHECK_EQ(data.num_times(), mask.cols());

  auto stats = data.ComputeNormalization(mask);
  DataTensor normalized = data.Normalized(stats);

  Stopwatch watch;
  Matrix imputed = imputer.Impute(normalized, mask);
  const double seconds = watch.ElapsedSeconds();
  DMVI_CHECK(imputed.AllFinite())
      << imputer.name() << " produced non-finite imputations";

  ExperimentResult result;
  result.imputer_name = imputer.name();
  result.mae = MaeOnMissing(imputed, normalized.values(), mask);
  result.rmse = RmseOnMissing(imputed, normalized.values(), mask);
  result.analytics_gain = AnalyticsGainOverDropCell(
      normalized, normalized.values(), imputed, mask);
  result.runtime_seconds = seconds;
  result.missing_cells = mask.CountMissing();
  return result;
}

ExperimentResult RunExperiment(const DataTensor& data,
                               const ScenarioConfig& scenario,
                               Imputer& imputer) {
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());
  ExperimentResult result = RunExperimentWithMask(data, mask, imputer);
  result.scenario_name = ScenarioName(scenario.kind);
  return result;
}

ImputedSeries ImputeAndExtractSeries(const DataTensor& data, const Mask& mask,
                                     Imputer& imputer, int series_row) {
  auto stats = data.ComputeNormalization(mask);
  DataTensor normalized = data.Normalized(stats);
  Matrix imputed_norm = imputer.Impute(normalized, mask);
  Matrix imputed = DataTensor::Denormalize(imputed_norm, stats);

  ImputedSeries out;
  out.truth = data.values().Row(series_row);
  out.imputed = imputed.Row(series_row);
  out.missing.resize(data.num_times());
  for (int t = 0; t < data.num_times(); ++t) {
    out.missing[t] = mask.missing(series_row, t);
  }
  return out;
}

}  // namespace deepmvi
