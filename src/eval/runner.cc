#include "eval/runner.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "eval/analytics.h"
#include "eval/metrics.h"

namespace deepmvi {

ExperimentResult RunExperimentWithMask(const DataTensor& data, const Mask& mask,
                                       Imputer& imputer) {
  DMVI_CHECK_EQ(data.num_series(), mask.rows());
  DMVI_CHECK_EQ(data.num_times(), mask.cols());

  auto stats = data.ComputeNormalization(mask);
  DataTensor normalized = data.Normalized(stats);

  Stopwatch watch;
  Matrix imputed = imputer.Impute(normalized, mask);
  const double seconds = watch.ElapsedSeconds();
  DMVI_CHECK(imputed.AllFinite())
      << imputer.name() << " produced non-finite imputations";

  ExperimentResult result;
  result.imputer_name = imputer.name();
  result.mae = MaeOnMissing(imputed, normalized.values(), mask);
  result.rmse = RmseOnMissing(imputed, normalized.values(), mask);
  result.analytics_gain = AnalyticsGainOverDropCell(
      normalized, normalized.values(), imputed, mask);
  result.runtime_seconds = seconds;
  result.missing_cells = mask.CountMissing();
  return result;
}

ExperimentResult RunExperiment(const DataTensor& data,
                               const ScenarioConfig& scenario,
                               Imputer& imputer) {
  // Drift rewrites the ground truth (a drifting sensor, not just hidden
  // readings): the imputer sees — and is scored against — the corrupted
  // values. MNAR needs the effective values to correlate missingness with;
  // every other kind goes through the same call with values ignored.
  ExperimentResult result;
  if (scenario.kind == ScenarioKind::kDrift) {
    DataTensor transformed(data.dims(),
                           ApplyScenarioTransform(scenario, data.values()));
    Mask mask = GenerateScenarioForData(scenario, transformed.values());
    result = RunExperimentWithMask(transformed, mask, imputer);
  } else {
    Mask mask = GenerateScenarioForData(scenario, data.values());
    result = RunExperimentWithMask(data, mask, imputer);
  }
  result.scenario_name = ScenarioName(scenario.kind);
  return result;
}

StatusOr<ExperimentResult> RunStoreExperiment(
    const storage::DataSource& source, const Mask& base_mask,
    const ScenarioConfig& scenario, const std::string& imputer_name,
    const SourceImputeFn& impute) {
  // Value-dependent masks (MNAR) and value transforms (Drift) need the
  // dense tensor, which the out-of-core path never materializes.
  if (ScenarioNeedsValues(scenario.kind) ||
      scenario.kind == ScenarioKind::kDrift) {
    return Status::InvalidArgument(
        ScenarioName(scenario.kind) +
        " is not supported for store experiments (needs the dense tensor)");
  }
  const int n = source.num_series();
  const int t_len = source.num_times();
  if (base_mask.rows() != n || base_mask.cols() != t_len) {
    return Status::InvalidArgument(
        "base mask shape " + std::to_string(base_mask.rows()) + "x" +
        std::to_string(base_mask.cols()) + " does not match source " +
        std::to_string(n) + "x" + std::to_string(t_len));
  }

  const Mask scenario_mask = GenerateScenario(scenario, n, t_len);
  const Mask train_mask = base_mask.And(scenario_mask);
  // Scored cells: truth known (available in the store) but hidden from
  // the imputer by the scenario.
  std::vector<CellIndex> hidden;
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) {
      if (base_mask.available(r, t) && scenario_mask.missing(r, t)) {
        hidden.push_back({r, t});
      }
    }
  }
  if (hidden.empty()) {
    return Status::InvalidArgument("scenario hides no scoreable cells");
  }

  // Known cost: this scan duplicates the one a Fit-based `impute`
  // callback runs internally (Fit computes its own stats from the
  // source), so a store experiment pays two full chunk passes per cell.
  // Folding them would mean threading stats through the callback API;
  // revisit if store experiments ever dominate suite wall-clock.
  StatusOr<DataTensor::NormalizationStats> stats_or =
      source.ComputeNormalization(train_mask);
  if (!stats_or.ok()) return stats_or.status();
  const DataTensor::NormalizationStats& stats = *stats_or;

  Stopwatch watch;
  StatusOr<std::vector<double>> preds_or = impute(source, train_mask, hidden);
  const double seconds = watch.ElapsedSeconds();
  if (!preds_or.ok()) return preds_or.status();
  const std::vector<double>& preds = *preds_or;
  if (preds.size() != hidden.size()) {
    return Status::Internal("imputer returned " + std::to_string(preds.size()) +
                            " predictions for " + std::to_string(hidden.size()) +
                            " cells");
  }

  // Truth in normalized units, read through stripe-sized windows so the
  // scoring pass stays within the source's cache budget too. Cells are
  // visited in ascending-time order for stripe locality.
  StatusOr<std::unique_ptr<storage::WindowReader>> reader_or =
      source.MakeReader(stats);
  if (!reader_or.ok()) return reader_or.status();
  const storage::WindowReader& reader = **reader_or;

  std::vector<size_t> by_time(hidden.size());
  for (size_t i = 0; i < by_time.size(); ++i) by_time[i] = i;
  std::sort(by_time.begin(), by_time.end(), [&](size_t a, size_t b) {
    return hidden[a].time != hidden[b].time ? hidden[a].time < hidden[b].time
                                            : hidden[a].series < hidden[b].series;
  });

  constexpr int kStripeLen = 1024;
  double abs_sum = 0.0, sq_sum = 0.0;
  size_t next = 0;
  while (next < by_time.size()) {
    const int t0 = hidden[by_time[next]].time;
    const int len = std::min(kStripeLen, t_len - t0);
    StatusOr<ValueWindow> window = reader.Read(t0, len);
    if (!window.ok()) return window.status();
    while (next < by_time.size() && hidden[by_time[next]].time < t0 + len) {
      const size_t i = by_time[next++];
      const int r = hidden[i].series;
      if (!std::isfinite(preds[i])) {
        return Status::Internal(imputer_name +
                                " produced a non-finite imputation");
      }
      const double truth = (*window)(r, hidden[i].time);
      const double pred = (preds[i] - stats.mean[r]) / stats.stddev[r];
      const double diff = pred - truth;
      abs_sum += std::abs(diff);
      sq_sum += diff * diff;
    }
  }

  ExperimentResult result;
  result.imputer_name = imputer_name;
  result.scenario_name = ScenarioName(scenario.kind);
  result.mae = abs_sum / static_cast<double>(hidden.size());
  result.rmse = std::sqrt(sq_sum / static_cast<double>(hidden.size()));
  result.analytics_gain = 0.0;
  result.runtime_seconds = seconds;
  result.missing_cells = static_cast<int64_t>(hidden.size());
  return result;
}

ImputedSeries ImputeAndExtractSeries(const DataTensor& data, const Mask& mask,
                                     Imputer& imputer, int series_row) {
  auto stats = data.ComputeNormalization(mask);
  DataTensor normalized = data.Normalized(stats);
  Matrix imputed_norm = imputer.Impute(normalized, mask);
  Matrix imputed = DataTensor::Denormalize(imputed_norm, stats);

  ImputedSeries out;
  out.truth = data.values().Row(series_row);
  out.imputed = imputed.Row(series_row);
  out.missing.resize(data.num_times());
  for (int t = 0; t < data.num_times(); ++t) {
    out.missing[t] = mask.missing(series_row, t);
  }
  return out;
}

}  // namespace deepmvi
