#ifndef DEEPMVI_EVAL_RUNNER_H_
#define DEEPMVI_EVAL_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "data/imputer.h"
#include "scenario/scenarios.h"
#include "storage/data_source.h"

namespace deepmvi {

/// Outcome of one (dataset, scenario, imputer) experiment.
struct ExperimentResult {
  std::string imputer_name;
  std::string scenario_name;
  double mae = 0.0;
  double rmse = 0.0;
  /// Fig 11 metric: MAE(DropCell) - MAE(method) on the aggregate series.
  double analytics_gain = 0.0;
  double runtime_seconds = 0.0;
  int64_t missing_cells = 0;
};

/// Runs the benchmark protocol used throughout Sec 5 (mirroring the
/// imputation benchmark of Khayati et al. 2020):
///   1. generate the missing-value mask for `scenario`,
///   2. z-score normalize each series using its available cells,
///   3. run the imputer on the normalized masked data,
///   4. report MAE/RMSE on the missing cells in normalized units and the
///      downstream analytics gain of Sec 5.7.
ExperimentResult RunExperiment(const DataTensor& data,
                               const ScenarioConfig& scenario, Imputer& imputer);

/// Same protocol with a pre-built mask.
ExperimentResult RunExperimentWithMask(const DataTensor& data, const Mask& mask,
                                       Imputer& imputer);

/// One imputed series (denormalized) together with its ground truth, for
/// the visual-comparison figure (Fig 4).
struct ImputedSeries {
  std::vector<double> truth;
  std::vector<double> imputed;
  std::vector<bool> missing;
};
ImputedSeries ImputeAndExtractSeries(const DataTensor& data, const Mask& mask,
                                     Imputer& imputer, int series_row);

/// Imputation callback for out-of-core experiments: trains from `source`
/// under `train_mask` and returns raw-unit predictions for `cells` in
/// order. Injected (like ImputerFactory in suite.h) so the eval layer
/// stays independent of the concrete algorithm layers; the bench tools
/// pass a DeepMVI Fit+PredictCells lambda.
using SourceImputeFn = std::function<StatusOr<std::vector<double>>(
    const storage::DataSource& source, const Mask& train_mask,
    const std::vector<CellIndex>& cells)>;

/// Out-of-core counterpart of RunExperiment: scores an imputer on a
/// chunked store without ever materializing the dense tensor.
///
///   1. generate the scenario's missing mask and intersect it with the
///      store's own availability (`base_mask`); the scored "hidden" cells
///      are those available in the store but hidden by the scenario,
///   2. compute per-series z-score stats over the training-available
///      cells, streaming chunk by chunk,
///   3. run `impute` on the source and training mask,
///   4. report MAE/RMSE over the hidden cells in normalized units,
///      reading truth through stripe-sized windows.
///
/// analytics_gain is not computed for store experiments (it needs the
/// dense aggregate series) and is reported as 0.
StatusOr<ExperimentResult> RunStoreExperiment(
    const storage::DataSource& source, const Mask& base_mask,
    const ScenarioConfig& scenario, const std::string& imputer_name,
    const SourceImputeFn& impute);

}  // namespace deepmvi

#endif  // DEEPMVI_EVAL_RUNNER_H_
