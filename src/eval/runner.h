#ifndef DEEPMVI_EVAL_RUNNER_H_
#define DEEPMVI_EVAL_RUNNER_H_

#include <string>

#include "data/imputer.h"
#include "scenario/scenarios.h"

namespace deepmvi {

/// Outcome of one (dataset, scenario, imputer) experiment.
struct ExperimentResult {
  std::string imputer_name;
  std::string scenario_name;
  double mae = 0.0;
  double rmse = 0.0;
  /// Fig 11 metric: MAE(DropCell) - MAE(method) on the aggregate series.
  double analytics_gain = 0.0;
  double runtime_seconds = 0.0;
  int64_t missing_cells = 0;
};

/// Runs the benchmark protocol used throughout Sec 5 (mirroring the
/// imputation benchmark of Khayati et al. 2020):
///   1. generate the missing-value mask for `scenario`,
///   2. z-score normalize each series using its available cells,
///   3. run the imputer on the normalized masked data,
///   4. report MAE/RMSE on the missing cells in normalized units and the
///      downstream analytics gain of Sec 5.7.
ExperimentResult RunExperiment(const DataTensor& data,
                               const ScenarioConfig& scenario, Imputer& imputer);

/// Same protocol with a pre-built mask.
ExperimentResult RunExperimentWithMask(const DataTensor& data, const Mask& mask,
                                       Imputer& imputer);

/// One imputed series (denormalized) together with its ground truth, for
/// the visual-comparison figure (Fig 4).
struct ImputedSeries {
  std::vector<double> truth;
  std::vector<double> imputed;
  std::vector<bool> missing;
};
ImputedSeries ImputeAndExtractSeries(const DataTensor& data, const Mask& mask,
                                     Imputer& imputer, int series_row);

}  // namespace deepmvi

#endif  // DEEPMVI_EVAL_RUNNER_H_
