#include "eval/suite.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/stopwatch.h"

namespace deepmvi {
namespace {

/// JSON string escaping (control characters, quote, backslash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no literal for non-finite doubles; emit null so the document
/// stays parseable even if a metric diverged.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

const char* BuildGitCommit() {
#ifdef DMVI_GIT_COMMIT
  return DMVI_GIT_COMMIT;
#else
  return "unknown";
#endif
}

int64_t SuiteResult::num_failed() const {
  int64_t failed = 0;
  for (const SuiteCell& cell : cells) {
    if (!cell.ok) ++failed;
  }
  return failed;
}

SuiteResult RunSuite(const SuiteSpec& spec) {
  DMVI_CHECK(spec.factory) << "SuiteSpec.factory must be set";

  SuiteResult suite;
  // Lay the grid out up front in deterministic dataset-major order; each
  // worker then fills exactly one pre-allocated slot, which makes the
  // concurrent aggregation race-free and the output order independent of
  // scheduling.
  for (const std::string& dataset : spec.datasets) {
    for (const ScenarioConfig& scenario : spec.scenarios) {
      for (const std::string& imputer : spec.imputers) {
        SuiteCell cell;
        cell.dataset = dataset;
        cell.imputer = imputer;
        cell.scenario = scenario;
        cell.scenario_name = ScenarioName(scenario.kind);
        suite.cells.push_back(std::move(cell));
      }
    }
  }

  const int total = static_cast<int>(suite.cells.size());
  suite.threads_used = EffectiveThreads(total, spec.threads);
  suite.git_commit = BuildGitCommit();

  Mutex progress_mutex;
  int done = 0;

  Stopwatch watch;
  ParallelFor(total, spec.threads, [&](int i) {
    SuiteCell& cell = suite.cells[i];
    try {
      if (!IsDatasetName(cell.dataset)) {
        cell.error = "unknown dataset: " + cell.dataset;
      } else {
        std::unique_ptr<Imputer> imputer = spec.factory(cell.imputer);
        if (imputer == nullptr) {
          cell.error = "unknown imputer: " + cell.imputer;
        } else {
          DataTensor data =
              MakeDataset(cell.dataset, spec.scale, spec.dataset_seed);
          cell.result = RunExperiment(data, cell.scenario, *imputer);
          cell.ok = true;
        }
      }
    } catch (const std::exception& e) {
      cell.error = e.what();
    }
    if (spec.progress) {
      MutexLock lock(&progress_mutex);
      spec.progress(++done, total);
    }
  });
  suite.wall_seconds = watch.ElapsedSeconds();
  return suite;
}

std::string SuiteToJson(const SuiteResult& suite) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"git_commit\": \"" << JsonEscape(suite.git_commit) << "\",\n";
  os << "  \"wall_seconds\": " << JsonNumber(suite.wall_seconds) << ",\n";
  os << "  \"effective_threads\": " << suite.threads_used << ",\n";
  os << "  \"num_cells\": " << suite.cells.size() << ",\n";
  os << "  \"num_failed\": " << suite.num_failed() << ",\n";
  if (!suite.micro.empty()) {
    os << "  \"micro\": {";
    for (size_t i = 0; i < suite.micro.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n");
      os << "    \"" << JsonEscape(suite.micro[i].first)
         << "\": " << JsonNumber(suite.micro[i].second);
    }
    os << "\n  },\n";
  }
  os << "  \"cells\": [";
  for (size_t i = 0; i < suite.cells.size(); ++i) {
    const SuiteCell& cell = suite.cells[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"dataset\": \"" << JsonEscape(cell.dataset) << "\", "
       << "\"scenario\": \"" << JsonEscape(cell.scenario_name) << "\", "
       << "\"imputer\": \"" << JsonEscape(cell.imputer) << "\", "
       << "\"ok\": " << (cell.ok ? "true" : "false");
    if (cell.ok) {
      os << ", \"mae\": " << JsonNumber(cell.result.mae)
         << ", \"rmse\": " << JsonNumber(cell.result.rmse)
         << ", \"analytics_gain\": " << JsonNumber(cell.result.analytics_gain)
         << ", \"runtime_seconds\": " << JsonNumber(cell.result.runtime_seconds)
         << ", \"missing_cells\": " << cell.result.missing_cells;
    } else {
      os << ", \"error\": \"" << JsonEscape(cell.error) << "\"";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

TablePrinter SuiteToTable(const SuiteResult& suite) {
  TablePrinter table({"dataset", "scenario", "imputer", "ok", "mae", "rmse",
                      "analytics_gain", "runtime_seconds", "missing_cells"});
  for (const SuiteCell& cell : suite.cells) {
    if (cell.ok) {
      table.AddRow({cell.dataset, cell.scenario_name, cell.imputer, "1",
                    TablePrinter::FormatDouble(cell.result.mae),
                    TablePrinter::FormatDouble(cell.result.rmse),
                    TablePrinter::FormatDouble(cell.result.analytics_gain),
                    TablePrinter::FormatDouble(cell.result.runtime_seconds),
                    std::to_string(cell.result.missing_cells)});
    } else {
      table.AddRow({cell.dataset, cell.scenario_name, cell.imputer, "0",
                    cell.error, "", "", "", ""});
    }
  }
  return table;
}

Status WriteSuiteJson(const SuiteResult& suite, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << SuiteToJson(suite);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status WriteSuiteCsv(const SuiteResult& suite, const std::string& path) {
  return SuiteToTable(suite).WriteCsv(path);
}

StatusOr<ScenarioKind> ParseScenarioKind(const std::string& name) {
  if (name == "MCAR") return ScenarioKind::kMcar;
  if (name == "MissDisj") return ScenarioKind::kMissDisj;
  if (name == "MissOver") return ScenarioKind::kMissOver;
  if (name == "Blackout") return ScenarioKind::kBlackout;
  if (name == "MissPoint") return ScenarioKind::kMissPoint;
  if (name == "MultiBlackout") return ScenarioKind::kMultiBlackout;
  if (name == "MNAR") return ScenarioKind::kMnar;
  if (name == "Drift") return ScenarioKind::kDrift;
  return Status::InvalidArgument("unknown scenario: " + name);
}

}  // namespace deepmvi
