#ifndef DEEPMVI_EVAL_SUITE_H_
#define DEEPMVI_EVAL_SUITE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/table_printer.h"
#include "data/imputer.h"
#include "data/presets.h"
#include "eval/runner.h"
#include "scenario/scenarios.h"

namespace deepmvi {

/// Creates an imputer from its benchmark name ("Mean", "DeepMVI", ...).
/// Injected into RunSuite so the eval layer stays independent of the
/// concrete algorithm layers (core, deep, baselines); callers typically
/// pass bench::MakeImputer or a lambda over their own methods. Must be
/// thread-safe: workers invoke it concurrently, one fresh imputer per cell.
using ImputerFactory =
    std::function<std::unique_ptr<Imputer>(const std::string& name)>;

/// A (dataset x scenario x imputer) experiment grid, the batch unit of the
/// Sec 5 benchmark protocol.
struct SuiteSpec {
  std::vector<std::string> datasets;  // Preset names (data/presets.h).
  std::vector<ScenarioConfig> scenarios;
  std::vector<std::string> imputers;  // Names understood by `factory`.
  ImputerFactory factory;
  DatasetScale scale = DatasetScale::kReduced;
  /// Seed for dataset generation; scenario masks use each ScenarioConfig's
  /// own seed, so every cell is reproducible in isolation.
  uint64_t dataset_seed = 1;
  /// Worker threads (<= 0 means hardware concurrency, 1 forces serial).
  int threads = 0;
  /// Optional progress sink, called once per finished cell with (done,
  /// total). Invocations are serialized; the callback itself need not lock.
  std::function<void(int done, int total)> progress;
};

/// One grid point together with its outcome. `ok` is false when the
/// factory rejected the imputer name or the experiment threw; `error` then
/// holds the reason and `result` is default-initialized.
struct SuiteCell {
  std::string dataset;
  std::string imputer;
  ScenarioConfig scenario;
  std::string scenario_name;
  ExperimentResult result;
  bool ok = false;
  std::string error;
};

/// All cells of a suite run, in deterministic grid order (dataset-major,
/// then scenario, then imputer) regardless of worker interleaving.
struct SuiteResult {
  std::vector<SuiteCell> cells;
  /// Optional named micro-benchmark timings (seconds) recorded alongside
  /// the grid — e.g. blocked vs naive MatMul wall time — emitted as a
  /// "micro" object in the JSON so BENCH_* files carry kernel-level
  /// trajectory data next to the end-to-end cells.
  std::vector<std::pair<std::string, double>> micro;
  double wall_seconds = 0.0;
  /// EffectiveThreads() of the run, stamped into the JSON so BENCH_*
  /// trajectory files record the parallelism the numbers were taken at.
  int threads_used = 1;
  /// Git commit the suite binary was configured from ("unknown" outside a
  /// checkout); provenance for per-PR BENCH_* files.
  std::string git_commit;

  int64_t num_failed() const;
};

/// The commit hash stamped into this build at CMake configure time.
const char* BuildGitCommit();

/// Runs every cell of the grid, fanned out over ParallelFor workers. Each
/// worker builds its own dataset and imputer and writes into its own
/// pre-allocated result slot, so the aggregate is identical to a serial
/// run (threads == 1) cell for cell.
SuiteResult RunSuite(const SuiteSpec& spec);

/// Machine-readable renderings: a JSON document (for BENCH_* trajectory
/// files) and a CSV table (for plotting).
std::string SuiteToJson(const SuiteResult& suite);
TablePrinter SuiteToTable(const SuiteResult& suite);
Status WriteSuiteJson(const SuiteResult& suite, const std::string& path);
Status WriteSuiteCsv(const SuiteResult& suite, const std::string& path);

/// Parses a scenario name as printed by ScenarioName ("MCAR", "MissDisj",
/// "MissOver", "Blackout", "MissPoint") back into its kind.
StatusOr<ScenarioKind> ParseScenarioKind(const std::string& name);

}  // namespace deepmvi

#endif  // DEEPMVI_EVAL_SUITE_H_
