#include "linalg/centroid.h"

#include <cmath>

namespace deepmvi {

std::vector<int> MaximizingSignVector(const Matrix& x, int max_flips) {
  const int m = x.rows();
  const int n = x.cols();
  if (max_flips < 0) max_flips = 4 * m + 16;
  std::vector<int> z(m, 1);

  // s = X^T z, maintained incrementally. Objective = ||s||^2.
  std::vector<double> s(n, 0.0);
  for (int i = 0; i < m; ++i) {
    const double* row = x.row_ptr(i);
    for (int j = 0; j < n; ++j) s[j] += row[j];
  }
  // Row squared norms, reused for all flip gains.
  std::vector<double> row_norm2(m, 0.0);
  for (int i = 0; i < m; ++i) {
    const double* row = x.row_ptr(i);
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += row[j] * row[j];
    row_norm2[i] = acc;
  }

  for (int flip = 0; flip < max_flips; ++flip) {
    // Gain of flipping row i: ||s - 2 z_i x_i||^2 - ||s||^2
    //                       = -4 z_i <x_i, s> + 4 ||x_i||^2.
    int best = -1;
    double best_gain = 1e-12;
    for (int i = 0; i < m; ++i) {
      const double* row = x.row_ptr(i);
      double dot = 0.0;
      for (int j = 0; j < n; ++j) dot += row[j] * s[j];
      const double gain = -4.0 * z[i] * dot + 4.0 * row_norm2[i];
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best < 0) break;
    const double* row = x.row_ptr(best);
    for (int j = 0; j < n; ++j) s[j] -= 2.0 * z[best] * row[j];
    z[best] = -z[best];
  }
  return z;
}

CentroidResult CentroidDecomposition(const Matrix& x, int rank) {
  DMVI_CHECK_GT(rank, 0);
  DMVI_CHECK_LE(rank, std::min(x.rows(), x.cols()));
  const int m = x.rows();
  const int n = x.cols();
  Matrix residual = x;
  CentroidResult result;
  result.l = Matrix(m, rank);
  result.r = Matrix(n, rank);

  for (int k = 0; k < rank; ++k) {
    std::vector<int> z = MaximizingSignVector(residual);
    // r_k = residual^T z / ||residual^T z||.
    std::vector<double> r(n, 0.0);
    for (int i = 0; i < m; ++i) {
      const double* row = residual.row_ptr(i);
      const double zi = z[i];
      for (int j = 0; j < n; ++j) r[j] += zi * row[j];
    }
    double norm = Norm(r);
    if (norm < 1e-300) {
      // Residual is (numerically) zero: remaining components are zero.
      break;
    }
    for (auto& v : r) v /= norm;
    // l_k = residual * r_k, then deflate.
    for (int i = 0; i < m; ++i) {
      const double* row = residual.row_ptr(i);
      double acc = 0.0;
      for (int j = 0; j < n; ++j) acc += row[j] * r[j];
      result.l(i, k) = acc;
    }
    for (int j = 0; j < n; ++j) result.r(j, k) = r[j];
    for (int i = 0; i < m; ++i) {
      double* row = residual.row_ptr(i);
      const double li = result.l(i, k);
      for (int j = 0; j < n; ++j) row[j] -= li * r[j];
    }
  }
  return result;
}

}  // namespace deepmvi
