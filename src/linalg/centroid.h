#ifndef DEEPMVI_LINALG_CENTROID_H_
#define DEEPMVI_LINALG_CENTROID_H_

#include <vector>

#include "tensor/matrix.h"

namespace deepmvi {

/// Centroid decomposition X ~= L * R^T of an m x n matrix, truncated to
/// `rank` components. L is m x rank ("loading"), R is n x rank ("relevance")
/// with unit-norm columns. This is the decomposition underlying CDRec
/// (Khayati et al., "Scalable recovery of missing blocks in time series
/// with high and low cross-correlations", KAIS 2019).
struct CentroidResult {
  Matrix l;
  Matrix r;

  Matrix Reconstruct() const { return l.MatMulTranspose(r); }
};

/// Finds the sign vector z in {-1,+1}^m maximizing ||X^T z|| using the
/// greedy Scalable-Sign-Vector iteration: starting from all ones, flip the
/// single sign with the largest positive gain until no flip improves the
/// objective. Exposed for unit testing.
std::vector<int> MaximizingSignVector(const Matrix& x, int max_flips = -1);

/// Computes the rank-`rank` centroid decomposition by repeated deflation:
/// each pass extracts the centroid direction r_i = X^T z / ||X^T z||,
/// loading l_i = X r_i, then deflates X <- X - l_i r_i^T.
CentroidResult CentroidDecomposition(const Matrix& x, int rank);

}  // namespace deepmvi

#endif  // DEEPMVI_LINALG_CENTROID_H_
