#include "linalg/solvers.h"

#include <cmath>

namespace deepmvi {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  DMVI_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NotConverged("Cholesky: non-positive pivot at " +
                                  std::to_string(j));
    }
    l(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l(j, j);
    for (int i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (int k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc * inv;
    }
  }
  return l;
}

Matrix CholeskySolve(const Matrix& l, const Matrix& b) {
  DMVI_CHECK_EQ(l.rows(), l.cols());
  DMVI_CHECK_EQ(l.rows(), b.rows());
  const int n = l.rows();
  Matrix x = b;
  // Forward substitution: L y = b.
  for (int c = 0; c < x.cols(); ++c) {
    for (int i = 0; i < n; ++i) {
      double acc = x(i, c);
      for (int k = 0; k < i; ++k) acc -= l(i, k) * x(k, c);
      x(i, c) = acc / l(i, i);
    }
    // Back substitution: L^T x = y.
    for (int i = n - 1; i >= 0; --i) {
      double acc = x(i, c);
      for (int k = i + 1; k < n; ++k) acc -= l(k, i) * x(k, c);
      x(i, c) = acc / l(i, i);
    }
  }
  return x;
}

Matrix SolveSpd(const Matrix& a, const Matrix& b) {
  double jitter = 0.0;
  const double scale = std::max(a.MaxAbs(), 1e-12);
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix regularized = a;
    if (jitter > 0.0) {
      for (int i = 0; i < a.rows(); ++i) regularized(i, i) += jitter;
    }
    StatusOr<Matrix> l = CholeskyFactor(regularized);
    if (l.ok()) return CholeskySolve(*l, b);
    jitter = jitter == 0.0 ? 1e-10 * scale : jitter * 100.0;
  }
  DMVI_LOG(Fatal) << "SolveSpd: matrix remained non-SPD after max jitter";
  return b;  // Unreachable.
}

Matrix RidgeSolve(const Matrix& a, const Matrix& b, double lambda) {
  DMVI_CHECK_GE(lambda, 0.0);
  Matrix gram = a.TransposeMatMul(a);
  for (int i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  Matrix rhs = a.TransposeMatMul(b);
  return SolveSpd(gram, rhs);
}

QrResult HouseholderQr(const Matrix& a) {
  DMVI_CHECK_GE(a.rows(), a.cols());
  const int m = a.rows();
  const int n = a.cols();
  Matrix r = a;
  // Accumulate Householder vectors; apply to identity afterwards.
  std::vector<std::vector<double>> vs;
  vs.reserve(n);
  for (int k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm = 0.0;
    for (int i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    std::vector<double> v(m, 0.0);
    if (norm < 1e-300) {
      vs.push_back(std::move(v));
      continue;
    }
    const double alpha = r(k, k) >= 0 ? -norm : norm;
    double vnorm2 = 0.0;
    v[k] = r(k, k) - alpha;
    for (int i = k + 1; i < m; ++i) v[i] = r(i, k);
    for (int i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 < 1e-300) {
      vs.push_back(std::move(v));
      continue;
    }
    const double beta = 2.0 / vnorm2;
    // Apply H = I - beta v v^T to the trailing block of R.
    for (int j = k; j < n; ++j) {
      double dot = 0.0;
      for (int i = k; i < m; ++i) dot += v[i] * r(i, j);
      const double f = beta * dot;
      for (int i = k; i < m; ++i) r(i, j) -= f * v[i];
    }
    vs.push_back(std::move(v));
  }
  // Build thin Q by applying the reflectors in reverse to the first n
  // columns of the identity.
  Matrix q(m, n);
  for (int j = 0; j < n; ++j) q(j, j) = 1.0;
  for (int k = n - 1; k >= 0; --k) {
    const auto& v = vs[k];
    double vnorm2 = 0.0;
    for (int i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 < 1e-300) continue;
    const double beta = 2.0 / vnorm2;
    for (int j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int i = k; i < m; ++i) dot += v[i] * q(i, j);
      const double f = beta * dot;
      for (int i = k; i < m; ++i) q(i, j) -= f * v[i];
    }
  }
  QrResult result;
  result.q = std::move(q);
  result.r = r.Block(0, 0, n, n);
  return result;
}

Matrix LeastSquaresSolve(const Matrix& a, const Matrix& b) {
  DMVI_CHECK_EQ(a.rows(), b.rows());
  if (a.rows() >= a.cols()) {
    QrResult qr = HouseholderQr(a);
    Matrix rhs = qr.q.TransposeMatMul(b);
    // Back substitution with upper-triangular R.
    const int n = qr.r.rows();
    Matrix x = rhs;
    for (int c = 0; c < x.cols(); ++c) {
      for (int i = n - 1; i >= 0; --i) {
        double acc = x(i, c);
        for (int k = i + 1; k < n; ++k) acc -= qr.r(i, k) * x(k, c);
        const double piv = qr.r(i, i);
        x(i, c) = std::fabs(piv) > 1e-300 ? acc / piv : 0.0;
      }
    }
    return x;
  }
  // Underdetermined: fall back to a light ridge for a minimum-norm-ish
  // solution; callers in this codebase never rely on exactness here.
  return RidgeSolve(a, b, 1e-8);
}

StatusOr<Matrix> Inverse(const Matrix& a) {
  DMVI_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  Matrix aug = a;
  Matrix inv = Matrix::Identity(n);
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(aug(r, col)) > std::fabs(aug(pivot, col))) pivot = r;
    }
    if (std::fabs(aug(pivot, col)) < 1e-300) {
      return Status::NotConverged("Inverse: singular matrix");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(aug(pivot, c), aug(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double inv_piv = 1.0 / aug(col, col);
    for (int c = 0; c < n; ++c) {
      aug(col, c) *= inv_piv;
      inv(col, c) *= inv_piv;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = aug(r, col);
      if (f == 0.0) continue;
      for (int c = 0; c < n; ++c) {
        aug(r, c) -= f * aug(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

double Determinant(const Matrix& a) {
  DMVI_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  Matrix lu = a;
  double det = 1.0;
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(lu(r, col)) > std::fabs(lu(pivot, col))) pivot = r;
    }
    if (std::fabs(lu(pivot, col)) < 1e-300) return 0.0;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(lu(pivot, c), lu(col, c));
      det = -det;
    }
    det *= lu(col, col);
    const double inv_piv = 1.0 / lu(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double f = lu(r, col) * inv_piv;
      if (f == 0.0) continue;
      for (int c = col; c < n; ++c) lu(r, c) -= f * lu(col, c);
    }
  }
  return det;
}

}  // namespace deepmvi
