#ifndef DEEPMVI_LINALG_SOLVERS_H_
#define DEEPMVI_LINALG_SOLVERS_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace deepmvi {

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Returns NotConverged when a non-positive pivot is hit (matrix
/// not SPD within numerical tolerance).
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves L * y = b then L^T * x = y for each column of b given the lower
/// Cholesky factor `l`.
Matrix CholeskySolve(const Matrix& l, const Matrix& b);

/// Solves the SPD system A * x = b. Adds escalating diagonal jitter when
/// the factorization fails, which is the behaviour wanted by the iterative
/// EM / ALS callers (DynaMMO, TRMF).
Matrix SolveSpd(const Matrix& a, const Matrix& b);

/// Ridge regression: solves (A^T A + lambda I) x = A^T b.
Matrix RidgeSolve(const Matrix& a, const Matrix& b, double lambda);

/// Thin Householder QR: A (m x n, m >= n) = Q (m x n) * R (n x n).
struct QrResult {
  Matrix q;
  Matrix r;
};
QrResult HouseholderQr(const Matrix& a);

/// General least-squares solve min ||A x - b|| via QR.
Matrix LeastSquaresSolve(const Matrix& a, const Matrix& b);

/// Inverse of a small square matrix via Gauss-Jordan with partial pivoting.
/// Intended for the tiny (latent-dimension sized) systems in DynaMMO's
/// Kalman recursions. Returns NotConverged on singular input.
StatusOr<Matrix> Inverse(const Matrix& a);

/// 2x2 / general determinant via LU with partial pivoting (small matrices).
double Determinant(const Matrix& a);

}  // namespace deepmvi

#endif  // DEEPMVI_LINALG_SOLVERS_H_
