#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace deepmvi {

Matrix SvdResult::Reconstruct(int rank) const {
  const int r = rank < 0 ? static_cast<int>(singular_values.size())
                         : std::min<int>(rank, singular_values.size());
  Matrix out(u.rows(), v.rows());
  for (int k = 0; k < r; ++k) {
    const double s = singular_values[k];
    if (s == 0.0) continue;
    for (int i = 0; i < u.rows(); ++i) {
      const double us = u(i, k) * s;
      if (us == 0.0) continue;
      double* out_row = out.row_ptr(i);
      for (int j = 0; j < v.rows(); ++j) out_row[j] += us * v(j, k);
    }
  }
  return out;
}

namespace {

/// One-sided Jacobi on a tall (m >= n) matrix. Orthogonalizes column pairs
/// of `w` in place while accumulating rotations into `v`.
void OneSidedJacobi(Matrix& w, Matrix& v, int max_sweeps, double tol) {
  const int n = w.cols();
  const int m = w.rows();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        // Gram entries for the column pair (p, q).
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) || gamma == 0.0) {
          continue;
        }
        converged = false;
        // Jacobi rotation zeroing the off-diagonal Gram entry.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (int i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }
}

}  // namespace

SvdResult JacobiSvd(const Matrix& a, int max_sweeps, double tol) {
  DMVI_CHECK_GT(a.rows(), 0);
  DMVI_CHECK_GT(a.cols(), 0);
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.Transpose() : a;
  const int m = w.rows();
  const int n = w.cols();
  Matrix v = Matrix::Identity(n);
  OneSidedJacobi(w, v, max_sweeps, tol);

  // Column norms of the rotated matrix are the singular values.
  std::vector<double> sigma(n, 0.0);
  for (int j = 0; j < n; ++j) {
    double acc = 0.0;
    for (int i = 0; i < m; ++i) acc += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(acc);
  }

  // Sort columns by descending singular value.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return sigma[i] > sigma[j]; });

  Matrix u_sorted(m, n);
  Matrix v_sorted(n, n);
  std::vector<double> sigma_sorted(n);
  for (int j = 0; j < n; ++j) {
    const int src = order[j];
    sigma_sorted[j] = sigma[src];
    const double inv = sigma[src] > 1e-300 ? 1.0 / sigma[src] : 0.0;
    for (int i = 0; i < m; ++i) u_sorted(i, j) = w(i, src) * inv;
    for (int i = 0; i < n; ++i) v_sorted(i, j) = v(i, src);
  }

  SvdResult result;
  if (transposed) {
    // A^T = U S V^T  =>  A = V S U^T.
    result.u = std::move(v_sorted);
    result.v = std::move(u_sorted);
  } else {
    result.u = std::move(u_sorted);
    result.v = std::move(v_sorted);
  }
  result.singular_values = std::move(sigma_sorted);
  return result;
}

Matrix TruncatedSvdReconstruct(const Matrix& a, int rank) {
  SvdResult svd = JacobiSvd(a);
  return svd.Reconstruct(rank);
}

}  // namespace deepmvi
