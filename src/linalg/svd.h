#ifndef DEEPMVI_LINALG_SVD_H_
#define DEEPMVI_LINALG_SVD_H_

#include <vector>

#include "tensor/matrix.h"

namespace deepmvi {

/// Result of a singular value decomposition A = U * diag(S) * V^T with
/// U (m x r), S (r), V (n x r) and r = min(m, n). Singular values are
/// sorted in non-increasing order.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;

  /// Reconstructs U * diag(S) * V^T using the top `rank` components
  /// (all components when rank < 0).
  Matrix Reconstruct(int rank = -1) const;
};

/// Computes the thin SVD of `a` with the one-sided Jacobi method.
///
/// One-sided Jacobi is chosen over Golub-Kahan bidiagonalization because it
/// is simple, unconditionally convergent, and accurate for the modest
/// matrix sizes used by the imputation baselines (hundreds of series by a
/// few thousand time steps after truncation). `max_sweeps` bounds the
/// number of full column-pair sweeps; `tol` is the orthogonality threshold
/// relative to the column norms.
SvdResult JacobiSvd(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

/// Rank-`rank` truncated SVD reconstruction of `a` (convenience wrapper).
Matrix TruncatedSvdReconstruct(const Matrix& a, int rank);

}  // namespace deepmvi

#endif  // DEEPMVI_LINALG_SVD_H_
