#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace deepmvi {
namespace net {
namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

}  // namespace

Client::Client(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      fd_(other.fd_),
      fault_(std::move(other.fault_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    fault_ = std::move(other.fault_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
  fault_ = std::move(injector);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect() {
  if (fd_ >= 0) return Status::OK();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  // "localhost" is common enough in hand-typed targets to special-case;
  // everything else must be a numeric IPv4 address.
  const std::string numeric_host =
      host_ == "localhost" ? "127.0.0.1" : host_;
  if (::inet_pton(AF_INET, numeric_host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("cannot parse IPv4 address '" + host_ +
                                   "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Status::IoError("connect " + host_ + ":" + std::to_string(port_) +
                           ": " + error);
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

StatusOr<HttpMessage> Client::Attempt(const std::string& wire, bool* reused) {
  *reused = fd_ >= 0;
  DMVI_RETURN_IF_ERROR(Connect());

  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = FaultySend(fault_.get(), fd_, wire.data() + sent,
                                 wire.size() - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = std::strerror(errno);
      if (errno == ECONNRESET || errno == EPIPE) {
        // The server may have rejected the request early (e.g. 413 to an
        // oversized body) and closed its read side while we were still
        // sending. That response is worth draining before declaring the
        // round trip dead (RFC 7230 §6.5) — but only if it is already on
        // the wire; a short poll bounds the wait so a silent peer cannot
        // hang the client.
        pollfd pending;
        pending.fd = fd_;
        pending.events = POLLIN;
        pending.revents = 0;
        if (::poll(&pending, 1, 500) > 0) break;
      }
      Close();
      return Status::IoError("send: " + error);
    }
    sent += static_cast<size_t>(n);
  }

  // The server-side body cap protects the server from hostile peers; a
  // response this client asked for is trusted, and a full-dataset CSV can
  // legitimately dwarf 16 MB — so the response body is effectively
  // uncapped (the head cap stays, malformed heads are still an error).
  ParserLimits response_limits;
  response_limits.max_body_bytes = static_cast<size_t>(1) << 40;
  HttpParser parser(HttpParser::Mode::kResponse, response_limits);
  char buffer[8192];
  while (!parser.done()) {
    const ssize_t n = FaultyRecv(fault_.get(), fd_, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = std::strerror(errno);
      Close();
      return Status::IoError("recv: " + error);
    }
    if (n == 0) {
      Close();
      return Status::IoError(parser.started()
                                 ? "connection closed mid-response"
                                 : "connection closed before response");
    }
    size_t offset = 0;
    while (offset < static_cast<size_t>(n) && !parser.done() &&
           !parser.failed()) {
      offset += parser.Feed(buffer + offset, static_cast<size_t>(n) - offset);
    }
    if (parser.failed()) {
      Close();
      return Status::Internal("malformed response: " + parser.error_message());
    }
  }

  if (!WantsKeepAlive(parser.message())) Close();
  return parser.message();
}

StatusOr<HttpMessage> Client::RoundTrip(const HttpMessage& request) {
  HttpMessage prepared = request;
  if (!prepared.HasHeader("host")) {
    prepared.SetHeader("host", host_ + ":" + std::to_string(port_));
  }
  const std::string wire = SerializeRequest(prepared);

  bool reused = false;
  StatusOr<HttpMessage> response = Attempt(wire, &reused);
  if (!response.ok() && reused) {
    // The server may have timed out the idle keep-alive connection between
    // requests; one fresh-connection retry is safe for that case.
    response = Attempt(wire, &reused);
  }
  return response;
}

StatusOr<HttpMessage> Client::Get(const std::string& target) {
  HttpMessage request;
  request.method = "GET";
  request.target = target;
  return RoundTrip(request);
}

StatusOr<HttpMessage> Client::Post(const std::string& target, std::string body,
                                   const std::string& content_type,
                                   const std::string& accept) {
  HttpMessage request;
  request.method = "POST";
  request.target = target;
  request.body = std::move(body);
  request.SetHeader("content-type", content_type);
  if (!accept.empty()) request.SetHeader("accept", accept);
  return RoundTrip(request);
}

}  // namespace net
}  // namespace deepmvi
