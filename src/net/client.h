#ifndef DEEPMVI_NET_CLIENT_H_
#define DEEPMVI_NET_CLIENT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "net/fault.h"
#include "net/http.h"

namespace deepmvi {
namespace net {

/// Tiny blocking HTTP/1.1 client for loopback tooling (dmvi_loadgen, the
/// net_test round trips): one TCP connection, reused across requests via
/// keep-alive, transparently reconnected when the server closed it. Not a
/// general user agent — no TLS, no redirects, no DNS beyond numeric IPv4
/// hosts — by design: it exists to drive this repo's own server.
class Client {
 public:
  Client(std::string host, int port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Sends `request` (host header and content-length are filled in) and
  /// blocks for the response. IoError on connect/transport failure; a
  /// stale keep-alive connection is retried once on a fresh connection.
  StatusOr<HttpMessage> RoundTrip(const HttpMessage& request);

  /// Convenience wrappers.
  StatusOr<HttpMessage> Get(const std::string& target);
  StatusOr<HttpMessage> Post(const std::string& target, std::string body,
                             const std::string& content_type,
                             const std::string& accept = "");

  const std::string& host() const { return host_; }
  int port() const { return port_; }

  /// Routes this client's socket I/O through a deterministic fault
  /// schedule (net/fault.h). Null (the default) is the plain syscalls.
  /// Tests use it to prove the client's retry paths recover from EINTR
  /// and short transfers and surface resets as IoError.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector);

 private:
  Status Connect();
  void Close();
  /// One send+receive attempt on the current connection. `reused` tells
  /// the caller whether a failure may be a stale keep-alive (retryable).
  StatusOr<HttpMessage> Attempt(const std::string& wire, bool* reused);

  std::string host_;
  int port_ = 0;
  int fd_ = -1;
  std::shared_ptr<FaultInjector> fault_;
};

}  // namespace net
}  // namespace deepmvi

#endif  // DEEPMVI_NET_CLIENT_H_
