#include "net/codec.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "data/io.h"

namespace deepmvi {
namespace net {

// ---- JsonValue --------------------------------------------------------------

namespace {
const JsonValue kNullValue;
}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind_ != Kind::kObject) return kNullValue;
  const auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}
JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}
JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}
JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}
JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(members);
  return out;
}

// ---- JSON parser ------------------------------------------------------------

namespace {

/// Recursive-descent JSON parser over a string view. Depth is capped so a
/// hostile "[[[[..." body can't blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    DMVI_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Error("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // recombined — control documents here are ASCII in practice).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(std::string("unknown escape \\") + esc);
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return Error("expected 'null'");
      *out = JsonValue();
      return Status::OK();
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return Error("expected 'true'");
      *out = JsonValue::MakeBool(true);
      return Status::OK();
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return Error("expected 'false'");
      *out = JsonValue::MakeBool(false);
      return Status::OK();
    }
    if (c == '"') {
      std::string s;
      DMVI_RETURN_IF_ERROR(ParseString(&s));
      *out = JsonValue::MakeString(std::move(s));
      return Status::OK();
    }
    if (c == '[') {
      ++pos_;
      std::vector<JsonValue> items;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return Status::OK();
      }
      for (;;) {
        JsonValue item;
        DMVI_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
        items.push_back(std::move(item));
        SkipWhitespace();
        if (pos_ >= text_.size()) return Error("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          *out = JsonValue::MakeArray(std::move(items));
          return Status::OK();
        }
        return Error("expected ',' or ']' in array");
      }
    }
    if (c == '{') {
      ++pos_;
      std::map<std::string, JsonValue> members;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return Status::OK();
      }
      for (;;) {
        SkipWhitespace();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          return Error("expected object key string");
        }
        std::string key;
        DMVI_RETURN_IF_ERROR(ParseString(&key));
        SkipWhitespace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Error("expected ':' after object key");
        }
        ++pos_;
        JsonValue value;
        DMVI_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        members[std::move(key)] = std::move(value);
        SkipWhitespace();
        if (pos_ >= text_.size()) return Error("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          *out = JsonValue::MakeObject(std::move(members));
          return Status::OK();
        }
        return Error("expected ',' or '}' in object");
      }
    }
    // Number.
    if (c == '-' || (c >= '0' && c <= '9')) {
      char* end = nullptr;
      const double value = std::strtod(text_.c_str() + pos_, &end);
      if (end == text_.c_str() + pos_) return Error("malformed number");
      pos_ = static_cast<size_t>(end - text_.c_str());
      *out = JsonValue::MakeNumber(value);
      return Status::OK();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---- /v1/impute decoding ----------------------------------------------------

namespace {

/// `value` as a non-negative integer field, or an error naming `field`.
StatusOr<int> AsNonNegativeInt(const JsonValue& value,
                               const std::string& field) {
  if (!value.is_number()) {
    return Status::InvalidArgument("field '" + field + "' must be a number");
  }
  const double number = value.number_value();
  if (!(number >= 0) || number != std::floor(number) || number > 1e9) {
    return Status::InvalidArgument("field '" + field +
                                   "' must be a non-negative integer");
  }
  return static_cast<int>(number);
}

Status DecodeInlineValues(const JsonValue& rows, ImputeApiRequest* out) {
  if (!rows.is_array() || rows.array_items().empty()) {
    return Status::InvalidArgument("'values' must be a non-empty array of rows");
  }
  const int num_rows = static_cast<int>(rows.array_items().size());
  int num_cols = -1;
  for (int r = 0; r < num_rows; ++r) {
    const JsonValue& row = rows.array_items()[r];
    if (!row.is_array()) {
      return Status::InvalidArgument("'values' row " + std::to_string(r) +
                                     " is not an array");
    }
    const int cols = static_cast<int>(row.array_items().size());
    if (num_cols == -1) {
      num_cols = cols;
      if (cols == 0) {
        return Status::InvalidArgument("'values' rows must not be empty");
      }
      out->inline_values = Matrix(num_rows, num_cols);
      out->inline_mask = Mask(num_rows, num_cols);
    } else if (cols != num_cols) {
      return Status::InvalidArgument(
          "'values' rows have ragged lengths (" + std::to_string(cols) +
          " vs " + std::to_string(num_cols) + ")");
    }
    for (int t = 0; t < cols; ++t) {
      const JsonValue& cell = row.array_items()[t];
      if (cell.is_null()) {
        out->inline_mask.set_missing(r, t);
      } else if (cell.is_number()) {
        out->inline_values(r, t) = cell.number_value();
      } else {
        return Status::InvalidArgument("'values' cells must be numbers or null");
      }
    }
  }
  out->has_inline_data = true;
  return Status::OK();
}

}  // namespace

StatusOr<ImputeApiRequest> DecodeImputeRequest(const HttpMessage& request) {
  ImputeApiRequest out;
  const std::string& accept = request.Header("accept");
  out.csv_response = accept.find("text/csv") != std::string::npos;

  if (request.body.empty()) return out;  // Base-mask imputation, JSON reply.

  StatusOr<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = *parsed;
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }

  const JsonValue& model = doc.at("model");
  if (!model.is_null()) {
    if (!model.is_string()) {
      return Status::InvalidArgument("field 'model' must be a string");
    }
    out.model = model.string_value();
  }

  const JsonValue& query = doc.at("query");
  const JsonValue& values = doc.at("values");
  if (!query.is_null() && !values.is_null()) {
    return Status::InvalidArgument(
        "request carries both 'query' and 'values'; pick one");
  }
  if (!query.is_null()) {
    if (!query.is_object()) {
      return Status::InvalidArgument("field 'query' must be an object");
    }
    StatusOr<int> row = AsNonNegativeInt(query.at("row"), "query.row");
    if (!row.ok()) return row.status();
    StatusOr<int> t_start =
        AsNonNegativeInt(query.at("t_start"), "query.t_start");
    if (!t_start.ok()) return t_start.status();
    StatusOr<int> block_len =
        AsNonNegativeInt(query.at("block_len"), "query.block_len");
    if (!block_len.ok()) return block_len.status();
    if (*block_len <= 0) {
      return Status::InvalidArgument("query.block_len must be positive");
    }
    out.query.row = *row;
    out.query.t_start = *t_start;
    out.query.block_len = *block_len;
    out.has_query = true;
  } else if (!values.is_null()) {
    DMVI_RETURN_IF_ERROR(DecodeInlineValues(values, &out));
  }

  // "format": "csv" overrides the Accept header (handy for curl).
  const JsonValue& format = doc.at("format");
  if (format.is_string()) {
    if (format.string_value() == "csv") {
      out.csv_response = true;
    } else if (format.string_value() == "json") {
      out.csv_response = false;
    } else {
      return Status::InvalidArgument("field 'format' must be 'csv' or 'json'");
    }
  }
  return out;
}

// ---- Response encoding ------------------------------------------------------

std::string EncodeImputedCsv(const std::vector<Dimension>& dims,
                             const Matrix& imputed) {
  // Byte-identity with files written by dmvi_train/dmvi_serve --impute-csv
  // comes from sharing WriteDataTensorToStream — same dimension headers,
  // same precision, same formatting path.
  std::ostringstream out;
  WriteDataTensorToStream(DataTensor(dims, imputed), out);
  return out.str();
}

std::string EncodeImputedJson(const serve::ImputationResponse& response,
                              const Mask& mask) {
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "  \"status\": \"" << (response.degraded ? "degraded" : "ok")
     << "\",\n";
  if (response.degraded) {
    os << "  \"degraded\": true,\n";
    os << "  \"degrade_method\": \"" << EscapeJson(response.degrade_method)
       << "\",\n";
  }
  os << "  \"latency_seconds\": " << response.latency_seconds << ",\n";
  os << "  \"cells_imputed\": " << response.cells_imputed << ",\n";
  os << "  \"rows_touched\": " << response.rows_touched << ",\n";
  os << "  \"cells\": [";
  bool first = true;
  for (int r = 0; r < mask.rows(); ++r) {
    for (int t = 0; t < mask.cols(); ++t) {
      if (!mask.missing(r, t)) continue;
      if (!first) os << ",";
      first = false;
      const double value = response.imputed(r, t);
      os << "\n    {\"series\": " << r << ", \"time\": " << t << ", \"value\": ";
      if (std::isfinite(value)) {
        os << value;
      } else {
        os << "null";
      }
      os << "}";
    }
  }
  os << (first ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::string EncodeErrorJson(const Status& status) {
  std::ostringstream os;
  os << "{\n  \"error\": {\n    \"code\": \""
     << EscapeJson(status.ToString().substr(0, status.ToString().find(':')))
     << "\",\n    \"message\": \"" << EscapeJson(status.message())
     << "\"\n  }\n}\n";
  return os.str();
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 503;
    default: return 500;
  }
}

}  // namespace net
}  // namespace deepmvi
