#ifndef DEEPMVI_NET_CODEC_H_
#define DEEPMVI_NET_CODEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/http.h"
#include "serve/service.h"
#include "serve/workload.h"

namespace deepmvi {
namespace net {

// ---- Minimal JSON document model --------------------------------------------

/// A parsed JSON value. Deliberately tiny: the request bodies this server
/// accepts are small control documents (the bulk payloads — datasets,
/// imputed matrices — travel as CSV), so a simple recursive model with
/// std::map/std::vector storage is plenty and keeps dmvi_net free of
/// third-party dependencies.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Member `key` of an object, or null-kind sentinel when absent (or when
  /// this value is not an object) — chains safely.
  const JsonValue& at(const std::string& key) const;

  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document (single value, trailing whitespace
/// allowed). Malformed input is an InvalidArgument Status naming the byte
/// offset — the server turns it into a 400 whose body carries the message.
StatusOr<JsonValue> ParseJson(const std::string& text);

/// JSON string escaping (quotes not included).
std::string EscapeJson(const std::string& s);

// ---- /v1/impute request decoding --------------------------------------------

/// The decoded intent of one POST /v1/impute body. Exactly one data mode:
///  - query mode: `{"query": {"row": R, "t_start": T, "block_len": L}}`
///    hides one block of the *served* dataset on top of its base mask
///    (the workload unit dmvi_serve replays in-process);
///  - base mode: `{}` / no query — impute the served dataset's own base
///    mask (the cross-process exactness check);
///  - inline mode: `{"values": [[...]]}` rows of numbers with `null`
///    marking the cells to impute — self-contained requests that need no
///    server-side dataset.
/// `model` defaults to "default". The response format follows the Accept
/// header: text/csv streams the full completed matrix in the exact
/// WriteDataTensor format; anything else gets JSON with only the imputed
/// cells.
struct ImputeApiRequest {
  std::string model = "default";
  bool has_query = false;
  serve::WorkloadQuery query;
  bool has_inline_data = false;
  Matrix inline_values;  // Missing cells hold 0.0.
  Mask inline_mask;      // Missing where the JSON held null.
  bool csv_response = false;
};

/// Decodes the body of a POST /v1/impute. Malformed JSON or an invalid
/// combination of fields is InvalidArgument (answered as 400 with the
/// Status message in the body).
StatusOr<ImputeApiRequest> DecodeImputeRequest(const HttpMessage& request);

// ---- Response encoding ------------------------------------------------------

/// The completed matrix in the exact dataset CSV format WriteDataTensor
/// emits (dimension headers from `dims`, precision 17) — the byte-identity
/// anchor: fetching this over loopback must `cmp` equal to dmvi_train /
/// dmvi_serve --impute-csv files.
std::string EncodeImputedCsv(const std::vector<Dimension>& dims,
                             const Matrix& imputed);

/// JSON success body: request status, latency, and one {series, time,
/// value} entry per cell of `mask` that was missing (precision 17, so
/// values survive the trip bit-exactly). A degraded answer (the admission
/// ladder fell back to a cheap imputer under overload) says so loudly:
/// "status" becomes "degraded" and "degraded"/"degrade_method" fields name
/// the fallback — callers must never mistake a fallback for model output.
std::string EncodeImputedJson(const serve::ImputationResponse& response,
                              const Mask& mask);

/// JSON error body: {"error": {"code": ..., "message": ...}}.
std::string EncodeErrorJson(const Status& status);

/// HTTP status code conveying `status` (400 invalid argument, 404 not
/// found, 503 unavailable, 500 otherwise).
int HttpStatusFor(const Status& status);

}  // namespace net
}  // namespace deepmvi

#endif  // DEEPMVI_NET_CODEC_H_
