#include "net/endpoints.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <sstream>
#include <thread>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "net/codec.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/telemetry.h"
#include "serve/workload.h"

namespace deepmvi {
namespace net {
namespace {

HttpMessage ErrorResponse(const Status& status) {
  return MakeResponse(HttpStatusFor(status), EncodeErrorJson(status),
                      "application/json");
}

HttpMessage HandleImpute(const ServingContext& ctx,
                         const HttpMessage& request) {
  const std::string& request_id = request.Header("x-request-id");
  obs::Histogram* stage_decode =
      ctx.metrics != nullptr
          ? ctx.metrics->HistogramNamed(
                "dmvi_stage_decode_seconds",
                "Impute request body decode time per request.")
          : nullptr;
  obs::Histogram* stage_encode =
      ctx.metrics != nullptr
          ? ctx.metrics->HistogramNamed(
                "dmvi_stage_encode_seconds",
                "Impute response body encode time per request.")
          : nullptr;

  Stopwatch decode_watch;
  StatusOr<ImputeApiRequest> decoded = [&] {
    obs::Span decode_span(ctx.tracer, "impute.decode");
    if (decode_span.active()) decode_span.set_request_id(request_id);
    return DecodeImputeRequest(request);
  }();
  if (stage_decode != nullptr) {
    stage_decode->Observe(decode_watch.ElapsedSeconds());
  }
  if (!decoded.ok()) return ErrorResponse(decoded.status());
  const ImputeApiRequest& api = *decoded;

  // Build the dataset + mask in locals first: Submit consumes the request
  // by value (the shared_ptr moves out of it), and the encoders below
  // still need both after the response comes back.
  std::shared_ptr<const DataTensor> data;
  Mask mask;
  if (api.has_inline_data) {
    data = std::make_shared<const DataTensor>(
        DataTensor::FromMatrix(api.inline_values));
    mask = api.inline_mask;
  } else {
    if (ctx.data == nullptr) {
      return ErrorResponse(Status::FailedPrecondition(
          "no dataset is being served; send inline 'values'"));
    }
    data = ctx.data;
    mask = api.has_query ? serve::ApplyQuery(ctx.base_mask, api.query)
                         : ctx.base_mask;
  }

  // The Submit path — HTTP workers' concurrent requests coalesce into the
  // same micro-batches in-process callers get, with the same
  // deterministic per-slot aggregation.
  serve::ImputationRequest impute;
  impute.model = api.model;
  impute.data = data;
  impute.mask = mask;
  impute.request_id = request_id;
  // Parent the service-side spans (queue.wait, service.process, ...) to
  // the enclosing http.handle span even though they run on the dispatcher
  // thread, not this worker.
  if (ctx.tracer != nullptr) impute.trace_parent = ctx.tracer->CurrentContext();
  serve::ImputationResponse response =
      ctx.service->Submit(std::move(impute)).get();
  if (!response.status.ok()) return ErrorResponse(response.status);

  Stopwatch encode_watch;
  HttpMessage reply;
  {
    obs::Span encode_span(ctx.tracer, "impute.encode");
    if (encode_span.active()) encode_span.set_request_id(request_id);
    if (api.csv_response) {
      reply = MakeResponse(200,
                           EncodeImputedCsv(data->dims(), response.imputed),
                           "text/csv");
    } else {
      reply = MakeResponse(200, EncodeImputedJson(response, mask),
                           "application/json");
    }
  }
  if (stage_encode != nullptr) {
    stage_encode->Observe(encode_watch.ElapsedSeconds());
  }
  // The degradation marker rides a header too so CSV responses (whose body
  // must stay byte-identical to the dataset format) still carry it.
  if (response.degraded) {
    reply.SetHeader("x-dmvi-degraded", response.degrade_method);
  }
  return reply;
}

/// Overall quality rung for /healthz and /debug/quality: "off" without a
/// monitor, "no-reference" when no observed model carries a training
/// profile (legacy checkpoints), else "ok"/"drifting" against the
/// context's PSI threshold.
const char* QualityStatus(const serve::QualitySnapshot& snapshot,
                          double drift_threshold, bool have_monitor) {
  if (!have_monitor) return "off";
  if (snapshot.max_drift_score < 0.0) return "no-reference";
  return snapshot.max_drift_score >= drift_threshold ? "drifting" : "ok";
}

HttpMessage HandleDebugQuality(const ServingContext& ctx) {
  if (ctx.quality == nullptr) {
    return ErrorResponse(
        Status::FailedPrecondition("no quality monitor is configured"));
  }
  const serve::QualitySnapshot snapshot = ctx.quality->Snapshot();
  std::ostringstream os;
  os.precision(9);
  os << "{\n";
  os << "  \"drift_threshold\": " << ctx.drift_threshold << ",\n";
  os << "  \"quality\": \""
     << QualityStatus(snapshot, ctx.drift_threshold, true) << "\",\n";
  os << "  \"models\": [";
  bool first_model = true;
  for (const serve::ModelQualitySnapshot& model : snapshot.models) {
    os << (first_model ? "\n" : ",\n");
    first_model = false;
    const char* status = !model.has_reference
                             ? "no-reference"
                             : (model.drift_score >= ctx.drift_threshold
                                    ? "drifting"
                                    : "ok");
    os << "    {\"model\": \"" << EscapeJson(model.model) << "\",\n";
    os << "     \"status\": \"" << status << "\",\n";
    os << "     \"has_reference\": "
       << (model.has_reference ? "true" : "false") << ",\n";
    os << "     \"requests_observed\": " << model.requests_observed << ",\n";
    os << "     \"cells_observed\": " << model.cells_observed << ",\n";
    os << "     \"cells_missing\": " << model.cells_missing << ",\n";
    os << "     \"input_missing_rate\": " << model.input_missing_rate
       << ",\n";
    os << "     \"reference_missing_rate\": "
       << model.reference_missing_rate << ",\n";
    os << "     \"drift_score\": " << model.drift_score << ",\n";
    os << "     \"drift_ks\": " << model.drift_ks << ",\n";
    os << "     \"series_scored\": " << model.series_scored << ",\n";
    os << "     \"series\": [";
    bool first_series = true;
    for (const serve::SeriesDriftInfo& series : model.series) {
      os << (first_series ? "" : ", ") << "{\"series\": " << series.series
         << ", \"psi\": " << series.psi << ", \"ks\": " << series.ks
         << ", \"live_count\": " << series.live_count
         << ", \"ref_mean\": " << series.ref_mean
         << ", \"live_mean\": " << series.live_mean << ", \"scored\": "
         << (series.scored ? "true" : "false") << "}";
      first_series = false;
    }
    os << "],\n";
    os << "     \"selfscore\": {\"rounds\": " << model.selfscore_rounds
       << ", \"cells\": " << model.selfscore_cells
       << ", \"mae_mean\": " << model.selfscore_mae_mean
       << ", \"rmse_mean\": " << model.selfscore_rmse_mean
       << ", \"history\": [";
    bool first_record = true;
    for (const serve::SelfScoreRecord& record : model.selfscore_history) {
      os << (first_record ? "" : ", ") << "{\"request_id\": \""
         << EscapeJson(record.request_id) << "\", \"cells\": " << record.cells
         << ", \"mae\": " << record.mae << ", \"rmse\": " << record.rmse
         << ", \"at_seconds\": " << record.at_seconds << "}";
      first_record = false;
    }
    os << "]}}";
  }
  os << (first_model ? "]\n" : "\n  ]\n") << "}\n";
  return MakeResponse(200, os.str(), "application/json");
}

HttpMessage HandleHealthz(const ServingContext& ctx,
                          const HttpServer* server) {
  const serve::ServiceConfig& config = ctx.service->config();
  const int queue_depth = ctx.service->queue_depth();
  const int pending = server != nullptr ? server->pending_connections() : 0;
  const int depth = queue_depth + pending;
  // The same ladder Submit walks, re-derived for observers: shedding beats
  // degrading beats ready; both watermarks at 0 means the ladder is off.
  const char* degradation = "off";
  if (config.shed_watermark > 0 || config.degrade_watermark > 0) {
    if (config.shed_watermark > 0 && depth >= config.shed_watermark) {
      degradation = "shedding";
    } else if (config.degrade_watermark > 0 &&
               depth >= config.degrade_watermark) {
      degradation = "degrading";
    } else {
      degradation = "ready";
    }
  }

  std::ostringstream os;
  os << "{\n  \"status\": \"ok\",\n  \"models\": [";
  bool first = true;
  for (const std::string& name : ctx.service->registry().Names()) {
    os << (first ? "" : ", ") << "\"" << EscapeJson(name) << "\"";
    first = false;
  }
  os << "],\n";
  os << "  \"num_series\": " << (ctx.data ? ctx.data->num_series() : 0)
     << ",\n";
  os << "  \"num_times\": " << (ctx.data ? ctx.data->num_times() : 0)
     << ",\n";
  os << "  \"queue_depth\": " << queue_depth << ",\n";
  os << "  \"pending_connections\": " << pending << ",\n";
  os << "  \"degrade_watermark\": " << config.degrade_watermark << ",\n";
  os << "  \"shed_watermark\": " << config.shed_watermark << ",\n";
  os << "  \"degradation\": \"" << degradation << "\",\n";
  // Model-quality rung: live drift against the training reference.
  const char* quality = "off";
  if (ctx.quality != nullptr) {
    quality = QualityStatus(ctx.quality->Snapshot(), ctx.drift_threshold,
                            true);
  }
  os << "  \"drift_threshold\": " << ctx.drift_threshold << ",\n";
  os << "  \"quality\": \"" << quality << "\"\n";
  os << "}\n";
  return MakeResponse(200, os.str(), "application/json");
}

/// Integer query parameter with a default and clamping — the /debug
/// routes take small operator-typed numbers, so out-of-range input snaps
/// to the nearest bound instead of failing the request.
int IntQueryParameter(const HttpMessage& request, const std::string& key,
                      int fallback, int lo, int hi) {
  const std::string text = QueryParameter(request.target, key);
  if (text.empty()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  if (value < lo) return lo;
  if (value > hi) return hi;
  return static_cast<int>(value);
}

HttpMessage HandleDebugProfile(const HttpMessage& request) {
  const int seconds = IntQueryParameter(request, "seconds", 2, 1, 30);
  const int hz = IntQueryParameter(request, "hz", obs::CpuProfiler::kDefaultHz,
                                   1, obs::CpuProfiler::kMaxHz);
  Status started = obs::CpuProfiler::Start(hz);
  if (!started.ok()) return ErrorResponse(started);
  // Blocking this worker for the window is the point: the endpoint is an
  // operator tool, and the remaining workers keep serving traffic — which
  // is exactly what the profile observes.
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  obs::ProfileResult profile = obs::CpuProfiler::Stop();
  HttpMessage reply =
      MakeResponse(200, std::move(profile.collapsed), "text/plain");
  // The window's vitals ride headers so the body stays pure collapsed
  // stacks (pipe it straight into flamegraph.pl).
  reply.SetHeader("x-dmvi-profile-samples", std::to_string(profile.samples));
  reply.SetHeader("x-dmvi-profile-dropped", std::to_string(profile.dropped));
  reply.SetHeader("x-dmvi-profile-hz", std::to_string(profile.hz));
  reply.SetHeader("x-dmvi-profile-seconds",
                  std::to_string(profile.duration_seconds));
  return reply;
}

HttpMessage HandleDebugRequests(const ServingContext& ctx, bool slow_only) {
  if (ctx.recorder == nullptr) {
    return ErrorResponse(
        Status::FailedPrecondition("no flight recorder is configured"));
  }
  std::ostringstream os;
  os.precision(9);
  os << "{\n  \"slow_threshold_seconds\": "
     << ctx.recorder->slow_threshold_seconds()
     << ",\n  \"capacity\": " << ctx.recorder->capacity()
     << ",\n  \"total_recorded\": " << ctx.recorder->total_recorded()
     << ",\n  \"total_slow\": " << ctx.recorder->total_slow()
     << ",\n  \"records\": "
     << obs::FlightRecordsJson(slow_only ? ctx.recorder->SlowSnapshot()
                                         : ctx.recorder->Snapshot())
     << "}\n";
  return MakeResponse(200, os.str(), "application/json");
}

/// Refreshes the dmvi_process_* gauges from /proc/self; registration is
/// idempotent, so the scrape and /debug/state paths share the names.
void RefreshProcessGauges(obs::MetricsRegistry* metrics,
                          const obs::ProcessStats& stats) {
  if (metrics == nullptr || !stats.ok) return;
  metrics
      ->GaugeNamed("dmvi_process_resident_bytes",
                   "Resident set size of the serving process.")
      ->Set(stats.rss_bytes);
  metrics
      ->GaugeNamed("dmvi_process_cpu_seconds",
                   "User plus system CPU time consumed by the process.")
      ->Set(stats.cpu_seconds);
  metrics
      ->GaugeNamed("dmvi_process_open_fds",
                   "Open file descriptors in the serving process.")
      ->Set(static_cast<double>(stats.open_fds));
}

HttpMessage HandleDebugState(const ServingContext& ctx) {
  const obs::ProcessStats stats = obs::ReadProcessStats();
  RefreshProcessGauges(ctx.metrics, stats);
  std::ostringstream os;
  os.precision(9);
  os << "{\n";
  os << "  \"build_commit\": \"" << EscapeJson(ctx.build_commit) << "\",\n";
  os << "  \"uptime_seconds\": " << ctx.started.ElapsedSeconds() << ",\n";
  os << "  \"pid\": " << ::getpid() << ",\n";
  os << "  \"profiler_running\": "
     << (obs::CpuProfiler::IsRunning() ? "true" : "false") << ",\n";
  os << "  \"process_stats_ok\": " << (stats.ok ? "true" : "false") << ",\n";
  os << "  \"rss_bytes\": " << stats.rss_bytes << ",\n";
  os << "  \"cpu_seconds\": " << stats.cpu_seconds << ",\n";
  os << "  \"open_fds\": " << stats.open_fds << ",\n";
  const serve::ModelRegistry::ReloadInfo reloads =
      ctx.service->registry().reload_info();
  os << "  \"model_registrations\": " << reloads.registrations << ",\n";
  os << "  \"model_reloads\": " << reloads.reloads << ",\n";
  os << "  \"last_registered_model\": \"" << EscapeJson(reloads.last_model)
     << "\",\n";
  os << "  \"model_age_seconds\": " << reloads.model_age_seconds << "\n";
  os << "}\n";
  return MakeResponse(200, os.str(), "application/json");
}

HttpMessage HandleReload(const ServingContext& ctx,
                         const HttpMessage& request) {
  if (!ctx.reload) {
    return ErrorResponse(
        Status::FailedPrecondition("reload is not configured"));
  }
  std::string model = "default";
  std::string path;
  if (!request.body.empty()) {
    StatusOr<JsonValue> parsed = ParseJson(request.body);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    if (!parsed->is_object()) {
      return ErrorResponse(
          Status::InvalidArgument("reload body must be a JSON object"));
    }
    if (parsed->at("model").is_string()) {
      model = parsed->at("model").string_value();
    }
    if (parsed->at("path").is_string()) {
      path = parsed->at("path").string_value();
    }
  }
  Status reloaded = ctx.reload(model, path);
  if (!reloaded.ok()) return ErrorResponse(reloaded);
  return MakeResponse(200,
                      "{\n  \"status\": \"ok\",\n  \"reloaded\": \"" +
                          EscapeJson(model) + "\"\n}\n",
                      "application/json");
}

}  // namespace

void RegisterServingEndpoints(HttpServer* server, ServingContext ctx) {
  DMVI_CHECK(ctx.service != nullptr) << "ServingContext without a service";
  server->Handle("POST", "/v1/impute", [ctx](const HttpMessage& request) {
    return HandleImpute(ctx, request);
  });
  server->Handle("GET", "/healthz", [ctx, server](const HttpMessage&) {
    return HandleHealthz(ctx, server);
  });
  server->Handle("GET", "/metrics", [ctx, server](const HttpMessage&) {
    // Prometheus text exposition: telemetry counters + latency histogram,
    // live pressure gauges, then whatever the shared registry carries
    // (stage histograms, HTTP counters).
    std::ostringstream os;
    os << serve::TelemetryToPrometheus(ctx.service->telemetry());
    obs::AppendPrometheusGauge(
        os, "dmvi_queue_depth",
        "Requests queued for the batch dispatcher right now.",
        static_cast<double>(ctx.service->queue_depth()));
    obs::AppendPrometheusGauge(
        os, "dmvi_pending_connections",
        "Accepted connections waiting for a free worker right now.",
        server != nullptr ? static_cast<double>(server->pending_connections())
                          : 0.0);
    obs::AppendPrometheusGauge(
        os, "dmvi_accept_queue_high_water",
        "Largest accept-queue depth observed since start (saturation "
        "headroom against max_pending_connections).",
        server != nullptr
            ? static_cast<double>(server->accept_queue_high_water())
            : 0.0);
    obs::AppendPrometheusCounter(
        os, "dmvi_pool_threads_created_total",
        "Worker threads the shared parallel pool has created.",
        ParallelPoolThreadsCreated());
    if (ctx.trace_sink != nullptr) {
      obs::AppendPrometheusCounter(
          os, "dmvi_trace_dropped_spans_total",
          "Spans dropped because the collecting trace sink was full.",
          ctx.trace_sink->dropped());
    }
    // Model deployment accounting: how often checkpoints were swapped in
    // and how stale the newest one is.
    const serve::ModelRegistry::ReloadInfo reloads =
        ctx.service->registry().reload_info();
    obs::AppendPrometheusCounter(
        os, "dmvi_model_reloads_total",
        "Registry re-registrations that swapped a live model.",
        reloads.reloads);
    obs::AppendPrometheusGauge(
        os, "dmvi_model_age_seconds",
        "Seconds since the most recent model (re)registration.",
        reloads.model_age_seconds);
    // Model-quality gauges refresh at scrape time like the process
    // gauges below. The drift gauge is registered only once a reference
    // profile exists — legacy profile-less checkpoints scrape without it.
    if (ctx.quality != nullptr && ctx.metrics != nullptr) {
      const serve::QualitySnapshot snapshot = ctx.quality->Snapshot();
      int64_t cells = 0;
      int64_t missing = 0;
      for (const serve::ModelQualitySnapshot& model : snapshot.models) {
        cells += model.cells_observed;
        missing += model.cells_missing;
      }
      if (cells + missing > 0) {
        ctx.metrics
            ->GaugeNamed("dmvi_model_input_missing_rate",
                         "Missing-cell fraction of live request inputs "
                         "across models.")
            ->Set(static_cast<double>(missing) /
                  static_cast<double>(cells + missing));
      }
      if (snapshot.max_drift_score >= 0.0) {
        ctx.metrics
            ->GaugeNamed("dmvi_model_drift_score",
                         "Max PSI of live inputs vs the training reference "
                         "profile over models and series.")
            ->Set(snapshot.max_drift_score);
      }
    }
    // Self-observation gauges refresh at scrape time (procfs reads are
    // three file touches, not worth a poller thread).
    RefreshProcessGauges(ctx.metrics, obs::ReadProcessStats());
    if (ctx.metrics != nullptr) os << ctx.metrics->PrometheusText();
    return MakeResponse(200, os.str(), "text/plain; version=0.0.4");
  });
  server->Handle("GET", "/metrics.json", [ctx](const HttpMessage&) {
    return MakeResponse(200,
                        serve::TelemetryToJson(ctx.service->telemetry()),
                        "application/json");
  });
  server->Handle("POST", "/admin/reload", [ctx](const HttpMessage& request) {
    return HandleReload(ctx, request);
  });
  server->Handle("GET", "/debug/profile", [](const HttpMessage& request) {
    return HandleDebugProfile(request);
  });
  server->Handle("GET", "/debug/requests", [ctx](const HttpMessage&) {
    return HandleDebugRequests(ctx, /*slow_only=*/false);
  });
  server->Handle("GET", "/debug/slow", [ctx](const HttpMessage&) {
    return HandleDebugRequests(ctx, /*slow_only=*/true);
  });
  server->Handle("GET", "/debug/state", [ctx](const HttpMessage&) {
    return HandleDebugState(ctx);
  });
  server->Handle("GET", "/debug/quality", [ctx](const HttpMessage&) {
    return HandleDebugQuality(ctx);
  });
}

}  // namespace net
}  // namespace deepmvi
