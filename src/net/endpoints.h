#ifndef DEEPMVI_NET_ENDPOINTS_H_
#define DEEPMVI_NET_ENDPOINTS_H_

#include <functional>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {
namespace net {

/// Everything the HTTP routes need to serve imputation traffic. The
/// dataset + base mask play the same role as in dmvi_serve's in-process
/// replay: query-mode requests hide one block on top of `base_mask` and
/// ask the service to fill it, so the network path and the in-process path
/// answer literally the same ImputationRequests.
struct ServingContext {
  serve::ImputationService* service = nullptr;
  std::shared_ptr<const DataTensor> data;
  Mask base_mask;
  /// Reloads the checkpoint behind `model` from `path` (empty = the path
  /// the model was originally loaded from) and swaps it into the registry
  /// atomically. Wired by dmvi_serve; POST /admin/reload and SIGHUP both
  /// call it.
  std::function<Status(const std::string& model, const std::string& path)>
      reload;
  /// Optional observability hooks (borrowed; null disables). The registry
  /// contributes its metrics to GET /metrics and receives the decode /
  /// encode stage histograms; the tracer wraps request decoding and
  /// response encoding in spans and threads the current HTTP span into
  /// ImputationRequest::trace_parent.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Optional flight recorder (borrowed; null answers the /debug/requests
  /// and /debug/slow routes with 503). Feeding it is the service's job —
  /// wire the same pointer into ServiceConfig::recorder.
  obs::FlightRecorder* recorder = nullptr;
  /// Optional collecting sink behind `tracer`, so /metrics can export the
  /// dropped-span count (borrowed; null skips the metric).
  obs::CollectingTraceSink* trace_sink = nullptr;
  /// Optional model-quality monitor (borrowed; null answers GET
  /// /debug/quality with 503 and reports the /healthz quality rung as
  /// "off"). Feeding it is the service's job — wire the same pointer
  /// into ServiceConfig::quality.
  serve::QualityMonitor* quality = nullptr;
  /// PSI above which the /healthz quality rung reports "drifting" (and
  /// /debug/quality marks the model). The conventional PSI reading:
  /// < 0.1 stable, > 0.25 drifted; the default splits the difference.
  double drift_threshold = 0.2;
  /// Build provenance for GET /debug/state ("unknown" when the binary was
  /// built outside a checkout).
  std::string build_commit = "unknown";
  /// Uptime epoch: default-constructed when the context is built, copied
  /// into the handlers — /debug/state reports seconds since then.
  Stopwatch started;
};

/// Registers the serving API on `server`:
///   POST /v1/impute    data path -> ImputationService::Submit (so HTTP
///                      requests micro-batch and fan out exactly like
///                      in-process Submit callers). Responses answered by
///                      the degradation ladder carry an "x-dmvi-degraded"
///                      header naming the fallback imputer (JSON bodies
///                      additionally say "status": "degraded").
///   GET  /healthz      {"status":"ok", models, dataset shape, queue
///                      depth, pending connections, watermarks, and the
///                      current degradation state: off/ready/degrading/
///                      shedding}
///   GET  /metrics      Prometheus text exposition: the telemetry counters
///                      as dmvi_*_total, the request-latency histogram,
///                      live queue-depth / pending-connections gauges, and
///                      everything in ctx.metrics (stage histograms, HTTP
///                      counters)
///   GET  /metrics.json Telemetry JSON (serve/telemetry.h), including
///                      degraded/shed counters — the pre-Prometheus
///                      /metrics payload, kept for scripted consumers
///   POST /admin/reload warm checkpoint swap via ctx.reload
///   GET  /debug/profile?seconds=N&hz=H   on-demand CPU profiling window:
///                      blocks for N seconds (default 2, max 30) sampling
///                      at H Hz (default 99), then answers with collapsed
///                      stacks (flamegraph.pl format); 503 while another
///                      window is open
///   GET  /debug/requests  flight-recorder ring as JSON (last N requests)
///   GET  /debug/slow      the slow-request ring (above the recorder's
///                      threshold), same shape
///   GET  /debug/state  build hash, uptime, pid, and /proc/self gauges
///                      (RSS, CPU seconds, open fds) — the same numbers
///                      exported as dmvi_process_* via /metrics — plus
///                      model reload accounting (count, age, last name)
///   GET  /debug/quality  model-quality view: per-model per-series
///                      PSI/KS drift breakdown against the checkpoint's
///                      training reference profile, live input missing
///                      rates, and the masked self-scoring history; 503
///                      without a monitor
/// `ctx` is copied into the handlers and `server` itself is captured by
/// the /healthz route (it reports the accept-queue depth); both the
/// service and the server must outlive the registered handlers.
void RegisterServingEndpoints(HttpServer* server, ServingContext ctx);

}  // namespace net
}  // namespace deepmvi

#endif  // DEEPMVI_NET_ENDPOINTS_H_
