#include "net/fault.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

namespace deepmvi {
namespace net {

FaultInjector::FaultInjector(Config config)
    : config_(std::move(config)), rng_(config_.seed) {}

FaultInjector::Decision FaultInjector::NextLocked(
    const FaultProfile& profile, size_t requested) {
  // One Uniform() draw per op keeps the schedule stable when rates are
  // tuned: the same seed visits the same decision points.
  const double u = rng_.Uniform();
  Decision decision;
  if (u < profile.eintr_rate) {
    decision.action = Action::kEintr;
  } else if (u < profile.eintr_rate + profile.short_rate) {
    // A short transfer needs at least 1 byte of progress (a 0-byte recv
    // would read as EOF) and must be a strict prefix to mean anything.
    if (requested >= 2) {
      decision.action = Action::kShort;
      decision.cap = 1 + static_cast<size_t>(rng_.UniformInt(
                             static_cast<int>(requested - 1)));
    }
  } else if (u < profile.eintr_rate + profile.short_rate +
                     profile.reset_rate) {
    decision.action = Action::kReset;
  }
  if (decision.action != Action::kNone) ++injected_;
  return decision;
}

FaultInjector::Decision FaultInjector::NextRead(size_t requested) {
  MutexLock lock(&mutex_);
  return NextLocked(config_.read, requested);
}

FaultInjector::Decision FaultInjector::NextWrite(size_t requested) {
  MutexLock lock(&mutex_);
  return NextLocked(config_.write, requested);
}

int64_t FaultInjector::injected() const {
  MutexLock lock(&mutex_);
  return injected_;
}

ssize_t FaultyRecv(FaultInjector* injector, int fd, void* buffer,
                   size_t length) {
  if (injector == nullptr) return ::recv(fd, buffer, length, 0);
  const FaultInjector::Decision decision = injector->NextRead(length);
  switch (decision.action) {
    case FaultInjector::Action::kEintr:
      errno = EINTR;
      return -1;
    case FaultInjector::Action::kReset:
      errno = ECONNRESET;
      return -1;
    case FaultInjector::Action::kShort:
      return ::recv(fd, buffer, decision.cap, 0);
    case FaultInjector::Action::kNone:
      break;
  }
  return ::recv(fd, buffer, length, 0);
}

ssize_t FaultySend(FaultInjector* injector, int fd, const void* buffer,
                   size_t length, int flags) {
  if (injector == nullptr) return ::send(fd, buffer, length, flags);
  const FaultInjector::Decision decision = injector->NextWrite(length);
  switch (decision.action) {
    case FaultInjector::Action::kEintr:
      errno = EINTR;
      return -1;
    case FaultInjector::Action::kReset:
      errno = ECONNRESET;
      return -1;
    case FaultInjector::Action::kShort:
      return ::send(fd, buffer, decision.cap, flags);
    case FaultInjector::Action::kNone:
      break;
  }
  return ::send(fd, buffer, length, flags);
}

}  // namespace net
}  // namespace deepmvi
