#ifndef DEEPMVI_NET_FAULT_H_
#define DEEPMVI_NET_FAULT_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace deepmvi {
namespace net {

/// Per-direction fault probabilities for one I/O stream. Rates are
/// independent draws per syscall; their sum should stay <= 1.
struct FaultProfile {
  double eintr_rate = 0.0;  // Op fails with EINTR (caller must retry).
  double short_rate = 0.0;  // Op transfers a random strict prefix.
  double reset_rate = 0.0;  // Op fails with ECONNRESET (peer vanished).
};

/// Deterministic fault schedule for the socket shim below: every
/// FaultyRecv/FaultySend consults the injector before touching the real
/// syscall, so short reads/writes, EINTR storms, and mid-stream resets
/// replay identically for a given seed. Thread-safe — decisions are drawn
/// from one seeded common::Rng stream in call order, which keeps a
/// single-connection test bit-reproducible; concurrent connections share
/// the stream (each still sees a valid schedule, interleaving varies).
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 1;
    FaultProfile read;
    FaultProfile write;
  };

  enum class Action { kNone, kEintr, kShort, kReset };

  struct Decision {
    Action action = Action::kNone;
    size_t cap = 0;  // Transfer cap for kShort (1 <= cap < requested).
  };

  explicit FaultInjector(Config config);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The fate of the next read of up to `requested` bytes.
  Decision NextRead(size_t requested);
  /// The fate of the next write of `requested` bytes.
  Decision NextWrite(size_t requested);

  /// Total faults injected so far (tests assert the schedule actually
  /// fired rather than silently passing on an all-clean run).
  int64_t injected() const;

 private:
  Decision NextLocked(const FaultProfile& profile, size_t requested)
      DMVI_REQUIRES(mutex_);

  const Config config_;
  mutable Mutex mutex_;
  Rng rng_ DMVI_GUARDED_BY(mutex_);
  int64_t injected_ DMVI_GUARDED_BY(mutex_) = 0;
};

/// recv(2)/send(2) through the injector; a null injector is the plain
/// syscall, so production code paths pay one branch when faults are off.
ssize_t FaultyRecv(FaultInjector* injector, int fd, void* buffer, size_t length);
ssize_t FaultySend(FaultInjector* injector, int fd, const void* buffer,
                   size_t length, int flags);

}  // namespace net
}  // namespace deepmvi

#endif  // DEEPMVI_NET_FAULT_H_
