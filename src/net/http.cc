#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace deepmvi {
namespace net {
namespace {

const std::string kEmpty;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

}  // namespace

const std::string& HttpMessage::Header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return kEmpty;
}

bool HttpMessage::HasHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return true;
  }
  return false;
}

void HttpMessage::SetHeader(const std::string& name, std::string value) {
  for (auto& [key, existing] : headers) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  headers.emplace_back(name, std::move(value));
}

const char* StatusReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void HttpParser::Fail(int code, std::string message) {
  state_ = State::kError;
  error_code_ = code;
  error_message_ = std::move(message);
}

bool HttpParser::ParseStartLine(const std::string& line) {
  std::istringstream stream(line);
  if (mode_ == Mode::kRequest) {
    // METHOD SP TARGET SP VERSION
    std::string extra;
    if (!(stream >> message_.method >> message_.target >> message_.version) ||
        (stream >> extra)) {
      Fail(400, "malformed request line: " + line);
      return false;
    }
    if (message_.version != "HTTP/1.1" && message_.version != "HTTP/1.0") {
      Fail(400, "unsupported HTTP version: " + message_.version);
      return false;
    }
    if (message_.target.empty() || message_.target[0] != '/') {
      Fail(400, "only origin-form targets are supported: " + message_.target);
      return false;
    }
  } else {
    // VERSION SP CODE SP REASON...
    std::string code_text;
    if (!(stream >> message_.version >> code_text)) {
      Fail(400, "malformed status line: " + line);
      return false;
    }
    char* end = nullptr;
    const long code = std::strtol(code_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || code < 100 || code > 599) {
      Fail(400, "malformed status code: " + code_text);
      return false;
    }
    message_.status_code = static_cast<int>(code);
    std::getline(stream, message_.reason);
    message_.reason = Trim(message_.reason);
  }
  return true;
}

bool HttpParser::ParseHead() {
  // Split the buffered head into lines; both CRLF and bare LF terminators
  // are tolerated (robustness over strictness for hand-written clients).
  std::istringstream stream(head_);
  std::string line;
  bool first = true;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // The final blank line.
    if (first) {
      if (!ParseStartLine(line)) return false;
      first = false;
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header line: " + line);
      return false;
    }
    // Whitespace between the field name and the colon is forbidden
    // (RFC 7230 §3.2.4 — it enables request smuggling).
    if (line[colon - 1] == ' ' || line[colon - 1] == '\t') {
      Fail(400, "whitespace before ':' in header: " + line);
      return false;
    }
    message_.headers.emplace_back(ToLower(line.substr(0, colon)),
                                  Trim(line.substr(colon + 1)));
  }
  if (first) {
    Fail(400, "empty message head");
    return false;
  }

  // Framing: Content-Length only. Chunked bodies are refused, not
  // misparsed.
  const std::string transfer = ToLower(message_.Header("transfer-encoding"));
  if (!transfer.empty() && transfer != "identity") {
    Fail(501, "transfer-encoding '" + transfer + "' is not supported");
    return false;
  }
  // Duplicate Content-Length fields with differing values are the classic
  // request-smuggling vector (RFC 7230 §3.3.2): a front-end framing by the
  // first value and a back-end by the last see different message
  // boundaries. Reject the message outright.
  std::string length_text;
  for (const auto& [key, value] : message_.headers) {
    if (key != "content-length") continue;
    if (!length_text.empty() && value != length_text) {
      Fail(400, "conflicting content-length headers: " + length_text +
                    " vs " + value);
      return false;
    }
    length_text = value;
  }
  if (length_text.empty()) {
    body_expected_ = 0;
  } else {
    char* end = nullptr;
    const unsigned long long length =
        std::strtoull(length_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || length_text.empty() ||
        !std::isdigit(static_cast<unsigned char>(length_text[0]))) {
      Fail(400, "malformed content-length: " + length_text);
      return false;
    }
    if (length > limits_.max_body_bytes) {
      Fail(413, "declared body of " + length_text + " bytes exceeds cap of " +
                    std::to_string(limits_.max_body_bytes));
      return false;
    }
    body_expected_ = static_cast<size_t>(length);
  }
  message_.body.reserve(body_expected_);
  return true;
}

size_t HttpParser::Feed(const char* data, size_t size) {
  size_t used = 0;
  while (used < size && state_ != State::kDone && state_ != State::kError) {
    started_ = true;
    if (state_ == State::kHead) {
      // Buffer byte by byte until the blank line; the cap bounds how much
      // a hostile peer can make us hold before we answer 431.
      head_.push_back(data[used++]);
      if (head_.size() > limits_.max_header_bytes) {
        Fail(431, "message head exceeds cap of " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
        break;
      }
      const size_t n = head_.size();
      const bool crlf_end = n >= 4 && head_.compare(n - 4, 4, "\r\n\r\n") == 0;
      const bool lf_end = n >= 2 && head_.compare(n - 2, 2, "\n\n") == 0;
      if (crlf_end || lf_end) {
        if (!ParseHead()) break;
        state_ = body_expected_ > 0 ? State::kBody : State::kDone;
      }
    } else {  // kBody
      const size_t want = body_expected_ - message_.body.size();
      const size_t take = std::min(want, size - used);
      message_.body.append(data + used, take);
      used += take;
      if (message_.body.size() == body_expected_) state_ = State::kDone;
    }
  }
  return used;
}

void HttpParser::Reset() {
  state_ = State::kHead;
  started_ = false;
  head_.clear();
  body_expected_ = 0;
  error_code_ = 0;
  error_message_.clear();
  message_ = HttpMessage();
}

namespace {

void AppendHeadersAndBody(const HttpMessage& message, std::string* out) {
  for (const auto& [key, value] : message.headers) {
    if (key == "content-length") {
      // Always recomputed from the body so the two can't disagree.
      continue;
    }
    *out += key;
    *out += ": ";
    *out += value;
    *out += "\r\n";
  }
  *out += "content-length: " + std::to_string(message.body.size()) + "\r\n";
  *out += "\r\n";
  *out += message.body;
}

}  // namespace

std::string SerializeResponse(const HttpMessage& response) {
  std::string out = response.version + " " +
                    std::to_string(response.status_code) + " " +
                    (response.reason.empty() ? StatusReason(response.status_code)
                                             : response.reason.c_str()) +
                    "\r\n";
  AppendHeadersAndBody(response, &out);
  return out;
}

std::string SerializeRequest(const HttpMessage& request) {
  std::string out =
      request.method + " " + request.target + " " + request.version + "\r\n";
  AppendHeadersAndBody(request, &out);
  return out;
}

HttpMessage MakeResponse(int status, std::string body,
                         const std::string& content_type) {
  HttpMessage response;
  response.status_code = status;
  response.reason = StatusReason(status);
  response.body = std::move(body);
  if (!content_type.empty()) response.SetHeader("content-type", content_type);
  return response;
}

bool WantsKeepAlive(const HttpMessage& message) {
  const std::string connection = ToLower(message.Header("connection"));
  if (message.version == "HTTP/1.0") return connection == "keep-alive";
  return connection != "close";
}

std::string TargetPath(const std::string& target) {
  const size_t question = target.find('?');
  return question == std::string::npos ? target : target.substr(0, question);
}

std::string QueryParameter(const std::string& target, const std::string& key) {
  const size_t question = target.find('?');
  if (question == std::string::npos) return "";
  size_t start = question + 1;
  while (start < target.size()) {
    size_t end = target.find('&', start);
    if (end == std::string::npos) end = target.size();
    const std::string pair = target.substr(start, end - start);
    const size_t equals = pair.find('=');
    const std::string name =
        equals == std::string::npos ? pair : pair.substr(0, equals);
    if (name == key) {
      return equals == std::string::npos ? "" : pair.substr(equals + 1);
    }
    start = end + 1;
  }
  return "";
}

}  // namespace net
}  // namespace deepmvi
