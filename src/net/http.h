#ifndef DEEPMVI_NET_HTTP_H_
#define DEEPMVI_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace deepmvi {
namespace net {

/// One parsed HTTP/1.1 message head plus body. Requests fill method/target,
/// responses fill status_code/reason; both share headers and body. Header
/// names are stored lower-cased (HTTP field names are case-insensitive),
/// values are trimmed of surrounding whitespace.
struct HttpMessage {
  // Request line.
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/v1/impute" (origin-form only).
  // Status line.
  int status_code = 0;
  std::string reason;

  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of header `name` (lower-case), or "" when absent.
  const std::string& Header(const std::string& name) const;
  bool HasHeader(const std::string& name) const;
  void SetHeader(const std::string& name, std::string value);
};

/// Canonical reason phrase for a status code ("OK", "Bad Request", ...).
const char* StatusReason(int code);

/// Hard caps the parser enforces before buffering unbounded client input.
struct ParserLimits {
  /// Request line + all header lines, bytes. Exceeding it is a 431.
  size_t max_header_bytes = 16 * 1024;
  /// Declared Content-Length, bytes. Exceeding it is a 413.
  size_t max_body_bytes = 16 * 1024 * 1024;
};

/// Incremental HTTP/1.1 message parser for Content-Length-delimited
/// messages (the only framing this server speaks; chunked transfer coding
/// is answered with 501). Feed() accepts bytes as the socket delivers them
/// — a message split across arbitrarily many reads parses identically to
/// one delivered whole, and bytes after a complete message (pipelining)
/// are left unconsumed for the next parse.
///
/// Lifecycle: Feed until done() or failed(); on failure error_code() is
/// the HTTP status the peer should be sent (400/413/431/501). Reset()
/// reuses the parser for the next message on a keep-alive connection.
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode, ParserLimits limits = {})
      : mode_(mode), limits_(limits) {}

  /// Consumes up to `size` bytes, returning how many were used. Stops
  /// consuming at the end of a complete message or at the first error.
  size_t Feed(const char* data, size_t size);

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  /// HTTP status to answer with when failed() (400, 413, 431, 501).
  int error_code() const { return error_code_; }
  /// Human-readable parse error when failed().
  const std::string& error_message() const { return error_message_; }

  /// The parsed message; meaningful once done().
  const HttpMessage& message() const { return message_; }
  HttpMessage& mutable_message() { return message_; }

  /// True once any byte of the current message has been consumed — an
  /// EOF mid-message is a truncation error, an EOF before any byte is a
  /// clean connection close.
  bool started() const { return started_; }

  /// Forgets the current message so the next Feed starts a fresh one.
  void Reset();

 private:
  enum class State { kHead, kBody, kDone, kError };

  void Fail(int code, std::string message);
  /// Parses the buffered head (request/status line + headers). Returns
  /// false when it failed.
  bool ParseHead();
  bool ParseStartLine(const std::string& line);

  const Mode mode_;
  const ParserLimits limits_;
  State state_ = State::kHead;
  bool started_ = false;
  std::string head_;          // Bytes of the head, up to the blank line.
  size_t body_expected_ = 0;  // Declared Content-Length.
  int error_code_ = 0;
  std::string error_message_;
  HttpMessage message_;
};

/// Serializes a response: status line, headers, Content-Length (always
/// emitted, computed from the body), blank line, body.
std::string SerializeResponse(const HttpMessage& response);

/// Serializes a request the same way (origin-form target).
std::string SerializeRequest(const HttpMessage& request);

/// Builds a response skeleton: status + reason + body, with Content-Type
/// set when `content_type` is non-empty.
HttpMessage MakeResponse(int status, std::string body,
                         const std::string& content_type = "");

/// True when the peer wants the connection kept open after this message:
/// HTTP/1.1 defaults to keep-alive unless "Connection: close"; HTTP/1.0
/// defaults to close unless "Connection: keep-alive".
bool WantsKeepAlive(const HttpMessage& message);

/// The path part of an origin-form target: "/debug/profile?seconds=2"
/// yields "/debug/profile". Routing matches on this so query parameters
/// never change which handler answers.
std::string TargetPath(const std::string& target);

/// First value of query parameter `key` in `target` ("" when absent or
/// valueless). Splits on '&' and '='; no percent-decoding — the admin
/// endpoints take plain numbers and identifiers.
std::string QueryParameter(const std::string& target, const std::string& key);

}  // namespace net
}  // namespace deepmvi

#endif  // DEEPMVI_NET_HTTP_H_
