#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <exception>

#include "common/parallel.h"
#include "net/codec.h"
#include "net/fault.h"

namespace deepmvi {
namespace net {
namespace {

/// recv() flavors differ in how they suppress SIGPIPE; sends use
/// MSG_NOSIGNAL where available and a process-wide ignore as fallback.
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void IgnoreSigpipeOnce() {
#ifndef MSG_NOSIGNAL
  static const bool ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
#endif
}

/// Poll granularity for blocking reads: short enough that Stop() is
/// observed promptly, long enough to stay off the hot path.
constexpr double kReadPollSeconds = 0.2;

void SetRecvTimeout(int fd, double seconds) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Status ParseHostPort(const std::string& address, std::string* host,
                     int* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("expected HOST:PORT, got '" + address + "'");
  }
  const std::string port_text = address.substr(colon + 1);
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == nullptr || *end != '\0' || value < 0 ||
      value > 65535) {
    return Status::InvalidArgument("malformed port in '" + address + "'");
  }
  *host = address.substr(0, colon);
  if (host->empty()) *host = "0.0.0.0";
  *port = static_cast<int>(value);
  return Status::OK();
}

HttpServer::HttpServer(ServerConfig config) : config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    http_requests_total_ = config_.metrics->CounterNamed(
        "dmvi_http_requests_total",
        "HTTP responses written, error responses included.");
    stage_read_ = config_.metrics->HistogramNamed(
        "dmvi_stage_http_read_seconds",
        "First byte to fully parsed request, per request.");
    stage_handle_ = config_.metrics->HistogramNamed(
        "dmvi_stage_http_handle_seconds",
        "Handler dispatch time per request (routing included).");
    stage_write_ = config_.metrics->HistogramNamed(
        "dmvi_stage_http_write_seconds",
        "Response serialization and socket write time per request.");
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& method, const std::string& path,
                        Handler handler) {
  handlers_[{method, path}] = std::move(handler);
}

std::string HttpServer::address() const {
  return config_.host + ":" + std::to_string(port_);
}

Status HttpServer::Start() {
  DMVI_CHECK(!running_) << "HttpServer::Start called twice";
  IgnoreSigpipeOnce();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse IPv4 address '" +
                                   config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + config_.host + ":" +
                           std::to_string(config_.port) + ": " + error);
  }
  if (::listen(listen_fd_, config_.max_pending_connections) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + error);
  }

  // Resolve the actual port (meaningful when config asked for port 0).
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }

  stopping_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  // The whole worker pool is one ParallelFor region: iteration i *is*
  // worker i's service loop, so connection handling runs on the same
  // persistent pool substrate as training fan-out. Per-connection errors
  // are caught inside WorkerLoop; anything escaping here is a bug and
  // ParallelFor's rethrow turns it into a loud failure.
  const int workers = std::max(1, config_.num_workers);
  pool_thread_ = std::thread([this, workers] {
    ParallelFor(workers, workers, [this](int) { WorkerLoop(); });
  });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    {
      // Backpressure: hold off accepting while the pending queue is full.
      MutexLock lock(&queue_mutex_);
      while (!stopping_ && static_cast<int>(pending_.size()) >=
                               config_.max_pending_connections) {
        backpressure_cv_.Wait(&queue_mutex_);
      }
      if (stopping_) return;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // Listen socket closed or broken: accepting is over.
    }
    {
      MutexLock lock(&queue_mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      pending_.push_back(fd);
      if (static_cast<int>(pending_.size()) > pending_high_water_) {
        pending_high_water_ = static_cast<int>(pending_.size());
      }
    }
    queue_cv_.Signal();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&queue_mutex_);
      while (!stopping_ && pending_.empty()) queue_cv_.Wait(&queue_mutex_);
      if (pending_.empty()) return;  // stopping_ and nothing left to serve.
      fd = pending_.front();
      pending_.pop_front();
    }
    backpressure_cv_.Signal();
    try {
      ServeConnection(fd);
    } catch (const std::exception&) {
      // Connection-scoped failure; the worker lives on.
    }
    ::close(fd);
  }
}

int HttpServer::pending_connections() const {
  MutexLock lock(&queue_mutex_);
  return static_cast<int>(pending_.size());
}

int HttpServer::accept_queue_high_water() const {
  MutexLock lock(&queue_mutex_);
  return pending_high_water_;
}

bool HttpServer::WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = FaultySend(config_.fault.get(), fd, bytes.data() + sent,
                                 bytes.size() - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpServer::RequestIdFor(const HttpMessage& request) {
  const std::string& supplied = request.Header("x-request-id");
  if (!supplied.empty()) return supplied;
  return "req-" + std::to_string(
                      next_request_number_.fetch_add(1,
                                                     std::memory_order_relaxed));
}

HttpMessage HttpServer::Dispatch(const HttpMessage& request) {
  // Route on the path alone so query parameters select behavior inside a
  // handler, never which handler answers.
  const std::string path = TargetPath(request.target);
  const auto it = handlers_.find({request.method, path});
  if (it == handlers_.end()) {
    // Same path under another method is 405, unknown path 404.
    for (const auto& [key, handler] : handlers_) {
      if (key.second == path) {
        return MakeResponse(
            405, EncodeErrorJson(Status::InvalidArgument(
                     "method " + request.method + " not allowed for " +
                     request.target)),
            "application/json");
      }
    }
    return MakeResponse(404,
                        EncodeErrorJson(Status::NotFound(
                            "no handler for " + request.target)),
                        "application/json");
  }
  try {
    return it->second(request);
  } catch (const std::exception& e) {
    return MakeResponse(500, EncodeErrorJson(Status::Internal(e.what())),
                        "application/json");
  }
}

void HttpServer::ServeConnection(int fd) {
  const int tcp_nodelay = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &tcp_nodelay, sizeof(tcp_nodelay));
  SetRecvTimeout(fd, kReadPollSeconds);

  HttpParser parser(HttpParser::Mode::kRequest, config_.limits);
  char buffer[8192];
  double idle_seconds = 0.0;
  obs::Tracer* tracer = config_.tracer;
  const bool traced = tracer != nullptr && tracer->enabled();
  // Read-stage timing opens at the first byte of each message, not at the
  // recv loop — idle keep-alive time is not read time.
  Stopwatch read_watch;
  double trace_read_start = 0.0;
  bool message_open = false;
  for (;;) {
    const ssize_t n =
        FaultyRecv(config_.fault.get(), fd, buffer, sizeof(buffer));
    if (n == 0) return;  // Peer closed.
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Poll tick: leave promptly on shutdown, eventually on idleness.
        // A read mid-message counts as idle too — a stalled sender should
        // not pin a worker forever.
        if (stopping_) return;
        idle_seconds += kReadPollSeconds;
        if (idle_seconds >= config_.idle_timeout_seconds) return;
        continue;
      }
      return;  // Connection error.
    }
    idle_seconds = 0.0;

    size_t offset = 0;
    while (offset < static_cast<size_t>(n)) {
      if (!message_open) {
        message_open = true;
        read_watch.Reset();
        if (traced) trace_read_start = tracer->Now();
      }
      offset += parser.Feed(buffer + offset, static_cast<size_t>(n) - offset);
      if (parser.failed()) {
        // Framing is gone; answer and close.
        HttpMessage error = MakeResponse(
            parser.error_code(),
            EncodeErrorJson(Status::InvalidArgument(parser.error_message())),
            "application/json");
        error.SetHeader("connection", "close");
        // Count before writing: once the peer can observe the response,
        // the counter must already cover it.
        ++requests_served_;
        if (http_requests_total_ != nullptr) http_requests_total_->Increment();
        WriteAll(fd, SerializeResponse(error));
        return;
      }
      if (!parser.done()) continue;

      const bool keep_alive = WantsKeepAlive(parser.message()) && !stopping_;
      const std::string request_id = RequestIdFor(parser.message());
      // Stamp the resolved id back onto the request so handlers see one
      // authoritative value whether or not the client supplied it.
      parser.mutable_message().SetHeader("x-request-id", request_id);
      if (stage_read_ != nullptr) {
        stage_read_->Observe(read_watch.ElapsedSeconds());
      }
      obs::SpanContext root;
      if (traced) {
        root.trace_id = tracer->NewId();
        root.span_id = tracer->NewId();
        obs::SpanContext read_ctx;
        read_ctx.trace_id = root.trace_id;
        read_ctx.span_id = tracer->NewId();
        tracer->RecordSpan("http.read", read_ctx, root.span_id,
                           trace_read_start,
                           tracer->Now() - trace_read_start, request_id);
      }

      Stopwatch handle_watch;
      HttpMessage response;
      {
        // Live scope so handlers find it via Tracer::CurrentContext() and
        // parent their service-side spans across the dispatcher hop.
        obs::Span handle_span(traced ? tracer : nullptr, "http.handle", root);
        if (handle_span.active()) handle_span.set_request_id(request_id);
        response = Dispatch(parser.message());
      }
      if (stage_handle_ != nullptr) {
        stage_handle_->Observe(handle_watch.ElapsedSeconds());
      }
      response.SetHeader("connection", keep_alive ? "keep-alive" : "close");
      response.SetHeader("x-dmvi-request-id", request_id);
      ++requests_served_;
      if (http_requests_total_ != nullptr) http_requests_total_->Increment();

      Stopwatch write_watch;
      const double trace_write_start = traced ? tracer->Now() : 0.0;
      const bool wrote = WriteAll(fd, SerializeResponse(response));
      if (stage_write_ != nullptr) {
        stage_write_->Observe(write_watch.ElapsedSeconds());
      }
      if (traced) {
        obs::SpanContext write_ctx;
        write_ctx.trace_id = root.trace_id;
        write_ctx.span_id = tracer->NewId();
        tracer->RecordSpan("http.write", write_ctx, root.span_id,
                           trace_write_start,
                           tracer->Now() - trace_write_start, request_id);
        tracer->RecordSpan(
            "http.request", root, 0, trace_read_start,
            tracer->Now() - trace_read_start, request_id,
            {{"method", parser.message().method},
             {"path", parser.message().target},
             {"status", std::to_string(response.status_code)}});
      }
      DMVI_SLOG(Debug)
          .Field("request_id", request_id)
          .Field("method", parser.message().method)
          .Field("path", parser.message().target)
          .Field("status", std::to_string(response.status_code))
          .stream()
          << "http request served";
      if (!wrote) return;
      if (!keep_alive) return;
      parser.Reset();
      message_open = false;
    }
  }
}

void HttpServer::Stop() {
  if (!running_) return;
  stopping_ = true;
  // Closing the listen socket unblocks accept(); shutdown() first for
  // platforms where close alone doesn't wake the blocked thread.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.SignalAll();
  backpressure_cv_.SignalAll();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_thread_.joinable()) pool_thread_.join();
  // Connections that were accepted but never claimed by a worker. Every
  // other thread has been joined, but take the lock anyway: it is cheap,
  // uncontended, and keeps the guarded-field discipline uniform.
  {
    MutexLock lock(&queue_mutex_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  running_ = false;
}

}  // namespace net
}  // namespace deepmvi
