#ifndef DEEPMVI_NET_SERVER_H_
#define DEEPMVI_NET_SERVER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/fault.h"
#include "net/http.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace deepmvi {
namespace net {

/// Tuning knobs of the HTTP front-end.
struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 lets the kernel pick a free port; HttpServer::port() reports it.
  int port = 0;
  /// Connection worker threads (each serves one connection at a time).
  int num_workers = 4;
  /// Accepted connections waiting for a free worker. When the backlog is
  /// full the accept loop stops accepting — kernel-level backpressure —
  /// rather than queueing unboundedly.
  int max_pending_connections = 128;
  /// Per-message parser caps (431 / 413 beyond them).
  ParserLimits limits;
  /// A connection idle longer than this between requests is closed. Also
  /// bounds how long Stop() waits for workers blocked on idle reads.
  double idle_timeout_seconds = 30.0;
  /// Optional deterministic fault schedule (net/fault.h): every recv/send
  /// on accepted connections goes through it. Null (the default) is the
  /// plain syscalls — production pays one branch. Tests inject short
  /// reads/writes, EINTR, and mid-stream resets reproducibly.
  std::shared_ptr<FaultInjector> fault;
  /// Optional observability hooks, both borrowed (must outlive the
  /// server; null disables). The registry receives dmvi_http_requests_total
  /// and per-stage histograms (read, handle, write); the tracer receives
  /// the http.request / http.read / http.handle / http.write span family,
  /// one tree per request.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Dependency-free HTTP/1.1 server on POSIX sockets: a listener + accept
/// thread feeding a bounded queue of connections, drained by a fixed pool
/// of connection workers that runs as one ParallelFor region over
/// src/common/parallel — the same worker-pool substrate the training and
/// batch-inference paths ride. Each worker owns one connection at a time:
/// incremental request parsing (HttpParser), exact-match routing, response
/// writing, keep-alive until the peer closes, an error, idle timeout, or
/// server shutdown.
///
/// Handlers run on worker threads and must be thread-safe; a handler that
/// throws is answered with a 500 carrying the exception message, and the
/// connection survives. Parser-level errors (oversized head/body,
/// malformed framing) are answered with their HTTP status (431/413/400/
/// 501) and the connection is closed — framing is unrecoverable.
///
/// Stop() stops accepting (the listen socket closes), lets in-flight
/// requests finish, then joins the pool. Start()/Stop() are not
/// thread-safe against each other; handlers registered after Start() are
/// not picked up.
class HttpServer {
 public:
  using Handler = std::function<HttpMessage(const HttpMessage&)>;

  explicit HttpServer(ServerConfig config = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path) matches. Unknown paths
  /// are 404, known paths with a different method 405.
  void Handle(const std::string& method, const std::string& path,
              Handler handler);

  /// Binds, listens, and starts the accept loop + worker pool. IoError on
  /// bind/listen failure (address in use, bad host, privileged port) —
  /// callers exit non-zero instead of aborting.
  Status Start();

  /// Graceful shutdown: stop accepting, finish in-flight requests, join
  /// every thread. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_; }
  /// The bound port (resolves port 0), valid after Start().
  int port() const { return port_; }
  /// "host:port", valid after Start().
  std::string address() const;

  /// Total requests answered (including error responses), for tests.
  int64_t requests_served() const { return requests_served_; }

  /// Accepted connections currently waiting for a free worker — the
  /// network half of the overload pressure signal (dmvi_serve wires it
  /// into ImputationService::SetPressureProbe; /healthz reports it).
  int pending_connections() const;

  /// Largest accept-queue depth ever observed — how close the front-end
  /// has come to its max_pending_connections backpressure ceiling
  /// (exported as the dmvi_accept_queue_high_water gauge).
  int accept_queue_high_water() const;

 private:
  void AcceptLoop() DMVI_EXCLUDES(queue_mutex_);
  void WorkerLoop() DMVI_EXCLUDES(queue_mutex_);
  /// Serves one connection until close/error/timeout/shutdown.
  void ServeConnection(int fd);
  /// Routes one parsed request (exact match, 404/405/500 fallbacks).
  HttpMessage Dispatch(const HttpMessage& request);
  /// The id every span and response header of this request carries: the
  /// client's x-request-id when given, else a generated "req-<n>".
  std::string RequestIdFor(const HttpMessage& request);
  /// Writes the full buffer; false on a broken pipe.
  bool WriteAll(int fd, const std::string& bytes);

  const ServerConfig config_;
  std::map<std::pair<std::string, std::string>, Handler> handlers_;
  std::atomic<int64_t> next_request_number_{1};
  // From config_.metrics; null when no registry is wired in.
  obs::Counter* http_requests_total_ = nullptr;
  obs::Histogram* stage_read_ = nullptr;
  obs::Histogram* stage_handle_ = nullptr;
  obs::Histogram* stage_write_ = nullptr;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};

  std::thread accept_thread_;
  std::thread pool_thread_;  // Runs the ParallelFor worker region.

  mutable Mutex queue_mutex_;
  CondVar queue_cv_;         // Workers wait for connections.
  CondVar backpressure_cv_;  // Accept loop waits for space.
  // Accepted fds awaiting a worker.
  std::deque<int> pending_ DMVI_GUARDED_BY(queue_mutex_);
  int pending_high_water_ DMVI_GUARDED_BY(queue_mutex_) = 0;
};

/// Splits "host:port" (host may be empty for "0.0.0.0"); InvalidArgument
/// on a malformed or out-of-range port.
Status ParseHostPort(const std::string& address, std::string* host,
                     int* port);

}  // namespace net
}  // namespace deepmvi

#endif  // DEEPMVI_NET_SERVER_H_
