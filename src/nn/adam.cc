#include "nn/adam.h"

#include <cmath>

namespace deepmvi {
namespace nn {

double Adam::Step(const ad::Tape& tape) {
  const auto& params = store_->params();
  // Parameters on the tape whose output never reached the loss have no
  // allocated gradient. They still step (with a zero gradient — momentum
  // keeps decaying), but the zero must be a correctly-shaped matrix per
  // parameter: Tape::grad_or_zero's shared cache is reshaped by every
  // call, so pointers into it from earlier parameters would go stale.
  std::vector<Matrix> zeros(params.size());
  std::vector<const Matrix*> grads;
  grads.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const int leaf = tape.LeafIndexFor(params[i].get());
    if (leaf < 0) {
      grads.push_back(nullptr);
      continue;
    }
    if (const Matrix* g = tape.AllocatedGrad(leaf)) {
      grads.push_back(g);
    } else {
      zeros[i] = Matrix(params[i]->value().rows(), params[i]->value().cols());
      grads.push_back(&zeros[i]);
    }
  }
  return StepWithGrads(grads);
}

double Adam::StepWithGrads(const std::vector<const Matrix*>& grads) {
  DMVI_CHECK_EQ(grads.size(), store_->params().size());
  ++step_;
  // Global gradient norm across all participating parameters.
  double norm2 = 0.0;
  for (const Matrix* g : grads) {
    if (g != nullptr) norm2 += g->SquaredNorm();
  }
  const double norm = std::sqrt(norm2);
  double scale = 1.0;
  if (config_.clip_norm > 0.0 && norm > config_.clip_norm) {
    scale = config_.clip_norm / norm;
  }

  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < grads.size(); ++i) {
    if (grads[i] == nullptr) continue;
    const Matrix& g = *grads[i];
    Parameter& p = *store_->params()[i];
    Matrix& value = p.value();
    Matrix& m = p.adam_m();
    Matrix& v = p.adam_v();
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        const double grad = g(r, c) * scale;
        m(r, c) = config_.beta1 * m(r, c) + (1.0 - config_.beta1) * grad;
        v(r, c) = config_.beta2 * v(r, c) + (1.0 - config_.beta2) * grad * grad;
        const double m_hat = m(r, c) / bc1;
        const double v_hat = v(r, c) / bc2;
        value(r, c) -=
            config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
      }
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace deepmvi
