#include "nn/adam.h"

#include <cmath>

namespace deepmvi {
namespace nn {

double Adam::Step(const ad::Tape& tape) {
  ++step_;
  // Global gradient norm across all participating parameters.
  double norm2 = 0.0;
  for (const auto& p : store_->params()) {
    if (!p->on_tape(tape)) continue;
    norm2 += p->var().grad().SquaredNorm();
  }
  const double norm = std::sqrt(norm2);
  double scale = 1.0;
  if (config_.clip_norm > 0.0 && norm > config_.clip_norm) {
    scale = config_.clip_norm / norm;
  }

  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  for (const auto& p : store_->params()) {
    if (!p->on_tape(tape)) continue;
    const Matrix& g = p->var().grad();
    Matrix& value = p->value();
    Matrix& m = p->adam_m();
    Matrix& v = p->adam_v();
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        const double grad = g(r, c) * scale;
        m(r, c) = config_.beta1 * m(r, c) + (1.0 - config_.beta1) * grad;
        v(r, c) = config_.beta2 * v(r, c) + (1.0 - config_.beta2) * grad * grad;
        const double m_hat = m(r, c) / bc1;
        const double v_hat = v(r, c) / bc2;
        value(r, c) -=
            config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
      }
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace deepmvi
