#ifndef DEEPMVI_NN_ADAM_H_
#define DEEPMVI_NN_ADAM_H_

#include <vector>

#include "nn/parameter.h"

namespace deepmvi {
namespace nn {

/// Adam configuration; defaults follow the paper (lr = 1e-3, Sec 4.3).
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global gradient-norm clip; <= 0 disables clipping.
  double clip_norm = 5.0;
};

/// Adam optimizer over a ParameterStore. Parameters that did not
/// participate in the current tape's graph are skipped.
class Adam {
 public:
  explicit Adam(ParameterStore* store, AdamConfig config = {})
      : store_(store), config_(config) {}

  /// Applies one update using the gradients accumulated on `tape` by the
  /// preceding Tape::Backward call. Returns the (pre-clip) global gradient
  /// norm, useful for diagnostics.
  double Step(const ad::Tape& tape);

  /// Applies one update from explicit gradients, aligned with
  /// store->params() order; a nullptr entry means the parameter did not
  /// participate in this step and is skipped (exactly like an off-tape
  /// parameter in Step). The data-parallel training loop reduces per-sample
  /// gradients into such a list before stepping, so the optimizer update
  /// itself stays sequential and deterministic.
  double StepWithGrads(const std::vector<const Matrix*>& grads);

  int64_t num_steps() const { return step_; }
  AdamConfig& config() { return config_; }

 private:
  ParameterStore* store_;
  AdamConfig config_;
  int64_t step_ = 0;
};

}  // namespace nn
}  // namespace deepmvi

#endif  // DEEPMVI_NN_ADAM_H_
