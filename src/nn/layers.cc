#include "nn/layers.h"

#include <cmath>

namespace deepmvi {
namespace nn {

using ad::Tape;
using ad::Var;

// ---- Linear -----------------------------------------------------------------

Linear::Linear(ParameterStore* store, const std::string& name, int in_features,
               int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = store->Create(name + ".weight", XavierUniform(in_features, out_features, rng));
  bias_ = store->Create(name + ".bias", Matrix(1, out_features));
}

Var Linear::Forward(Tape& tape, const Var& x) const {
  DMVI_CHECK(weight_ != nullptr) << "Linear used before construction";
  DMVI_CHECK_EQ(x.cols(), in_features_);
  Var w = weight_->OnTape(tape);
  Var b = bias_->OnTape(tape);
  return ad::AddRowVector(ad::MatMul(x, w), b);
}

// ---- Embedding ---------------------------------------------------------------

Embedding::Embedding(ParameterStore* store, const std::string& name,
                     int num_embeddings, int dim, Rng& rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  table_ = store->Create(name + ".table", GaussianInit(num_embeddings, dim, rng));
}

Var Embedding::Forward(Tape& tape, const std::vector<int>& indices) const {
  DMVI_CHECK(table_ != nullptr);
  return ad::GatherRows(table_->OnTape(tape), indices);
}

Var Embedding::Table(Tape& tape) const {
  DMVI_CHECK(table_ != nullptr);
  return table_->OnTape(tape);
}

// ---- Conv1dNonOverlap ----------------------------------------------------------

Conv1dNonOverlap::Conv1dNonOverlap(ParameterStore* store, const std::string& name,
                                   int window, int filters, Rng& rng)
    : window_(window), filters_(filters),
      linear_(store, name + ".conv", window, filters, rng) {}

Var Conv1dNonOverlap::Forward(Tape& tape, const Var& series) const {
  DMVI_CHECK_EQ(series.rows(), 1);
  DMVI_CHECK_EQ(series.cols() % window_, 0);
  const int num_windows = series.cols() / window_;
  // Row-major reshape turns contiguous windows into rows.
  Var windows = ad::Reshape(series, num_windows, window_);
  return linear_.Forward(tape, windows);
}

// ---- FeedForward -----------------------------------------------------------------

FeedForward::FeedForward(ParameterStore* store, const std::string& name,
                         int in_features, int hidden, int out_features, Rng& rng)
    : fc1_(store, name + ".fc1", in_features, hidden, rng),
      fc2_(store, name + ".fc2", hidden, out_features, rng) {}

Var FeedForward::Forward(Tape& tape, const Var& x) const {
  return fc2_.Forward(tape, ad::Relu(fc1_.Forward(tape, x)));
}

// ---- Positional encoding ------------------------------------------------------------

Matrix SinusoidalPositionalEncoding(int length, int dim) {
  Matrix enc(length, dim);
  for (int t = 0; t < length; ++t) {
    for (int r = 0; r < dim; ++r) {
      if (r % 2 == 0) {
        enc(t, r) = std::sin(t / std::pow(10000.0, static_cast<double>(r) / dim));
      } else {
        enc(t, r) = std::cos(t / std::pow(10000.0, static_cast<double>(r - 1) / dim));
      }
    }
  }
  return enc;
}

// ---- MultiHeadSelfAttention ------------------------------------------------------------

MultiHeadSelfAttention::MultiHeadSelfAttention(ParameterStore* store,
                                               const std::string& name,
                                               const AttentionConfig& config,
                                               Rng& rng)
    : config_(config) {
  DMVI_CHECK_EQ(config.model_dim % config.num_heads, 0);
  head_dim_ = config.model_dim / config.num_heads;
  for (int h = 0; h < config.num_heads; ++h) {
    const std::string prefix = name + ".head" + std::to_string(h);
    q_.emplace_back(store, prefix + ".q", config.model_dim, head_dim_, rng);
    k_.emplace_back(store, prefix + ".k", config.model_dim, head_dim_, rng);
    v_.emplace_back(store, prefix + ".v", config.model_dim, head_dim_, rng);
  }
  out_ = Linear(store, name + ".out", config.model_dim, config.model_dim, rng);
}

Var MultiHeadSelfAttention::Forward(Tape& tape, const Var& x,
                                    const std::vector<double>& key_avail) const {
  DMVI_CHECK_EQ(x.cols(), config_.model_dim);
  const int t_len = x.rows();
  DMVI_CHECK_EQ(static_cast<int>(key_avail.size()), t_len);

  // Availability of each key position, broadcast over queries.
  Matrix avail(t_len, t_len, 0.0);
  for (int q = 0; q < t_len; ++q) {
    for (int k = 0; k < t_len; ++k) avail(q, k) = key_avail[k];
  }

  const double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(head_dim_));
  std::vector<Var> heads;
  heads.reserve(config_.num_heads);
  for (int h = 0; h < config_.num_heads; ++h) {
    Var q = q_[h].Forward(tape, x);
    Var k = k_[h].Forward(tape, x);
    Var v = v_[h].Forward(tape, x);
    Var scores = ad::Scale(ad::MatMul(q, ad::Transpose(k)), inv_sqrt);
    Var weights = ad::MaskedSoftmaxRows(scores, avail);
    heads.push_back(ad::MatMul(weights, v));
  }
  return out_.Forward(tape, ad::ConcatCols(heads));
}

// ---- GruCell ------------------------------------------------------------------------------

GruCell::GruCell(ParameterStore* store, const std::string& name, int input_dim,
                 int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim),
      xz_(store, name + ".xz", input_dim, hidden_dim, rng),
      hz_(store, name + ".hz", hidden_dim, hidden_dim, rng),
      xr_(store, name + ".xr", input_dim, hidden_dim, rng),
      hr_(store, name + ".hr", hidden_dim, hidden_dim, rng),
      xh_(store, name + ".xh", input_dim, hidden_dim, rng),
      hh_(store, name + ".hh", hidden_dim, hidden_dim, rng) {}

Var GruCell::Forward(Tape& tape, const Var& x, const Var& h) const {
  DMVI_CHECK_EQ(x.cols(), input_dim_);
  DMVI_CHECK_EQ(h.cols(), hidden_dim_);
  Var z = ad::Sigmoid(ad::Add(xz_.Forward(tape, x), hz_.Forward(tape, h)));
  Var r = ad::Sigmoid(ad::Add(xr_.Forward(tape, x), hr_.Forward(tape, h)));
  Var candidate =
      ad::Tanh(ad::Add(xh_.Forward(tape, x), hh_.Forward(tape, ad::Mul(r, h))));
  // h' = (1 - z) * h + z * candidate.
  Var one_minus_z = ad::AddScalar(ad::Neg(z), 1.0);
  return ad::Add(ad::Mul(one_minus_z, h), ad::Mul(z, candidate));
}

}  // namespace nn
}  // namespace deepmvi
