#ifndef DEEPMVI_NN_LAYERS_H_
#define DEEPMVI_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/parameter.h"

namespace deepmvi {
namespace nn {

/// Affine layer y = x W + b with x of shape N x in_features.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore* store, const std::string& name, int in_features,
         int out_features, Rng& rng);

  ad::Var Forward(ad::Tape& tape, const ad::Var& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_ = 0;
  int out_features_ = 0;
  Parameter* weight_ = nullptr;  // in x out
  Parameter* bias_ = nullptr;    // 1 x out
};

/// Embedding table lookup: indices -> rows of a num_embeddings x dim table.
class Embedding {
 public:
  Embedding() = default;
  Embedding(ParameterStore* store, const std::string& name, int num_embeddings,
            int dim, Rng& rng);

  ad::Var Forward(ad::Tape& tape, const std::vector<int>& indices) const;

  /// Whole table on the tape (for pairwise-distance style uses).
  ad::Var Table(ad::Tape& tape) const;

  /// Read-only access to the current table values.
  const Matrix& table_value() const { return table_->value(); }

  int dim() const { return dim_; }
  int num_embeddings() const { return num_embeddings_; }

 private:
  int num_embeddings_ = 0;
  int dim_ = 0;
  Parameter* table_ = nullptr;
};

/// Non-overlapping 1-D convolution (Eq. 7 of the paper): splits a length-T
/// series into T/w contiguous windows and applies a shared linear map
/// R^w -> R^p to each. Input is 1 x T (T divisible by w); output is
/// (T/w) x p, one feature row per window.
class Conv1dNonOverlap {
 public:
  Conv1dNonOverlap() = default;
  Conv1dNonOverlap(ParameterStore* store, const std::string& name, int window,
                   int filters, Rng& rng);

  ad::Var Forward(ad::Tape& tape, const ad::Var& series) const;

  int window() const { return window_; }
  int filters() const { return filters_; }

 private:
  int window_ = 0;
  int filters_ = 0;
  Linear linear_;
};

/// Two-layer feed-forward block with ReLU activations, used by the
/// transformer decoders (Eq. 13).
class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(ParameterStore* store, const std::string& name, int in_features,
              int hidden, int out_features, Rng& rng);

  ad::Var Forward(ad::Tape& tape, const ad::Var& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
};

/// Sinusoidal positional encoding table (Eq. 2): returns a length x dim
/// constant matrix with e[t, 2i] = sin(t / 10000^{2i/dim}) and
/// e[t, 2i+1] = cos(t / 10000^{2i/dim}).
Matrix SinusoidalPositionalEncoding(int length, int dim);

/// Configuration for vanilla multi-head self-attention.
struct AttentionConfig {
  int model_dim = 32;
  int num_heads = 4;
};

/// Standard multi-head self-attention (Sec 2.3.2), used by the vanilla
/// Transformer baseline. Keys/queries/values are linear maps of the input;
/// `key_avail` (length x 1, 0/1) removes unavailable key positions from
/// every query's softmax.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention() = default;
  MultiHeadSelfAttention(ParameterStore* store, const std::string& name,
                         const AttentionConfig& config, Rng& rng);

  /// x: T x model_dim. Returns T x model_dim.
  ad::Var Forward(ad::Tape& tape, const ad::Var& x,
                  const std::vector<double>& key_avail) const;

  int model_dim() const { return config_.model_dim; }

 private:
  AttentionConfig config_;
  int head_dim_ = 0;
  std::vector<Linear> q_;
  std::vector<Linear> k_;
  std::vector<Linear> v_;
  Linear out_;
};

/// Gated recurrent unit cell, used by the BRITS baseline.
/// State update for input x (1 x in) and state h (1 x hidden).
class GruCell {
 public:
  GruCell() = default;
  GruCell(ParameterStore* store, const std::string& name, int input_dim,
          int hidden_dim, Rng& rng);

  ad::Var Forward(ad::Tape& tape, const ad::Var& x, const ad::Var& h) const;

  int hidden_dim() const { return hidden_dim_; }
  int input_dim() const { return input_dim_; }

 private:
  int input_dim_ = 0;
  int hidden_dim_ = 0;
  Linear xz_, hz_;  // update gate
  Linear xr_, hr_;  // reset gate
  Linear xh_, hh_;  // candidate
};

}  // namespace nn
}  // namespace deepmvi

#endif  // DEEPMVI_NN_LAYERS_H_
