#include "nn/parameter.h"

#include <cmath>

namespace deepmvi {
namespace nn {

Matrix XavierUniform(int fan_in, int fan_out, Rng& rng) {
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  return Matrix::RandomUniform(fan_in, fan_out, rng, -limit, limit);
}

Matrix HeNormal(int fan_in, int fan_out, Rng& rng) {
  const double stddev = std::sqrt(2.0 / fan_in);
  return Matrix::RandomGaussian(fan_in, fan_out, rng, 0.0, stddev);
}

Matrix GaussianInit(int rows, int cols, Rng& rng, double stddev) {
  return Matrix::RandomGaussian(rows, cols, rng, 0.0, stddev);
}

}  // namespace nn
}  // namespace deepmvi
