#ifndef DEEPMVI_NN_PARAMETER_H_
#define DEEPMVI_NN_PARAMETER_H_

#include <memory>
#include <string>
#include <vector>

#include "autodiff/ops.h"
#include "autodiff/tape.h"
#include "common/rng.h"
#include "tensor/matrix.h"

namespace deepmvi {
namespace nn {

/// A trainable matrix with its Adam state. Each training step, a layer
/// materializes the parameter on the step's tape via OnTape(); after
/// Tape::Backward, the optimizer reads the gradient through grad_on().
class Parameter {
 public:
  Parameter(std::string name, Matrix init)
      : name_(std::move(name)),
        value_(std::move(init)),
        adam_m_(value_.rows(), value_.cols()),
        adam_v_(value_.rows(), value_.cols()) {}

  const std::string& name() const { return name_; }
  Matrix& value() { return value_; }
  const Matrix& value() const { return value_; }

  /// Registers this parameter as a leaf on `tape` (once per step). Repeat
  /// calls on the same tape return the same Var, so that a parameter shared
  /// between submodules accumulates gradient correctly. The binding lives
  /// on the tape (keyed by this parameter's address), keeping Parameter
  /// itself immutable here — several worker tapes may materialize the same
  /// parameter concurrently during data-parallel training.
  ad::Var OnTape(ad::Tape& tape) const { return tape.LeafFor(this, value_); }

  /// True when the parameter participated in `tape`'s graph.
  bool on_tape(const ad::Tape& tape) const {
    return tape.LeafIndexFor(this) >= 0;
  }

  /// Gradient accumulated for this parameter on `tape` by the preceding
  /// Tape::Backward call (a correctly-shaped zero matrix when no gradient
  /// flowed). Requires on_tape(tape).
  const Matrix& grad_on(const ad::Tape& tape) const {
    const int leaf = tape.LeafIndexFor(this);
    DMVI_CHECK_GE(leaf, 0) << "parameter " << name_ << " not on this tape";
    return tape.grad_or_zero(leaf);
  }

  Matrix& adam_m() { return adam_m_; }
  Matrix& adam_v() { return adam_v_; }
  const Matrix& adam_m() const { return adam_m_; }
  const Matrix& adam_v() const { return adam_v_; }

  int64_t size() const { return value_.size(); }

 private:
  std::string name_;
  Matrix value_;
  Matrix adam_m_;
  Matrix adam_v_;
};

/// Owning registry of parameters; modules create parameters through this
/// so the optimizer can see all of them.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  Parameter* Create(std::string name, Matrix init) {
    params_.push_back(std::make_unique<Parameter>(std::move(name), std::move(init)));
    return params_.back().get();
  }

  const std::vector<std::unique_ptr<Parameter>>& params() const { return params_; }

  /// The parameter named `name`, or nullptr. Names are unique per store by
  /// construction (modules qualify them with their own name); checkpoint
  /// loading uses this to match records independent of creation order.
  Parameter* Find(const std::string& name) const {
    for (const auto& p : params_) {
      if (p->name() == name) return p.get();
    }
    return nullptr;
  }

  int64_t TotalSize() const {
    int64_t total = 0;
    for (const auto& p : params_) total += p->size();
    return total;
  }

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

// ---- Initializers -----------------------------------------------------------

/// Xavier/Glorot uniform initialization for a fan_in x fan_out matrix.
Matrix XavierUniform(int fan_in, int fan_out, Rng& rng);

/// He (Kaiming) normal initialization, for ReLU stacks.
Matrix HeNormal(int fan_in, int fan_out, Rng& rng);

/// Small-scale Gaussian, used for embeddings.
Matrix GaussianInit(int rows, int cols, Rng& rng, double stddev = 0.1);

}  // namespace nn
}  // namespace deepmvi

#endif  // DEEPMVI_NN_PARAMETER_H_
