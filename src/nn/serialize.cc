#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>

namespace deepmvi {
namespace nn {
namespace {

constexpr char kStoreMagic[4] = {'D', 'M', 'V', 'P'};
constexpr uint32_t kStoreVersion = 1;

// Sanity bounds so a corrupt header fails fast instead of driving a
// multi-gigabyte allocation.
constexpr uint32_t kMaxNameLength = 1 << 20;
constexpr uint64_t kMaxParameters = 1 << 24;
constexpr int64_t kMaxMatrixElements = int64_t{1} << 32;

/// Reads a matrix record into the existing `dst`, enforcing its shape.
Status ReadMatrixShaped(std::istream& is, const std::string& what, Matrix& dst) {
  StatusOr<Matrix> read = ReadMatrix(is);
  if (!read.ok()) return read.status();
  if (read->rows() != dst.rows() || read->cols() != dst.cols()) {
    return Status::InvalidArgument(
        "shape mismatch for " + what + ": file has " +
        std::to_string(read->rows()) + "x" + std::to_string(read->cols()) +
        ", store has " + std::to_string(dst.rows()) + "x" +
        std::to_string(dst.cols()));
  }
  dst = std::move(read).value();
  return Status::OK();
}

}  // namespace

Status WriteString(std::ostream& os, const std::string& s) {
  WritePod(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!os) return Status::IoError("write failed for string record");
  return Status::OK();
}

StatusOr<std::string> ReadString(std::istream& is) {
  uint32_t length = 0;
  if (!ReadPod(is, &length)) {
    return Status::IoError("truncated file: string length missing");
  }
  if (length > kMaxNameLength) {
    return Status::InvalidArgument("corrupt file: implausible string length " +
                                   std::to_string(length));
  }
  std::string out(length, '\0');
  is.read(out.data(), static_cast<std::streamsize>(length));
  if (is.gcount() != static_cast<std::streamsize>(length)) {
    return Status::IoError("truncated file: string body missing");
  }
  return out;
}

Status WriteMatrix(std::ostream& os, const Matrix& matrix) {
  WritePod(os, static_cast<int32_t>(matrix.rows()));
  WritePod(os, static_cast<int32_t>(matrix.cols()));
  os.write(reinterpret_cast<const char*>(matrix.data()),
           static_cast<std::streamsize>(matrix.size() * sizeof(double)));
  if (!os) return Status::IoError("write failed for matrix record");
  return Status::OK();
}

StatusOr<Matrix> ReadMatrix(std::istream& is) {
  int32_t rows = 0;
  int32_t cols = 0;
  if (!ReadPod(is, &rows) || !ReadPod(is, &cols)) {
    return Status::IoError("truncated file: matrix shape missing");
  }
  if (rows < 0 || cols < 0 ||
      static_cast<int64_t>(rows) * cols > kMaxMatrixElements) {
    return Status::InvalidArgument("corrupt file: implausible matrix shape " +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  Matrix out(rows, cols);
  const std::streamsize bytes =
      static_cast<std::streamsize>(out.size() * sizeof(double));
  is.read(reinterpret_cast<char*>(out.data()), bytes);
  if (is.gcount() != bytes) {
    return Status::IoError("truncated file: matrix body missing");
  }
  return out;
}

Status WriteParameter(std::ostream& os, const Parameter& parameter) {
  DMVI_RETURN_IF_ERROR(WriteString(os, parameter.name()));
  DMVI_RETURN_IF_ERROR(WriteMatrix(os, parameter.value()));
  // Adam moments ride along so a resumed training run continues exactly
  // where the checkpoint left off.
  DMVI_RETURN_IF_ERROR(WriteMatrix(os, parameter.adam_m()));
  DMVI_RETURN_IF_ERROR(WriteMatrix(os, parameter.adam_v()));
  return Status::OK();
}

StatusOr<std::string> ReadParameterInto(std::istream& is,
                                        ParameterStore& store) {
  StatusOr<std::string> name = ReadString(is);
  if (!name.ok()) return name.status();
  Parameter* parameter = store.Find(*name);
  if (parameter == nullptr) {
    return Status::NotFound("checkpoint names unknown parameter '" + *name +
                            "'");
  }
  DMVI_RETURN_IF_ERROR(ReadMatrixShaped(is, *name, parameter->value()));
  DMVI_RETURN_IF_ERROR(
      ReadMatrixShaped(is, *name + ".adam_m", parameter->adam_m()));
  DMVI_RETURN_IF_ERROR(
      ReadMatrixShaped(is, *name + ".adam_v", parameter->adam_v()));
  return name;
}

Status SaveParameterStore(const ParameterStore& store, std::ostream& os) {
  os.write(kStoreMagic, sizeof(kStoreMagic));
  WritePod(os, kStoreVersion);
  WritePod(os, static_cast<uint64_t>(store.params().size()));
  for (const auto& parameter : store.params()) {
    DMVI_RETURN_IF_ERROR(WriteParameter(os, *parameter));
  }
  if (!os) return Status::IoError("write failed for parameter store");
  return Status::OK();
}

Status LoadParameterStore(std::istream& is, ParameterStore& store) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (is.gcount() != sizeof(magic)) {
    return Status::IoError("truncated file: store header missing");
  }
  if (std::memcmp(magic, kStoreMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "corrupt file: bad parameter-store magic (not a DMVP section)");
  }
  uint32_t version = 0;
  if (!ReadPod(is, &version)) {
    return Status::IoError("truncated file: store version missing");
  }
  if (version != kStoreVersion) {
    return Status::InvalidArgument("unsupported parameter-store version " +
                                   std::to_string(version));
  }
  uint64_t count = 0;
  if (!ReadPod(is, &count)) {
    return Status::IoError("truncated file: parameter count missing");
  }
  if (count > kMaxParameters) {
    return Status::InvalidArgument(
        "corrupt file: implausible parameter count " + std::to_string(count));
  }
  if (count != store.params().size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, store has " +
        std::to_string(store.params().size()) +
        " (model config does not match the checkpoint)");
  }
  // Count equality alone would accept a file that names one parameter
  // twice and another never; track names so a successful load really is a
  // complete restore.
  std::set<std::string> restored;
  for (uint64_t i = 0; i < count; ++i) {
    StatusOr<std::string> name = ReadParameterInto(is, store);
    if (!name.ok()) return name.status();
    if (!restored.insert(*name).second) {
      return Status::InvalidArgument(
          "corrupt file: parameter '" + *name + "' appears twice");
    }
  }
  return Status::OK();
}

Status SaveParameterStoreToFile(const ParameterStore& store,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  DMVI_RETURN_IF_ERROR(SaveParameterStore(store, out));
  out.close();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadParameterStoreFromFile(const std::string& path,
                                  ParameterStore& store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path + " for reading");
  return LoadParameterStore(in, store);
}

}  // namespace nn
}  // namespace deepmvi
