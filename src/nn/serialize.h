#ifndef DEEPMVI_NN_SERIALIZE_H_
#define DEEPMVI_NN_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"
#include "nn/parameter.h"
#include "tensor/matrix.h"

namespace deepmvi {
namespace nn {

/// Binary (de)serialization for Matrix, Parameter, and ParameterStore —
/// the checkpoint substrate of the train-once/serve-many split.
///
/// Store file layout (little-endian, raw IEEE-754 doubles, so round trips
/// are exact to the bit):
///
///   magic   "DMVP" (4 bytes)
///   version uint32 (currently 1)
///   count   uint64 (number of parameter records)
///   records, one per parameter:
///     name   uint32 length + bytes
///     value  matrix record (int32 rows, int32 cols, rows*cols doubles)
///     adam_m matrix record
///     adam_v matrix record
///
/// Records are name-keyed: LoadParameterStore matches each record to the
/// parameter of the same name in the destination store (typically freshly
/// built from the model config), so the store's creation order need not
/// match the file. Corrupt headers, truncated files, and name/shape
/// mismatches are reported as Status errors, never crashes.

/// Raw little-endian POD write, the primitive every record is built from.
/// Shared with higher-level checkpoint writers (core/trained_deepmvi.cc).
template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Raw POD read; returns false on short reads (truncated file).
template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return is.gcount() == static_cast<std::streamsize>(sizeof(T));
}

/// Length-prefixed string record.
Status WriteString(std::ostream& os, const std::string& s);
StatusOr<std::string> ReadString(std::istream& is);

/// Writes one matrix record (shape header + raw doubles) to `os`.
Status WriteMatrix(std::ostream& os, const Matrix& matrix);

/// Reads one matrix record written by WriteMatrix.
StatusOr<Matrix> ReadMatrix(std::istream& is);

/// Writes one parameter record (name + value + Adam moments).
Status WriteParameter(std::ostream& os, const Parameter& parameter);

/// Reads the next parameter record and applies it to the parameter of the
/// same name in `store` (value and Adam moments). Returns the restored
/// name. Fails with kNotFound for unknown names and kInvalidArgument for
/// shape mismatches.
StatusOr<std::string> ReadParameterInto(std::istream& is,
                                        ParameterStore& store);

/// Writes the versioned header plus every parameter of `store` to `os`.
Status SaveParameterStore(const ParameterStore& store, std::ostream& os);

/// Reads a store section written by SaveParameterStore into `store`. The
/// destination must contain exactly the parameters named in the file (the
/// usual pattern is to rebuild the model from its config first); missing
/// or extra parameters are an error so a successful load is a complete
/// restore.
Status LoadParameterStore(std::istream& is, ParameterStore& store);

/// File-path convenience wrappers.
Status SaveParameterStoreToFile(const ParameterStore& store,
                                const std::string& path);
Status LoadParameterStoreFromFile(const std::string& path,
                                  ParameterStore& store);

}  // namespace nn
}  // namespace deepmvi

#endif  // DEEPMVI_NN_SERIALIZE_H_
