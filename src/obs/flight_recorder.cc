#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace deepmvi {
namespace obs {
namespace {

/// Minimal JSON string escaping (obs cannot reach the net codec — the
/// layer DAG points the other way; trace.cc keeps its own copy for the
/// same reason).
std::string EscapeJsonString(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendNumber(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  os << value;
}

/// ISO-8601 UTC rendering of a unix-epoch timestamp with millisecond
/// precision ("2026-08-07T12:34:56.789Z"); empty for unset/invalid
/// stamps so records built by hand (tests) stay renderable.
std::string IsoUtc(double unix_seconds) {
  if (!std::isfinite(unix_seconds) || unix_seconds <= 0.0) return "";
  const time_t whole = static_cast<time_t>(unix_seconds);
  std::tm parts{};
  if (gmtime_r(&whole, &parts) == nullptr) return "";
  const int millis = std::min(
      999, static_cast<int>((unix_seconds - static_cast<double>(whole)) * 1e3));
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                parts.tm_year + 1900, parts.tm_mon + 1, parts.tm_mday,
                parts.tm_hour, parts.tm_min, parts.tm_sec, millis);
  return buffer;
}

}  // namespace

FlightRecorder::FlightRecorder(int capacity, double slow_threshold_seconds,
                               int slow_capacity)
    : capacity_(capacity),
      slow_threshold_seconds_(slow_threshold_seconds),
      slow_capacity_(slow_capacity) {
  DMVI_CHECK_GT(capacity_, 0);
  DMVI_CHECK_GT(slow_capacity_, 0);
  MutexLock lock(&mutex_);
  ring_.resize(static_cast<size_t>(capacity_));
  slow_ring_.resize(static_cast<size_t>(slow_capacity_));
}

void FlightRecorder::Record(RequestRecord record) {
  record.completed_seconds = clock_.ElapsedSeconds();
  record.unix_seconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const bool slow = slow_threshold_seconds_ > 0.0 &&
                    record.latency_seconds >= slow_threshold_seconds_;
  MutexLock lock(&mutex_);
  const size_t slot = static_cast<size_t>(total_ % capacity_);
  ++total_;
  if (slow) {
    const size_t slow_slot = static_cast<size_t>(slow_total_ % slow_capacity_);
    ++slow_total_;
    slow_ring_[slow_slot] = record;  // Copy: the main ring gets the move.
  }
  ring_[slot] = std::move(record);
}

std::vector<RequestRecord> FlightRecorder::UnrollRing(
    const std::vector<RequestRecord>& ring, int64_t total, int capacity) {
  std::vector<RequestRecord> out;
  const int64_t retained = std::min<int64_t>(total, capacity);
  out.reserve(static_cast<size_t>(retained));
  for (int64_t i = total - retained; i < total; ++i) {
    out.push_back(ring[static_cast<size_t>(i % capacity)]);
  }
  return out;
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  MutexLock lock(&mutex_);
  return UnrollRing(ring_, total_, capacity_);
}

std::vector<RequestRecord> FlightRecorder::SlowSnapshot() const {
  MutexLock lock(&mutex_);
  return UnrollRing(slow_ring_, slow_total_, slow_capacity_);
}

int64_t FlightRecorder::total_recorded() const {
  MutexLock lock(&mutex_);
  return total_;
}

int64_t FlightRecorder::total_slow() const {
  MutexLock lock(&mutex_);
  return slow_total_;
}

std::string FlightRecordsJson(const std::vector<RequestRecord>& records) {
  std::ostringstream os;
  // 15 significant digits: unix-epoch stamps need ~13 for millisecond
  // resolution; latencies render the same up to harmless extra digits.
  os.precision(15);
  os << "[";
  bool first = true;
  for (const RequestRecord& record : records) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"request_id\": \"" << EscapeJsonString(record.request_id)
       << "\", \"model\": \"" << EscapeJsonString(record.model)
       << "\", \"status\": \"" << EscapeJsonString(record.status)
       << "\", \"ok\": " << (record.ok ? "true" : "false")
       << ", \"latency_seconds\": ";
    AppendNumber(os, record.latency_seconds);
    os << ", \"queue_seconds\": ";
    AppendNumber(os, record.queue_seconds);
    os << ", \"predict_seconds\": ";
    AppendNumber(os, record.predict_seconds);
    os << ", \"cells_imputed\": " << record.cells_imputed
       << ", \"cache_hit\": " << (record.cache_hit ? "true" : "false")
       << ", \"degraded\": " << (record.degraded ? "true" : "false")
       << ", \"degrade_method\": \""
       << EscapeJsonString(record.degrade_method)
       << "\", \"shed\": " << (record.shed ? "true" : "false")
       << ", \"completed_seconds\": ";
    AppendNumber(os, record.completed_seconds);
    os << ", \"unix_seconds\": ";
    AppendNumber(os, record.unix_seconds);
    os << ", \"time\": \"" << IsoUtc(record.unix_seconds) << "\"}";
  }
  os << (first ? "]\n" : "\n]\n");
  return os.str();
}

}  // namespace obs
}  // namespace deepmvi
