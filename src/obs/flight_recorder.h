#ifndef DEEPMVI_OBS_FLIGHT_RECORDER_H_
#define DEEPMVI_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace deepmvi {
namespace obs {

/// One completed request, as the flight recorder remembers it: enough to
/// answer "what just went through this server and how did each request
/// fare" from a live process, without a trace export round-trip.
struct RequestRecord {
  std::string request_id;
  std::string model;
  /// "OK" or the Status rendering ("NotFound: no model ...").
  std::string status;
  bool ok = true;
  double latency_seconds = 0.0;   // Caller-observed, queue included.
  double queue_seconds = 0.0;     // Dispatcher queue wait (Submit path).
  double predict_seconds = 0.0;   // Full-model Predict time; 0 otherwise.
  int64_t cells_imputed = 0;
  bool cache_hit = false;
  bool degraded = false;          // Answered by the fallback imputer.
  std::string degrade_method;     // Fallback name when degraded.
  bool shed = false;              // Rejected at admission (503).
  /// Seconds since the recorder was created, stamped by Record — a
  /// monotonic in-process timeline for ordering and age math.
  double completed_seconds = 0.0;
  /// Wall-clock completion time (unix epoch seconds, system clock),
  /// stamped by Record alongside completed_seconds so ring entries can
  /// be correlated with logs and external systems. Rendered in JSON both
  /// raw ("unix_seconds") and as ISO-8601 UTC ("time").
  double unix_seconds = 0.0;
};

/// Bounded ring of the last `capacity` completed requests plus a second
/// ring of requests slower than `slow_threshold_seconds` — the always-on
/// crash-cart view behind GET /debug/requests and /debug/slow. Appends
/// are a mutex-guarded slot write (strings moved, never copied), cheap
/// enough to leave enabled in production; memory is bounded by the two
/// capacities regardless of traffic.
class FlightRecorder {
 public:
  static constexpr int kDefaultCapacity = 256;
  static constexpr int kDefaultSlowCapacity = 64;
  static constexpr double kDefaultSlowThresholdSeconds = 0.5;

  explicit FlightRecorder(
      int capacity = kDefaultCapacity,
      double slow_threshold_seconds = kDefaultSlowThresholdSeconds,
      int slow_capacity = kDefaultSlowCapacity);

  /// Appends one completed request (stamping completed_seconds); also
  /// mirrors it into the slow ring when latency_seconds reaches the
  /// threshold. Thread-safe.
  void Record(RequestRecord record);

  /// The retained records, oldest first. A point-in-time copy: renderers
  /// never hold the recorder's lock while formatting.
  std::vector<RequestRecord> Snapshot() const;

  /// The retained slow records, oldest first.
  std::vector<RequestRecord> SlowSnapshot() const;

  /// All-time appended count (retained or since overwritten).
  int64_t total_recorded() const;
  /// All-time slow count.
  int64_t total_slow() const;

  int capacity() const { return capacity_; }
  double slow_threshold_seconds() const { return slow_threshold_seconds_; }

 private:
  /// Oldest-first read of one ring given its all-time append count.
  static std::vector<RequestRecord> UnrollRing(
      const std::vector<RequestRecord>& ring, int64_t total, int capacity);

  const int capacity_;
  const double slow_threshold_seconds_;
  const int slow_capacity_;
  const Stopwatch clock_;  // completed_seconds epoch.

  mutable Mutex mutex_;
  std::vector<RequestRecord> ring_ DMVI_GUARDED_BY(mutex_);
  int64_t total_ DMVI_GUARDED_BY(mutex_) = 0;
  std::vector<RequestRecord> slow_ring_ DMVI_GUARDED_BY(mutex_);
  int64_t slow_total_ DMVI_GUARDED_BY(mutex_) = 0;
};

/// Renders records as a JSON array (oldest first), one object per record
/// with the RequestRecord fields — the payload of the /debug endpoints.
std::string FlightRecordsJson(const std::vector<RequestRecord>& records);

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_FLIGHT_RECORDER_H_
