#include "obs/histogram.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"

namespace deepmvi {
namespace obs {
namespace {

/// The bucket bounds, computed once. pow() at every Observe would put a
/// libm call on the request hot path.
const std::array<double, Histogram::kNumBounds>& Bounds() {
  static const std::array<double, Histogram::kNumBounds> bounds = [] {
    std::array<double, Histogram::kNumBounds> b{};
    for (int i = 0; i < Histogram::kNumBounds; ++i) {
      b[static_cast<size_t>(i)] =
          1e-6 * std::pow(std::sqrt(2.0), static_cast<double>(i));
    }
    return b;
  }();
  return bounds;
}

}  // namespace

double Histogram::UpperBound(int i) {
  DMVI_CHECK_GE(i, 0);
  DMVI_CHECK_LT(i, kNumBounds);
  return Bounds()[static_cast<size_t>(i)];
}

double Histogram::LowerBound(int i) {
  DMVI_CHECK_GE(i, 0);
  DMVI_CHECK_LE(i, kNumBounds);
  return i == 0 ? 0.0 : Bounds()[static_cast<size_t>(i - 1)];
}

int Histogram::BucketIndex(double value) {
  const auto& bounds = Bounds();
  // First bound >= value (le semantics); NaN and negatives land in the
  // first bucket, values beyond the last bound in the overflow bucket.
  if (!(value > bounds[0])) return 0;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<int>(it - bounds.begin());
}

void Histogram::Observe(double value) {
  MutexLock lock(&mutex_);
  ObserveLocked(value, nullptr);
}

void Histogram::ObserveWithExemplar(double value,
                                    const std::string& exemplar_label) {
  MutexLock lock(&mutex_);
  ObserveLocked(value, exemplar_label.empty() ? nullptr : &exemplar_label);
}

void Histogram::ObserveLocked(double value,
                              const std::string* exemplar_label) {
  if (std::isnan(value)) value = 0.0;
  const int bucket = BucketIndex(value);
  ++counts_[static_cast<size_t>(bucket)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (exemplar_label != nullptr) {
    if (exemplar_labels_.empty()) {
      exemplar_labels_.resize(static_cast<size_t>(kNumBounds) + 1);
      exemplar_values_.resize(static_cast<size_t>(kNumBounds) + 1, 0.0);
    }
    exemplar_labels_[static_cast<size_t>(bucket)] = *exemplar_label;
    exemplar_values_[static_cast<size_t>(bucket)] = value;
  }
}

void Histogram::Merge(const HistogramSnapshot& other) {
  MutexLock lock(&mutex_);
  DMVI_CHECK_EQ(static_cast<int>(other.counts.size()), kNumBounds + 1);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts[i];
  if (other.count > 0) {
    if (count_ == 0) {
      min_ = other.min;
      max_ = other.max;
    } else {
      min_ = std::min(min_, other.min);
      max_ = std::max(max_, other.max);
    }
  }
  count_ += other.count;
  sum_ += other.sum;
  if (!other.exemplar_labels.empty()) {
    if (exemplar_labels_.empty()) {
      exemplar_labels_.resize(static_cast<size_t>(kNumBounds) + 1);
      exemplar_values_.resize(static_cast<size_t>(kNumBounds) + 1, 0.0);
    }
    for (size_t b = 0; b < exemplar_labels_.size() &&
                       b < other.exemplar_labels.size();
         ++b) {
      if (!other.exemplar_labels[b].empty()) {
        exemplar_labels_[b] = other.exemplar_labels[b];
        exemplar_values_[b] = other.exemplar_values[b];
      }
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  MutexLock lock(&mutex_);
  HistogramSnapshot snap;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.exemplar_labels = exemplar_labels_;
  snap.exemplar_values = exemplar_values_;
  return snap;
}

void Histogram::Reset() {
  MutexLock lock(&mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  exemplar_labels_.clear();
  exemplar_values_.clear();
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The same rank convention as serve::SortedPercentile: interpolate
  // between the order statistics floor(pos) and ceil(pos).
  const double pos = q * static_cast<double>(count - 1);
  const int64_t lo_rank = static_cast<int64_t>(std::floor(pos));
  const int64_t hi_rank = static_cast<int64_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo_rank);

  // Estimate one order statistic: find its bucket by cumulative count and
  // place it proportionally between the bucket bounds (midpoint of its
  // own slice), clamped to the exact observed range.
  auto order_stat = [this](int64_t rank) {
    int64_t before = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      const int64_t in_bucket = counts[b];
      if (in_bucket == 0) continue;
      if (rank < before + in_bucket) {
        const int bucket = static_cast<int>(b);
        const double lo = std::max(Histogram::LowerBound(bucket), min);
        const double hi =
            bucket < Histogram::kNumBounds
                ? std::min(Histogram::UpperBound(bucket), max)
                : max;
        const double slice =
            (static_cast<double>(rank - before) + 0.5) /
            static_cast<double>(in_bucket);
        return lo + (hi - lo) * slice;
      }
      before += in_bucket;
    }
    return max;  // rank == count - 1 rounding fallthrough.
  };

  const double lo_value = order_stat(lo_rank);
  const double hi_value = hi_rank == lo_rank ? lo_value : order_stat(hi_rank);
  return lo_value + (hi_value - lo_value) * frac;
}

}  // namespace obs
}  // namespace deepmvi
