#ifndef DEEPMVI_OBS_HISTOGRAM_H_
#define DEEPMVI_OBS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace deepmvi {
namespace obs {

/// Point-in-time copy of a Histogram. `counts` has one entry per bucket
/// (kNumBounds finite buckets plus the overflow bucket); everything a
/// percentile estimate or a Prometheus exposition needs is here, so
/// renderers never touch the live histogram's lock twice.
struct HistogramSnapshot {
  std::vector<int64_t> counts;  // kNumBounds + 1 entries.
  int64_t count = 0;            // Total observations.
  double sum = 0.0;             // Exact running sum.
  double min = 0.0;             // Exact; 0 when empty.
  double max = 0.0;             // Exact; 0 when empty.
  /// Per-bucket exemplars (kNumBounds + 1 entries, parallel to `counts`;
  /// both empty when no observation carried one): the label — by
  /// convention a request id — and exact value of the most recent
  /// ObserveWithExemplar landing in each bucket. A p99 bucket in the
  /// exposition then names a concrete replayable request.
  std::vector<std::string> exemplar_labels;
  std::vector<double> exemplar_values;

  /// Deterministic percentile estimate (q in [0, 1]). The rank is mapped
  /// to its bucket and linearly interpolated between the bucket bounds
  /// (clamped to the exact observed min/max), so the estimate of a value
  /// in bucket b is always within [lower(b), upper(b)] — at most one
  /// bucket-growth factor from the exact order statistic. Unlike a
  /// reservoir sample, the same observations always yield the same
  /// estimate, in any arrival order.
  double Percentile(double q) const;
};

/// Thread-safe latency histogram over a fixed exponential bucket layout
/// shared by every instance: bucket i covers values in
/// (UpperBound(i-1), UpperBound(i)] with UpperBound(i) = 1e-6 * sqrt(2)^i
/// seconds, i in [0, kNumBounds) — 1 microsecond up to ~50 minutes at a
/// guaranteed <= sqrt(2) relative quantile error — plus one overflow
/// bucket. The fixed layout makes histograms mergeable by bucket-wise
/// addition and keeps percentile estimates deterministic, replacing the
/// serving layer's reservoir sampling as the source of p50/p95.
class Histogram {
 public:
  static constexpr int kNumBounds = 64;

  /// Upper bound (inclusive, Prometheus `le` semantics) of bucket i.
  static double UpperBound(int i);
  /// Lower bound (exclusive) of bucket i; 0 for the first bucket.
  static double LowerBound(int i);
  /// Index of the bucket `value` falls into (kNumBounds = overflow).
  static int BucketIndex(double value);

  void Observe(double value);
  /// Observe plus an exemplar: remembers (label, value) as the bucket's
  /// most recent exemplar. An empty label is a plain Observe.
  void ObserveWithExemplar(double value, const std::string& exemplar_label);
  /// Adds every observation of `other` (bucket-wise; exact min/max/sum
  /// merge exactly). Buckets where `other` carries an exemplar adopt it.
  void Merge(const HistogramSnapshot& other);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  void ObserveLocked(double value, const std::string* exemplar_label)
      DMVI_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<int64_t> counts_ DMVI_GUARDED_BY(mutex_) =
      std::vector<int64_t>(kNumBounds + 1, 0);
  int64_t count_ DMVI_GUARDED_BY(mutex_) = 0;
  double sum_ DMVI_GUARDED_BY(mutex_) = 0.0;
  double min_ DMVI_GUARDED_BY(mutex_) = 0.0;
  double max_ DMVI_GUARDED_BY(mutex_) = 0.0;
  // Lazily sized on the first exemplar; empty until then so plain
  // histograms pay nothing.
  std::vector<std::string> exemplar_labels_ DMVI_GUARDED_BY(mutex_);
  std::vector<double> exemplar_values_ DMVI_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_HISTOGRAM_H_
