#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace deepmvi {
namespace obs {
namespace {

/// Numbers in exposition lines: enough digits to round-trip a latency
/// bound, no trailing-zero noise ("1e-06", "0.25", "192").
std::string FormatNumber(double value) {
  if (!std::isfinite(value)) return value > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}

/// Exemplar label values are request ids; escape the characters the
/// exposition grammar reserves anyway.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// OpenMetrics exemplar suffix for one bucket line, empty when bucket b
/// carries none: ` # {request_id="..."} value`. Plain-text scrapers split
/// on whitespace and read the first two fields, so the suffix is
/// invisible to them.
std::string ExemplarSuffix(const HistogramSnapshot& snapshot, int b) {
  const size_t bucket = static_cast<size_t>(b);
  if (bucket >= snapshot.exemplar_labels.size() ||
      snapshot.exemplar_labels[bucket].empty()) {
    return "";
  }
  return " # {request_id=\"" +
         EscapeLabelValue(snapshot.exemplar_labels[bucket]) + "\"} " +
         FormatNumber(snapshot.exemplar_values[bucket]);
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::EntryNamedLocked(
    const std::string& name, const std::string& help, Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.help = help;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(name, std::move(entry)).first;
  }
  DMVI_CHECK(it->second.kind == kind)
      << "metric '" << name << "' registered twice with different kinds";
  return it->second;
}

Counter* MetricsRegistry::CounterNamed(const std::string& name,
                                       const std::string& help) {
  MutexLock lock(&mutex_);
  return EntryNamedLocked(name, help, Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GaugeNamed(const std::string& name,
                                   const std::string& help) {
  MutexLock lock(&mutex_);
  return EntryNamedLocked(name, help, Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::HistogramNamed(const std::string& name,
                                           const std::string& help) {
  MutexLock lock(&mutex_);
  return EntryNamedLocked(name, help, Kind::kHistogram).histogram.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(&mutex_);
  std::ostringstream os;
  // std::map iteration is already name-sorted — stable exposition order.
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        AppendPrometheusCounter(os, name, entry.help, entry.counter->value());
        break;
      case Kind::kGauge:
        AppendPrometheusGauge(os, name, entry.help, entry.gauge->value());
        break;
      case Kind::kHistogram:
        AppendPrometheusHistogram(os, name, entry.help,
                                  entry.histogram->Snapshot());
        break;
    }
  }
  return os.str();
}

void AppendPrometheusCounter(std::ostream& os, const std::string& name,
                             const std::string& help, int64_t value) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " counter\n";
  os << name << " " << value << "\n";
}

void AppendPrometheusGauge(std::ostream& os, const std::string& name,
                           const std::string& help, double value) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " gauge\n";
  os << name << " " << FormatNumber(value) << "\n";
}

void AppendPrometheusHistogram(std::ostream& os, const std::string& name,
                               const std::string& help,
                               const HistogramSnapshot& snapshot) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " histogram\n";
  // Cumulative buckets up to the last non-empty one; the +Inf bucket is
  // mandatory and always carries the total count.
  int last = -1;
  for (size_t b = 0; b < snapshot.counts.size(); ++b) {
    if (snapshot.counts[b] > 0) last = static_cast<int>(b);
  }
  int64_t cumulative = 0;
  const int finite_last = std::min(last, Histogram::kNumBounds - 1);
  for (int b = 0; b <= finite_last; ++b) {
    cumulative += snapshot.counts[static_cast<size_t>(b)];
    os << name << "_bucket{le=\"" << FormatNumber(Histogram::UpperBound(b))
       << "\"} " << cumulative << ExemplarSuffix(snapshot, b) << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << snapshot.count
     << ExemplarSuffix(snapshot, Histogram::kNumBounds) << "\n";
  os << name << "_sum " << FormatNumber(snapshot.sum) << "\n";
  os << name << "_count " << snapshot.count << "\n";
}

}  // namespace obs
}  // namespace deepmvi
