#ifndef DEEPMVI_OBS_METRICS_H_
#define DEEPMVI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace deepmvi {
namespace obs {

/// Monotonically increasing event count. Lock-free; safe to bump from any
/// thread (request workers, the dispatcher, kernel scopes).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (queue depths, watermark settings).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Name-keyed registry of counters, gauges, and latency histograms — the
/// metrics half of the observability layer (trace.h is the spans half).
/// Registration is idempotent: asking for an existing name returns the
/// same instrument, so independent layers (service, HTTP server, route
/// handlers) can share one registry without coordinating creation order.
/// Returned pointers stay valid for the registry's lifetime.
///
/// Metric names must follow Prometheus rules ([a-zA-Z_:][a-zA-Z0-9_:]*);
/// by convention everything in this repo is prefixed `dmvi_`, counters
/// end in `_total`, and latency histograms in `_seconds`.
class MetricsRegistry {
 public:
  Counter* CounterNamed(const std::string& name, const std::string& help);
  Gauge* GaugeNamed(const std::string& name, const std::string& help);
  Histogram* HistogramNamed(const std::string& name, const std::string& help);

  /// Renders every registered metric in Prometheus text exposition format
  /// (version 0.0.4), sorted by metric name: `# HELP` / `# TYPE` comment
  /// pair, then the sample lines. Histograms emit cumulative
  /// `_bucket{le="..."}` lines up to the last non-empty bucket plus the
  /// mandatory `+Inf`, `_sum`, and `_count`.
  std::string PrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& EntryNamedLocked(const std::string& name, const std::string& help,
                          Kind kind) DMVI_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ DMVI_GUARDED_BY(mutex_);
};

/// Exposition building blocks, shared with renderers that carry their
/// counts outside a registry (serve::Telemetry's snapshot).
void AppendPrometheusCounter(std::ostream& os, const std::string& name,
                             const std::string& help, int64_t value);
void AppendPrometheusGauge(std::ostream& os, const std::string& name,
                           const std::string& help, double value);
void AppendPrometheusHistogram(std::ostream& os, const std::string& name,
                               const std::string& help,
                               const HistogramSnapshot& snapshot);

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_METRICS_H_
