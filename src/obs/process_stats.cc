#include "obs/process_stats.h"

#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace deepmvi {
namespace obs {

ProcessStats ReadProcessStats() {
  ProcessStats stats;
#if defined(__linux__)
  const double page_bytes = static_cast<double>(sysconf(_SC_PAGESIZE));
  const double ticks_per_second = static_cast<double>(sysconf(_SC_CLK_TCK));

  // /proc/self/statm: total and resident program size, in pages.
  {
    std::ifstream statm("/proc/self/statm");
    long long total_pages = 0, resident_pages = 0;
    if (statm >> total_pages >> resident_pages) {
      stats.rss_bytes = static_cast<double>(resident_pages) * page_bytes;
      stats.ok = true;
    }
  }

  // /proc/self/stat: utime and stime are fields 14 and 15 — but field 2
  // (comm) is a parenthesized name that may itself contain spaces or
  // parens, so parse from the last ')' onward.
  {
    std::ifstream stat("/proc/self/stat");
    std::string line;
    if (std::getline(stat, line)) {
      const size_t close = line.rfind(')');
      if (close != std::string::npos) {
        std::istringstream rest(line.substr(close + 1));
        std::string field;
        // After ')': state is field 3; utime is field 14, stime field 15.
        long long utime = 0, stime = 0;
        bool parsed = true;
        for (int i = 3; i <= 13 && parsed; ++i) parsed = !!(rest >> field);
        if (parsed && (rest >> utime >> stime) && ticks_per_second > 0) {
          stats.cpu_seconds =
              static_cast<double>(utime + stime) / ticks_per_second;
        }
      }
    }
  }

  // /proc/self/fd: one entry per open descriptor (minus ".", "..", and
  // the directory handle doing the counting).
  if (DIR* dir = opendir("/proc/self/fd")) {
    int64_t count = 0;
    while (const dirent* entry = readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") ++count;
    }
    closedir(dir);
    stats.open_fds = count > 0 ? count - 1 : 0;  // Exclude our own handle.
  }
#endif  // __linux__
  return stats;
}

}  // namespace obs
}  // namespace deepmvi
