#ifndef DEEPMVI_OBS_PROCESS_STATS_H_
#define DEEPMVI_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace deepmvi {
namespace obs {

/// Point-in-time self-observation of the serving process, read from
/// /proc/self — the numbers GET /debug/state reports and the
/// dmvi_process_* gauges export. `ok` is false where procfs is absent
/// (non-Linux); the fields are then zero.
struct ProcessStats {
  bool ok = false;
  double rss_bytes = 0.0;      // Resident set size.
  double cpu_seconds = 0.0;    // User + system time consumed so far.
  int64_t open_fds = 0;        // Open file descriptors.
};

/// Reads the current stats. Cheap (three procfs touches); callers refresh
/// on demand at scrape time rather than polling.
ProcessStats ReadProcessStats();

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_PROCESS_STATS_H_
