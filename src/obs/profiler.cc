#include "obs/profiler.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>

#include "common/logging.h"
#include "common/stopwatch.h"

// The sampling backend needs POSIX CPU-clock timers (timer_create on
// CLOCK_PROCESS_CPUTIME_ID) and the glibc unwinder; both are Linux-only
// here. Other platforms compile the API but Start reports
// FailedPrecondition.
#if defined(__linux__)
#define DMVI_PROFILER_BACKEND 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#endif

// Under TSan the backtrace() unwinder inside a signal handler trips the
// runtime's signal-safety checks; samples then carry label stacks only.
#if defined(__SANITIZE_THREAD__)
#define DMVI_PROFILER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DMVI_PROFILER_TSAN 1
#endif
#endif
#ifndef DMVI_PROFILER_TSAN
#define DMVI_PROFILER_TSAN 0
#endif

namespace deepmvi {
namespace obs {
namespace {

constexpr int kMaxNativeFrames = 48;
constexpr int kMaxLabels = ProfileLabelScope::kMaxDepth;
/// Sample capacity per window. At the default 99 Hz per CPU-second this
/// absorbs minutes of fully-busy multicore time; overflow increments
/// `dropped` instead of growing memory on the signal path.
constexpr int64_t kMaxSamples = 1 << 16;

/// One captured stack. Fixed-size so the signal handler writes plain
/// slots it claimed with a single fetch_add.
struct RawSample {
  int num_labels;
  int num_frames;
  const char* labels[kMaxLabels];
  void* frames[kMaxNativeFrames];
};

/// Per-thread annotation stack. The SIGPROF handler runs on the
/// interrupted thread and reads that same thread's stack, so the only
/// hazard is compiler reordering between the label store and the depth
/// store — fenced with atomic_signal_fence below.
struct LabelStack {
  const char* labels[kMaxLabels];
  std::atomic<int> depth{0};
};

LabelStack& ThreadLabels() {
  // Constant-initializable POD: no TLS guard, safe to touch from the
  // signal handler even on a thread's first sample.
  static thread_local LabelStack stack;
  return stack;
}

/// State of the open window, allocated by Start and torn down by Stop.
struct ProfilerState {
  RawSample* slab = nullptr;
  std::atomic<int64_t> next{0};  // Slots claimed (may exceed kMaxSamples).
  Stopwatch started;
  int hz = 0;
#if DMVI_PROFILER_BACKEND
  timer_t timer{};
#endif
};

/// kRunning serializes whole windows (Start..Stop); kArmed tells the
/// handler whether to record; kInHandler counts in-flight handlers so
/// Stop can establish happens-before with every sample write before it
/// reads the slab.
std::atomic<bool> g_running{false};
std::atomic<bool> g_armed{false};
std::atomic<int> g_in_handler{0};
std::atomic<ProfilerState*> g_state{nullptr};

#if DMVI_PROFILER_BACKEND

void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* /*ucontext*/) {
  const int saved_errno = errno;
  g_in_handler.fetch_add(1, std::memory_order_acquire);
  ProfilerState* state = g_state.load(std::memory_order_acquire);
  if (g_armed.load(std::memory_order_acquire) && state != nullptr) {
    const int64_t slot = state->next.fetch_add(1, std::memory_order_relaxed);
    if (slot < kMaxSamples) {
      RawSample& sample = state->slab[slot];
      LabelStack& labels = ThreadLabels();
      int depth = labels.depth.load(std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_acquire);
      if (depth > kMaxLabels) depth = kMaxLabels;
      if (depth < 0) depth = 0;
      sample.num_labels = depth;
      for (int i = 0; i < depth; ++i) sample.labels[i] = labels.labels[i];
#if !DMVI_PROFILER_TSAN
      // Not formally async-signal-safe, but safe after the Start-time
      // priming call forced libgcc's one-time setup outside the handler —
      // the approach every sampling profiler on glibc takes.
      sample.num_frames = backtrace(sample.frames, kMaxNativeFrames);
#else
      sample.num_frames = 0;
#endif
    }
    // Overflow: the claim above already advanced `next`; Stop derives the
    // drop count from the overshoot.
  }
  g_in_handler.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

void InstallHandlerOnce() {
  // Installed once and left in place: disarmed it is inert, and never
  // restoring the default action closes the window where a late-delivered
  // SIGPROF would terminate the process.
  static const bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = ProfilerSignalHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    sigaction(SIGPROF, &action, nullptr);
    return true;
  }();
  (void)installed;
}

std::string HexAddress(uintptr_t value) {
  static const char kDigits[] = "0123456789abcdef";
  if (value == 0) return "0x0";
  char buffer[2 + 2 * sizeof(uintptr_t)];
  int i = sizeof(buffer);
  while (value != 0) {
    buffer[--i] = kDigits[value & 0xF];
    value >>= 4;
  }
  return "0x" + std::string(buffer + i, buffer + sizeof(buffer));
}

std::string Basename(const char* path) {
  const std::string text = path != nullptr ? path : "";
  const size_t slash = text.rfind('/');
  return slash == std::string::npos ? text : text.substr(slash + 1);
}

/// Best-effort name for one program counter: dynamic symbol (demangled)
/// when dladdr finds one, else `module+0xoffset`. Static and inlined
/// functions are invisible to dladdr — the label scopes exist so hot
/// kernels stay identifiable regardless.
std::string SymbolizePc(void* pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name = (status == 0 && demangled != nullptr)
                           ? std::string(demangled)
                           : std::string(info.dli_sname);
    std::free(demangled);
    return name;
  }
  if (info.dli_fname != nullptr) {
    const uintptr_t offset = reinterpret_cast<uintptr_t>(pc) -
                             reinterpret_cast<uintptr_t>(info.dli_fbase);
    return Basename(info.dli_fname) + "+" + HexAddress(offset);
  }
  return HexAddress(reinterpret_cast<uintptr_t>(pc));
}

/// Frames of the sampling machinery itself, trimmed from the leaf end so
/// flames end at the interrupted code, not at the handler.
bool IsProfilerFrame(const std::string& name) {
  return name.find("ProfilerSignalHandler") != std::string::npos ||
         name.find("__restore_rt") != std::string::npos ||
         name == "backtrace";
}

#endif  // DMVI_PROFILER_BACKEND

}  // namespace

ProfileLabelScope::ProfileLabelScope(const char* label) {
  LabelStack& stack = ThreadLabels();
  const int depth = stack.depth.load(std::memory_order_relaxed);
  if (depth >= 0 && depth < kMaxLabels) stack.labels[depth] = label;
  // The label must be visible before the depth that exposes it — a signal
  // between the two stores sees the old depth and skips the new slot.
  std::atomic_signal_fence(std::memory_order_release);
  stack.depth.store(depth + 1, std::memory_order_relaxed);
}

ProfileLabelScope::~ProfileLabelScope() {
  LabelStack& stack = ThreadLabels();
  stack.depth.store(stack.depth.load(std::memory_order_relaxed) - 1,
                    std::memory_order_relaxed);
}

bool CpuProfiler::IsRunning() {
  return g_running.load(std::memory_order_acquire);
}

Status CpuProfiler::Start(int hz) {
  if (hz < 1 || hz > kMaxHz) {
    return Status::InvalidArgument("profiler rate must be in [1, " +
                                   std::to_string(kMaxHz) + "] Hz, got " +
                                   std::to_string(hz));
  }
#if !DMVI_PROFILER_BACKEND
  return Status::FailedPrecondition(
      "the sampling profiler needs POSIX CPU-clock timers (Linux only)");
#else
  bool expected = false;
  if (!g_running.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return Status::FailedPrecondition(
        "a profiling window is already open; retry after it closes");
  }
  auto* state = new ProfilerState;
  state->slab = new RawSample[kMaxSamples];
  state->hz = hz;
#if !DMVI_PROFILER_TSAN
  // Prime the unwinder: backtrace's first call loads libgcc and may
  // allocate — force that one-time work outside the signal handler.
  void* prime[4];
  (void)backtrace(prime, 4);
#endif
  InstallHandlerOnce();

  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &event, &state->timer) != 0) {
    const std::string error = std::strerror(errno);
    delete[] state->slab;
    delete state;
    g_running.store(false, std::memory_order_release);
    return Status::IoError("timer_create(CLOCK_PROCESS_CPUTIME_ID): " + error);
  }

  g_state.store(state, std::memory_order_release);
  g_armed.store(true, std::memory_order_release);
  state->started.Reset();

  const long interval_ns = 1000000000L / hz;
  struct itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(state->timer, 0, &spec, nullptr) != 0) {
    const std::string error = std::strerror(errno);
    g_armed.store(false, std::memory_order_release);
    g_state.store(nullptr, std::memory_order_release);
    timer_delete(state->timer);
    delete[] state->slab;
    delete state;
    g_running.store(false, std::memory_order_release);
    return Status::IoError("timer_settime: " + error);
  }
  return Status::OK();
#endif  // DMVI_PROFILER_BACKEND
}

ProfileResult CpuProfiler::Stop() {
  ProfileResult result;
  DMVI_CHECK(g_running.load(std::memory_order_acquire))
      << "CpuProfiler::Stop without a matching Start";
#if DMVI_PROFILER_BACKEND
  ProfilerState* state = g_state.load(std::memory_order_acquire);
  DMVI_CHECK(state != nullptr);

  // Teardown order: silence the timer, stand the handler down, then wait
  // for in-flight handlers — their release decrements synchronize with
  // this acquire loop, so every sample write happens-before the reads
  // below.
  struct itimerspec zero;
  std::memset(&zero, 0, sizeof(zero));
  timer_settime(state->timer, 0, &zero, nullptr);
  g_armed.store(false, std::memory_order_seq_cst);
  timer_delete(state->timer);
  while (g_in_handler.load(std::memory_order_acquire) != 0) {
    // A handler runs a few dozen instructions; spinning is shorter than a
    // sleep syscall.
  }

  result.duration_seconds = state->started.ElapsedSeconds();
  result.hz = state->hz;
  const int64_t claimed = state->next.load(std::memory_order_acquire);
  result.samples = claimed < kMaxSamples ? claimed : kMaxSamples;
  result.dropped = claimed > kMaxSamples ? claimed - kMaxSamples : 0;

  // Symbolize once per distinct pc (samples repeat hot frames heavily),
  // then fold: labels outermost-first, native frames root-first beneath
  // them, machinery frames trimmed from the leaf end.
  std::map<void*, std::string> symbol_cache;
  auto symbol_for = [&symbol_cache](void* pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, SymbolizePc(pc)).first;
    }
    return it->second;
  };
  std::vector<std::vector<std::string>> stacks;
  stacks.reserve(static_cast<size_t>(result.samples));
  for (int64_t s = 0; s < result.samples; ++s) {
    const RawSample& sample = state->slab[s];
    std::vector<std::string> frames;
    for (int i = 0; i < sample.num_labels; ++i) {
      frames.emplace_back(sample.labels[i]);
    }
    int innermost = 0;
    while (innermost < sample.num_frames &&
           IsProfilerFrame(symbol_for(sample.frames[innermost]))) {
      ++innermost;
    }
    for (int i = sample.num_frames - 1; i >= innermost; --i) {
      frames.push_back(symbol_for(sample.frames[i]));
    }
    stacks.push_back(std::move(frames));
  }
  result.collapsed = CollapseStacks(stacks);

  g_state.store(nullptr, std::memory_order_release);
  delete[] state->slab;
  delete state;
#endif  // DMVI_PROFILER_BACKEND
  g_running.store(false, std::memory_order_release);
  return result;
}

std::string CollapseStacks(
    const std::vector<std::vector<std::string>>& stacks) {
  std::map<std::string, int64_t> folded;
  for (const std::vector<std::string>& stack : stacks) {
    std::string line;
    for (const std::string& frame : stack) {
      if (!line.empty()) line += ';';
      // Frame names must not smuggle in the fold separators.
      for (const char c : frame) {
        line += (c == ';' || c == '\n') ? '_' : c;
      }
    }
    if (line.empty()) line = "(unresolved)";
    ++folded[line];
  }
  std::string out;
  for (const auto& [line, count] : folded) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace deepmvi
