#ifndef DEEPMVI_OBS_PROFILER_H_
#define DEEPMVI_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace deepmvi {
namespace obs {

/// The output of one profiling window, ready to render: `collapsed` is
/// flamegraph.pl "collapsed stack" text — one `frame;frame;... count`
/// line per distinct stack, root frame first, sorted by stack — which
/// both flamegraph.pl and speedscope ingest directly.
struct ProfileResult {
  std::string collapsed;
  int64_t samples = 0;        // Stacks captured into the sample buffer.
  int64_t dropped = 0;        // Ticks lost because the buffer was full.
  double duration_seconds = 0.0;  // Wall time between Start and Stop.
  int hz = 0;                 // Requested sampling rate (per CPU-second).
};

/// Process-wide sampling CPU profiler: a POSIX interval timer on the
/// process CPU clock delivers SIGPROF `hz` times per consumed CPU-second,
/// and the signal handler appends the interrupted thread's stack (its
/// ProfileLabelScope annotations plus the native backtrace) to a
/// preallocated sample buffer — one atomic slot claim, no locks, no
/// allocation on the signal path. Symbolization (dladdr + demangling) and
/// folding happen once, at Stop.
///
/// One window at a time: Start while a window is open (from any thread)
/// returns FailedPrecondition, which the /debug/profile endpoint maps to
/// 503 — concurrent operators share the profiler rather than corrupting
/// each other's samples. The profiler only observes; it never perturbs
/// results (the byte-identity suites run with it on).
///
/// Under ThreadSanitizer the native unwinder is not async-signal-safe
/// enough to trust, so samples carry only the label stacks; everywhere
/// else labels are prepended to the native frames.
class CpuProfiler {
 public:
  static constexpr int kDefaultHz = 99;  // Prime: avoids lockstep bias.
  static constexpr int kMaxHz = 1000;

  /// Arms the timer and starts sampling at `hz`. FailedPrecondition when
  /// a window is already open (or the platform has no POSIX CPU-clock
  /// timers), InvalidArgument for a rate outside [1, kMaxHz].
  static Status Start(int hz = kDefaultHz);

  /// Disarms the timer, waits for in-flight handlers, symbolizes and
  /// folds the samples. Must pair with a successful Start.
  static ProfileResult Stop();

  /// True between a successful Start and its Stop.
  static bool IsRunning();
};

/// Annotates the calling thread's stack for the profiler: while the scope
/// is alive, every sample taken on this thread carries `label` (root
/// first when scopes nest). Labels must be string literals or otherwise
/// outlive the scope — the signal handler copies the pointer, not the
/// bytes. Always on and cheap enough for hot kernels (two thread-local
/// stores); guarantees semantically-named frames ("matmul.blocked") even
/// where native symbolization cannot see static or inlined functions.
class ProfileLabelScope {
 public:
  static constexpr int kMaxDepth = 8;

  explicit ProfileLabelScope(const char* label);
  ~ProfileLabelScope();
  ProfileLabelScope(const ProfileLabelScope&) = delete;
  ProfileLabelScope& operator=(const ProfileLabelScope&) = delete;
};

/// Folds stacks (each one a root-first frame list) into collapsed-stack
/// text: identical stacks aggregate into one `a;b;c count` line, lines
/// sorted lexicographically. A stack with no frames folds under
/// "(unresolved)". Exposed separately from the profiler so aggregation is
/// testable with a deterministic injected sampler.
std::string CollapseStacks(const std::vector<std::vector<std::string>>& stacks);

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_PROFILER_H_
