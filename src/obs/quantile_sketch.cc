#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepmvi {
namespace obs {

QuantileSketch::QuantileSketch(int capacity) : capacity_(capacity) {
  DMVI_CHECK(capacity_ >= 2);
  // One spare slot so Insert can exceed capacity momentarily before
  // Compress runs; after this reserve the observe path never allocates.
  centroids_.reserve(static_cast<size_t>(capacity_) + 1);
}

void QuantileSketch::Observe(double value) {
  if (std::isnan(value)) {
    ++nan_count_;
    return;
  }
  Insert(value, 1);
}

void QuantileSketch::Insert(double value, int64_t count) {
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_ += count;

  auto it = std::lower_bound(
      centroids_.begin(), centroids_.end(), value,
      [](const Centroid& c, double v) { return c.value < v; });
  if (it != centroids_.end() && it->value == value) {
    it->count += count;  // Exact duplicates coalesce; no growth.
    return;
  }
  centroids_.insert(it, Centroid{value, count});
  if (static_cast<int>(centroids_.size()) > capacity_) Compress();
}

void QuantileSketch::Compress() {
  // Merge the adjacent pair with the smallest value gap; on ties the
  // lowest index wins so compression is a deterministic function of the
  // centroid list alone.
  size_t best = 0;
  double best_gap = centroids_[1].value - centroids_[0].value;
  for (size_t i = 1; i + 1 < centroids_.size(); ++i) {
    const double gap = centroids_[i + 1].value - centroids_[i].value;
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  Centroid& lo = centroids_[best];
  const Centroid& hi = centroids_[best + 1];
  const int64_t merged = lo.count + hi.count;
  // Weighted mean, written to be symmetric in the pair so the result
  // depends only on the two centroids.
  lo.value = (lo.value * static_cast<double>(lo.count) +
              hi.value * static_cast<double>(hi.count)) /
             static_cast<double>(merged);
  lo.count = merged;
  centroids_.erase(centroids_.begin() + static_cast<ptrdiff_t>(best) + 1);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  // Replay the other side's centroids in ascending value order; each
  // insert may trigger one compression, so peak size never exceeds the
  // reserved capacity + 1.
  for (const Centroid& c : other.centroids_) Insert(c.value, c.count);
  nan_count_ += other.nan_count_;
}

double QuantileSketch::Quantile(double q) const {
  if (total_ <= 0 || centroids_.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  if (centroids_.size() == 1) return centroids_[0].value;

  // Centroid i is treated as sitting at cumulative rank
  // (count before i) + count_i / 2; interpolate linearly between the
  // bracketing centroids and clamp to the exact observed range.
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  double prev_center = 0.0;
  double prev_value = min_;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double center = cum + static_cast<double>(centroids_[i].count) / 2.0;
    if (target <= center) {
      if (i == 0) return std::max(min_, std::min(centroids_[0].value, max_));
      const double span = center - prev_center;
      const double frac = span > 0.0 ? (target - prev_center) / span : 0.0;
      const double est =
          prev_value + frac * (centroids_[i].value - prev_value);
      return std::max(min_, std::min(est, max_));
    }
    cum += static_cast<double>(centroids_[i].count);
    prev_center = center;
    prev_value = centroids_[i].value;
  }
  return max_;
}

DistributionSummary::DistributionSummary(int sketch_capacity)
    : sketch_(sketch_capacity) {}

void DistributionSummary::Observe(double value) {
  sketch_.Observe(value);
  if (std::isnan(value)) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void DistributionSummary::Merge(const DistributionSummary& other) {
  sketch_.Merge(other.sketch_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    count_ = other.count_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    min_ = other.min_;
    max_ = other.max_;
    return;
  }
  // Chan et al. parallel combination of (count, mean, M2).
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double DistributionSummary::stddev() const { return std::sqrt(variance()); }

namespace {
constexpr double kBinEpsilon = 1e-6;
}  // namespace

double PopulationStabilityIndex(const std::vector<double>& expected_fractions,
                                const std::vector<int64_t>& observed_counts) {
  if (expected_fractions.empty() ||
      expected_fractions.size() != observed_counts.size()) {
    return 0.0;
  }
  int64_t total = 0;
  for (int64_t c : observed_counts) total += c;
  if (total <= 0) return 0.0;
  double psi = 0.0;
  for (size_t i = 0; i < expected_fractions.size(); ++i) {
    const double e = std::max(expected_fractions[i], kBinEpsilon);
    const double p = std::max(
        static_cast<double>(observed_counts[i]) / static_cast<double>(total),
        kBinEpsilon);
    psi += (p - e) * std::log(p / e);
  }
  return psi;
}

double KolmogorovSmirnovStatistic(const std::vector<double>& expected_fractions,
                                  const std::vector<int64_t>& observed_counts) {
  if (expected_fractions.empty() ||
      expected_fractions.size() != observed_counts.size()) {
    return 0.0;
  }
  int64_t total = 0;
  for (int64_t c : observed_counts) total += c;
  if (total <= 0) return 0.0;
  double ks = 0.0;
  double cum_e = 0.0;
  double cum_p = 0.0;
  for (size_t i = 0; i < expected_fractions.size(); ++i) {
    cum_e += expected_fractions[i];
    cum_p += static_cast<double>(observed_counts[i]) /
             static_cast<double>(total);
    ks = std::max(ks, std::abs(cum_p - cum_e));
  }
  return ks;
}

}  // namespace obs
}  // namespace deepmvi
