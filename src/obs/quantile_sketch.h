#ifndef DEEPMVI_OBS_QUANTILE_SKETCH_H_
#define DEEPMVI_OBS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <vector>

namespace deepmvi {
namespace obs {

/// Fixed-size streaming quantile sketch in the P²/Ben-Haim–Yom-Tov
/// family: a sorted list of at most `capacity` (value, count) centroids.
/// Observing a value inserts a unit centroid (coalescing exact
/// duplicates) and, when the list would overflow, merges the closest
/// adjacent pair — ties broken by the lower index — so the result is a
/// pure function of the observation sequence. Storage for capacity + 1
/// centroids is reserved up front; the observe path never allocates.
///
/// Two sketches are mergeable (`Merge` replays the other side's
/// centroids in value order), and the rank error of `Quantile` is
/// bounded by the largest centroid weight — O(n / capacity) on
/// non-adversarial streams, covered by property tests in obs_test.
///
/// Not thread-safe; callers own synchronization (the serving layer
/// folds per-request summaries into per-model sketches under a lock).
class QuantileSketch {
 public:
  static constexpr int kDefaultCapacity = 64;

  explicit QuantileSketch(int capacity = kDefaultCapacity);

  /// Folds one value in. NaN is ignored (counted in nan_count());
  /// +/-inf is clamped out of quantile interpolation via min/max.
  void Observe(double value);

  /// Folds every centroid of `other` in, in ascending value order.
  /// Merge(a, b) == Merge(a, b) for equal inputs (deterministic), and
  /// Merge order only moves quantile estimates within the rank-error
  /// bound, never the total count.
  void Merge(const QuantileSketch& other);

  /// Deterministic quantile estimate for q in [0, 1], interpolated over
  /// cumulative centroid weight and clamped to [min(), max()]. Returns
  /// 0 when empty.
  double Quantile(double q) const;

  int64_t count() const { return total_; }
  int64_t nan_count() const { return nan_count_; }
  double min() const { return total_ > 0 ? min_ : 0.0; }
  double max() const { return total_ > 0 ? max_ : 0.0; }
  int capacity() const { return capacity_; }
  /// Number of live centroids (<= capacity()); exposed for tests.
  int num_centroids() const { return static_cast<int>(centroids_.size()); }

 private:
  struct Centroid {
    double value = 0.0;
    int64_t count = 0;
  };

  void Insert(double value, int64_t count);
  /// Merges the closest adjacent pair (lowest index on ties); called
  /// only when size() == capacity_ + 1.
  void Compress();

  int capacity_;
  std::vector<Centroid> centroids_;  // Sorted by value; size <= capacity_.
  int64_t total_ = 0;
  int64_t nan_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming moment + quantile summary of one distribution: count, mean
/// and variance (Welford), exact min/max, and an embedded QuantileSketch.
/// Deterministic for a fixed observation order and mergeable like the
/// sketch. This is the unit the training-data reference profile and the
/// serving-path live summaries are both built from.
class DistributionSummary {
 public:
  explicit DistributionSummary(int sketch_capacity =
                                   QuantileSketch::kDefaultCapacity);

  void Observe(double value);
  void Merge(const DistributionSummary& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (sum of squared deviations / count).
  double variance() const { return count_ > 0 ? m2_ / count_ : 0.0; }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  const QuantileSketch& sketch() const { return sketch_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  QuantileSketch sketch_;
};

/// Population Stability Index of observed bin counts against expected
/// bin fractions: sum over bins of (p_i - e_i) * ln(p_i / e_i), with
/// both fractions floored at a small epsilon so empty bins stay finite.
/// Conventional reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25
/// drifted. Returns 0 when the observed counts are empty or the shapes
/// disagree.
double PopulationStabilityIndex(const std::vector<double>& expected_fractions,
                                const std::vector<int64_t>& observed_counts);

/// Kolmogorov-Smirnov statistic over the same binning: the maximum
/// absolute difference between the expected and observed CDFs evaluated
/// at the bin boundaries. In [0, 1]; 0 when empty or mismatched.
double KolmogorovSmirnovStatistic(const std::vector<double>& expected_fractions,
                                  const std::vector<int64_t>& observed_counts);

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_QUANTILE_SKETCH_H_
