#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace deepmvi {
namespace obs {
namespace {

/// Per-thread implicit parent stack. Keyed on the owning tracer so a
/// thread outliving one tracer (test fixtures create several) starts
/// clean under the next.
struct ThreadSpanStack {
  const Tracer* tracer = nullptr;
  std::vector<SpanContext> stack;
};

ThreadSpanStack& LocalStack() {
  thread_local ThreadSpanStack stack;
  return stack;
}

std::atomic<Tracer*> g_tracer{nullptr};

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-microsecond residue kept — chrome://tracing
/// accepts fractional "ts"/"dur" and short kernel spans need it.
std::string Micros(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

void CollectingTraceSink::Record(SpanRecord record) {
  MutexLock lock(&mutex_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> CollectingTraceSink::records() const {
  MutexLock lock(&mutex_);
  return records_;
}

int64_t CollectingTraceSink::dropped() const {
  MutexLock lock(&mutex_);
  return dropped_;
}

int Tracer::CurrentThreadIndex() {
  static std::atomic<int> next_index{0};
  thread_local int index = next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

SpanContext Tracer::CurrentContext() const {
  const ThreadSpanStack& local = LocalStack();
  if (local.tracer != this || local.stack.empty()) return SpanContext{};
  return local.stack.back();
}

void Tracer::PushContext(SpanContext context) {
  ThreadSpanStack& local = LocalStack();
  if (local.tracer != this) {
    local.tracer = this;
    local.stack.clear();
  }
  local.stack.push_back(context);
}

void Tracer::PopContext(SpanContext context) {
  ThreadSpanStack& local = LocalStack();
  if (local.tracer != this) return;
  // Spans end LIFO per thread; tolerate a stale stack rather than abort
  // inside a destructor.
  if (!local.stack.empty() && local.stack.back().span_id == context.span_id) {
    local.stack.pop_back();
  }
}

void Tracer::RecordSpan(std::string name, SpanContext context,
                        uint64_t parent_span_id, double start_seconds,
                        double duration_seconds, std::string request_id,
                        std::vector<std::pair<std::string, std::string>> args) {
  if (sink_ == nullptr) return;
  SpanRecord record;
  record.name = std::move(name);
  record.request_id = std::move(request_id);
  record.trace_id = context.trace_id;
  record.span_id = context.span_id;
  record.parent_span_id = parent_span_id;
  record.start_seconds = start_seconds;
  record.duration_seconds = duration_seconds;
  record.thread_index = CurrentThreadIndex();
  record.args = std::move(args);
  sink_->Record(std::move(record));
}

Span::Span(Tracer* tracer, const char* name, TraceLevel level) {
  if (tracer == nullptr || !tracer->enabled(level)) return;
  Begin(tracer, name, tracer->CurrentContext(), level);
}

Span::Span(Tracer* tracer, const char* name, SpanContext parent,
           TraceLevel level) {
  if (tracer == nullptr || !tracer->enabled(level)) return;
  Begin(tracer, name, parent, level);
}

void Span::Begin(Tracer* tracer, const char* name, SpanContext parent,
                 TraceLevel level) {
  (void)level;
  tracer_ = tracer;
  name_ = name;
  context_.trace_id =
      parent.trace_id != 0 ? parent.trace_id : tracer->NewId();
  context_.span_id = tracer->NewId();
  parent_span_id_ = parent.trace_id != 0 ? parent.span_id : 0;
  start_seconds_ = tracer->Now();
  tracer->PushContext(context_);
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  const double duration = tracer->Now() - start_seconds_;
  tracer->PopContext(context_);
  tracer->RecordSpan(name_, context_, parent_span_id_, start_seconds_,
                     duration, std::move(request_id_), std::move(args_));
}

Tracer* GlobalTracer() { return g_tracer.load(std::memory_order_acquire); }

void SetGlobalTracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& records) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : records) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << EscapeJson(record.name) << "\",";
    os << "\"cat\":\"dmvi\",\"ph\":\"X\",";
    os << "\"ts\":" << Micros(record.start_seconds) << ",";
    os << "\"dur\":" << Micros(record.duration_seconds) << ",";
    os << "\"pid\":1,\"tid\":" << record.thread_index << ",";
    os << "\"args\":{";
    os << "\"trace_id\":" << record.trace_id << ",";
    os << "\"span_id\":" << record.span_id << ",";
    os << "\"parent_span_id\":" << record.parent_span_id;
    if (!record.request_id.empty()) {
      os << ",\"request_id\":\"" << EscapeJson(record.request_id) << "\"";
    }
    for (const auto& [key, value] : record.args) {
      os << ",\"" << EscapeJson(key) << "\":\"" << EscapeJson(value) << "\"";
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  const std::string json = ChromeTraceJson(records);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    return Status::IoError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace deepmvi
