#ifndef DEEPMVI_OBS_TRACE_H_
#define DEEPMVI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace deepmvi {
namespace obs {

/// Identity of one span inside one trace. trace_id groups every span of a
/// request (or a training run); span_id names this span so children can
/// point at it. A zero trace_id means "no trace": spans started under it
/// open a fresh trace.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// One finished span, as handed to the sink. Timestamps are seconds on
/// the owning tracer's monotonic clock (epoch = tracer construction), so
/// a trace file is internally consistent even across threads.
struct SpanRecord {
  std::string name;
  std::string request_id;  // Empty when the span has no request identity.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  int thread_index = 0;  // Small stable per-thread index (trace "tid").
  /// Free-form annotations ("epoch" = "3", "batch_size" = "8").
  std::vector<std::pair<std::string, std::string>> args;
};

/// Where finished spans go. Record() is called from every instrumented
/// thread and must be thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Record(SpanRecord record) = 0;
};

/// Bounded in-memory sink: keeps the first `capacity` spans, counts the
/// rest as dropped — a long training run with kernel scopes cannot grow
/// memory without bound.
class CollectingTraceSink : public TraceSink {
 public:
  explicit CollectingTraceSink(size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void Record(SpanRecord record) override;
  std::vector<SpanRecord> records() const;
  int64_t dropped() const;

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  std::vector<SpanRecord> records_ DMVI_GUARDED_BY(mutex_);
  int64_t dropped_ DMVI_GUARDED_BY(mutex_) = 0;
};

/// How deep the instrumentation reaches. kRequest covers the serving and
/// training control flow (requests, epochs, batches); kKernel adds the
/// hot execution units (blocked MatMul calls, storage chunk loads) —
/// higher volume, for perfetto deep dives.
enum class TraceLevel { kRequest = 0, kKernel = 1 };

/// Hands out span identities, timestamps, and the thread-local implicit
/// parent stack. One tracer per process is the normal arrangement
/// (tools create it when --trace-out is given); a null tracer pointer is
/// the disabled state and every instrumentation site pays one branch.
class Tracer {
 public:
  explicit Tracer(TraceSink* sink, TraceLevel level = TraceLevel::kRequest)
      : sink_(sink), level_(level) {}

  bool enabled(TraceLevel level = TraceLevel::kRequest) const {
    return sink_ != nullptr && static_cast<int>(level) <= static_cast<int>(level_);
  }
  TraceLevel level() const { return level_; }

  /// Fresh process-unique id (shared counter for trace and span ids).
  uint64_t NewId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  /// Seconds since tracer construction (monotonic).
  double Now() const { return epoch_.ElapsedSeconds(); }
  /// Small dense index for the calling thread, stable for its lifetime.
  static int CurrentThreadIndex();

  /// The innermost live Span on this thread (zero context when none) —
  /// how request handlers hand their span to work that crosses threads.
  SpanContext CurrentContext() const;

  /// Low-level emission for retrospective spans whose start predates the
  /// call (queue waits, whole-request roots).
  void RecordSpan(std::string name, SpanContext context,
                  uint64_t parent_span_id, double start_seconds,
                  double duration_seconds, std::string request_id = "",
                  std::vector<std::pair<std::string, std::string>> args = {});

 private:
  friend class Span;
  void PushContext(SpanContext context);
  void PopContext(SpanContext context);

  TraceSink* const sink_;
  const TraceLevel level_;
  Stopwatch epoch_;
  std::atomic<uint64_t> next_id_{1};
};

/// RAII trace scope. A default-constructed (or disabled-tracer) Span is
/// inert: no allocation, no clock read, no sink traffic — the form every
/// instrumentation site takes when tracing is off, which is what keeps
/// the traced and untraced paths bit-identical and the overhead a branch.
///
/// Parentage: the explicit-parent constructor starts a child of `parent`
/// (or a fresh trace when parent.trace_id is 0); the implicit constructor
/// parents to the innermost live Span on this thread. Spans must end in
/// LIFO order per thread (natural scoping); they are deliberately
/// non-copyable and non-movable so the thread-local stack cannot be
/// reordered behind the tracer's back.
class Span {
 public:
  Span() = default;
  /// Implicit parent: the current thread's innermost span.
  Span(Tracer* tracer, const char* name,
       TraceLevel level = TraceLevel::kRequest);
  /// Explicit parent, for spans continuing a trace across threads.
  Span(Tracer* tracer, const char* name, SpanContext parent,
       TraceLevel level = TraceLevel::kRequest);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }
  SpanContext context() const { return context_; }
  void set_request_id(std::string request_id) {
    request_id_ = std::move(request_id);
  }
  void AddArg(std::string key, std::string value) {
    if (tracer_ != nullptr) args_.emplace_back(std::move(key), std::move(value));
  }

  /// Records the span now (idempotent; the destructor calls it).
  void End();

 private:
  void Begin(Tracer* tracer, const char* name, SpanContext parent,
             TraceLevel level);

  Tracer* tracer_ = nullptr;  // Null = inert.
  const char* name_ = "";
  SpanContext context_;
  uint64_t parent_span_id_ = 0;
  double start_seconds_ = 0.0;
  std::string request_id_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Process-global tracer used by instrumentation sites too deep to thread
/// a tracer through (MatMul kernels, storage chunk loads, the training
/// loop). Null by default — every deep scope is then inert. Tools install
/// their tracer before work starts; not synchronized against concurrent
/// instrumentation, so set it during single-threaded startup.
Tracer* GlobalTracer();
void SetGlobalTracer(Tracer* tracer);

/// Kernel-level scope against the global tracer: inert unless a global
/// tracer exists and traces at kKernel.
inline Span KernelSpan(const char* name) {
  Tracer* tracer = GlobalTracer();
  if (tracer == nullptr || !tracer->enabled(TraceLevel::kKernel)) {
    return Span();
  }
  return Span(tracer, name, TraceLevel::kKernel);
}

/// Request-level scope against the global tracer.
inline Span GlobalSpan(const char* name) {
  Tracer* tracer = GlobalTracer();
  if (tracer == nullptr || !tracer->enabled(TraceLevel::kRequest)) {
    return Span();
  }
  return Span(tracer, name, TraceLevel::kRequest);
}

/// Chrome trace-event JSON ("traceEvents" array of complete "X" events,
/// microsecond timestamps), loadable in perfetto / chrome://tracing.
/// Span identities and the request id ride in each event's "args".
std::string ChromeTraceJson(const std::vector<SpanRecord>& records);
Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const std::string& path);

}  // namespace obs
}  // namespace deepmvi

#endif  // DEEPMVI_OBS_TRACE_H_
