#include "scenario/scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepmvi {
namespace {

/// Marks `count` cells of series `r` missing in blocks of `block_size`,
/// placed uniformly at random without overlapping existing missing cells.
void PlaceRandomBlocks(Mask& mask, int r, int count, int block_size, Rng& rng) {
  const int t_len = mask.cols();
  int placed = 0;
  int attempts = 0;
  const int max_attempts = 200 * (count / std::max(block_size, 1) + 4);
  while (placed < count && attempts < max_attempts) {
    ++attempts;
    const int len = std::min(block_size, count - placed);
    if (t_len - len < 0) break;
    const int t0 = rng.UniformInt(t_len - len + 1);
    bool clash = false;
    for (int t = t0; t < t0 + len; ++t) {
      if (mask.missing(r, t)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    mask.SetMissingRange(r, t0, t0 + len);
    placed += len;
  }
}

}  // namespace

Mask GenerateScenario(const ScenarioConfig& config, int num_series,
                      int num_times) {
  DMVI_CHECK_GT(num_series, 0);
  DMVI_CHECK_GT(num_times, 0);
  Rng rng(config.seed);
  Mask mask(num_series, num_times);

  const int num_incomplete = std::clamp(
      static_cast<int>(std::lround(config.percent_incomplete * num_series)), 1,
      num_series);

  switch (config.kind) {
    case ScenarioKind::kMcar:
    case ScenarioKind::kMissPoint: {
      std::vector<int> rows = rng.SampleWithoutReplacement(
          num_series,
          config.kind == ScenarioKind::kMissPoint ? num_series : num_incomplete);
      for (int r : rows) {
        const int count = std::max(
            1, static_cast<int>(std::lround(config.missing_fraction * num_times)));
        PlaceRandomBlocks(mask, r, count, config.block_size, rng);
      }
      break;
    }
    case ScenarioKind::kMissDisj: {
      const int block = std::max(num_times / num_series, 1);
      for (int i = 0; i < num_incomplete; ++i) {
        mask.SetMissingRange(i, i * block, (i + 1) * block);
      }
      break;
    }
    case ScenarioKind::kMissOver: {
      const int block = std::max(num_times / num_series, 1);
      for (int i = 0; i < num_incomplete; ++i) {
        const bool last = i == num_series - 1;
        const int len = last ? block : 2 * block;
        mask.SetMissingRange(i, i * block, i * block + len);
      }
      break;
    }
    case ScenarioKind::kBlackout: {
      int t0 = static_cast<int>(std::lround(config.blackout_start_fraction *
                                            num_times));
      t0 = std::clamp(t0, 0, std::max(num_times - config.block_size, 0));
      for (int r = 0; r < num_series; ++r) {
        mask.SetMissingRange(r, t0, t0 + config.block_size);
      }
      break;
    }
  }
  DMVI_CHECK_GT(mask.CountMissing(), 0) << "scenario produced no missing cells";
  return mask;
}

std::string ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kMcar:
      return "MCAR";
    case ScenarioKind::kMissDisj:
      return "MissDisj";
    case ScenarioKind::kMissOver:
      return "MissOver";
    case ScenarioKind::kBlackout:
      return "Blackout";
    case ScenarioKind::kMissPoint:
      return "MissPoint";
  }
  return "Unknown";
}

std::vector<ScenarioKind> HeadlineScenarios() {
  return {ScenarioKind::kMcar, ScenarioKind::kMissDisj, ScenarioKind::kMissOver,
          ScenarioKind::kBlackout};
}

}  // namespace deepmvi
