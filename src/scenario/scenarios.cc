#include "scenario/scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepmvi {
namespace {

/// Marks `count` cells of series `r` missing in blocks of `block_size`,
/// placed uniformly at random without overlapping existing missing cells.
void PlaceRandomBlocks(Mask& mask, int r, int count, int block_size, Rng& rng) {
  const int t_len = mask.cols();
  int placed = 0;
  int attempts = 0;
  const int max_attempts = 200 * (count / std::max(block_size, 1) + 4);
  while (placed < count && attempts < max_attempts) {
    ++attempts;
    const int len = std::min(block_size, count - placed);
    if (t_len - len < 0) break;
    const int t0 = rng.UniformInt(t_len - len + 1);
    bool clash = false;
    for (int t = t0; t < t0 + len; ++t) {
      if (mask.missing(r, t)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    mask.SetMissingRange(r, t0, t0 + len);
    placed += len;
  }
}

int NumIncomplete(const ScenarioConfig& config, int num_series) {
  return std::clamp(
      static_cast<int>(std::lround(config.percent_incomplete * num_series)), 1,
      num_series);
}

/// Per-series standard deviation (population), with a floor of 1 so a
/// constant series still drifts by an observable amount.
double RowStddev(const Matrix& values, int r) {
  const int t_len = values.cols();
  double mean = 0.0;
  for (int t = 0; t < t_len; ++t) mean += values(r, t);
  mean /= t_len;
  double var = 0.0;
  for (int t = 0; t < t_len; ++t) {
    const double d = values(r, t) - mean;
    var += d * d;
  }
  var /= t_len;
  const double stddev = std::sqrt(var);
  return stddev > 1e-12 ? stddev : 1.0;
}

int DriftPeriod(const ScenarioConfig& config, int num_times) {
  if (config.recalibration_period > 0) return config.recalibration_period;
  return std::max(num_times / 4, 2);
}

/// MNAR mask for one series: blocks anchored on cells whose value is at or
/// above the series' `mnar_quantile` quantile, until `missing_fraction` of
/// the series is hidden (or anchors run out).
void PlaceMnarBlocks(Mask& mask, const Matrix& values, int r,
                     const ScenarioConfig& config, Rng& rng) {
  const int t_len = mask.cols();
  std::vector<double> sorted(t_len);
  for (int t = 0; t < t_len; ++t) sorted[t] = values(r, t);
  std::sort(sorted.begin(), sorted.end());
  const double q = std::clamp(config.mnar_quantile, 0.0, 1.0);
  const int idx = std::min(static_cast<int>(std::floor(q * (t_len - 1))),
                           t_len - 1);
  const double threshold = sorted[std::max(idx, 0)];

  std::vector<int> anchors;
  for (int t = 0; t < t_len; ++t) {
    if (values(r, t) >= threshold) anchors.push_back(t);
  }
  rng.Shuffle(anchors);

  const int target = std::max(
      1, static_cast<int>(std::lround(config.missing_fraction * t_len)));
  const int block = std::max(config.block_size, 1);
  int placed = 0;
  for (const int anchor : anchors) {
    if (placed >= target) break;
    const int len = std::min({block, target - placed, t_len});
    const int t0 = std::clamp(anchor - len / 2, 0, t_len - len);
    bool clash = false;
    for (int t = t0; t < t0 + len; ++t) {
      if (mask.missing(r, t)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    mask.SetMissingRange(r, t0, t0 + len);
    placed += len;
  }
  // Anchors can be too clustered to fit the target without overlap; the
  // rate invariant is "at most target + block - 1", enforced naturally by
  // the len arithmetic above, with at least one block always placed.
  if (placed == 0 && !anchors.empty()) {
    const int len = std::min(block, t_len);
    const int t0 = std::clamp(anchors[0] - len / 2, 0, t_len - len);
    mask.SetMissingRange(r, t0, t0 + len);
  }
}

}  // namespace

bool ScenarioNeedsValues(ScenarioKind kind) {
  return kind == ScenarioKind::kMnar;
}

std::vector<int> DriftRecalibrationTimes(const ScenarioConfig& config,
                                         int num_times) {
  const int period = DriftPeriod(config, num_times);
  std::vector<int> jumps;
  for (int t = period; t < num_times; t += period) jumps.push_back(t);
  // A series too short for a full period still gets one mid-series jump so
  // the scenario always has a discontinuity to score across.
  if (jumps.empty()) jumps.push_back(std::max(num_times / 2, 1) % num_times);
  return jumps;
}

Mask GenerateScenario(const ScenarioConfig& config, int num_series,
                      int num_times) {
  DMVI_CHECK_GT(num_series, 0);
  DMVI_CHECK_GT(num_times, 0);
  DMVI_CHECK(!ScenarioNeedsValues(config.kind))
      << ScenarioName(config.kind)
      << " correlates missingness with values; use GenerateScenarioForData";
  Rng rng(config.seed);
  Mask mask(num_series, num_times);

  const int num_incomplete = NumIncomplete(config, num_series);

  switch (config.kind) {
    case ScenarioKind::kMcar:
    case ScenarioKind::kMissPoint: {
      std::vector<int> rows = rng.SampleWithoutReplacement(
          num_series,
          config.kind == ScenarioKind::kMissPoint ? num_series : num_incomplete);
      for (int r : rows) {
        const int count = std::max(
            1, static_cast<int>(std::lround(config.missing_fraction * num_times)));
        PlaceRandomBlocks(mask, r, count, config.block_size, rng);
      }
      break;
    }
    case ScenarioKind::kMissDisj: {
      const int block = std::max(num_times / num_series, 1);
      for (int i = 0; i < num_incomplete; ++i) {
        mask.SetMissingRange(i, i * block, (i + 1) * block);
      }
      break;
    }
    case ScenarioKind::kMissOver: {
      const int block = std::max(num_times / num_series, 1);
      for (int i = 0; i < num_incomplete; ++i) {
        const bool last = i == num_series - 1;
        const int len = last ? block : 2 * block;
        mask.SetMissingRange(i, i * block, i * block + len);
      }
      break;
    }
    case ScenarioKind::kBlackout: {
      int t0 = static_cast<int>(std::lround(config.blackout_start_fraction *
                                            num_times));
      t0 = std::clamp(t0, 0, std::max(num_times - config.block_size, 0));
      for (int r = 0; r < num_series; ++r) {
        mask.SetMissingRange(r, t0, t0 + config.block_size);
      }
      break;
    }
    case ScenarioKind::kMultiBlackout: {
      const int span = std::clamp(
          static_cast<int>(std::lround(config.series_span * num_series)), 1,
          num_series);
      const int len = std::clamp(config.block_size, 1, num_times);
      for (int k = 0; k < std::max(config.num_blackouts, 1); ++k) {
        const int r0 = rng.UniformInt(num_series - span + 1);
        const int t0 = rng.UniformInt(num_times - len + 1);
        for (int r = r0; r < r0 + span; ++r) {
          mask.SetMissingRange(r, t0, t0 + len);
        }
      }
      break;
    }
    case ScenarioKind::kDrift: {
      const std::vector<int> jumps = DriftRecalibrationTimes(config, num_times);
      const int len = std::clamp(config.block_size, 1, num_times);
      std::vector<int> rows =
          rng.SampleWithoutReplacement(num_series, num_incomplete);
      for (int r : rows) {
        for (const int jump : jumps) {
          const int t0 = std::clamp(jump - len / 2, 0, num_times - len);
          mask.SetMissingRange(r, t0, t0 + len);
        }
      }
      break;
    }
    case ScenarioKind::kMnar:
      break;  // Unreachable: checked above.
  }
  DMVI_CHECK_GT(mask.CountMissing(), 0) << "scenario produced no missing cells";
  return mask;
}

Mask GenerateScenarioForData(const ScenarioConfig& config,
                             const Matrix& values) {
  if (!ScenarioNeedsValues(config.kind)) {
    return GenerateScenario(config, values.rows(), values.cols());
  }
  const int num_series = values.rows();
  const int num_times = values.cols();
  DMVI_CHECK_GT(num_series, 0);
  DMVI_CHECK_GT(num_times, 0);
  Rng rng(config.seed);
  Mask mask(num_series, num_times);
  std::vector<int> rows =
      rng.SampleWithoutReplacement(num_series, NumIncomplete(config, num_series));
  for (int r : rows) {
    PlaceMnarBlocks(mask, values, r, config, rng);
  }
  DMVI_CHECK_GT(mask.CountMissing(), 0) << "scenario produced no missing cells";
  return mask;
}

Matrix ApplyScenarioTransform(const ScenarioConfig& config,
                              const Matrix& values) {
  if (config.kind != ScenarioKind::kDrift) return values;
  const int num_series = values.rows();
  const int num_times = values.cols();
  const int period = DriftPeriod(config, num_times);
  Matrix out = values;
  for (int r = 0; r < num_series; ++r) {
    const double scale = config.drift_rate * RowStddev(values, r);
    for (int t = 0; t < num_times; ++t) {
      // Sawtooth: drift ramps linearly to `scale` over each segment and
      // snaps back to zero at every recalibration jump (t % period == 0).
      const double phase = static_cast<double>(t % period) / period;
      out(r, t) += scale * phase;
    }
  }
  return out;
}

std::string ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kMcar:
      return "MCAR";
    case ScenarioKind::kMissDisj:
      return "MissDisj";
    case ScenarioKind::kMissOver:
      return "MissOver";
    case ScenarioKind::kBlackout:
      return "Blackout";
    case ScenarioKind::kMissPoint:
      return "MissPoint";
    case ScenarioKind::kMultiBlackout:
      return "MultiBlackout";
    case ScenarioKind::kMnar:
      return "MNAR";
    case ScenarioKind::kDrift:
      return "Drift";
  }
  return "Unknown";
}

std::vector<ScenarioKind> HeadlineScenarios() {
  return {ScenarioKind::kMcar, ScenarioKind::kMissDisj, ScenarioKind::kMissOver,
          ScenarioKind::kBlackout};
}

}  // namespace deepmvi
