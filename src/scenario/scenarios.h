#ifndef DEEPMVI_SCENARIO_SCENARIOS_H_
#define DEEPMVI_SCENARIO_SCENARIOS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/mask.h"
#include "tensor/matrix.h"

namespace deepmvi {

/// The paper's missing-value scenarios (Sec 5.1.2 and 5.5.3) plus the
/// production-reality grid (overlapping outages, value-correlated
/// missingness, sensor drift).
enum class ScenarioKind {
  /// MCAR: each incomplete series loses 10% of its data in random blocks
  /// of constant size `block_size` (default 10). `percent_incomplete`
  /// controls how many series have missing data.
  kMcar,
  /// MissDisj: series i misses the range [i*T/N, (i+1)*T/N); blocks are
  /// disjoint across series.
  kMissDisj,
  /// MissOver: like MissDisj but blocks are twice as long so consecutive
  /// series overlap (the last series keeps length T/N).
  kMissOver,
  /// Blackout: all series miss the same range [t0, t0 + block_size).
  kBlackout,
  /// MissPoint: MCAR variant of Sec 5.5.3 — total missing fraction fixed
  /// at `missing_fraction` with block size varied via `block_size`.
  kMissPoint,
  /// MultiBlackout: `num_blackouts` seeded outage windows, each hitting a
  /// contiguous band of `series_span * N` series for `block_size` steps.
  /// Windows are placed independently and may overlap in both axes —
  /// the correlated multi-sensor outages a real fleet produces.
  kMultiBlackout,
  /// MNAR (missing not at random): missing blocks are anchored on cells
  /// whose value is at or above the per-series `mnar_quantile` quantile,
  /// so missingness correlates with value (saturating sensors clip high
  /// readings). Needs the data — generate via GenerateScenarioForData.
  kMnar,
  /// Drift: each series accumulates sensor drift that resets at periodic
  /// recalibration jumps (ApplyScenarioTransform rewrites the values);
  /// the mask hides `block_size`-length blocks straddling each jump, so
  /// imputers are scored across the discontinuity.
  kDrift,
};

/// Parameters for GenerateScenario.
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kMcar;
  /// Fraction of series that are incomplete, in (0, 1]. (MCAR / MissDisj /
  /// MissOver / MNAR / Drift; Blackout always affects all series.)
  double percent_incomplete = 0.1;
  /// Missing fraction within an incomplete series (MCAR, MissPoint, MNAR).
  double missing_fraction = 0.1;
  /// Block size (MCAR block length, Blackout length, MissPoint length,
  /// MultiBlackout window length, Drift straddle length).
  int block_size = 10;
  /// Blackout start position as a fraction of T (paper fixes t = 5%).
  double blackout_start_fraction = 0.05;
  /// MultiBlackout: number of outage windows.
  int num_blackouts = 4;
  /// MultiBlackout: fraction of series each window covers, in (0, 1].
  double series_span = 0.5;
  /// MNAR: per-series value quantile above which cells anchor missing
  /// blocks, in [0, 1).
  double mnar_quantile = 0.8;
  /// Drift: accumulated drift just before a recalibration jump, in units
  /// of the series' own standard deviation.
  double drift_rate = 1.0;
  /// Drift: steps between recalibration jumps (0 = T / 4).
  int recalibration_period = 0;
  uint64_t seed = 1;
};

/// True when the scenario's mask depends on the data values (MNAR) —
/// such kinds must go through GenerateScenarioForData.
bool ScenarioNeedsValues(ScenarioKind kind);

/// Builds the availability mask for `config` over an num_series x
/// num_times dataset. Ground truth is retained by the caller (the mask
/// only says which cells the imputation algorithms may read). Aborts for
/// value-dependent kinds (ScenarioNeedsValues).
Mask GenerateScenario(const ScenarioConfig& config, int num_series, int num_times);

/// Value-aware variant: like GenerateScenario but with the (possibly
/// transformed) data available, so MNAR can correlate missingness with
/// value. Value-free kinds delegate to GenerateScenario.
Mask GenerateScenarioForData(const ScenarioConfig& config, const Matrix& values);

/// Rewrites the ground-truth values for scenarios that model a corrupted
/// sensor rather than just hidden readings: Drift adds a per-series
/// sawtooth (linear drift resetting at each recalibration jump); every
/// other kind returns `values` unchanged. Deterministic — no randomness.
Matrix ApplyScenarioTransform(const ScenarioConfig& config, const Matrix& values);

/// Drift's recalibration jump positions for a length-T series (exposed so
/// tests and the mask generator agree on where the jumps are).
std::vector<int> DriftRecalibrationTimes(const ScenarioConfig& config,
                                         int num_times);

/// Human-readable name ("MCAR", "MissDisj", ...).
std::string ScenarioName(ScenarioKind kind);

/// The four headline scenarios of Sec 5.1.2 (excludes MissPoint).
std::vector<ScenarioKind> HeadlineScenarios();

}  // namespace deepmvi

#endif  // DEEPMVI_SCENARIO_SCENARIOS_H_
