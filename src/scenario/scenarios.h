#ifndef DEEPMVI_SCENARIO_SCENARIOS_H_
#define DEEPMVI_SCENARIO_SCENARIOS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/mask.h"

namespace deepmvi {

/// The paper's missing-value scenarios (Sec 5.1.2 and 5.5.3).
enum class ScenarioKind {
  /// MCAR: each incomplete series loses 10% of its data in random blocks
  /// of constant size `block_size` (default 10). `percent_incomplete`
  /// controls how many series have missing data.
  kMcar,
  /// MissDisj: series i misses the range [i*T/N, (i+1)*T/N); blocks are
  /// disjoint across series.
  kMissDisj,
  /// MissOver: like MissDisj but blocks are twice as long so consecutive
  /// series overlap (the last series keeps length T/N).
  kMissOver,
  /// Blackout: all series miss the same range [t0, t0 + block_size).
  kBlackout,
  /// MissPoint: MCAR variant of Sec 5.5.3 — total missing fraction fixed
  /// at `missing_fraction` with block size varied via `block_size`.
  kMissPoint,
};

/// Parameters for GenerateScenario.
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kMcar;
  /// Fraction of series that are incomplete, in (0, 1]. (MCAR / MissDisj /
  /// MissOver; Blackout always affects all series.)
  double percent_incomplete = 0.1;
  /// Missing fraction within an incomplete series (MCAR, MissPoint).
  double missing_fraction = 0.1;
  /// Block size (MCAR block length, Blackout length, MissPoint length).
  int block_size = 10;
  /// Blackout start position as a fraction of T (paper fixes t = 5%).
  double blackout_start_fraction = 0.05;
  uint64_t seed = 1;
};

/// Builds the availability mask for `config` over an num_series x
/// num_times dataset. Ground truth is retained by the caller (the mask
/// only says which cells the imputation algorithms may read).
Mask GenerateScenario(const ScenarioConfig& config, int num_series, int num_times);

/// Human-readable name ("MCAR", "MissDisj", ...).
std::string ScenarioName(ScenarioKind kind);

/// The four headline scenarios of Sec 5.1.2 (excludes MissPoint).
std::vector<ScenarioKind> HeadlineScenarios();

}  // namespace deepmvi

#endif  // DEEPMVI_SCENARIO_SCENARIOS_H_
