#include "serve/quality_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "obs/quantile_sketch.h"
#include "storage/data_source.h"

namespace deepmvi {
namespace serve {

QualityMonitor::QualityMonitor(QualityMonitorOptions options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    mae_hist_ = options_.metrics->HistogramNamed(
        "dmvi_model_selfscore_mae",
        "Masked self-scoring mean absolute error per round");
    rmse_hist_ = options_.metrics->HistogramNamed(
        "dmvi_model_selfscore_rmse",
        "Masked self-scoring root mean squared error per round");
  }
}

QualityMonitor::ModelState& QualityMonitor::StateLocked(
    const std::string& name, const TrainedDeepMvi* model) {
  ModelState& state = states_[name];
  if (state.model == model) return state;

  // First sighting or a registry reload: rebuild the live state against
  // the (possibly new) reference profile. Registry model pointers stay
  // valid for the registry's lifetime, so holding the raw pointer as the
  // generation key is safe.
  state = ModelState();
  state.model = model;
  const QualityProfile* profile =
      model != nullptr ? model->quality_profile() : nullptr;
  const int num_series = model != nullptr ? model->num_series() : 0;
  state.series.resize(static_cast<size_t>(std::max(0, num_series)));
  if (profile != nullptr && profile->num_series() == num_series) {
    state.has_reference = true;
    state.reference_missing_rate = profile->MissingRate();
    for (int r = 0; r < num_series; ++r) {
      const QualityProfile::Series& ref =
          profile->series[static_cast<size_t>(r)];
      SeriesState& out = state.series[static_cast<size_t>(r)];
      out.ref_mean = ref.mean;
      if (ref.count <= 0 || ref.decile_edges.empty()) continue;
      // Deduplicate the decile edges; each unique edge keeps the
      // cumulative decile mass of the last duplicate it absorbs.
      std::vector<double> cum;
      for (size_t d = 0; d < ref.decile_edges.size(); ++d) {
        const double edge = ref.decile_edges[d];
        const double mass = 0.1 * static_cast<double>(d + 1);
        if (!out.edges.empty() && edge <= out.edges.back()) {
          cum.back() = mass;
          continue;
        }
        out.edges.push_back(edge);
        cum.push_back(mass);
      }
      out.expected.reserve(out.edges.size() + 1);
      double prev = 0.0;
      for (double c : cum) {
        out.expected.push_back(c - prev);
        prev = c;
      }
      out.expected.push_back(1.0 - prev);
      out.bins.assign(out.edges.size() + 1, 0);
      // A single-bin (or degenerate) layout can't express drift; drop
      // the reference for this series so it never scores.
      if (out.edges.empty()) {
        out.expected.clear();
        out.bins.clear();
      }
    }
  }
  return state;
}

void QualityMonitor::ObserveInput(const std::string& name,
                                  const TrainedDeepMvi* model,
                                  const DataTensor& data, const Mask& mask) {
  const Matrix& values = data.values();
  const int num_series = values.rows();
  const int num_times = values.cols();

  MutexLock lock(&mutex_);
  ModelState& state = StateLocked(name, model);
  ++state.requests;
  const int rows =
      std::min(num_series, static_cast<int>(state.series.size()));
  for (int r = 0; r < rows; ++r) {
    SeriesState& series = state.series[static_cast<size_t>(r)];
    for (int t = 0; t < num_times; ++t) {
      if (!mask.available(r, t)) {
        ++series.live_missing;
        ++state.missing;
        continue;
      }
      const double v = values(r, t);
      if (std::isnan(v)) continue;
      ++series.live_count;
      series.live_sum += v;
      ++state.cells;
      if (!series.bins.empty()) {
        const size_t bin = static_cast<size_t>(
            std::lower_bound(series.edges.begin(), series.edges.end(), v) -
            series.edges.begin());
        ++series.bins[bin];
      }
    }
  }
}

bool QualityMonitor::SelfScoreDue(const std::string& name) {
  if (options_.selfscore_every <= 0) return false;
  MutexLock lock(&mutex_);
  ModelState& state = states_[name];
  ++state.predicts;
  return state.predicts % options_.selfscore_every == 0;
}

void QualityMonitor::SelfScore(const std::string& name,
                               const TrainedDeepMvi* model,
                               const std::shared_ptr<const DataTensor>& data,
                               const Mask& mask, uint64_t seed,
                               const std::string& request_id) {
  if (model == nullptr || data == nullptr) return;
  const Matrix& values = data->values();
  const int num_series = values.rows();
  const int num_times = values.cols();
  if (num_series <= 0 || num_times <= 0) return;

  // Deterministic cell choice: pick one series with observed cells, then
  // hide a window-confined sample of them. Everything below the lock is
  // a pure function of (data, mask, seed).
  Rng rng(seed);
  int row = -1;
  std::vector<int> observed_times;
  for (int attempt = 0; attempt < 8 && row < 0; ++attempt) {
    const int candidate = rng.UniformInt(num_series);
    for (int t = 0; t < num_times; ++t) {
      if (mask.available(candidate, t) && !std::isnan(values(candidate, t))) {
        observed_times.push_back(t);
      }
    }
    if (observed_times.size() >= 2) {
      row = candidate;
    } else {
      observed_times.clear();
    }
  }
  if (row < 0) return;

  // Confine candidates to ~two windows around a random anchor so the
  // side prediction touches one or two chunks, not the whole series.
  const int window = std::max(1, model->config().window);
  const int span = std::min(num_times, 2 * window);
  const int anchor_index =
      rng.UniformInt(static_cast<int>(observed_times.size()));
  const int t_center = observed_times[static_cast<size_t>(anchor_index)];
  const int t_lo = std::max(0, t_center - span / 2);
  const int t_hi = std::min(num_times, t_lo + span);
  std::vector<int> in_span;
  for (int t : observed_times) {
    if (t >= t_lo && t < t_hi) in_span.push_back(t);
  }
  if (in_span.empty()) return;

  int want = static_cast<int>(options_.selfscore_fraction *
                              static_cast<double>(in_span.size()));
  want = std::max(1, std::min({want, options_.selfscore_max_cells,
                               static_cast<int>(in_span.size())}));
  std::vector<int> picks = rng.SampleWithoutReplacement(
      static_cast<int>(in_span.size()), want);
  std::sort(picks.begin(), picks.end());

  Mask side = mask;
  std::vector<CellIndex> cells;
  cells.reserve(picks.size());
  for (int p : picks) {
    const int t = in_span[static_cast<size_t>(p)];
    side.set_missing(row, t);
    cells.push_back(CellIndex{row, t});
  }

  storage::InMemoryDataSource source(data.get());
  StatusOr<std::vector<double>> preds =
      model->PredictCells(source, side, cells);
  double mae = 0.0;
  double rmse = 0.0;
  bool ok = preds.ok() && preds.value().size() == cells.size();
  if (ok) {
    for (size_t i = 0; i < cells.size(); ++i) {
      const double truth = values(cells[i].series, cells[i].time);
      const double err = preds.value()[i] - truth;
      if (!std::isfinite(err)) {
        ok = false;
        break;
      }
      mae += std::abs(err);
      rmse += err * err;
    }
  }
  if (ok) {
    mae /= static_cast<double>(cells.size());
    rmse = std::sqrt(rmse / static_cast<double>(cells.size()));
  }

  {
    MutexLock lock(&mutex_);
    ModelState& state = StateLocked(name, model);
    if (!ok) {
      ++state.selfscore_failures;
      return;
    }
    ++state.selfscore_rounds;
    state.selfscore_cells += static_cast<int64_t>(cells.size());
    state.selfscore_mae_sum += mae;
    state.selfscore_rmse_sum += rmse;
    SelfScoreRecord record;
    record.request_id = request_id;
    record.cells = static_cast<int>(cells.size());
    record.mae = mae;
    record.rmse = rmse;
    record.at_seconds = clock_.ElapsedSeconds();
    state.history.push_back(std::move(record));
    while (static_cast<int>(state.history.size()) >
           std::max(1, options_.selfscore_history)) {
      state.history.pop_front();
    }
  }
  if (mae_hist_ != nullptr) mae_hist_->Observe(mae);
  if (rmse_hist_ != nullptr) rmse_hist_->Observe(rmse);
}

QualitySnapshot QualityMonitor::Snapshot() const {
  QualitySnapshot out;
  MutexLock lock(&mutex_);
  for (const auto& [name, state] : states_) {
    ModelQualitySnapshot model;
    model.model = name;
    model.has_reference = state.has_reference;
    model.requests_observed = state.requests;
    model.cells_observed = state.cells;
    model.cells_missing = state.missing;
    const int64_t total = state.cells + state.missing;
    model.input_missing_rate =
        total > 0 ? static_cast<double>(state.missing) /
                        static_cast<double>(total)
                  : 0.0;
    model.reference_missing_rate = state.reference_missing_rate;
    model.series.reserve(state.series.size());
    for (size_t r = 0; r < state.series.size(); ++r) {
      const SeriesState& series = state.series[r];
      SeriesDriftInfo info;
      info.series = static_cast<int>(r);
      info.live_count = series.live_count;
      info.ref_mean = series.ref_mean;
      info.live_mean =
          series.live_count > 0
              ? series.live_sum / static_cast<double>(series.live_count)
              : 0.0;
      if (!series.bins.empty() &&
          series.live_count >= options_.min_live_count) {
        info.psi = obs::PopulationStabilityIndex(series.expected, series.bins);
        info.ks =
            obs::KolmogorovSmirnovStatistic(series.expected, series.bins);
        info.scored = true;
        ++model.series_scored;
        model.drift_score = std::max(model.drift_score, info.psi);
        model.drift_ks = std::max(model.drift_ks, info.ks);
      }
      model.series.push_back(info);
    }
    model.selfscore_rounds = state.selfscore_rounds;
    model.selfscore_cells = state.selfscore_cells;
    if (state.selfscore_rounds > 0) {
      model.selfscore_mae_mean =
          state.selfscore_mae_sum / static_cast<double>(state.selfscore_rounds);
      model.selfscore_rmse_mean =
          state.selfscore_rmse_sum /
          static_cast<double>(state.selfscore_rounds);
    }
    model.selfscore_history.assign(state.history.begin(),
                                   state.history.end());
    if (model.has_reference) {
      out.max_drift_score = std::max(out.max_drift_score, model.drift_score);
    }
    out.models.push_back(std::move(model));
  }
  return out;
}

}  // namespace serve
}  // namespace deepmvi
