#ifndef DEEPMVI_SERVE_QUALITY_MONITOR_H_
#define DEEPMVI_SERVE_QUALITY_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "core/trained_deepmvi.h"
#include "obs/metrics.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {
namespace serve {

/// Knobs for QualityMonitor. All optional; the defaults keep the monitor
/// cheap enough to leave on in production (< 5% p95, BENCH AirQ-quality).
struct QualityMonitorOptions {
  /// Run masked self-scoring on every Nth successful full-model predict
  /// per model (0 disables self-scoring entirely).
  int selfscore_every = 32;
  /// Fraction of a request's *observed* cells hidden for self-scoring,
  /// before the cap below.
  double selfscore_fraction = 0.02;
  /// Hard cap on hidden cells per self-score, confined to one series so
  /// the side prediction costs one or two chunk passes, not a full
  /// Predict.
  int selfscore_max_cells = 16;
  /// A series participates in the drift score only after this many live
  /// observations (PSI on a handful of samples is noise).
  int64_t min_live_count = 50;
  /// Self-score records kept per model for /debug/quality.
  int selfscore_history = 64;
  /// Optional metrics registry for the selfscore MAE/RMSE histograms;
  /// borrowed, may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-series drift detail in a snapshot.
struct SeriesDriftInfo {
  int series = 0;
  double psi = 0.0;
  double ks = 0.0;
  int64_t live_count = 0;
  double ref_mean = 0.0;
  double live_mean = 0.0;
  /// True when this series had both a reference and enough live samples
  /// to contribute to the model's drift score.
  bool scored = false;
};

/// One masked self-scoring round.
struct SelfScoreRecord {
  std::string request_id;
  int cells = 0;
  double mae = 0.0;
  double rmse = 0.0;
  /// Monitor-clock seconds when the round completed.
  double at_seconds = 0.0;
};

/// Point-in-time quality view of one model.
struct ModelQualitySnapshot {
  std::string model;
  bool has_reference = false;
  int64_t requests_observed = 0;
  int64_t cells_observed = 0;   // Available cells folded into live bins.
  int64_t cells_missing = 0;    // Missing cells seen in request masks.
  double input_missing_rate = 0.0;
  double reference_missing_rate = 0.0;
  /// Max PSI / KS over scored series; 0 when nothing is scored yet.
  double drift_score = 0.0;
  double drift_ks = 0.0;
  int series_scored = 0;
  std::vector<SeriesDriftInfo> series;
  int64_t selfscore_rounds = 0;
  int64_t selfscore_cells = 0;
  double selfscore_mae_mean = 0.0;   // Over all rounds so far.
  double selfscore_rmse_mean = 0.0;
  std::vector<SelfScoreRecord> selfscore_history;  // Oldest first.
};

struct QualitySnapshot {
  std::vector<ModelQualitySnapshot> models;  // Sorted by name.
  /// Max drift_score over models with a reference; -1 when none has one.
  double max_drift_score = -1.0;
};

/// Model-quality monitor for the serving path: folds every validated
/// request input into per-model live distributions, scores them against
/// the checkpoint's training reference profile (PSI / KS per series),
/// and periodically runs masked self-scoring — deterministically hide a
/// few observed cells on a side mask, impute them, record MAE/RMSE
/// against the hidden truth — giving a live accuracy signal with no
/// ground-truth dependency.
///
/// The monitor is strictly read-only with respect to serving: it never
/// touches request or response state, so served bytes are cmp-identical
/// with the monitor on or off (serve_test locks this in). Thread-safe;
/// per-model state lives under one mutex, and the self-score prediction
/// itself runs outside the lock.
class QualityMonitor {
 public:
  explicit QualityMonitor(QualityMonitorOptions options = {});

  /// Folds one validated request input into the model's live state.
  /// `model` carries the reference profile (absent for legacy
  /// checkpoints: live moments and missing rates still accumulate, drift
  /// stays unscored). A changed model pointer for the same name — a
  /// registry reload — resets the live state against the new reference.
  void ObserveInput(const std::string& name, const TrainedDeepMvi* model,
                    const DataTensor& data, const Mask& mask);

  /// Counts one successful full-model predict for `name` and returns
  /// true when this one should be self-scored (every Nth).
  bool SelfScoreDue(const std::string& name);

  /// Runs one masked self-scoring round: seeded by `seed` (the service
  /// derives it from the request's data/mask fingerprints, so replays
  /// hide the same cells), hides up to selfscore_max_cells observed
  /// cells of one series on a copy of `mask`, predicts them with
  /// `model`, and records MAE/RMSE. Failures are counted and dropped —
  /// self-scoring must never surface to the caller.
  void SelfScore(const std::string& name, const TrainedDeepMvi* model,
                 const std::shared_ptr<const DataTensor>& data,
                 const Mask& mask, uint64_t seed,
                 const std::string& request_id);

  QualitySnapshot Snapshot() const;

  const QualityMonitorOptions& options() const { return options_; }

 private:
  struct SeriesState {
    /// Deduplicated reference decile edges and the expected fraction of
    /// each of the edges.size() + 1 bins; empty without a reference.
    std::vector<double> edges;
    std::vector<double> expected;
    std::vector<int64_t> bins;  // Live counts, edges.size() + 1 entries.
    int64_t live_count = 0;
    int64_t live_missing = 0;
    double live_sum = 0.0;
    double ref_mean = 0.0;
  };
  struct ModelState {
    const TrainedDeepMvi* model = nullptr;
    bool has_reference = false;
    double reference_missing_rate = 0.0;
    std::vector<SeriesState> series;
    int64_t requests = 0;
    int64_t cells = 0;
    int64_t missing = 0;
    int64_t predicts = 0;  // Drives the self-score cadence.
    int64_t selfscore_rounds = 0;
    int64_t selfscore_cells = 0;
    int64_t selfscore_failures = 0;
    double selfscore_mae_sum = 0.0;
    double selfscore_rmse_sum = 0.0;
    std::deque<SelfScoreRecord> history;
  };

  /// Finds-or-creates the state for `name`, rebuilding it against the
  /// model's reference profile when the pointer changed (reload).
  ModelState& StateLocked(const std::string& name,
                          const TrainedDeepMvi* model)
      DMVI_REQUIRES(mutex_);

  const QualityMonitorOptions options_;
  const Stopwatch clock_;
  obs::Histogram* mae_hist_ = nullptr;   // Null without a registry.
  obs::Histogram* rmse_hist_ = nullptr;
  mutable Mutex mutex_;
  std::map<std::string, ModelState> states_ DMVI_GUARDED_BY(mutex_);
};

}  // namespace serve
}  // namespace deepmvi

#endif  // DEEPMVI_SERVE_QUALITY_MONITOR_H_
