#include "serve/registry.h"

#include <utility>

namespace deepmvi {
namespace serve {

Status ModelRegistry::Register(const std::string& name, TrainedDeepMvi model) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  if (!model.trained()) {
    return Status::FailedPrecondition("cannot register an untrained model '" +
                                      name + "'");
  }
  auto holder = std::make_shared<const TrainedDeepMvi>(std::move(model));
  MutexLock lock(&mutex_);
  auto it = models_.find(name);
  if (it != models_.end()) {
    retired_.push_back(std::move(it->second));
    it->second = std::move(holder);
    ++reloads_;
  } else {
    models_.emplace(name, std::move(holder));
  }
  ++registrations_;
  last_model_ = name;
  last_registered_at_ = clock_.ElapsedSeconds();
  return Status::OK();
}

Status ModelRegistry::LoadFromFile(const std::string& name,
                                   const std::string& path) {
  StatusOr<TrainedDeepMvi> model = TrainedDeepMvi::Load(path);
  if (!model.ok()) return model.status();
  return Register(name, std::move(model).value());
}

const TrainedDeepMvi* ModelRegistry::Get(const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::Names() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

int64_t ModelRegistry::size() const {
  MutexLock lock(&mutex_);
  return static_cast<int64_t>(models_.size());
}

ModelRegistry::ReloadInfo ModelRegistry::reload_info() const {
  MutexLock lock(&mutex_);
  ReloadInfo info;
  info.registrations = registrations_;
  info.reloads = reloads_;
  info.last_model = last_model_;
  if (registrations_ > 0) {
    info.model_age_seconds = clock_.ElapsedSeconds() - last_registered_at_;
  }
  return info;
}

}  // namespace serve
}  // namespace deepmvi
