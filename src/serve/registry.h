#ifndef DEEPMVI_SERVE_REGISTRY_H_
#define DEEPMVI_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "core/trained_deepmvi.h"

namespace deepmvi {
namespace serve {

/// Thread-safe registry of loaded models, keyed by caller-chosen name.
/// Models are immutable once registered (Predict is const and
/// deterministic), so concurrent request workers share them without
/// locking beyond the map lookup.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a trained model under `name`. Re-registering an existing
  /// name atomically swaps the model (a deployment update); requests
  /// already holding the old pointer finish against the old weights.
  Status Register(const std::string& name, TrainedDeepMvi model);

  /// Loads a checkpoint from `path` (TrainedDeepMvi::Load) and registers
  /// it under `name`.
  Status LoadFromFile(const std::string& name, const std::string& path);

  /// The model registered under `name`, or nullptr. The pointer stays
  /// valid until the registry is destroyed (models are retired, not
  /// deleted, on re-register — bounded by the number of deployments).
  const TrainedDeepMvi* Get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  int64_t size() const;

  /// Registration/reload accounting for /metrics and /debug/state: how
  /// often models were (re)registered and how stale the newest one is.
  struct ReloadInfo {
    int64_t registrations = 0;  // All successful Register calls.
    int64_t reloads = 0;        // Re-registers that swapped a live model.
    std::string last_model;     // Name of the most recent registration.
    /// Seconds since the most recent registration; -1 when none happened
    /// (0 would falsely read as "just loaded").
    double model_age_seconds = -1.0;
  };
  ReloadInfo reload_info() const;

 private:
  mutable Mutex mutex_;
  const Stopwatch clock_;
  std::map<std::string, std::shared_ptr<const TrainedDeepMvi>> models_
      DMVI_GUARDED_BY(mutex_);
  /// Retired generations parked so outstanding raw pointers stay valid.
  std::vector<std::shared_ptr<const TrainedDeepMvi>> retired_
      DMVI_GUARDED_BY(mutex_);
  int64_t registrations_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t reloads_ DMVI_GUARDED_BY(mutex_) = 0;
  std::string last_model_ DMVI_GUARDED_BY(mutex_);
  double last_registered_at_ DMVI_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace serve
}  // namespace deepmvi

#endif  // DEEPMVI_SERVE_REGISTRY_H_
