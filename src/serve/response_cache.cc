#include "serve/response_cache.h"

#include <algorithm>
#include <utility>

#include "storage/chunk_store.h"

namespace deepmvi {
namespace serve {

ResponseCache::ResponsePtr ResponseCache::Get(const void* model,
                                              uint64_t data_fingerprint,
                                              uint64_t mask_fingerprint) {
  const Key key{model, data_fingerprint, mask_fingerprint};
  MutexLock lock(&mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.response;
}

void ResponseCache::Put(const void* model, uint64_t data_fingerprint,
                        uint64_t mask_fingerprint, CachedResponse response) {
  const Key key{model, data_fingerprint, mask_fingerprint};
  const int64_t bytes =
      static_cast<int64_t>(sizeof(CachedResponse)) +
      static_cast<int64_t>(response.imputed.rows()) * response.imputed.cols() *
          static_cast<int64_t>(sizeof(double));
  if (bytes > byte_budget_) return;  // Never retain a budget-buster.
  auto holder = std::make_shared<const CachedResponse>(std::move(response));
  MutexLock lock(&mu_);
  if (entries_.find(key) != entries_.end()) return;  // First insert wins.
  EvictToFitLocked(bytes);
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(holder), bytes, lru_.begin()});
  stats_.bytes_cached += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_cached);
}

void ResponseCache::EvictToFitLocked(int64_t incoming_bytes) {
  while (!lru_.empty() && stats_.bytes_cached + incoming_bytes > byte_budget_) {
    const Key& victim = lru_.back();
    const auto it = entries_.find(victim);
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
    lru_.pop_back();
  }
}

ResponseCache::Stats ResponseCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ResponseCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
}

uint64_t FingerprintData(const DataTensor& data) {
  const Matrix& values = data.values();
  return storage::Fnv1a64(values.data(), static_cast<size_t>(values.rows()) *
                                             values.cols() * sizeof(double));
}

uint64_t FingerprintMask(const Mask& mask) {
  // The mask's storage is private; hash cell by cell with the same FNV-1a
  // constants (one byte per cell, matching the internal representation).
  uint64_t hash = 14695981039346656037ULL;
  for (int r = 0; r < mask.rows(); ++r) {
    for (int t = 0; t < mask.cols(); ++t) {
      hash ^= mask.available(r, t) ? 1u : 0u;
      hash *= 1099511628211ULL;
    }
  }
  // Fold in the shape so (2x3) and (3x2) masks with equal cells differ.
  hash ^= static_cast<uint64_t>(mask.rows()) << 32 |
          static_cast<uint32_t>(mask.cols());
  hash *= 1099511628211ULL;
  return hash;
}

}  // namespace serve
}  // namespace deepmvi
