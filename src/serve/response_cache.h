#ifndef DEEPMVI_SERVE_RESPONSE_CACHE_H_
#define DEEPMVI_SERVE_RESPONSE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {
namespace serve {

/// Bytes-budgeted, thread-safe LRU cache of imputation results, the
/// serving-side sibling of storage::ChunkCache (same eviction discipline,
/// same shared_ptr pinning: eviction drops only the cache's reference, so
/// a response being copied out stays valid).
///
/// Keys are (model identity, data fingerprint, mask fingerprint):
///  - model identity is the registry's TrainedDeepMvi pointer — models are
///    retired, never destroyed, on re-register, so the pointer uniquely
///    names one set of weights for the process lifetime. A warm reload
///    swaps the pointer and therefore *cannot* serve stale cached results;
///    old entries simply age out of the LRU.
///  - data/mask fingerprints are FNV-1a 64 over the raw cell bytes
///    (storage::Fnv1a64, the chunk-store checksum function).
/// Predict is deterministic, so a hit is bit-identical to recomputing —
/// the cache changes latency, never bytes (net_test/serve_test assert
/// this).
class ResponseCache {
 public:
  /// An entry: the completed matrix plus the response counters that went
  /// with it (so a hit reproduces the full response, not just the values).
  struct CachedResponse {
    Matrix imputed;
    int64_t cells_imputed = 0;
    int64_t rows_touched = 0;
  };
  using ResponsePtr = std::shared_ptr<const CachedResponse>;

  /// `byte_budget` <= 0 disables retention entirely (every probe misses).
  explicit ResponseCache(int64_t byte_budget) : byte_budget_(byte_budget) {}
  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// The cached response for the key, or nullptr (counted as hit/miss).
  ResponsePtr Get(const void* model, uint64_t data_fingerprint,
                  uint64_t mask_fingerprint);

  /// Inserts a response, evicting LRU entries to fit the budget. An entry
  /// larger than the whole budget is not retained. Racing inserts for the
  /// same key keep the first.
  void Put(const void* model, uint64_t data_fingerprint,
           uint64_t mask_fingerprint, CachedResponse response);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t bytes_cached = 0;
    int64_t peak_bytes = 0;
  };
  Stats stats() const;
  int64_t byte_budget() const { return byte_budget_; }

  /// Drops every retained entry (outstanding ResponsePtrs stay valid).
  void Clear();

 private:
  struct Key {
    const void* model;
    uint64_t data_fp;
    uint64_t mask_fp;
    bool operator==(const Key& other) const {
      return model == other.model && data_fp == other.data_fp &&
             mask_fp == other.mask_fp;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // Splitmix-style fold of the three words.
      uint64_t h = reinterpret_cast<uintptr_t>(key.model);
      h = (h ^ (key.data_fp >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ key.data_fp) * 0x94d049bb133111ebULL;
      h = (h ^ (key.mask_fp >> 27)) * 0xbf58476d1ce4e5b9ULL;
      h ^= key.mask_fp;
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    ResponsePtr response;
    int64_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  void EvictToFitLocked(int64_t incoming_bytes) DMVI_REQUIRES(mu_);

  const int64_t byte_budget_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ DMVI_GUARDED_BY(mu_);
  std::list<Key> lru_ DMVI_GUARDED_BY(mu_);  // Front = most recent.
  Stats stats_ DMVI_GUARDED_BY(mu_);
};

/// FNV-1a 64 fingerprints of the raw cell bytes, shared by the service's
/// cache probe and tests.
uint64_t FingerprintData(const DataTensor& data);
uint64_t FingerprintMask(const Mask& mask);

}  // namespace serve
}  // namespace deepmvi

#endif  // DEEPMVI_SERVE_RESPONSE_CACHE_H_
