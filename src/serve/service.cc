#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "baselines/simple.h"
#include "common/parallel.h"
#include "obs/profiler.h"

namespace deepmvi {
namespace serve {
namespace {

/// Series rows carrying at least one missing (= imputed) cell.
int64_t CountRowsTouched(const Mask& mask) {
  int64_t rows = 0;
  for (int r = 0; r < mask.rows(); ++r) {
    for (int t = 0; t < mask.cols(); ++t) {
      if (mask.missing(r, t)) {
        ++rows;
        break;
      }
    }
  }
  return rows;
}

}  // namespace

ImputationService::ImputationService(ServiceConfig config)
    : config_(config) {
  if (config_.cache_mb > 0.0) {
    cache_ = std::make_unique<ResponseCache>(
        static_cast<int64_t>(config_.cache_mb * 1024.0 * 1024.0));
  }
  if (config_.metrics != nullptr) {
    stage_queue_wait_ = config_.metrics->HistogramNamed(
        "dmvi_stage_queue_wait_seconds",
        "Time a submitted request spent queued before its batch started.");
    stage_batch_assemble_ = config_.metrics->HistogramNamed(
        "dmvi_stage_batch_assemble_seconds",
        "Dispatcher time from wake-up to a dispatched batch (linger included).");
    stage_predict_ = config_.metrics->HistogramNamed(
        "dmvi_stage_predict_seconds",
        "Full-model Predict time per request.");
    stage_cache_probe_ = config_.metrics->HistogramNamed(
        "dmvi_stage_cache_probe_seconds",
        "Response-cache lookup time per probed request.");
    stage_fallback_ = config_.metrics->HistogramNamed(
        "dmvi_stage_fallback_seconds",
        "Degraded-mode fallback imputer time per request.");
  }
}

ImputationService::~ImputationService() { Shutdown(); }

ImputationResponse ImputationService::Process(const ImputationRequest& request,
                                              bool degrade) {
  obs::ProfileLabelScope profile_label("service.process");
  obs::Span span(config_.tracer, "service.process", request.trace_parent);
  if (span.active() && !request.request_id.empty()) {
    span.set_request_id(request.request_id);
  }
  ImputationResponse response;
  try {
    const TrainedDeepMvi* model = registry_.Get(request.model);
    if (model == nullptr) {
      response.status = Status::NotFound("no model registered under '" +
                                         request.model + "'");
      return response;
    }
    if (request.data == nullptr) {
      response.status = Status::InvalidArgument("request carries no dataset");
      return response;
    }
    response.status = model->ValidateInput(*request.data, request.mask);
    if (!response.status.ok()) return response;

    // Quality monitoring folds the validated input into per-model live
    // distributions. Strictly observational: nothing below reads monitor
    // state, so responses are byte-identical with the monitor off.
    if (config_.quality != nullptr) {
      config_.quality->ObserveInput(request.model, model, *request.data,
                                    request.mask);
    }

    if (degrade) {
      // Overloaded: answer with the cheap fallback imputer. The request
      // still went through the same lookup + validation, so error
      // behavior is identical; only the fill values differ. The cache is
      // bypassed in both directions — a fallback answer must never be
      // served later as a model answer or vice versa.
      {
        obs::Span fallback_span(config_.tracer, "degrade.fallback");
        if (fallback_span.active()) {
          fallback_span.set_request_id(request.request_id);
        }
        Stopwatch fallback_watch;
        if (config_.degrade_method == "Mean") {
          MeanImputer fallback;
          response.imputed = fallback.Impute(*request.data, request.mask);
        } else {
          LinearInterpolationImputer fallback;
          response.imputed = fallback.Impute(*request.data, request.mask);
        }
        if (stage_fallback_ != nullptr) {
          stage_fallback_->Observe(fallback_watch.ElapsedSeconds());
        }
      }
      response.degraded = true;
      response.degrade_method =
          config_.degrade_method == "Mean" ? "Mean" : "LinearInterp";
      response.cells_imputed = request.mask.CountMissing();
      response.rows_touched = CountRowsTouched(request.mask);
      telemetry_.RecordDegraded();
      return response;
    }

    // Cache probe: the model pointer names one immutable set of weights
    // (registry retirements keep it unique for the process lifetime), so
    // a hit is bit-identical to recomputing.
    uint64_t data_fp = 0, mask_fp = 0;
    if (cache_ != nullptr) {
      obs::Span probe_span(config_.tracer, "cache.probe");
      if (probe_span.active()) probe_span.set_request_id(request.request_id);
      Stopwatch probe_watch;
      data_fp = MemoizedDataFingerprint(request.data);
      mask_fp = FingerprintMask(request.mask);
      ResponseCache::ResponsePtr hit = cache_->Get(model, data_fp, mask_fp);
      if (stage_cache_probe_ != nullptr) {
        stage_cache_probe_->Observe(probe_watch.ElapsedSeconds());
      }
      if (probe_span.active()) {
        probe_span.AddArg("hit", hit != nullptr ? "true" : "false");
      }
      if (hit != nullptr) {
        telemetry_.RecordCacheLookup(true);
        response.cache_hit = true;
        response.imputed = hit->imputed;
        response.cells_imputed = hit->cells_imputed;
        response.rows_touched = hit->rows_touched;
        return response;
      }
      telemetry_.RecordCacheLookup(false);
    }

    {
      obs::Span predict_span(config_.tracer, "model.predict");
      if (predict_span.active()) predict_span.set_request_id(request.request_id);
      Stopwatch predict_watch;
      response.imputed = model->Predict(*request.data, request.mask);
      response.predict_seconds = predict_watch.ElapsedSeconds();
      if (stage_predict_ != nullptr) {
        stage_predict_->Observe(response.predict_seconds);
      }
    }
    response.cells_imputed = request.mask.CountMissing();
    response.rows_touched = CountRowsTouched(request.mask);
    if (cache_ != nullptr) {
      ResponseCache::CachedResponse cached;
      cached.imputed = response.imputed;
      cached.cells_imputed = response.cells_imputed;
      cached.rows_touched = response.rows_touched;
      cache_->Put(model, data_fp, mask_fp, std::move(cached));
    }
    // Masked self-scoring rides every Nth successful full-model predict
    // (cache hits, degraded answers, and errors returned above). Seeded
    // from the request fingerprints so a replayed request hides the same
    // cells; the response is already complete and is never touched.
    if (config_.quality != nullptr &&
        config_.quality->SelfScoreDue(request.model)) {
      obs::Span score_span(config_.tracer, "quality.selfscore");
      if (score_span.active()) score_span.set_request_id(request.request_id);
      const uint64_t seed =
          MemoizedDataFingerprint(request.data) ^
          (FingerprintMask(request.mask) * 0x9E3779B97F4A7C15ULL);
      config_.quality->SelfScore(request.model, model, request.data,
                                 request.mask, seed, request.request_id);
    }
  } catch (const std::exception& e) {
    response.status = Status::Internal(e.what());
    response.imputed = Matrix();
  }
  return response;
}

uint64_t ImputationService::MemoizedDataFingerprint(
    const std::shared_ptr<const DataTensor>& data) {
  {
    MutexLock lock(&fingerprint_mutex_);
    // lock() proves the memoized dataset is still alive, so its address
    // cannot have been recycled for a different tensor.
    if (fingerprinted_data_.lock() == data) return fingerprint_value_;
  }
  const uint64_t fingerprint = FingerprintData(*data);
  MutexLock lock(&fingerprint_mutex_);
  fingerprinted_data_ = data;
  fingerprint_value_ = fingerprint;
  return fingerprint;
}

void ImputationService::RecordFlight(const ImputationRequest& request,
                                     const ImputationResponse& response,
                                     bool shed) {
  if (config_.recorder == nullptr) return;
  obs::RequestRecord record;
  record.request_id = request.request_id;
  record.model = request.model;
  record.status = response.status.ToString();
  record.ok = response.status.ok();
  record.latency_seconds = response.latency_seconds;
  record.queue_seconds = response.queue_seconds;
  record.predict_seconds = response.predict_seconds;
  record.cells_imputed = response.cells_imputed;
  record.cache_hit = response.cache_hit;
  record.degraded = response.degraded;
  record.degrade_method = response.degrade_method;
  record.shed = shed;
  config_.recorder->Record(std::move(record));
}

ImputationResponse ImputationService::Impute(const ImputationRequest& request) {
  Stopwatch watch;
  ImputationResponse response = Process(request);
  response.latency_seconds = watch.ElapsedSeconds();
  telemetry_.RecordRequest(response.latency_seconds, response.rows_touched,
                           response.cells_imputed, response.status.ok(),
                           request.request_id);
  RecordFlight(request, response, /*shed=*/false);
  return response;
}

std::vector<ImputationResponse> ImputationService::ImputeBatch(
    const std::vector<ImputationRequest>& requests) {
  const int total = static_cast<int>(requests.size());
  // Pre-allocated slots: worker i writes response i only, so the aggregate
  // is identical to a serial run regardless of scheduling (the RunSuite
  // pattern).
  std::vector<ImputationResponse> responses(requests.size());
  telemetry_.RecordBatch(total);
  ParallelFor(total, config_.threads, [&](int i) {
    Stopwatch watch;
    responses[i] = Process(requests[i]);
    responses[i].latency_seconds = watch.ElapsedSeconds();
    telemetry_.RecordRequest(responses[i].latency_seconds,
                             responses[i].rows_touched,
                             responses[i].cells_imputed,
                             responses[i].status.ok(),
                             requests[i].request_id);
    RecordFlight(requests[i], responses[i], /*shed=*/false);
  });
  return responses;
}

int ImputationService::queue_depth() const {
  MutexLock lock(&queue_mutex_);
  return static_cast<int>(queue_.size());
}

void ImputationService::SetPressureProbe(std::function<int()> probe) {
  MutexLock lock(&queue_mutex_);
  pressure_probe_ = std::move(probe);
}

int ImputationService::PressureDepth() const {
  std::function<int()> probe;
  int depth = 0;
  {
    MutexLock lock(&queue_mutex_);
    depth = static_cast<int>(queue_.size());
    probe = pressure_probe_;
  }
  // The probe runs outside queue_mutex_ — it may take its own locks (the
  // HTTP server's accept queue) and must not be able to deadlock against
  // Submit.
  if (probe) depth += probe();
  return depth;
}

std::future<ImputationResponse> ImputationService::Submit(
    ImputationRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  std::future<ImputationResponse> future = pending.promise.get_future();

  // Admission control: read the pressure signal before touching the
  // queue. Racing Submits may see slightly stale depths — watermarks are
  // thresholds, not exact counters, and the jitter is bounded by the
  // number of in-flight Submits.
  bool shed = false, degrade = false;
  if (config_.shed_watermark > 0 || config_.degrade_watermark > 0) {
    const int depth = PressureDepth();
    if (config_.shed_watermark > 0 && depth >= config_.shed_watermark) {
      shed = true;
    } else if (config_.degrade_watermark > 0 &&
               depth >= config_.degrade_watermark) {
      degrade = true;
    }
  }
  if (shed) {
    ImputationResponse response;
    response.status = Status::FailedPrecondition(
        "overloaded: pressure depth crossed the shed watermark (" +
        std::to_string(config_.shed_watermark) + "); retry later");
    response.latency_seconds = pending.queued.ElapsedSeconds();
    telemetry_.RecordShed();
    telemetry_.RecordRequest(response.latency_seconds, 0, 0, false,
                             pending.request.request_id);
    RecordFlight(pending.request, response, /*shed=*/true);
    pending.promise.set_value(std::move(response));
    return future;
  }
  pending.degrade = degrade;
  if (config_.tracer != nullptr && config_.tracer->enabled()) {
    pending.submitted_at = config_.tracer->Now();
  }
  {
    MutexLock lock(&queue_mutex_);
    DMVI_CHECK(!stop_) << "Submit after Shutdown";
    queue_.push_back(std::move(pending));
    EnsureDispatcherLocked();
  }
  queue_cv_.SignalAll();
  return future;
}

void ImputationService::EnsureDispatcherLocked() {
  // Lazy start keeps purely synchronous users thread-free.
  if (dispatcher_started_) return;
  dispatcher_started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void ImputationService::RunBatch(std::vector<PendingRequest>& batch) {
  const int total = static_cast<int>(batch.size());
  telemetry_.RecordBatch(total);
  obs::Span batch_span(config_.tracer, "batch.run");
  if (batch_span.active()) {
    batch_span.AddArg("batch_size", std::to_string(total));
  }
  ParallelFor(total, config_.threads, [&](int i) {
    // Queue wait ends when its batch starts: record it retrospectively as
    // a sibling preceding service.process under the request's parent.
    const double queue_seconds = batch[i].queued.ElapsedSeconds();
    if (stage_queue_wait_ != nullptr) {
      stage_queue_wait_->Observe(queue_seconds);
    }
    obs::Tracer* tracer = config_.tracer;
    if (tracer != nullptr && tracer->enabled()) {
      obs::SpanContext parent = batch[i].request.trace_parent;
      obs::SpanContext wait;
      wait.trace_id = parent.trace_id != 0 ? parent.trace_id : tracer->NewId();
      wait.span_id = tracer->NewId();
      tracer->RecordSpan("queue.wait", wait,
                         parent.trace_id != 0 ? parent.span_id : 0,
                         batch[i].submitted_at,
                         tracer->Now() - batch[i].submitted_at,
                         batch[i].request.request_id);
    }
    ImputationResponse response = Process(batch[i].request, batch[i].degrade);
    // Caller-observed latency: queue wait + batch formation + compute.
    response.latency_seconds = batch[i].queued.ElapsedSeconds();
    response.queue_seconds = queue_seconds;
    telemetry_.RecordRequest(response.latency_seconds, response.rows_touched,
                             response.cells_imputed, response.status.ok(),
                             batch[i].request.request_id);
    RecordFlight(batch[i].request, response, /*shed=*/false);
    batch[i].promise.set_value(std::move(response));
  });
}

void ImputationService::DispatchLoop() {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      MutexLock lock(&queue_mutex_);
      // Explicit wait loops (rather than predicate overloads) so the
      // thread-safety analysis sees the lock across the whole condition.
      while (!stop_ && queue_.empty()) queue_cv_.Wait(&queue_mutex_);
      if (queue_.empty() && stop_) return;
      Stopwatch assemble_watch;

      // Micro-batching: after the first request arrives, linger briefly so
      // concurrent callers coalesce into one batch (unless it is already
      // full or the service is draining).
      if (config_.batch_linger_ms > 0.0 && !stop_ &&
          static_cast<int>(queue_.size()) < config_.max_batch_size) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(
                    config_.batch_linger_ms));
        while (!stop_ &&
               static_cast<int>(queue_.size()) < config_.max_batch_size) {
          if (!queue_cv_.WaitUntil(&queue_mutex_, deadline)) break;
        }
      }

      const int take = std::min<int>(static_cast<int>(queue_.size()),
                                     std::max(1, config_.max_batch_size));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (stage_batch_assemble_ != nullptr && !batch.empty()) {
        stage_batch_assemble_->Observe(assemble_watch.ElapsedSeconds());
      }
    }
    if (!batch.empty()) RunBatch(batch);
  }
}

void ImputationService::Shutdown() {
  // The thread handle is moved out under the lock (it is written by
  // EnsureDispatcherLocked under the same lock) and joined outside it, so
  // the join cannot deadlock against the dispatcher draining the queue.
  std::thread dispatcher;
  {
    MutexLock lock(&queue_mutex_);
    stop_ = true;
    dispatcher = std::move(dispatcher_);
  }
  queue_cv_.SignalAll();
  if (dispatcher.joinable()) dispatcher.join();
}

}  // namespace serve
}  // namespace deepmvi
