#ifndef DEEPMVI_SERVE_SERVICE_H_
#define DEEPMVI_SERVE_SERVICE_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/quality_monitor.h"
#include "serve/registry.h"
#include "serve/response_cache.h"
#include "serve/telemetry.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"

namespace deepmvi {
namespace serve {

/// One imputation query: a dataset slice plus the availability mask whose
/// missing cells the named model should fill. The dataset is shared, not
/// copied — a replayed workload of N queries against one dataset must
/// queue O(dataset) memory, not N dense copies.
struct ImputationRequest {
  std::string model;  // Registry key.
  std::shared_ptr<const DataTensor> data;
  Mask mask;
  /// Correlation id stamped on every span this request produces (the HTTP
  /// layer echoes it as x-dmvi-request-id). Empty is fine: spans are then
  /// anonymous.
  std::string request_id;
  /// Span the request's service-side work should parent to — set by the
  /// HTTP handler so the span tree stays connected across the worker /
  /// dispatcher thread hop. Zero means "start a fresh trace".
  obs::SpanContext trace_parent;
};

/// The answer to one request. `status` is non-OK for unknown models,
/// shape mismatches, or internal failures; `imputed` is then empty.
struct ImputationResponse {
  Status status;
  Matrix imputed;
  /// Caller-observed latency: compute only on the synchronous paths,
  /// queue + batch + compute on the Submit path.
  double latency_seconds = 0.0;
  int64_t cells_imputed = 0;   // Missing cells filled.
  int64_t rows_touched = 0;    // Series rows with >= 1 filled cell.
  /// True when the degradation ladder answered with the cheap fallback
  /// imputer instead of the full model (overload admission control).
  bool degraded = false;
  /// The fallback that answered ("LinearInterp" / "Mean"); empty when
  /// the full model ran.
  std::string degrade_method;
  /// True when the response cache answered (bit-identical to recomputing;
  /// only the latency differs).
  bool cache_hit = false;
  /// Full-model Predict time; 0 on cache hits, fallback, and errors.
  double predict_seconds = 0.0;
  /// Dispatcher queue wait (Submit path; 0 on the synchronous paths).
  double queue_seconds = 0.0;
};

/// Tuning knobs of the serving loop.
struct ServiceConfig {
  /// Upper bound on requests fused into one micro-batch (Submit path).
  int max_batch_size = 8;
  /// After the first queued request, the dispatcher lingers this long for
  /// more arrivals before launching a partial batch. 0 dispatches
  /// immediately.
  double batch_linger_ms = 1.0;
  /// Worker threads fanned over a batch (<= 0: hardware concurrency).
  int threads = 0;
  /// Response cache budget in MB, keyed on (model, data fingerprint, mask
  /// fingerprint). 0 disables caching — the default, so the determinism
  /// suites exercise the compute path and results never depend on cache
  /// state. Hits are bit-identical to recomputing (Predict is
  /// deterministic); they only change latency.
  double cache_mb = 0.0;
  /// Degradation ladder (Submit path only; 0 disables a rung). The
  /// pressure signal is the service backlog plus whatever the pressure
  /// probe reports (dmvi_serve wires the HTTP accept queue in). At or
  /// above `degrade_watermark`, new requests are answered by the cheap
  /// `degrade_method` imputer instead of the model — accuracy traded for
  /// latency instead of stalling. At or above `shed_watermark`, new
  /// requests are rejected immediately with FailedPrecondition (the HTTP
  /// layer maps it to 503).
  int degrade_watermark = 0;
  int shed_watermark = 0;
  /// Fallback imputer: "LinearInterp" (default) or "Mean".
  std::string degrade_method = "LinearInterp";
  /// Optional observability hooks, both borrowed (must outlive the
  /// service; null disables). The registry receives per-stage latency
  /// histograms (queue wait, batch assembly, predict, cache probe,
  /// fallback); the tracer receives per-request spans.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Optional flight recorder, borrowed like the hooks above (null
  /// disables). Every completed request — including cache hits, degraded
  /// answers, and sheds — appends one RequestRecord; recording never
  /// touches response bytes, so the byte-identity bar holds with it on.
  obs::FlightRecorder* recorder = nullptr;
  /// Optional model-quality monitor, borrowed like the hooks above (null
  /// disables). Every validated request input is folded into the
  /// monitor's live distributions, and every Nth successful full-model
  /// predict triggers a masked self-scoring round on a side copy of the
  /// mask. Strictly read-only for serving: responses are cmp-identical
  /// with the monitor on or off.
  QualityMonitor* quality = nullptr;
};

/// Long-lived imputation service: owns loaded models (via the registry),
/// micro-batches concurrent requests, and fans batch inference over
/// ParallelFor with deterministic per-slot aggregation mirroring RunSuite
/// (src/eval/suite.cc) — each request writes only its own pre-allocated
/// response slot, so results are bit-identical for any thread count and
/// any batching schedule (Predict itself consumes no randomness).
///
/// Three entry points, all thread-safe:
///  - Impute: synchronous single request.
///  - ImputeBatch: synchronous, responses in request order.
///  - Submit: enqueue and get a future; a background dispatcher fuses
///    queued requests into micro-batches (up to max_batch_size, lingering
///    batch_linger_ms for co-arrivals) — the serving pattern for heavy
///    query traffic.
class ImputationService {
 public:
  explicit ImputationService(ServiceConfig config = {});
  ~ImputationService();
  ImputationService(const ImputationService&) = delete;
  ImputationService& operator=(const ImputationService&) = delete;

  ModelRegistry& registry() { return registry_; }
  const ServiceConfig& config() const { return config_; }

  /// Synchronously answers one request.
  ImputationResponse Impute(const ImputationRequest& request);

  /// Synchronously answers a batch; response i belongs to request i.
  std::vector<ImputationResponse> ImputeBatch(
      const std::vector<ImputationRequest>& requests);

  /// Enqueues a request for micro-batched execution. The returned future
  /// is fulfilled by the dispatcher; safe to call from many threads.
  std::future<ImputationResponse> Submit(ImputationRequest request);

  /// Drains the queue — every already-submitted request is still executed
  /// and its future fulfilled — then stops the dispatcher. Called by the
  /// destructor; safe to call twice. Submitting after Shutdown aborts.
  void Shutdown();

  /// Graceful-stop alias of Shutdown, matching the net server's verb.
  void Stop() { Shutdown(); }

  /// The response cache, or nullptr when cache_mb is 0. Exposed for stats
  /// reporting and tests.
  ResponseCache* response_cache() const { return cache_.get(); }

  /// Requests queued for the dispatcher right now (the service half of the
  /// overload pressure signal; /healthz reports it).
  int queue_depth() const;

  /// Extra backlog added to the watermark comparison in Submit — the HTTP
  /// front-end wires its accept-queue depth in so admission control sees
  /// connection pressure before those requests reach the service queue.
  /// Set before traffic starts; the probe must be thread-safe and must not
  /// call back into this service.
  void SetPressureProbe(std::function<int()> probe);

  /// queue_depth() plus the pressure probe — the number admission control
  /// compares against the watermarks.
  int PressureDepth() const;

  TelemetrySnapshot telemetry() const { return telemetry_.Snapshot(); }

  /// Zeroes the counters and restarts the wall clock — for reports that
  /// must describe only the traffic from this point on.
  void ResetTelemetry() { telemetry_.Reset(); }

 private:
  struct PendingRequest {
    ImputationRequest request;
    std::promise<ImputationResponse> promise;
    Stopwatch queued;  // Started at Submit; measures caller latency.
    /// Stamped at admission when the pressure signal crossed the degrade
    /// watermark: the dispatcher answers with the fallback imputer.
    bool degrade = false;
    /// Tracer timestamp at Submit, for the retrospective queue.wait span
    /// recorded when the batch picks the request up. Meaningless (and
    /// unused) without a tracer.
    double submitted_at = 0.0;
  };

  /// Answers one request (no latency telemetry, no locking): registry
  /// lookup, validation, cache probe, Predict. With `degrade`, the model
  /// is still looked up and the input validated, but the configured
  /// fallback imputer produces the answer (cache bypassed — fallback
  /// results must never alias model results). Exceptions become kInternal
  /// responses.
  ImputationResponse Process(const ImputationRequest& request,
                             bool degrade = false);

  /// FingerprintData with a one-entry memo: the serving pattern shares one
  /// long-lived dataset across every request (workload replay, the HTTP
  /// front-end), so hashing O(series x times) bytes per request would make
  /// cache probes scale with dataset size instead of request size. The
  /// memo is keyed by the shared_ptr (liveness-checked, so a recycled
  /// address can't alias a dead dataset); a different dataset simply
  /// re-hashes.
  uint64_t MemoizedDataFingerprint(
      const std::shared_ptr<const DataTensor>& data);

  /// Runs `batch` through ParallelFor, fulfilling promises per slot.
  void RunBatch(std::vector<PendingRequest>& batch);

  /// Appends the request's flight-recorder record (no-op without a
  /// recorder). `shed` marks admission-control rejections.
  void RecordFlight(const ImputationRequest& request,
                    const ImputationResponse& response, bool shed);

  void DispatchLoop() DMVI_EXCLUDES(queue_mutex_);
  void EnsureDispatcherLocked() DMVI_REQUIRES(queue_mutex_);

  const ServiceConfig config_;
  ModelRegistry registry_;
  Telemetry telemetry_;
  // Stage-latency histograms from config_.metrics; null when no registry
  // is wired in (every observation site is then one branch).
  obs::Histogram* stage_queue_wait_ = nullptr;
  obs::Histogram* stage_batch_assemble_ = nullptr;
  obs::Histogram* stage_predict_ = nullptr;
  obs::Histogram* stage_cache_probe_ = nullptr;
  obs::Histogram* stage_fallback_ = nullptr;
  std::unique_ptr<ResponseCache> cache_;  // Null when cache_mb is 0.
  Mutex fingerprint_mutex_;
  std::weak_ptr<const DataTensor> fingerprinted_data_
      DMVI_GUARDED_BY(fingerprint_mutex_);
  uint64_t fingerprint_value_ DMVI_GUARDED_BY(fingerprint_mutex_) = 0;

  mutable Mutex queue_mutex_;
  CondVar queue_cv_;
  std::function<int()> pressure_probe_ DMVI_GUARDED_BY(queue_mutex_);
  std::deque<PendingRequest> queue_ DMVI_GUARDED_BY(queue_mutex_);
  std::thread dispatcher_ DMVI_GUARDED_BY(queue_mutex_);
  bool dispatcher_started_ DMVI_GUARDED_BY(queue_mutex_) = false;
  bool stop_ DMVI_GUARDED_BY(queue_mutex_) = false;
};

}  // namespace serve
}  // namespace deepmvi

#endif  // DEEPMVI_SERVE_SERVICE_H_
