#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics.h"

namespace deepmvi {
namespace serve {

void Telemetry::TouchClockLocked() {
  if (clock_started_) return;
  clock_started_ = true;
  since_start_.Reset();
}

void Telemetry::RecordRequest(double latency_seconds, int64_t rows,
                              int64_t cells, bool ok,
                              const std::string& request_id) {
  MutexLock lock(&mutex_);
  TouchClockLocked();
  ++requests_;
  if (!ok) ++failures_;
  rows_served_ += rows;
  cells_imputed_ += cells;
  busy_seconds_ += latency_seconds;
  latency_max_seconds_ = std::max(latency_max_seconds_, latency_seconds);
  latency_histogram_.ObserveWithExemplar(latency_seconds, request_id);
  // Algorithm R: keep the first C latencies, then replace a uniformly
  // chosen slot with probability C / requests_ — an unbiased sample of
  // the whole stream in bounded memory. Retained as a cross-check for
  // the histogram estimate, not as the percentile source.
  if (static_cast<int>(latency_reservoir_.size()) < kLatencyReservoirCapacity) {
    latency_reservoir_.push_back(latency_seconds);
  } else {
    const int64_t slot =
        reservoir_rng_.UniformInt(static_cast<int>(
            std::min<int64_t>(requests_, std::numeric_limits<int>::max())));
    if (slot < kLatencyReservoirCapacity) {
      latency_reservoir_[static_cast<size_t>(slot)] = latency_seconds;
    }
  }
}

void Telemetry::RecordDegraded() {
  MutexLock lock(&mutex_);
  TouchClockLocked();
  ++degraded_;
}

void Telemetry::RecordShed() {
  MutexLock lock(&mutex_);
  TouchClockLocked();
  ++shed_;
}

void Telemetry::RecordBatch(int size) {
  MutexLock lock(&mutex_);
  TouchClockLocked();
  ++batches_;
  batched_requests_ += size;
}

void Telemetry::RecordCacheLookup(bool hit) {
  MutexLock lock(&mutex_);
  TouchClockLocked();
  if (hit) {
    ++cache_hits_;
  } else {
    ++cache_misses_;
  }
}

TelemetrySnapshot Telemetry::Snapshot() const {
  MutexLock lock(&mutex_);
  TelemetrySnapshot snap;
  snap.requests = requests_;
  snap.failures = failures_;
  snap.degraded = degraded_;
  snap.shed = shed_;
  snap.batches = batches_;
  snap.rows_served = rows_served_;
  snap.cells_imputed = cells_imputed_;
  snap.cache_hits = cache_hits_;
  snap.cache_misses = cache_misses_;
  snap.busy_seconds = busy_seconds_;
  snap.wall_seconds = clock_started_ ? since_start_.ElapsedSeconds() : 0.0;

  // Histogram estimates are the served percentiles: deterministic for a
  // given set of observations, in any arrival order.
  snap.latency_histogram = latency_histogram_.Snapshot();
  snap.latency_p50_ms = snap.latency_histogram.Percentile(0.50) * 1e3;
  snap.latency_p95_ms = snap.latency_histogram.Percentile(0.95) * 1e3;
  // Max comes from the exact running counter (a bucket bound would round
  // it up, the reservoir may have evicted the extreme).
  snap.latency_max_ms = latency_max_seconds_ * 1e3;

  std::vector<double> sorted = latency_reservoir_;
  std::sort(sorted.begin(), sorted.end());
  snap.reservoir_p50_ms = SortedPercentile(sorted, 0.50) * 1e3;
  snap.reservoir_p95_ms = SortedPercentile(sorted, 0.95) * 1e3;

  if (snap.wall_seconds > 0.0) {
    snap.requests_per_second = static_cast<double>(requests_) / snap.wall_seconds;
    snap.rows_per_second = static_cast<double>(rows_served_) / snap.wall_seconds;
    snap.cells_per_second =
        static_cast<double>(cells_imputed_) / snap.wall_seconds;
  }
  if (batches_ > 0) {
    snap.mean_batch_size =
        static_cast<double>(batched_requests_) / static_cast<double>(batches_);
  }
  return snap;
}

void Telemetry::Reset() {
  MutexLock lock(&mutex_);
  requests_ = 0;
  failures_ = 0;
  degraded_ = 0;
  shed_ = 0;
  batches_ = 0;
  batched_requests_ = 0;
  rows_served_ = 0;
  cells_imputed_ = 0;
  cache_hits_ = 0;
  cache_misses_ = 0;
  busy_seconds_ = 0.0;
  latency_max_seconds_ = 0.0;
  latency_histogram_.Reset();
  latency_reservoir_.clear();
  // The wall clock restarts lazily: it stays at zero until the next
  // recorded event, so throughput derived from wall_seconds reflects the
  // post-Reset traffic window only.
  clock_started_ = false;
  since_start_.Reset();
}

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string TelemetryToJson(const TelemetrySnapshot& snap) {
  auto number = [](double v) -> std::string {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  };
  std::ostringstream os;
  os << "{\n";
  os << "  \"requests\": " << snap.requests << ",\n";
  os << "  \"failures\": " << snap.failures << ",\n";
  os << "  \"degraded\": " << snap.degraded << ",\n";
  os << "  \"shed\": " << snap.shed << ",\n";
  os << "  \"batches\": " << snap.batches << ",\n";
  os << "  \"rows_served\": " << snap.rows_served << ",\n";
  os << "  \"cells_imputed\": " << snap.cells_imputed << ",\n";
  os << "  \"cache_hits\": " << snap.cache_hits << ",\n";
  os << "  \"cache_misses\": " << snap.cache_misses << ",\n";
  os << "  \"busy_seconds\": " << number(snap.busy_seconds) << ",\n";
  os << "  \"wall_seconds\": " << number(snap.wall_seconds) << ",\n";
  os << "  \"latency_p50_ms\": " << number(snap.latency_p50_ms) << ",\n";
  os << "  \"latency_p95_ms\": " << number(snap.latency_p95_ms) << ",\n";
  os << "  \"latency_max_ms\": " << number(snap.latency_max_ms) << ",\n";
  os << "  \"reservoir_p50_ms\": " << number(snap.reservoir_p50_ms) << ",\n";
  os << "  \"reservoir_p95_ms\": " << number(snap.reservoir_p95_ms) << ",\n";
  os << "  \"requests_per_second\": " << number(snap.requests_per_second)
     << ",\n";
  os << "  \"rows_per_second\": " << number(snap.rows_per_second) << ",\n";
  os << "  \"cells_per_second\": " << number(snap.cells_per_second) << ",\n";
  os << "  \"mean_batch_size\": " << number(snap.mean_batch_size) << "\n";
  os << "}\n";
  return os.str();
}

std::string TelemetryToPrometheus(const TelemetrySnapshot& snap) {
  std::ostringstream os;
  obs::AppendPrometheusCounter(os, "dmvi_requests_total",
                               "Completed requests, including failures.",
                               snap.requests);
  obs::AppendPrometheusCounter(os, "dmvi_failures_total",
                               "Requests answered with a non-OK status.",
                               snap.failures);
  obs::AppendPrometheusCounter(
      os, "dmvi_degraded_total",
      "Requests answered by the degradation-ladder fallback imputer.",
      snap.degraded);
  obs::AppendPrometheusCounter(os, "dmvi_shed_total",
                               "Requests rejected at admission (503).",
                               snap.shed);
  obs::AppendPrometheusCounter(os, "dmvi_batches_total",
                               "Micro-batches dispatched.", snap.batches);
  obs::AppendPrometheusCounter(os, "dmvi_rows_served_total",
                               "Series rows carrying at least one imputed cell.",
                               snap.rows_served);
  obs::AppendPrometheusCounter(os, "dmvi_cells_imputed_total",
                               "Missing cells filled.", snap.cells_imputed);
  obs::AppendPrometheusCounter(os, "dmvi_cache_hits_total",
                               "Response-cache hits.", snap.cache_hits);
  obs::AppendPrometheusCounter(os, "dmvi_cache_misses_total",
                               "Response-cache misses.", snap.cache_misses);
  obs::AppendPrometheusHistogram(
      os, "dmvi_request_latency_seconds",
      "End-to-end request latency, queue time included.",
      snap.latency_histogram);
  obs::AppendPrometheusGauge(os, "dmvi_busy_seconds",
                             "Sum of per-request latencies.",
                             snap.busy_seconds);
  obs::AppendPrometheusGauge(
      os, "dmvi_wall_seconds",
      "Seconds since the first recorded event after start or reset.",
      snap.wall_seconds);
  obs::AppendPrometheusGauge(os, "dmvi_requests_per_second",
                             "Request throughput over the wall-clock window.",
                             snap.requests_per_second);
  obs::AppendPrometheusGauge(os, "dmvi_mean_batch_size",
                             "Mean dispatched micro-batch size.",
                             snap.mean_batch_size);
  obs::AppendPrometheusGauge(os, "dmvi_request_latency_max_seconds",
                             "Largest observed request latency.",
                             snap.latency_max_ms / 1e3);
  return os.str();
}

}  // namespace serve
}  // namespace deepmvi
