#ifndef DEEPMVI_SERVE_TELEMETRY_H_
#define DEEPMVI_SERVE_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace deepmvi {
namespace serve {

/// Point-in-time aggregate of the service counters, in the spirit of the
/// eval layer's machine-readable outputs (eval/suite.h): every number a
/// load test or dashboard needs, renderable as JSON via TelemetryToJson
/// or as Prometheus text via TelemetryToPrometheus.
struct TelemetrySnapshot {
  int64_t requests = 0;        // Completed requests, including failures.
  int64_t failures = 0;        // Requests answered with a non-OK status.
  int64_t degraded = 0;        // Requests answered by the fallback imputer.
  int64_t shed = 0;            // Requests rejected at admission (503).
  int64_t batches = 0;         // Micro-batches dispatched.
  int64_t rows_served = 0;     // Series rows carrying >= 1 imputed cell.
  int64_t cells_imputed = 0;   // Missing cells filled.
  double busy_seconds = 0.0;   // Sum of per-request latencies.
  double wall_seconds = 0.0;   // Since the first event after start/Reset.
  // Latency distribution over completed requests, milliseconds. p50/p95
  // are deterministic histogram estimates; the reservoir_* pair is the
  // legacy sampled estimate, kept as a cross-check.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_max_ms = 0.0;
  double reservoir_p50_ms = 0.0;
  double reservoir_p95_ms = 0.0;
  // Throughput over the wall-clock window.
  double requests_per_second = 0.0;
  double rows_per_second = 0.0;
  double cells_per_second = 0.0;
  double mean_batch_size = 0.0;
  // Response-cache lookups (0/0 when the cache is disabled).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Full request-latency distribution (seconds).
  obs::HistogramSnapshot latency_histogram;
};

/// Thread-safe latency/throughput counters owned by ImputationService.
/// Counters are exact. The latency distribution is kept two ways: a
/// fixed-bucket obs::Histogram — the authoritative, deterministic source
/// of the p50/p95 in snapshots — and a bounded reservoir sample (Vitter's
/// algorithm R), retained only as an independent cross-check that tests
/// compare against the histogram estimate.
///
/// The wall clock is lazy: it starts at the first recorded event after
/// construction or Reset(), so wall_seconds (and the derived throughput
/// rates) measure the traffic window, not the idle time before it —
/// Reset() followed by a quiet stretch reports zero throughput decay
/// instead of a shrinking rate.
class Telemetry {
 public:
  static constexpr int kLatencyReservoirCapacity = 4096;

  /// Records one completed request. `latency_seconds` should include queue
  /// time for async requests so percentiles reflect what callers observe.
  /// A non-empty `request_id` becomes the latency histogram's bucket
  /// exemplar, so the exposition links slow buckets to replayable
  /// requests.
  void RecordRequest(double latency_seconds, int64_t rows, int64_t cells,
                     bool ok, const std::string& request_id = std::string());

  /// Records one dispatched micro-batch of `size` requests.
  void RecordBatch(int size);

  /// Records one request answered by the degradation ladder's fallback
  /// imputer instead of the full model.
  void RecordDegraded();

  /// Records one request shed at admission (also RecordRequest'ed as a
  /// failure by the caller).
  void RecordShed();

  /// Records one response-cache probe.
  void RecordCacheLookup(bool hit);

  TelemetrySnapshot Snapshot() const;

  void Reset();

 private:
  /// Starts the lazy wall clock on the first event.
  void TouchClockLocked() DMVI_REQUIRES(mutex_);

  mutable Mutex mutex_;
  Stopwatch since_start_ DMVI_GUARDED_BY(mutex_);
  bool clock_started_ DMVI_GUARDED_BY(mutex_) = false;
  int64_t requests_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t failures_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t degraded_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t shed_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t batches_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t batched_requests_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t rows_served_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t cells_imputed_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t cache_hits_ DMVI_GUARDED_BY(mutex_) = 0;
  int64_t cache_misses_ DMVI_GUARDED_BY(mutex_) = 0;
  double busy_seconds_ DMVI_GUARDED_BY(mutex_) = 0.0;
  double latency_max_seconds_ DMVI_GUARDED_BY(mutex_) = 0.0;
  /// The histogram is itself thread-safe, but every write rides the same
  /// critical section as the exact counters so a Snapshot is one
  /// consistent cut across all of them.
  obs::Histogram latency_histogram_;
  Rng reservoir_rng_ DMVI_GUARDED_BY(mutex_){
      0x7e1e /* fixed: telemetry needs no seeding API */};
  std::vector<double> latency_reservoir_ DMVI_GUARDED_BY(mutex_);
};

/// Linear-interpolated percentile (q in [0, 1]) of `sorted` ascending
/// values; 0 when empty. Exposed for tests and report printing.
double SortedPercentile(const std::vector<double>& sorted, double q);

/// Renders a snapshot as a small JSON document (two-space indent, stable
/// key order), matching the style of eval/suite.h's SuiteToJson.
std::string TelemetryToJson(const TelemetrySnapshot& snapshot);

/// Renders a snapshot in Prometheus text exposition format: the exact
/// counters as dmvi_*_total, the latency distribution as the
/// dmvi_request_latency_seconds histogram, and the derived rates as
/// gauges.
std::string TelemetryToPrometheus(const TelemetrySnapshot& snapshot);

}  // namespace serve
}  // namespace deepmvi

#endif  // DEEPMVI_SERVE_TELEMETRY_H_
