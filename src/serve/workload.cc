#include "serve/workload.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace deepmvi {
namespace serve {

StatusOr<std::vector<WorkloadQuery>> ReadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path + " for reading");
  std::vector<WorkloadQuery> queries;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Tolerate CRLF files and trailing whitespace: getline only strips \n,
    // and a stray \r would otherwise fail the strict field count below.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    WorkloadQuery query;
    char extra = '\0';
    if (std::sscanf(line.c_str(), "%d,%d,%d%c", &query.row, &query.t_start,
                    &query.block_len, &extra) != 3) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": expected `row,t_start,block_len`, got: " + line);
    }
    if (query.row < 0 || query.t_start < 0 || query.block_len <= 0) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": negative field in: " + line);
    }
    queries.push_back(query);
  }
  return queries;
}

Status WriteWorkload(const std::vector<WorkloadQuery>& queries,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# row,t_start,block_len\n";
  for (const WorkloadQuery& query : queries) {
    out << query.row << "," << query.t_start << "," << query.block_len << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

std::vector<WorkloadQuery> SynthesizeWorkload(int count, int max_block_len,
                                              int num_series, int t_len,
                                              uint64_t seed) {
  DMVI_CHECK_GT(num_series, 0);
  DMVI_CHECK_GT(t_len, 0);
  Rng rng(seed);
  std::vector<WorkloadQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    WorkloadQuery query;
    query.row = rng.UniformInt(num_series);
    query.block_len = 1 + rng.UniformInt(std::max(1, max_block_len));
    query.block_len = std::min(query.block_len, t_len);
    query.t_start = rng.UniformInt(t_len - query.block_len + 1);
    queries.push_back(query);
  }
  return queries;
}

Mask ApplyQuery(const Mask& base, const WorkloadQuery& query) {
  Mask out = base;
  if (query.row >= 0 && query.row < base.rows()) {
    out.SetMissingRange(query.row, query.t_start,
                        query.t_start + query.block_len);
  }
  return out;
}

ImputationRequest MakeQueryRequest(const std::string& model,
                                   std::shared_ptr<const DataTensor> data,
                                   const Mask& base,
                                   const WorkloadQuery& query) {
  ImputationRequest request;
  request.model = model;
  request.data = std::move(data);
  request.mask = ApplyQuery(base, query);
  return request;
}

}  // namespace serve
}  // namespace deepmvi
