#ifndef DEEPMVI_SERVE_WORKLOAD_H_
#define DEEPMVI_SERVE_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "serve/service.h"

namespace deepmvi {
namespace serve {

/// One replayable imputation query against a served dataset: hide the
/// block [t_start, t_start + block_len) of series `row` and ask the model
/// to fill it (on top of whatever the base mask already misses). This is
/// the workload unit dmvi_serve replays to measure serving latency.
struct WorkloadQuery {
  int row = 0;
  int t_start = 0;
  int block_len = 1;
};

/// Workload file format: one `row,t_start,block_len` triple per line;
/// blank lines and lines starting with '#' are skipped.
StatusOr<std::vector<WorkloadQuery>> ReadWorkload(const std::string& path);
Status WriteWorkload(const std::vector<WorkloadQuery>& queries,
                     const std::string& path);

/// Deterministic random workload over an n x t_len dataset: uniformly
/// placed blocks of length 1..max_block_len.
std::vector<WorkloadQuery> SynthesizeWorkload(int count, int max_block_len,
                                              int num_series, int t_len,
                                              uint64_t seed);

/// The base availability mask with the query block additionally missing
/// (clamped to the mask's bounds).
Mask ApplyQuery(const Mask& base, const WorkloadQuery& query);

/// Builds the service request for one query: the shared dataset, base
/// mask plus the query block.
ImputationRequest MakeQueryRequest(const std::string& model,
                                   std::shared_ptr<const DataTensor> data,
                                   const Mask& base,
                                   const WorkloadQuery& query);

}  // namespace serve
}  // namespace deepmvi

#endif  // DEEPMVI_SERVE_WORKLOAD_H_
