#include "storage/chunk_cache.h"

#include <algorithm>
#include <utility>

namespace deepmvi {
namespace storage {

StatusOr<ChunkCache::ChunkPtr> ChunkCache::GetOrLoad(int64_t key,
                                                     const Loader& loader) {
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.chunk;
    }
    ++stats_.misses;
  }

  // Load outside the lock: disk latency must not serialize other readers.
  StatusOr<Matrix> loaded = loader();
  if (!loaded.ok()) return loaded.status();
  const int64_t bytes =
      static_cast<int64_t>(loaded->size()) * static_cast<int64_t>(sizeof(double));
  auto chunk = std::make_shared<const Matrix>(std::move(loaded).value());

  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing loader inserted first; use its copy and drop ours.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.chunk;
  }
  if (bytes > byte_budget_) {
    // Oversized (or zero-budget) chunk: hand it out but never retain it,
    // so bytes_cached_ can't exceed the budget.
    return ChunkPtr(chunk);
  }
  EvictToFitLocked(bytes);
  lru_.push_front(key);
  entries_[key] = Entry{chunk, bytes, lru_.begin()};
  stats_.bytes_cached += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_cached);
  return ChunkPtr(chunk);
}

void ChunkCache::EvictToFitLocked(int64_t incoming_bytes) {
  while (!lru_.empty() && stats_.bytes_cached + incoming_bytes > byte_budget_) {
    const int64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    stats_.bytes_cached -= it->second.bytes;
    entries_.erase(it);
    ++stats_.evictions;
  }
}

ChunkCache::Stats ChunkCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ChunkCache::Clear() {
  MutexLock lock(&mu_);
  stats_.evictions += static_cast<int64_t>(entries_.size());
  entries_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
}

}  // namespace storage
}  // namespace deepmvi
