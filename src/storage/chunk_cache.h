#ifndef DEEPMVI_STORAGE_CHUNK_CACHE_H_
#define DEEPMVI_STORAGE_CHUNK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "tensor/matrix.h"

namespace deepmvi {
namespace storage {

/// Bounded, bytes-budgeted LRU cache of store chunks, thread-safe for
/// concurrent readers (the training loop fans samples over worker threads
/// that all read through one cache).
///
/// Entries are handed out as shared_ptr<const Matrix>: eviction only drops
/// the cache's reference, so a reader holding a chunk keeps it alive while
/// the cache stays within budget for everything it retains. Before a new
/// chunk is inserted, least-recently-used entries are evicted until the
/// new total fits the budget; a single chunk larger than the whole budget
/// is returned to the caller but never retained.
///
/// Loads run outside the cache lock so slow disk reads don't serialize
/// unrelated readers; two threads racing on the same missing key may both
/// load it, and the first insert wins (counted as one miss each).
class ChunkCache {
 public:
  using ChunkPtr = std::shared_ptr<const Matrix>;
  using Loader = std::function<StatusOr<Matrix>()>;

  /// `byte_budget` <= 0 disables retention: every call loads.
  explicit ChunkCache(int64_t byte_budget) : byte_budget_(byte_budget) {}

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Returns the cached chunk for `key`, or runs `loader` and caches the
  /// result. Load failures are returned and nothing is cached.
  StatusOr<ChunkPtr> GetOrLoad(int64_t key, const Loader& loader);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t bytes_cached = 0;
    /// High-water mark of bytes_cached, for asserting the budget held.
    int64_t peak_bytes = 0;
  };
  Stats stats() const;
  int64_t byte_budget() const { return byte_budget_; }

  /// Drops every retained chunk (outstanding ChunkPtrs stay valid).
  void Clear();

 private:
  struct Entry {
    ChunkPtr chunk;
    int64_t bytes = 0;
    std::list<int64_t>::iterator lru_it;
  };

  // Evicts LRU entries until bytes_cached_ + incoming fits the budget.
  void EvictToFitLocked(int64_t incoming_bytes) DMVI_REQUIRES(mu_);

  const int64_t byte_budget_;
  mutable Mutex mu_;
  std::unordered_map<int64_t, Entry> entries_ DMVI_GUARDED_BY(mu_);
  std::list<int64_t> lru_ DMVI_GUARDED_BY(mu_);  // Front = most recent.
  Stats stats_ DMVI_GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace deepmvi

#endif  // DEEPMVI_STORAGE_CHUNK_CACHE_H_
