#include "storage/chunk_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "nn/serialize.h"

namespace deepmvi {
namespace storage {
namespace {

constexpr char kManifestMagic[4] = {'D', 'M', 'V', 'S'};
constexpr uint32_t kManifestVersion = 1;

// Sanity bounds: a corrupt manifest must fail fast, not drive a huge
// allocation (same convention as nn/serialize.cc).
constexpr uint32_t kMaxDims = 64;
constexpr uint32_t kMaxMembers = 1 << 26;
constexpr int64_t kMaxChunkElements = int64_t{1} << 32;

using nn::ReadPod;
using nn::ReadString;
using nn::WritePod;
using nn::WriteString;

int DivCeil(int a, int b) { return (a + b - 1) / b; }

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestFileName;
}
std::string ChunkDataPath(const std::string& dir) {
  return dir + "/" + kChunkDataFileName;
}

}  // namespace

const char kManifestFileName[] = "manifest.dmvs";
const char kChunkDataFileName[] = "chunks.bin";
const char kMaskFileName[] = "mask.csv";

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

// ---- Writer -----------------------------------------------------------------

StatusOr<std::unique_ptr<ChunkedSeriesStoreWriter>>
ChunkedSeriesStoreWriter::Create(const std::string& dir,
                                 const ChunkStoreOptions& options) {
  if (options.series_per_chunk <= 0 || options.times_per_chunk <= 0) {
    return Status::InvalidArgument("chunk geometry must be positive, got " +
                                   std::to_string(options.series_per_chunk) +
                                   " x " +
                                   std::to_string(options.times_per_chunk));
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  auto writer = std::unique_ptr<ChunkedSeriesStoreWriter>(
      new ChunkedSeriesStoreWriter());
  writer->dir_ = dir;
  writer->options_ = options;
  writer->data_out_ = std::make_unique<std::ofstream>(
      ChunkDataPath(dir), std::ios::binary | std::ios::trunc);
  if (!*writer->data_out_) {
    return Status::IoError("cannot open " + ChunkDataPath(dir) +
                           " for writing");
  }
  return writer;
}

Status ChunkedSeriesStoreWriter::AppendRow(const std::vector<double>& row) {
  if (finished_) {
    return Status::FailedPrecondition("AppendRow after Finish");
  }
  if (num_times_ < 0) {
    if (row.empty()) return Status::InvalidArgument("empty first row");
    num_times_ = static_cast<int>(row.size());
  } else if (static_cast<int>(row.size()) != num_times_) {
    return Status::InvalidArgument(
        "ragged rows: row " + std::to_string(rows_appended_) + " has " +
        std::to_string(row.size()) + " values, expected " +
        std::to_string(num_times_));
  }
  group_buffer_.push_back(row);
  ++rows_appended_;
  if (static_cast<int>(group_buffer_.size()) == options_.series_per_chunk) {
    DMVI_RETURN_IF_ERROR(FlushGroup());
  }
  return Status::OK();
}

Status ChunkedSeriesStoreWriter::FlushGroup() {
  if (group_buffer_.empty()) return Status::OK();
  const int group_rows = static_cast<int>(group_buffer_.size());
  const int num_blocks = DivCeil(num_times_, options_.times_per_chunk);
  std::vector<double> payload;  // Reused across blocks of this group.
  for (int b = 0; b < num_blocks; ++b) {
    const int t0 = b * options_.times_per_chunk;
    const int len = std::min(options_.times_per_chunk, num_times_ - t0);
    payload.clear();
    payload.reserve(static_cast<size_t>(group_rows) * len);
    for (int r = 0; r < group_rows; ++r) {
      const double* src = group_buffer_[r].data() + t0;
      payload.insert(payload.end(), src, src + len);
    }
    const uint64_t byte_size = payload.size() * sizeof(double);
    data_out_->write(reinterpret_cast<const char*>(payload.data()),
                     static_cast<std::streamsize>(byte_size));
    if (!*data_out_) {
      return Status::IoError("write failed for " + ChunkDataPath(dir_));
    }
    chunks_.push_back(
        {next_offset_, byte_size, Fnv1a64(payload.data(), byte_size)});
    next_offset_ += byte_size;
  }
  group_buffer_.clear();
  return Status::OK();
}

Status ChunkedSeriesStoreWriter::Finish(std::vector<Dimension> dims) {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  if (rows_appended_ == 0) {
    return Status::InvalidArgument("cannot finish a store with no rows");
  }
  DMVI_RETURN_IF_ERROR(FlushGroup());
  data_out_->close();
  if (!*data_out_) {
    return Status::IoError("close failed for " + ChunkDataPath(dir_));
  }
  finished_ = true;

  if (dims.empty()) {
    Dimension d;
    d.name = "series";
    d.members.reserve(rows_appended_);
    for (int r = 0; r < rows_appended_; ++r) {
      d.members.push_back("s" + std::to_string(r));
    }
    dims.push_back(std::move(d));
  }
  int64_t expected = 1;
  for (const auto& d : dims) expected *= d.size();
  if (expected != rows_appended_) {
    return Status::InvalidArgument(
        "dimensions imply " + std::to_string(expected) + " series but " +
        std::to_string(rows_appended_) + " rows were appended");
  }

  std::ofstream os(ManifestPath(dir_), std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::IoError("cannot open " + ManifestPath(dir_) +
                           " for writing");
  }
  os.write(kManifestMagic, sizeof(kManifestMagic));
  WritePod(os, kManifestVersion);
  WritePod(os, static_cast<uint32_t>(dims.size()));
  for (const Dimension& dim : dims) {
    DMVI_RETURN_IF_ERROR(WriteString(os, dim.name));
    WritePod(os, static_cast<uint32_t>(dim.members.size()));
    for (const std::string& member : dim.members) {
      DMVI_RETURN_IF_ERROR(WriteString(os, member));
    }
  }
  WritePod(os, static_cast<int32_t>(rows_appended_));
  WritePod(os, static_cast<int32_t>(num_times_));
  WritePod(os, static_cast<int32_t>(options_.series_per_chunk));
  WritePod(os, static_cast<int32_t>(options_.times_per_chunk));
  for (const ChunkRecord& chunk : chunks_) {
    WritePod(os, chunk.offset);
    WritePod(os, chunk.byte_size);
    WritePod(os, chunk.checksum);
  }
  os.close();
  if (!os) return Status::IoError("write failed for " + ManifestPath(dir_));
  return Status::OK();
}

// ---- Reader -----------------------------------------------------------------

StatusOr<ChunkedSeriesStore> ChunkedSeriesStore::Open(const std::string& dir) {
  std::ifstream is(ManifestPath(dir), std::ios::binary);
  if (!is) return Status::IoError("cannot open " + ManifestPath(dir));

  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (is.gcount() != sizeof(magic)) {
    return Status::IoError("truncated manifest: header missing");
  }
  if (std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(ManifestPath(dir) +
                                   " is not a chunked-store manifest");
  }
  uint32_t version = 0;
  if (!ReadPod(is, &version)) {
    return Status::IoError("truncated manifest: version missing");
  }
  if (version != kManifestVersion) {
    return Status::InvalidArgument("unsupported store version " +
                                   std::to_string(version));
  }

  ChunkedSeriesStore store;
  store.dir_ = dir;
  uint32_t num_dims = 0;
  if (!ReadPod(is, &num_dims)) {
    return Status::IoError("truncated manifest: dimension count missing");
  }
  if (num_dims == 0 || num_dims > kMaxDims) {
    return Status::InvalidArgument("corrupt manifest: implausible dimension count " +
                                   std::to_string(num_dims));
  }
  for (uint32_t d = 0; d < num_dims; ++d) {
    Dimension dim;
    StatusOr<std::string> name = ReadString(is);
    if (!name.ok()) return name.status();
    dim.name = std::move(name).value();
    uint32_t num_members = 0;
    if (!ReadPod(is, &num_members)) {
      return Status::IoError("truncated manifest: member count missing");
    }
    if (num_members == 0 || num_members > kMaxMembers) {
      return Status::InvalidArgument(
          "corrupt manifest: implausible member count " +
          std::to_string(num_members));
    }
    dim.members.reserve(num_members);
    for (uint32_t m = 0; m < num_members; ++m) {
      StatusOr<std::string> member = ReadString(is);
      if (!member.ok()) return member.status();
      dim.members.push_back(std::move(member).value());
    }
    store.dims_.push_back(std::move(dim));
  }

  int32_t num_series = 0, num_times = 0, series_per_chunk = 0,
          times_per_chunk = 0;
  if (!ReadPod(is, &num_series) || !ReadPod(is, &num_times) ||
      !ReadPod(is, &series_per_chunk) || !ReadPod(is, &times_per_chunk)) {
    return Status::IoError("truncated manifest: shape header missing");
  }
  if (num_series <= 0 || num_times <= 0 || series_per_chunk <= 0 ||
      times_per_chunk <= 0) {
    return Status::InvalidArgument("corrupt manifest: non-positive shape");
  }
  int64_t expected = 1;
  for (const auto& dim : store.dims_) expected *= dim.size();
  if (expected != num_series) {
    return Status::InvalidArgument(
        "corrupt manifest: dimensions imply " + std::to_string(expected) +
        " series but header says " + std::to_string(num_series));
  }
  store.num_series_ = num_series;
  store.num_times_ = num_times;
  store.options_.series_per_chunk = series_per_chunk;
  store.options_.times_per_chunk = times_per_chunk;
  store.num_row_groups_ = DivCeil(num_series, series_per_chunk);
  store.num_time_blocks_ = DivCeil(num_times, times_per_chunk);

  const int64_t num_chunks =
      static_cast<int64_t>(store.num_row_groups_) * store.num_time_blocks_;
  store.chunks_.resize(num_chunks);
  for (int64_t i = 0; i < num_chunks; ++i) {
    ChunkRecord& chunk = store.chunks_[i];
    if (!ReadPod(is, &chunk.offset) || !ReadPod(is, &chunk.byte_size) ||
        !ReadPod(is, &chunk.checksum)) {
      return Status::IoError("truncated manifest: chunk table ends at entry " +
                             std::to_string(i) + " of " +
                             std::to_string(num_chunks));
    }
  }
  // Chunk byte sizes must match the declared geometry exactly.
  for (int g = 0; g < store.num_row_groups_; ++g) {
    for (int b = 0; b < store.num_time_blocks_; ++b) {
      const ChunkRecord& chunk = store.chunks_[store.ChunkKey(g, b)];
      const uint64_t expected_bytes =
          static_cast<uint64_t>(store.group_num_rows(g)) *
          store.block_num_times(b) * sizeof(double);
      if (chunk.byte_size != expected_bytes) {
        return Status::InvalidArgument(
            "corrupt manifest: chunk (" + std::to_string(g) + "," +
            std::to_string(b) + ") has " + std::to_string(chunk.byte_size) +
            " bytes, geometry implies " + std::to_string(expected_bytes));
      }
    }
  }
  return store;
}

int ChunkedSeriesStore::group_num_rows(int g) const {
  DMVI_CHECK_GE(g, 0);
  DMVI_CHECK_LT(g, num_row_groups_);
  return std::min(options_.series_per_chunk,
                  num_series_ - g * options_.series_per_chunk);
}

int ChunkedSeriesStore::block_num_times(int b) const {
  DMVI_CHECK_GE(b, 0);
  DMVI_CHECK_LT(b, num_time_blocks_);
  return std::min(options_.times_per_chunk,
                  num_times_ - b * options_.times_per_chunk);
}

StatusOr<Matrix> ChunkedSeriesStore::ReadChunk(int g, int b) const {
  const ChunkRecord& chunk = chunks_[ChunkKey(g, b)];
  const int rows = group_num_rows(g);
  const int cols = block_num_times(b);
  if (static_cast<int64_t>(rows) * cols > kMaxChunkElements) {
    return Status::InvalidArgument("implausible chunk shape");
  }
  // Each read opens its own handle: concurrent readers never share stream
  // state, so no locking is needed at this layer (the ChunkCache amortizes
  // the open cost across hits).
  std::ifstream is(ChunkDataPath(dir_), std::ios::binary);
  if (!is) return Status::IoError("cannot open " + ChunkDataPath(dir_));
  is.seekg(static_cast<std::streamoff>(chunk.offset));
  Matrix out(rows, cols);
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(chunk.byte_size));
  if (is.gcount() != static_cast<std::streamsize>(chunk.byte_size)) {
    return Status::IoError("truncated chunk data: chunk (" +
                           std::to_string(g) + "," + std::to_string(b) +
                           ") ends early in " + ChunkDataPath(dir_));
  }
  const uint64_t checksum = Fnv1a64(out.data(), chunk.byte_size);
  if (checksum != chunk.checksum) {
    return Status::InvalidArgument(
        "checksum mismatch for chunk (" + std::to_string(g) + "," +
        std::to_string(b) + ") in " + ChunkDataPath(dir_) +
        " (corrupt data)");
  }
  return out;
}

StatusOr<DataTensor> ChunkedSeriesStore::ReadTensor() const {
  Matrix values(num_series_, num_times_);
  for (int g = 0; g < num_row_groups_; ++g) {
    for (int b = 0; b < num_time_blocks_; ++b) {
      StatusOr<Matrix> chunk = ReadChunk(g, b);
      if (!chunk.ok()) return chunk.status();
      values.SetBlock(group_begin_row(g), block_begin_time(b), *chunk);
    }
  }
  return DataTensor(dims_, std::move(values));
}

Status ChunkedSeriesStore::WriteTensor(const DataTensor& data,
                                       const std::string& dir,
                                       const ChunkStoreOptions& options) {
  StatusOr<std::unique_ptr<ChunkedSeriesStoreWriter>> writer =
      ChunkedSeriesStoreWriter::Create(dir, options);
  if (!writer.ok()) return writer.status();
  std::vector<double> row(data.num_times());
  for (int r = 0; r < data.num_series(); ++r) {
    const double* src = data.values().row_ptr(r);
    row.assign(src, src + data.num_times());
    DMVI_RETURN_IF_ERROR((*writer)->AppendRow(row));
  }
  return (*writer)->Finish(data.dims());
}

}  // namespace storage
}  // namespace deepmvi
