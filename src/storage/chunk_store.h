#ifndef DEEPMVI_STORAGE_CHUNK_STORE_H_
#define DEEPMVI_STORAGE_CHUNK_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/data_tensor.h"

namespace deepmvi {
namespace storage {

/// On-disk layout of a chunked dataset directory:
///
///   <dir>/manifest.dmvs   versioned binary manifest (header below)
///   <dir>/chunks.bin      chunk payloads, raw little-endian doubles
///   <dir>/mask.csv        availability mask (0/1 CSV), by convention —
///                         written by dmvi_shard, not read by this layer
///
/// The store splits a num_series x num_times DataTensor into fixed-size
/// [series-group x time-block] chunks: series are grouped into runs of
/// `series_per_chunk` consecutive rows and the time axis into blocks of
/// `times_per_chunk` steps (edge chunks are smaller). Chunk (g, b) holds
/// the row-major doubles of its rows restricted to its time range, stored
/// back to back in chunks.bin; the manifest records every chunk's offset,
/// byte size, and FNV-1a 64 checksum so reads detect corruption and
/// truncation as Status errors.
///
/// Manifest format (little-endian, nn/serialize.h record conventions):
///   magic    "DMVS" (4 bytes)
///   version  uint32 (currently 1)
///   ndims    uint32, then per dimension: name string record,
///            uint32 member count, member string records
///   num_series int32, num_times int32
///   series_per_chunk int32, times_per_chunk int32
///   per chunk, row-major (group-major, block within group):
///            uint64 offset into chunks.bin, uint64 byte size,
///            uint64 FNV-1a 64 checksum
struct ChunkStoreOptions {
  /// Consecutive series per chunk row-group.
  int series_per_chunk = 64;
  /// Time steps per chunk block. The windowed reader touches at most two
  /// blocks per training window as long as this stays >= the training
  /// max_context (default 1024).
  int times_per_chunk = 4096;
};

/// Conventional file names inside a store directory.
extern const char kManifestFileName[];   // "manifest.dmvs"
extern const char kChunkDataFileName[];  // "chunks.bin"
extern const char kMaskFileName[];       // "mask.csv"

/// Streaming store writer: rows (series) are appended one at a time, so a
/// dataset larger than RAM can be converted from a row-streaming source
/// (e.g. data::CsvSeriesReader). Rows of the current series-group are
/// buffered until the group is complete, then sliced into time blocks and
/// flushed — peak memory is series_per_chunk x num_times doubles plus the
/// manifest, never the full tensor.
class ChunkedSeriesStoreWriter {
 public:
  /// Creates `dir` (and parents) and opens chunks.bin for writing.
  static StatusOr<std::unique_ptr<ChunkedSeriesStoreWriter>> Create(
      const std::string& dir, const ChunkStoreOptions& options);

  /// Appends one series. The first row fixes num_times; later rows must
  /// have the same length.
  Status AppendRow(const std::vector<double>& row);

  /// Flushes the tail group and writes the manifest. `dims` must multiply
  /// out to the number of appended rows; when empty, a single anonymous
  /// "series" dimension with members s0, s1, ... is used (mirroring
  /// DataTensor::FromMatrix).
  Status Finish(std::vector<Dimension> dims);

  int rows_appended() const { return rows_appended_; }

 private:
  ChunkedSeriesStoreWriter() = default;

  Status FlushGroup();

  std::string dir_;
  ChunkStoreOptions options_;
  std::unique_ptr<std::ofstream> data_out_;
  int num_times_ = -1;  // Unknown until the first row.
  int rows_appended_ = 0;
  std::vector<std::vector<double>> group_buffer_;
  struct ChunkRecord {
    uint64_t offset = 0;
    uint64_t byte_size = 0;
    uint64_t checksum = 0;
  };
  std::vector<ChunkRecord> chunks_;  // Group-major, block within group.
  uint64_t next_offset_ = 0;
  bool finished_ = false;
};

/// Read side of the chunked time-block store. Open() parses and validates
/// the manifest; ReadChunk() fetches one chunk from chunks.bin, verifying
/// its checksum. All read methods are const and thread-safe (each read
/// opens its own file handle), so concurrent trainers can share one store.
class ChunkedSeriesStore {
 public:
  /// Empty (unopened) store; StatusOr needs this. Use Open().
  ChunkedSeriesStore() = default;

  static StatusOr<ChunkedSeriesStore> Open(const std::string& dir);

  /// Writes `data` as a chunked store under `dir` (convenience wrapper
  /// over the streaming writer for in-core tensors).
  static Status WriteTensor(const DataTensor& data, const std::string& dir,
                            const ChunkStoreOptions& options = {});

  const std::vector<Dimension>& dims() const { return dims_; }
  int num_series() const { return num_series_; }
  int num_times() const { return num_times_; }
  int series_per_chunk() const { return options_.series_per_chunk; }
  int times_per_chunk() const { return options_.times_per_chunk; }
  int num_row_groups() const { return num_row_groups_; }
  int num_time_blocks() const { return num_time_blocks_; }
  const std::string& dir() const { return dir_; }

  /// First series row / time step covered by group `g` / block `b`.
  int group_begin_row(int g) const { return g * options_.series_per_chunk; }
  int block_begin_time(int b) const { return b * options_.times_per_chunk; }
  int group_num_rows(int g) const;
  int block_num_times(int b) const;

  /// Stable cache key of chunk (g, b), unique within this store.
  int64_t ChunkKey(int g, int b) const {
    return static_cast<int64_t>(g) * num_time_blocks_ + b;
  }

  /// Reads chunk (g, b) as a group_num_rows(g) x block_num_times(b)
  /// matrix of raw (unnormalized) values. Verifies the manifest checksum;
  /// corrupt or truncated payloads yield Status errors, never garbage.
  StatusOr<Matrix> ReadChunk(int g, int b) const;

  /// Materializes the full tensor (for in-core reference paths and
  /// small-store tooling; defeats the purpose for beyond-memory data).
  StatusOr<DataTensor> ReadTensor() const;

 private:
  std::string dir_;
  ChunkStoreOptions options_;
  std::vector<Dimension> dims_;
  int num_series_ = 0;
  int num_times_ = 0;
  int num_row_groups_ = 0;
  int num_time_blocks_ = 0;
  struct ChunkRecord {
    uint64_t offset = 0;
    uint64_t byte_size = 0;
    uint64_t checksum = 0;
  };
  std::vector<ChunkRecord> chunks_;  // Group-major, block within group.
};

/// FNV-1a 64-bit checksum of a byte buffer — the integrity check stored
/// per chunk in the manifest.
uint64_t Fnv1a64(const void* data, size_t size);

}  // namespace storage
}  // namespace deepmvi

#endif  // DEEPMVI_STORAGE_CHUNK_STORE_H_
