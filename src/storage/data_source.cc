#include "storage/data_source.h"

#include <utility>

#include "storage/windowed_reader.h"

namespace deepmvi {
namespace storage {
namespace {

/// Zero-copy reader over a pre-normalized in-core matrix: every Read
/// returns a full view, which trivially covers any requested stripe.
class InMemoryWindowReader : public WindowReader {
 public:
  explicit InMemoryWindowReader(Matrix normalized)
      : normalized_(std::move(normalized)) {}

  StatusOr<ValueWindow> Read(int t0, int len) const override {
    if (t0 < 0 || len <= 0 || t0 + len > normalized_.cols()) {
      return Status::InvalidArgument(
          "window [" + std::to_string(t0) + ", " + std::to_string(t0 + len) +
          ") out of range for " + std::to_string(normalized_.cols()) +
          " time steps");
    }
    return ValueWindow(normalized_);
  }

 private:
  Matrix normalized_;
};

}  // namespace

StatusOr<std::unique_ptr<WindowReader>> InMemoryDataSource::MakeReader(
    const DataTensor::NormalizationStats& stats) const {
  // The one full normalized copy the historical in-core Fit made.
  return std::unique_ptr<WindowReader>(
      new InMemoryWindowReader(data_->Normalized(stats).values()));
}

StatusOr<DataTensor::NormalizationStats> ChunkedDataSource::ComputeNormalization(
    const Mask& mask) const {
  if (mask.rows() != store_->num_series() ||
      mask.cols() != store_->num_times()) {
    return Status::InvalidArgument(
        "mask shape " + std::to_string(mask.rows()) + "x" +
        std::to_string(mask.cols()) + " does not match store " +
        std::to_string(store_->num_series()) + "x" +
        std::to_string(store_->num_times()));
  }
  DataTensor::NormalizationAccumulator acc(store_->num_series());
  // One pass over every chunk, reading directly (a full scan would only
  // churn the cache). Per series the cells arrive in ascending-time order
  // (blocks ascend within each group), which is all the accumulator needs
  // to reproduce the in-core stats exactly.
  for (int g = 0; g < store_->num_row_groups(); ++g) {
    const int row0 = store_->group_begin_row(g);
    for (int b = 0; b < store_->num_time_blocks(); ++b) {
      StatusOr<Matrix> chunk = store_->ReadChunk(g, b);
      if (!chunk.ok()) return chunk.status();
      const int t0 = store_->block_begin_time(b);
      for (int r = 0; r < chunk->rows(); ++r) {
        const int series = row0 + r;
        for (int t = 0; t < chunk->cols(); ++t) {
          if (mask.available(series, t0 + t)) acc.Add(series, (*chunk)(r, t));
        }
      }
    }
  }
  return acc.Finalize();
}

StatusOr<std::unique_ptr<WindowReader>> ChunkedDataSource::MakeReader(
    const DataTensor::NormalizationStats& stats) const {
  if (static_cast<int>(stats.mean.size()) != store_->num_series()) {
    return Status::InvalidArgument(
        "normalization stats cover " + std::to_string(stats.mean.size()) +
        " series, store has " + std::to_string(store_->num_series()));
  }
  return std::unique_ptr<WindowReader>(
      new WindowedSampleReader(store_, cache_, stats));
}

}  // namespace storage
}  // namespace deepmvi
