#ifndef DEEPMVI_STORAGE_DATA_SOURCE_H_
#define DEEPMVI_STORAGE_DATA_SOURCE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/chunk_cache.h"
#include "storage/chunk_store.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"
#include "tensor/value_window.h"

namespace deepmvi {
namespace storage {

/// Supplies normalized value windows for training. Read() must be
/// thread-safe: worker slots call it concurrently, one window per
/// in-flight sample.
class WindowReader {
 public:
  virtual ~WindowReader() = default;

  /// Normalized values for the absolute time range [t0, t0 + len) across
  /// all series. The returned window may cover more than requested (the
  /// in-core reader always returns the full matrix view).
  virtual StatusOr<ValueWindow> Read(int t0, int len) const = 0;
};

/// A (num_series x num_times) dataset DeepMVI can train from: either an
/// in-core DataTensor or a ChunkedSeriesStore directory. The abstraction
/// carries exactly what the training loop touches — dimension metadata,
/// bit-identical normalization statistics, and windowed normalized value
/// reads — so in-core and out-of-core training share one code path and
/// produce byte-identical checkpoints.
class DataSource {
 public:
  virtual ~DataSource() = default;

  virtual const std::vector<Dimension>& dims() const = 0;
  virtual int num_series() const = 0;
  virtual int num_times() const = 0;

  /// Per-series z-score stats over `mask`-available cells. Must equal
  /// DataTensor::ComputeNormalization on the materialized tensor bit for
  /// bit (both sides accumulate through NormalizationAccumulator in the
  /// same per-series, ascending-time order).
  virtual StatusOr<DataTensor::NormalizationStats> ComputeNormalization(
      const Mask& mask) const = 0;

  /// Builds a thread-safe reader of values normalized by `stats`. The
  /// reader borrows this source and must not outlive it.
  virtual StatusOr<std::unique_ptr<WindowReader>> MakeReader(
      const DataTensor::NormalizationStats& stats) const = 0;
};

/// In-core source: wraps a DataTensor the caller keeps alive. MakeReader
/// materializes the normalized matrix once (exactly the historical
/// Fit-time Normalized() copy) and serves zero-copy full views of it.
class InMemoryDataSource : public DataSource {
 public:
  explicit InMemoryDataSource(const DataTensor* data) : data_(data) {}

  const std::vector<Dimension>& dims() const override { return data_->dims(); }
  int num_series() const override { return data_->num_series(); }
  int num_times() const override { return data_->num_times(); }
  StatusOr<DataTensor::NormalizationStats> ComputeNormalization(
      const Mask& mask) const override {
    return data_->ComputeNormalization(mask);
  }
  StatusOr<std::unique_ptr<WindowReader>> MakeReader(
      const DataTensor::NormalizationStats& stats) const override;

 private:
  const DataTensor* data_;
};

/// Out-of-core source: a ChunkedSeriesStore plus a shared ChunkCache. The
/// caller keeps both alive; readers assemble normalized slabs from the
/// (at most two per window) time blocks a request spans, fetching raw
/// chunks through the cache.
class ChunkedDataSource : public DataSource {
 public:
  ChunkedDataSource(const ChunkedSeriesStore* store, ChunkCache* cache)
      : store_(store), cache_(cache) {}

  const std::vector<Dimension>& dims() const override { return store_->dims(); }
  int num_series() const override { return store_->num_series(); }
  int num_times() const override { return store_->num_times(); }

  /// Streams every chunk once (group-major), accumulating per-series
  /// partial sums in ascending-time order — bit-identical to the in-core
  /// stats while holding only one chunk at a time.
  StatusOr<DataTensor::NormalizationStats> ComputeNormalization(
      const Mask& mask) const override;

  StatusOr<std::unique_ptr<WindowReader>> MakeReader(
      const DataTensor::NormalizationStats& stats) const override;

  const ChunkedSeriesStore* store() const { return store_; }
  ChunkCache* cache() const { return cache_; }

 private:
  const ChunkedSeriesStore* store_;
  ChunkCache* cache_;
};

}  // namespace storage
}  // namespace deepmvi

#endif  // DEEPMVI_STORAGE_DATA_SOURCE_H_
