#include "storage/windowed_reader.h"

#include <algorithm>

#include "obs/trace.h"

namespace deepmvi {
namespace storage {

StatusOr<ValueWindow> WindowedSampleReader::Read(int t0, int len) const {
  if (t0 < 0 || len <= 0 || t0 + len > store_->num_times()) {
    return Status::InvalidArgument(
        "window [" + std::to_string(t0) + ", " + std::to_string(t0 + len) +
        ") out of range for " + std::to_string(store_->num_times()) +
        " time steps");
  }
  obs::Span span = obs::KernelSpan("storage.window_read");
  if (span.active()) {
    span.AddArg("t0", std::to_string(t0));
    span.AddArg("len", std::to_string(len));
  }
  const int num_series = store_->num_series();
  Matrix slab(num_series, len);

  const int block_len = store_->times_per_chunk();
  const int b0 = t0 / block_len;
  const int b1 = (t0 + len - 1) / block_len;
  for (int b = b0; b <= b1; ++b) {
    // Overlap of block b with the requested stripe, in absolute time.
    const int block_t0 = store_->block_begin_time(b);
    const int lo = std::max(t0, block_t0);
    const int hi = std::min(t0 + len, block_t0 + store_->block_num_times(b));
    for (int g = 0; g < store_->num_row_groups(); ++g) {
      StatusOr<ChunkCache::ChunkPtr> chunk = cache_->GetOrLoad(
          store_->ChunkKey(g, b), [&] {
            // Spans only cache misses: a hit never reaches this loader.
            obs::Span load = obs::KernelSpan("storage.chunk_load");
            if (load.active()) {
              load.AddArg("group", std::to_string(g));
              load.AddArg("block", std::to_string(b));
            }
            return store_->ReadChunk(g, b);
          });
      if (!chunk.ok()) return chunk.status();
      const Matrix& raw = **chunk;
      const int row0 = store_->group_begin_row(g);
      for (int r = 0; r < raw.rows(); ++r) {
        const int series = row0 + r;
        const double mean = stats_.mean[series];
        const double stddev = stats_.stddev[series];
        const double* src = raw.row_ptr(r) + (lo - block_t0);
        double* dst = slab.row_ptr(series) + (lo - t0);
        // Same expression as DataTensor::Normalized, so out-of-core
        // windows are bit-identical to slices of the normalized tensor.
        for (int t = 0; t < hi - lo; ++t) dst[t] = (src[t] - mean) / stddev;
      }
    }
  }
  return ValueWindow::OwnedSlab(std::move(slab), t0);
}

}  // namespace storage
}  // namespace deepmvi
