#ifndef DEEPMVI_STORAGE_WINDOWED_READER_H_
#define DEEPMVI_STORAGE_WINDOWED_READER_H_

#include "storage/data_source.h"

namespace deepmvi {
namespace storage {

/// Serves the training loop's windowed sample reads from a chunked store:
/// a request for the time stripe [t0, t0 + len) across all series is
/// assembled into an owned slab from the time blocks it spans — at most
/// two when len <= times_per_chunk, which holds for every DeepMVI training
/// window as long as the store's block size is >= the config's
/// max_context — normalizing each value with the fit-time stats on the
/// way. Raw chunks are fetched through the shared ChunkCache, so the
/// working set stays within the cache's byte budget plus one slab per
/// in-flight sample.
///
/// Thread-safe: the reader itself is immutable and the cache locks
/// internally.
class WindowedSampleReader : public WindowReader {
 public:
  WindowedSampleReader(const ChunkedSeriesStore* store, ChunkCache* cache,
                       DataTensor::NormalizationStats stats)
      : store_(store), cache_(cache), stats_(std::move(stats)) {}

  StatusOr<ValueWindow> Read(int t0, int len) const override;

 private:
  const ChunkedSeriesStore* store_;
  ChunkCache* cache_;
  DataTensor::NormalizationStats stats_;
};

}  // namespace storage
}  // namespace deepmvi

#endif  // DEEPMVI_STORAGE_WINDOWED_READER_H_
