#include "tensor/data_tensor.h"

#include <cmath>

namespace deepmvi {

DataTensor::DataTensor(std::vector<Dimension> dims, Matrix values)
    : dims_(std::move(dims)), values_(std::move(values)) {
  DMVI_CHECK(!dims_.empty());
  int64_t expected_rows = 1;
  for (const auto& d : dims_) {
    DMVI_CHECK_GT(d.size(), 0);
    expected_rows *= d.size();
  }
  DMVI_CHECK_EQ(expected_rows, values_.rows());
  strides_.assign(dims_.size(), 1);
  for (int i = num_dims() - 2; i >= 0; --i) {
    strides_[i] = strides_[i + 1] * dims_[i + 1].size();
  }
}

DataTensor DataTensor::FromMatrix(Matrix values, const std::string& dim_name) {
  Dimension d;
  d.name = dim_name;
  d.members.reserve(values.rows());
  for (int r = 0; r < values.rows(); ++r) {
    d.members.push_back("s" + std::to_string(r));
  }
  return DataTensor({std::move(d)}, std::move(values));
}

int DataTensor::FlattenIndex(const std::vector<int>& k) const {
  DMVI_CHECK_EQ(static_cast<int>(k.size()), num_dims());
  int row = 0;
  for (int i = 0; i < num_dims(); ++i) {
    DMVI_CHECK_GE(k[i], 0);
    DMVI_CHECK_LT(k[i], dims_[i].size());
    row += k[i] * strides_[i];
  }
  return row;
}

std::vector<int> DataTensor::UnflattenRow(int row) const {
  DMVI_CHECK_GE(row, 0);
  DMVI_CHECK_LT(row, num_series());
  std::vector<int> k(num_dims());
  for (int i = 0; i < num_dims(); ++i) {
    k[i] = row / strides_[i];
    row %= strides_[i];
  }
  return k;
}

std::vector<int> DataTensor::Siblings(int row, int dim_index) const {
  DMVI_CHECK_GE(dim_index, 0);
  DMVI_CHECK_LT(dim_index, num_dims());
  std::vector<int> k = UnflattenRow(row);
  std::vector<int> out;
  out.reserve(dims_[dim_index].size() - 1);
  const int own_member = k[dim_index];
  for (int m = 0; m < dims_[dim_index].size(); ++m) {
    if (m == own_member) continue;
    out.push_back(row + (m - own_member) * strides_[dim_index]);
  }
  return out;
}

DataTensor DataTensor::Flattened1D() const {
  if (num_dims() == 1) return *this;
  return DataTensor(FlattenedDims(dims_), values_);
}

DataTensor DataTensor::LayoutOnly(std::vector<Dimension> dims) {
  int64_t rows = 1;
  for (const auto& d : dims) rows *= d.size();
  return DataTensor(std::move(dims), Matrix(static_cast<int>(rows), 0));
}

std::vector<Dimension> FlattenedDims(const std::vector<Dimension>& dims) {
  if (dims.size() == 1) return dims;
  // Row-major strides, as in the DataTensor constructor.
  const int n = static_cast<int>(dims.size());
  std::vector<int> strides(n, 1);
  int64_t rows = 1;
  for (int i = n - 2; i >= 0; --i) strides[i] = strides[i + 1] * dims[i + 1].size();
  for (const auto& d : dims) rows *= d.size();

  Dimension flat;
  flat.name = "series";
  flat.members.reserve(rows);
  for (int r = 0; r < rows; ++r) {
    std::string name;
    int rest = r;
    for (int i = 0; i < n; ++i) {
      if (i > 0) name += "|";
      name += dims[i].members[rest / strides[i]];
      rest %= strides[i];
    }
    flat.members.push_back(std::move(name));
  }
  return {std::move(flat)};
}

DataTensor::NormalizationStats DataTensor::ComputeNormalization(
    const Mask& mask) const {
  DMVI_CHECK_EQ(mask.rows(), num_series());
  DMVI_CHECK_EQ(mask.cols(), num_times());
  NormalizationAccumulator acc(num_series());
  for (int r = 0; r < num_series(); ++r) {
    for (int t = 0; t < num_times(); ++t) {
      if (mask.available(r, t)) acc.Add(r, values_(r, t));
    }
  }
  return acc.Finalize();
}

DataTensor::NormalizationStats DataTensor::NormalizationAccumulator::Finalize()
    const {
  const int num_series = static_cast<int>(sum_.size());
  NormalizationStats stats;
  stats.mean.assign(num_series, 0.0);
  stats.stddev.assign(num_series, 1.0);

  // Global mean of available cells: fallback for fully-missing series.
  // Summed from the per-series partials (in series order) so a chunked
  // reader that accumulates per series reproduces it exactly.
  double global_sum = 0.0;
  int64_t global_count = 0;
  for (int r = 0; r < num_series; ++r) {
    global_sum += sum_[r];
    global_count += count_[r];
  }
  const double global_mean = global_count > 0 ? global_sum / global_count : 0.0;

  for (int r = 0; r < num_series; ++r) {
    if (count_[r] == 0) {
      stats.mean[r] = global_mean;
      stats.stddev[r] = 1.0;
      continue;
    }
    const double mean = sum_[r] / count_[r];
    const double var = std::max(sum2_[r] / count_[r] - mean * mean, 0.0);
    stats.mean[r] = mean;
    stats.stddev[r] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  return stats;
}

DataTensor DataTensor::Normalized(const NormalizationStats& stats) const {
  DMVI_CHECK_EQ(static_cast<int>(stats.mean.size()), num_series());
  Matrix out = values_;
  for (int r = 0; r < num_series(); ++r) {
    for (int t = 0; t < num_times(); ++t) {
      out(r, t) = (out(r, t) - stats.mean[r]) / stats.stddev[r];
    }
  }
  return DataTensor(dims_, std::move(out));
}

Matrix DataTensor::Denormalize(const Matrix& values,
                               const NormalizationStats& stats) {
  DMVI_CHECK_EQ(static_cast<int>(stats.mean.size()), values.rows());
  Matrix out = values;
  for (int r = 0; r < out.rows(); ++r) {
    for (int t = 0; t < out.cols(); ++t) {
      out(r, t) = out(r, t) * stats.stddev[r] + stats.mean[r];
    }
  }
  return out;
}

}  // namespace deepmvi
