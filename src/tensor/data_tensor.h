#ifndef DEEPMVI_TENSOR_DATA_TENSOR_H_
#define DEEPMVI_TENSOR_DATA_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/mask.h"
#include "tensor/matrix.h"

namespace deepmvi {

/// One non-time dimension of a multidimensional time-series dataset
/// (Sec 2.1 of the paper): a name and its discrete members.
struct Dimension {
  std::string name;
  std::vector<std::string> members;

  int size() const { return static_cast<int>(members.size()); }
};

/// Multidimensional time-series dataset: the paper's (n+1)-dimensional
/// tensor X with dimensions (K_1, ..., K_n, T). The values are stored as a
/// flattened series-major matrix whose rows enumerate the cartesian product
/// of the non-time dimensions in row-major (last dimension fastest) order.
///
/// A 1-dimensional dataset (plain collection of N series) is the n=1
/// special case with a single anonymous dimension of N members.
class DataTensor {
 public:
  DataTensor() = default;

  /// Multidimensional constructor. `values` must have prod(|K_i|) rows.
  DataTensor(std::vector<Dimension> dims, Matrix values);

  /// 1-dimensional convenience constructor: rows of `values` become members
  /// "s0", "s1", ... of a single dimension named `dim_name`.
  static DataTensor FromMatrix(Matrix values, const std::string& dim_name = "series");

  /// Metadata-only tensor: the dimensions (and thus FlattenIndex/
  /// UnflattenRow/Siblings) without any values — values() is a
  /// num_series x 0 matrix and num_times() is 0. This is the index-mapping
  /// layout the out-of-core training path hands to the forward pass, whose
  /// data reads all go through a ValueWindow instead.
  static DataTensor LayoutOnly(std::vector<Dimension> dims);

  // ---- Shape ------------------------------------------------------------

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const Dimension& dim(int i) const { return dims_[i]; }
  const std::vector<Dimension>& dims() const { return dims_; }
  /// Number of flattened series (= prod of dimension sizes).
  int num_series() const { return values_.rows(); }
  /// Length of the time axis.
  int num_times() const { return values_.cols(); }

  // ---- Values -------------------------------------------------------------

  const Matrix& values() const { return values_; }
  Matrix& values() { return values_; }

  // ---- Index mapping --------------------------------------------------------

  /// Flattens the multidimensional index k = (k_1, ..., k_n) to a row id.
  int FlattenIndex(const std::vector<int>& k) const;

  /// Expands a row id into its multidimensional index.
  std::vector<int> UnflattenRow(int row) const;

  /// All sibling rows of `row` along dimension `dim_index`: rows whose
  /// multi-index differs from `row`'s only in dimension `dim_index`
  /// (Eq. 16). The returned list excludes `row` itself.
  std::vector<int> Siblings(int row, int dim_index) const;

  /// Collapses all non-time dimensions into one, as done by the
  /// DeepMVI1D ablation and by all matrix-based baselines (Sec 5.5.4).
  DataTensor Flattened1D() const;

  /// Per-series z-score normalization statistics computed over the cells
  /// available in `mask`. Degenerate series (no available cells or zero
  /// variance) get mean of available global data and stddev 1.
  struct NormalizationStats {
    std::vector<double> mean;
    std::vector<double> stddev;
  };
  NormalizationStats ComputeNormalization(const Mask& mask) const;

  /// Incremental builder behind ComputeNormalization, shared with the
  /// chunked store so out-of-core stats are bit-identical to in-core ones:
  /// feed every available cell per series in ascending-time order (series
  /// may interleave — each series has its own accumulator) and Finalize.
  class NormalizationAccumulator {
   public:
    explicit NormalizationAccumulator(int num_series)
        : sum_(num_series, 0.0), sum2_(num_series, 0.0), count_(num_series, 0) {}

    void Add(int series, double value) {
      sum_[series] += value;
      sum2_[series] += value * value;
      ++count_[series];
    }

    /// Per-series mean/stddev with the degenerate-series fallbacks of
    /// ComputeNormalization (global mean of available cells, stddev 1).
    NormalizationStats Finalize() const;

   private:
    std::vector<double> sum_;
    std::vector<double> sum2_;
    std::vector<int64_t> count_;
  };

  /// Returns a copy with each series z-scored using `stats`.
  DataTensor Normalized(const NormalizationStats& stats) const;

  /// Inverse of Normalized for an arbitrary matrix of the same shape.
  static Matrix Denormalize(const Matrix& values, const NormalizationStats& stats);

 private:
  std::vector<Dimension> dims_;
  std::vector<int> strides_;  // row = sum_i k_i * strides_[i]
  Matrix values_;             // num_series x num_times
};

/// The dimension list Flattened1D produces: one dimension named "series"
/// whose members are the "m1|m2|..." joins of each row's member names, in
/// row order. Shared so the out-of-core path can flatten a store's
/// dimensions without materializing its values.
std::vector<Dimension> FlattenedDims(const std::vector<Dimension>& dims);

}  // namespace deepmvi

#endif  // DEEPMVI_TENSOR_DATA_TENSOR_H_
