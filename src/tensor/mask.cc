#include "tensor/mask.h"

#include <algorithm>

namespace deepmvi {

Mask::Mask(int rows, int cols, bool available)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * cols, available ? 1 : 0) {
  DMVI_CHECK_GE(rows, 0);
  DMVI_CHECK_GE(cols, 0);
}

void Mask::SetMissingRange(int r, int t0, int t1) {
  t0 = std::max(t0, 0);
  t1 = std::min(t1, cols_);
  for (int t = t0; t < t1; ++t) set_available(r, t, false);
}

int64_t Mask::CountMissing() const {
  int64_t count = 0;
  for (uint8_t v : data_) count += (v == 0);
  return count;
}

double Mask::MissingFraction() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(CountMissing()) / static_cast<double>(size());
}

std::vector<CellIndex> Mask::MissingIndices() const {
  std::vector<CellIndex> out;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (!available(r, c)) out.push_back({r, c});
    }
  }
  return out;
}

std::vector<CellIndex> Mask::AvailableIndices() const {
  std::vector<CellIndex> out;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (available(r, c)) out.push_back({r, c});
    }
  }
  return out;
}

std::vector<int> Mask::MissingBlockLengths() const {
  std::vector<int> out;
  for (int r = 0; r < rows_; ++r) {
    int run = 0;
    for (int c = 0; c < cols_; ++c) {
      if (!available(r, c)) {
        ++run;
      } else if (run > 0) {
        out.push_back(run);
        run = 0;
      }
    }
    if (run > 0) out.push_back(run);
  }
  return out;
}

Mask Mask::And(const Mask& other) const {
  DMVI_CHECK_EQ(rows_, other.rows_);
  DMVI_CHECK_EQ(cols_, other.cols_);
  Mask out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = (data_[i] != 0 && other.data_[i] != 0) ? 1 : 0;
  }
  return out;
}

Mask Mask::Complemented() const {
  Mask out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] != 0 ? 0 : 1;
  }
  return out;
}

bool Mask::operator==(const Mask& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

}  // namespace deepmvi
