#ifndef DEEPMVI_TENSOR_MASK_H_
#define DEEPMVI_TENSOR_MASK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace deepmvi {

/// A (series, time) cell index.
struct CellIndex {
  int series = 0;
  int time = 0;

  friend bool operator==(const CellIndex& a, const CellIndex& b) {
    return a.series == b.series && a.time == b.time;
  }
};

/// Availability mask over a series-major matrix: `available(r, t)` is true
/// when the value X(r, t) is observed. This is the paper's tensor `A`
/// (with `M = 1 - A` the missing mask).
class Mask {
 public:
  Mask() : rows_(0), cols_(0) {}

  /// All-available mask of the given shape.
  Mask(int rows, int cols, bool available = true);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }

  bool available(int r, int c) const {
    DMVI_CHECK_GE(r, 0);
    DMVI_CHECK_LT(r, rows_);
    DMVI_CHECK_GE(c, 0);
    DMVI_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c] != 0;
  }
  bool missing(int r, int c) const { return !available(r, c); }

  void set_available(int r, int c, bool v) {
    DMVI_CHECK_GE(r, 0);
    DMVI_CHECK_LT(r, rows_);
    DMVI_CHECK_GE(c, 0);
    DMVI_CHECK_LT(c, cols_);
    data_[static_cast<size_t>(r) * cols_ + c] = v ? 1 : 0;
  }
  void set_missing(int r, int c) { set_available(r, c, false); }

  /// Marks the range [t0, t1) of series r as missing (clamped to bounds).
  void SetMissingRange(int r, int t0, int t1);

  /// Number of missing cells.
  int64_t CountMissing() const;
  /// Number of available cells.
  int64_t CountAvailable() const { return size() - CountMissing(); }
  /// Fraction of missing cells in [0, 1].
  double MissingFraction() const;

  /// All missing cell indices, row-major order. This is I(M) in the paper.
  std::vector<CellIndex> MissingIndices() const;
  /// All available cell indices, row-major order. This is I(A).
  std::vector<CellIndex> AvailableIndices() const;

  /// Lengths of maximal contiguous missing runs, per series, concatenated.
  /// Used to sample missing-block shapes during DeepMVI training (Sec 3).
  std::vector<int> MissingBlockLengths() const;

  /// Intersection: available in both.
  Mask And(const Mask& other) const;

  /// Complement: every cell's availability flipped (A <-> M = 1 - A).
  Mask Complemented() const;

  /// True when every cell of `other` equals this mask.
  bool operator==(const Mask& other) const;

 private:
  int rows_;
  int cols_;
  std::vector<uint8_t> data_;
};

/// Read-only availability view: a base mask with an optional synthetic
/// missing block overlaid on a subset of rows. This is the per-training-
/// sample view of DeepMVI's simulated-missing protocol (Sec 3): the anchor
/// and blackout rows have [t0, t1) forced missing on top of the dataset's
/// real mask. Historically each sample *copied* the whole mask to apply
/// its block — O(num_series x num_times) bytes per sample, which both
/// slowed the in-core hot path and made out-of-core training impossible.
/// The overlay answers the same queries in O(1) without copying.
///
/// Like ValueWindow, this is a call-scoped parameter type: it borrows the
/// base mask (and the row-flag vector, when present) for the duration of a
/// forward pass. Implicit conversion from `const Mask&` keeps plain-mask
/// call sites (inference, tests) unchanged.
class MaskOverlay {
 public:
  /// No synthetic block: behaves exactly like `base`.
  MaskOverlay(const Mask& base) : base_(&base) {}  // NOLINT

  /// `base` with [t0, t1) forced missing on every row r whose
  /// `block_rows[r]` is nonzero. `block_rows` must have base.rows()
  /// entries and outlive the overlay.
  MaskOverlay(const Mask& base, int t0, int t1,
              const std::vector<uint8_t>& block_rows)
      : base_(&base), t0_(t0), t1_(t1), block_rows_(&block_rows) {
    DMVI_CHECK_EQ(static_cast<int>(block_rows.size()), base.rows());
  }

  bool available(int r, int t) const {
    if (block_rows_ != nullptr && t >= t0_ && t < t1_ &&
        (*block_rows_)[r] != 0) {
      return false;
    }
    return base_->available(r, t);
  }
  bool missing(int r, int t) const { return !available(r, t); }

  int rows() const { return base_->rows(); }
  int cols() const { return base_->cols(); }

 private:
  const Mask* base_;
  int t0_ = 0;
  int t1_ = 0;  // Empty range: no overlay.
  const std::vector<uint8_t>* block_rows_ = nullptr;
};

}  // namespace deepmvi

#endif  // DEEPMVI_TENSOR_MASK_H_
