#include "tensor/matmul_kernel.h"

#include <string>

#include "obs/profiler.h"
#include "obs/trace.h"

namespace deepmvi {
namespace internal {
namespace {

/// Kernel-level trace scope: inert (one atomic load + branch) unless a
/// global tracer at TraceLevel::kKernel is installed. Dimension strings
/// are only built when the span is live.
inline void AnnotateDims(obs::Span& span, int m, int k, int n) {
  if (!span.active()) return;
  span.AddArg("m", std::to_string(m));
  span.AddArg("k", std::to_string(k));
  span.AddArg("n", std::to_string(n));
}

// Tile sizes. kKTile rows of B (the streamed operand) are kept hot in L1/L2
// while the full output is swept; 2 output rows x 4 k-terms are held in
// registers by the micro kernels so each loaded B row updates two C rows.
constexpr int kKTile = 64;

/// c0/c1 get four ascending-k terms each; b rows are loaded once per j.
inline void MicroKernel2x4(double* c0, double* c1, const double* b0,
                           const double* b1, const double* b2, const double* b3,
                           double a00, double a01, double a02, double a03,
                           double a10, double a11, double a12, double a13,
                           int n) {
  for (int j = 0; j < n; ++j) {
    double acc0 = c0[j];
    acc0 += a00 * b0[j];
    acc0 += a01 * b1[j];
    acc0 += a02 * b2[j];
    acc0 += a03 * b3[j];
    c0[j] = acc0;
    double acc1 = c1[j];
    acc1 += a10 * b0[j];
    acc1 += a11 * b1[j];
    acc1 += a12 * b2[j];
    acc1 += a13 * b3[j];
    c1[j] = acc1;
  }
}

inline void MicroKernel1x4(double* c0, const double* b0, const double* b1,
                           const double* b2, const double* b3, double a00,
                           double a01, double a02, double a03, int n) {
  for (int j = 0; j < n; ++j) {
    double acc = c0[j];
    acc += a00 * b0[j];
    acc += a01 * b1[j];
    acc += a02 * b2[j];
    acc += a03 * b3[j];
    c0[j] = acc;
  }
}

inline void MicroKernel1x1(double* c0, const double* b0, double a00, int n) {
  for (int j = 0; j < n; ++j) c0[j] += a00 * b0[j];
}

}  // namespace

void MatMulBlocked(const double* a, const double* b, double* c, int m, int k,
                   int n) {
  obs::ProfileLabelScope profile_label("matmul.blocked");
  obs::Span span = obs::KernelSpan("matmul.blocked");
  AnnotateDims(span, m, k, n);
  for (int k0 = 0; k0 < k; k0 += kKTile) {
    const int k1 = k0 + kKTile < k ? k0 + kKTile : k;
    int i = 0;
    for (; i + 1 < m; i += 2) {
      const double* a0 = a + static_cast<long long>(i) * k;
      const double* a1 = a0 + k;
      double* c0 = c + static_cast<long long>(i) * n;
      double* c1 = c0 + n;
      int kk = k0;
      for (; kk + 3 < k1; kk += 4) {
        const double* brow = b + static_cast<long long>(kk) * n;
        MicroKernel2x4(c0, c1, brow, brow + n, brow + 2 * n, brow + 3 * n,
                       a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3], a1[kk],
                       a1[kk + 1], a1[kk + 2], a1[kk + 3], n);
      }
      for (; kk < k1; ++kk) {
        const double* brow = b + static_cast<long long>(kk) * n;
        MicroKernel1x1(c0, brow, a0[kk], n);
        MicroKernel1x1(c1, brow, a1[kk], n);
      }
    }
    if (i < m) {
      const double* a0 = a + static_cast<long long>(i) * k;
      double* c0 = c + static_cast<long long>(i) * n;
      int kk = k0;
      for (; kk + 3 < k1; kk += 4) {
        const double* brow = b + static_cast<long long>(kk) * n;
        MicroKernel1x4(c0, brow, brow + n, brow + 2 * n, brow + 3 * n, a0[kk],
                       a0[kk + 1], a0[kk + 2], a0[kk + 3], n);
      }
      for (; kk < k1; ++kk) {
        MicroKernel1x1(c0, b + static_cast<long long>(kk) * n, a0[kk], n);
      }
    }
  }
}

void TransposeMatMulBlocked(const double* a, const double* b, double* c, int m,
                            int k, int n) {
  // a is k x m and read transposed: the i-th output row multiplies column i
  // of a, a stride-m gather; everything else mirrors MatMulBlocked.
  obs::ProfileLabelScope profile_label("matmul.transpose_a");
  obs::Span span = obs::KernelSpan("matmul.transpose_a");
  AnnotateDims(span, m, k, n);
  for (int k0 = 0; k0 < k; k0 += kKTile) {
    const int k1 = k0 + kKTile < k ? k0 + kKTile : k;
    int i = 0;
    for (; i + 1 < m; i += 2) {
      double* c0 = c + static_cast<long long>(i) * n;
      double* c1 = c0 + n;
      int kk = k0;
      for (; kk + 3 < k1; kk += 4) {
        const double* acol = a + static_cast<long long>(kk) * m + i;
        const double* brow = b + static_cast<long long>(kk) * n;
        MicroKernel2x4(c0, c1, brow, brow + n, brow + 2 * n, brow + 3 * n,
                       acol[0], acol[m], acol[2 * m], acol[3 * m], acol[1],
                       acol[m + 1], acol[2 * m + 1], acol[3 * m + 1], n);
      }
      for (; kk < k1; ++kk) {
        const double* acol = a + static_cast<long long>(kk) * m + i;
        const double* brow = b + static_cast<long long>(kk) * n;
        MicroKernel1x1(c0, brow, acol[0], n);
        MicroKernel1x1(c1, brow, acol[1], n);
      }
    }
    if (i < m) {
      double* c0 = c + static_cast<long long>(i) * n;
      int kk = k0;
      for (; kk + 3 < k1; kk += 4) {
        const double* acol = a + static_cast<long long>(kk) * m + i;
        const double* brow = b + static_cast<long long>(kk) * n;
        MicroKernel1x4(c0, brow, brow + n, brow + 2 * n, brow + 3 * n, acol[0],
                       acol[m], acol[2 * m], acol[3 * m], n);
      }
      for (; kk < k1; ++kk) {
        MicroKernel1x1(c0, b + static_cast<long long>(kk) * n,
                       a[static_cast<long long>(kk) * m + i], n);
      }
    }
  }
}

void MatMulTransposeBlocked(const double* a, const double* b, double* c, int m,
                            int k, int n) {
  // Row-times-row dot products; four B rows are swept per pass so each
  // loaded A row feeds four accumulators. Every accumulator is one
  // ascending-k chain, matching the naive order.
  obs::ProfileLabelScope profile_label("matmul.transpose_b");
  obs::Span span = obs::KernelSpan("matmul.transpose_b");
  AnnotateDims(span, m, k, n);
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<long long>(i) * k;
    double* crow = c + static_cast<long long>(i) * n;
    int j = 0;
    for (; j + 3 < n; j += 4) {
      const double* b0 = b + static_cast<long long>(j) * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j] += acc0;
      crow[j + 1] += acc1;
      crow[j + 2] += acc2;
      crow[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const double* brow = b + static_cast<long long>(j) * k;
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

void MatMulNaive(const double* a, const double* b, double* c, int m, int k,
                 int n) {
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<long long>(i) * k;
    double* crow = c + static_cast<long long>(i) * n;
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc += arow[kk] * b[static_cast<long long>(kk) * n + j];
      }
      crow[j] += acc;
    }
  }
}

}  // namespace internal
}  // namespace deepmvi
