#ifndef DEEPMVI_TENSOR_MATMUL_KERNEL_H_
#define DEEPMVI_TENSOR_MATMUL_KERNEL_H_

// Blocked dense matmul kernels shared by Matrix (and through it by the
// autodiff ops and the linalg layer). All kernels work on raw row-major
// buffers, accumulate into `c` (callers zero-initialize), and keep the
// per-output-element accumulation order identical to the textbook triple
// loop: for every c[i][j] the k terms are added in ascending k with a
// single accumulator chain. Blocking therefore only reorders *which*
// outputs are touched when, never the floating-point sum inside one
// output, so results are bit-identical to the naive reference — the
// contract tests/tensor_test.cc locks in.
//
// Unlike the historical kernels there is no `a == 0.0` skip: a zero times
// a NaN/Inf contributes NaN to the sum instead of silently hiding it.

namespace deepmvi {
namespace internal {

/// c[m x n] += a[m x k] * b[k x n].
void MatMulBlocked(const double* a, const double* b, double* c, int m, int k,
                   int n);

/// c[m x n] += a^T * b with a[k x m], b[k x n] (a is accessed transposed).
void TransposeMatMulBlocked(const double* a, const double* b, double* c, int m,
                            int k, int n);

/// c[m x n] += a * b^T with a[m x k], b[n x k] (b is accessed transposed).
void MatMulTransposeBlocked(const double* a, const double* b, double* c, int m,
                            int k, int n);

/// Textbook ijk triple loop, kept as the bit-exact reference the blocked
/// kernels are tested and benchmarked against.
void MatMulNaive(const double* a, const double* b, double* c, int m, int k,
                 int n);

}  // namespace internal
}  // namespace deepmvi

#endif  // DEEPMVI_TENSOR_MATMUL_KERNEL_H_
