#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "tensor/matmul_kernel.h"

namespace deepmvi {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0.0) {
  DMVI_CHECK_GE(rows, 0);
  DMVI_CHECK_GE(cols, 0);
}

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  DMVI_CHECK_GE(rows, 0);
  DMVI_CHECK_GE(cols, 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = static_cast<int>(values.size());
  cols_ = rows_ > 0 ? static_cast<int>(values.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : values) {
    DMVI_CHECK_EQ(static_cast<int>(row.size()), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomGaussian(int rows, int cols, Rng& rng, double mean,
                              double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.Gaussian(mean, stddev);
  return m;
}

Matrix Matrix::RandomUniform(int rows, int cols, Rng& rng, double lo, double hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  for (size_t i = 0; i < values.size(); ++i) m.data_[i] = values[i];
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, static_cast<int>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) m.data_[i] = values[i];
  return m;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  int n = static_cast<int>(diag.size());
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = diag[i];
  return m;
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::SetRow(int r, const std::vector<double>& values) {
  DMVI_CHECK_EQ(static_cast<int>(values.size()), cols_);
  std::copy(values.begin(), values.end(), row_ptr(r));
}

void Matrix::SetCol(int c, const std::vector<double>& values) {
  DMVI_CHECK_EQ(static_cast<int>(values.size()), rows_);
  for (int r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

void Matrix::SetBlock(int r0, int c0, const Matrix& block) {
  DMVI_CHECK_LE(r0 + block.rows(), rows_);
  DMVI_CHECK_LE(c0 + block.cols(), cols_);
  for (int r = 0; r < block.rows(); ++r) {
    std::copy(block.row_ptr(r), block.row_ptr(r) + block.cols(),
              row_ptr(r0 + r) + c0);
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DMVI_CHECK_EQ(rows_, other.rows_);
  DMVI_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DMVI_CHECK_EQ(rows_, other.rows_);
  DMVI_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  DMVI_CHECK_NE(s, 0.0);
  for (auto& v : data_) v /= s;
  return *this;
}

std::vector<double> Matrix::Row(int r) const {
  return std::vector<double>(row_ptr(r), row_ptr(r) + cols_);
}

std::vector<double> Matrix::Col(int c) const {
  std::vector<double> out(rows_);
  for (int r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::Block(int r0, int c0, int nrows, int ncols) const {
  DMVI_CHECK_GE(r0, 0);
  DMVI_CHECK_GE(c0, 0);
  DMVI_CHECK_LE(r0 + nrows, rows_);
  DMVI_CHECK_LE(c0 + ncols, cols_);
  Matrix out(nrows, ncols);
  for (int r = 0; r < nrows; ++r) {
    std::copy(row_ptr(r0 + r) + c0, row_ptr(r0 + r) + c0 + ncols, out.row_ptr(r));
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const double* src = row_ptr(r);
    for (int c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix Matrix::CwiseProduct(const Matrix& other) const {
  DMVI_CHECK_EQ(rows_, other.rows_);
  DMVI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::CwiseQuotient(const Matrix& other) const {
  DMVI_CHECK_EQ(rows_, other.rows_);
  DMVI_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] /= other.data_[i];
  return out;
}

Matrix Matrix::Map(double (*f)(double)) const {
  Matrix out = *this;
  for (auto& v : out.data_) v = f(v);
  return out;
}

// The three product variants share the blocked kernels in
// matmul_kernel.cc. The historical ikj loops skipped a == 0.0 terms, which
// silently turned 0 * NaN / 0 * Inf into 0 and hid non-finite operands;
// the kernels carry no such branch, so non-finite values propagate.

Matrix Matrix::MatMul(const Matrix& other) const {
  DMVI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  internal::MatMulBlocked(data(), other.data(), out.data(), rows_, cols_,
                          other.cols_);
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  DMVI_CHECK_EQ(rows_, other.rows_);
  Matrix out(cols_, other.cols_);
  internal::TransposeMatMulBlocked(data(), other.data(), out.data(), cols_,
                                   rows_, other.cols_);
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  DMVI_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  internal::MatMulTransposeBlocked(data(), other.data(), out.data(), rows_,
                                   cols_, other.rows_);
  return out;
}

double Matrix::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Matrix::Mean() const {
  DMVI_CHECK_GT(size(), 0);
  return Sum() / static_cast<double>(size());
}

double Matrix::Min() const {
  DMVI_CHECK_GT(size(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Max() const {
  DMVI_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::Norm() const { return std::sqrt(SquaredNorm()); }

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

double Matrix::MaxAbs() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

std::vector<double> Matrix::RowMeans() const {
  DMVI_CHECK_GT(cols_, 0);
  std::vector<double> out(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* p = row_ptr(r);
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += p[c];
    out[r] = acc / cols_;
  }
  return out;
}

std::vector<double> Matrix::ColMeans() const {
  DMVI_CHECK_GT(rows_, 0);
  std::vector<double> out(cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* p = row_ptr(r);
    for (int c = 0; c < cols_; ++c) out[c] += p[c];
  }
  for (auto& v : out) v /= rows_;
  return out;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix " << rows_ << "x" << cols_ << "\n";
  const int show_r = std::min(rows_, max_rows);
  const int show_c = std::min(cols_, max_cols);
  char buf[48];
  for (int r = 0; r < show_r; ++r) {
    os << "  [";
    for (int c = 0; c < show_c; ++c) {
      std::snprintf(buf, sizeof(buf), "%10.4g", (*this)(r, c));
      os << buf << (c + 1 < show_c ? ", " : "");
    }
    if (show_c < cols_) os << ", ...";
    os << "]\n";
  }
  if (show_r < rows_) os << "  ...\n";
  return os.str();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  DMVI_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  DMVI_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace deepmvi
