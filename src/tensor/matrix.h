#ifndef DEEPMVI_TENSOR_MATRIX_H_
#define DEEPMVI_TENSOR_MATRIX_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace deepmvi {

/// Dense row-major matrix of doubles.
///
/// This is the numeric workhorse shared by the linear-algebra substrate,
/// the autodiff engine, and every imputation algorithm. Time-series
/// datasets are stored series-major: row = series, column = time, matching
/// the matrix view used by the paper's matrix-completion baselines.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  /// Constant-filled rows x cols matrix.
  Matrix(int rows, int cols, double fill);

  /// Builds from nested initializer lists: Matrix m = {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  // ---- Factories -----------------------------------------------------

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }
  static Matrix Constant(int rows, int cols, double v) { return Matrix(rows, cols, v); }
  static Matrix Identity(int n);
  /// Entries ~ N(mean, stddev).
  static Matrix RandomGaussian(int rows, int cols, Rng& rng, double mean = 0.0,
                               double stddev = 1.0);
  /// Entries ~ U[lo, hi).
  static Matrix RandomUniform(int rows, int cols, Rng& rng, double lo = 0.0,
                              double hi = 1.0);
  /// Column vector from data.
  static Matrix ColumnVector(const std::vector<double>& values);
  /// Row vector from data.
  static Matrix RowVector(const std::vector<double>& values);
  /// Diagonal matrix from data.
  static Matrix Diagonal(const std::vector<double>& diag);

  // ---- Shape and element access ---------------------------------------

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  double& operator()(int r, int c) {
    DMVI_CHECK_GE(r, 0);
    DMVI_CHECK_LT(r, rows_);
    DMVI_CHECK_GE(c, 0);
    DMVI_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    DMVI_CHECK_GE(r, 0);
    DMVI_CHECK_LT(r, rows_);
    DMVI_CHECK_GE(c, 0);
    DMVI_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Unchecked flat access for inner loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* row_ptr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  // ---- Mutators --------------------------------------------------------

  void Fill(double v);
  void SetRow(int r, const std::vector<double>& values);
  void SetCol(int c, const std::vector<double>& values);
  /// Copies `block` into this matrix with top-left corner (r0, c0).
  void SetBlock(int r0, int c0, const Matrix& block);
  /// In-place scalar ops.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  Matrix& operator/=(double s);

  // ---- Slicing ---------------------------------------------------------

  std::vector<double> Row(int r) const;
  std::vector<double> Col(int c) const;
  /// Sub-matrix [r0, r0+nrows) x [c0, c0+ncols).
  Matrix Block(int r0, int c0, int nrows, int ncols) const;
  Matrix Transpose() const;

  // ---- Arithmetic --------------------------------------------------------

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double s) const;
  /// Elementwise (Hadamard) product.
  Matrix CwiseProduct(const Matrix& other) const;
  /// Elementwise division.
  Matrix CwiseQuotient(const Matrix& other) const;
  /// Applies f to every element.
  Matrix Map(double (*f)(double)) const;

  /// this * other.
  Matrix MatMul(const Matrix& other) const;
  /// this^T * other without materializing the transpose.
  Matrix TransposeMatMul(const Matrix& other) const;
  /// this * other^T without materializing the transpose.
  Matrix MatMulTranspose(const Matrix& other) const;

  // ---- Reductions ---------------------------------------------------------

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Frobenius norm.
  double Norm() const;
  double SquaredNorm() const;
  /// Largest absolute entry.
  double MaxAbs() const;
  /// Per-row means / per-column means.
  std::vector<double> RowMeans() const;
  std::vector<double> ColMeans() const;

  /// True if all entries are finite.
  bool AllFinite() const;

  /// Approximate equality within `tol` (max-abs difference).
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

  std::string ToString(int max_rows = 8, int max_cols = 10) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// scalar * matrix.
inline Matrix operator*(double s, const Matrix& m) { return m * s; }

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm of a vector.
double Norm(const std::vector<double>& v);

/// Pearson correlation of two equal-length vectors; returns 0 when either
/// side has zero variance.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace deepmvi

#endif  // DEEPMVI_TENSOR_MATRIX_H_
