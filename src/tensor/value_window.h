#ifndef DEEPMVI_TENSOR_VALUE_WINDOW_H_
#define DEEPMVI_TENSOR_VALUE_WINDOW_H_

#include <utility>

#include "tensor/matrix.h"

namespace deepmvi {

/// Read-only window onto a (normalized) series-major value matrix covering
/// the absolute time range [t_begin, t_end) for every series. Callers index
/// it with absolute (series, time) coordinates, exactly like the full
/// matrix it stands in for.
///
/// Two flavors share this type so the training forward pass has a single
/// code path for in-core and out-of-core data:
///  - a zero-copy *view* of a full num_series x num_times matrix (the
///    historical in-core path; implicit conversion from `const Matrix&`
///    keeps those call sites unchanged), and
///  - an *owned slab* of num_series x len values starting at time t0,
///    assembled from store chunks by a WindowedSampleReader.
///
/// A view does not own the matrix it points at: it is a call-scoped
/// parameter type (like string_view), not a storage type.
class ValueWindow {
 public:
  ValueWindow() = default;

  /// Zero-copy view of a full matrix; time 0 of the matrix is absolute
  /// time 0. Implicit so existing `Forward(..., values, ...)` call sites
  /// keep compiling with a Matrix.
  ValueWindow(const Matrix& full) : external_(&full) {}  // NOLINT

  /// Owning slab whose column 0 is absolute time `t0`.
  static ValueWindow OwnedSlab(Matrix slab, int t0) {
    ValueWindow out;
    out.owned_ = std::move(slab);
    out.t0_ = t0;
    return out;
  }

  ValueWindow(ValueWindow&&) = default;
  ValueWindow& operator=(ValueWindow&&) = default;
  ValueWindow(const ValueWindow&) = default;
  ValueWindow& operator=(const ValueWindow&) = default;

  /// Value of series `r` at absolute time `t`; t must lie in
  /// [t_begin(), t_end()).
  double operator()(int r, int t) const { return mat()(r, t - t0_); }

  int num_series() const { return mat().rows(); }
  int t_begin() const { return t0_; }
  int t_end() const { return t0_ + mat().cols(); }

 private:
  const Matrix& mat() const { return external_ != nullptr ? *external_ : owned_; }

  Matrix owned_;
  const Matrix* external_ = nullptr;
  int t0_ = 0;
};

}  // namespace deepmvi

#endif  // DEEPMVI_TENSOR_VALUE_WINDOW_H_
