#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/ops.h"
#include "autodiff/tape.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace ad {
namespace {

using testutil::ExpectGradientsMatch;

Matrix TestInput(int rows, int cols, uint64_t seed) {
  return testutil::RandomMatrix(rows, cols, seed, 0.7);
}

TEST(TapeTest, LeafValueAndScalar) {
  Tape tape;
  Var v = tape.Leaf({{3.5}});
  EXPECT_EQ(v.scalar(), 3.5);
  EXPECT_EQ(tape.num_nodes(), 1);
}

TEST(TapeTest, ConstantsGetNoGradient) {
  Tape tape;
  Var c = tape.Constant({{2.0, 2.0}});
  Var x = tape.Leaf({{1.0, 3.0}});
  Var loss = Sum(Mul(c, x));
  tape.Backward(loss);
  // Gradient w.r.t. x is the constant; constant's grad stays zero.
  EXPECT_EQ(x.grad()(0, 0), 2.0);
  EXPECT_EQ(c.grad()(0, 0), 0.0);
}

TEST(TapeTest, GradientAccumulatesAcrossUses) {
  Tape tape;
  Var x = tape.Leaf({{2.0}});
  Var y = Add(x, x);  // dy/dx = 2
  tape.Backward(Sum(y));
  EXPECT_EQ(x.grad()(0, 0), 2.0);
}

TEST(TapeTest, ResetInvalidatesNodes) {
  Tape tape;
  tape.Leaf({{1.0}});
  EXPECT_EQ(tape.num_nodes(), 1);
  tape.Reset();
  EXPECT_EQ(tape.num_nodes(), 0);
}

TEST(GradCheck, Add) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) { return Sum(Add(v[0], v[1])); },
      {TestInput(3, 4, 1), TestInput(3, 4, 2)});
}

TEST(GradCheck, SubMulChain) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(Mul(Sub(v[0], v[1]), v[0]));
      },
      {TestInput(2, 3, 3), TestInput(2, 3, 4)});
}

TEST(GradCheck, Div) {
  Rng rng(5);
  Matrix denom = Matrix::RandomUniform(2, 3, rng, 1.0, 2.0);
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) { return Sum(Div(v[0], v[1])); },
      {TestInput(2, 3, 6), denom});
}

TEST(GradCheck, ScaleAddScalarNeg) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(Neg(AddScalar(Scale(v[0], 2.5), -1.0)));
      },
      {TestInput(3, 3, 7)});
}

TEST(GradCheck, MulConst) {
  Matrix mask = {{1, 0, 1}, {0, 1, 0}};
  ExpectGradientsMatch(
      [mask](Tape&, const std::vector<Var>& v) {
        return Sum(MulConst(v[0], mask));
      },
      {TestInput(2, 3, 8)});
}

TEST(GradCheck, Relu) {
  // Shift away from 0 to avoid the kink in finite differences.
  Rng rng(9);
  Matrix x = Matrix::RandomGaussian(3, 3, rng);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (std::fabs(x(r, c)) < 0.05) x(r, c) = 0.1;
    }
  }
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) { return Sum(Relu(v[0])); }, {x});
}

TEST(GradCheck, TanhSigmoidExp) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(Tanh(Sigmoid(Exp(v[0]))));
      },
      {TestInput(2, 4, 10)});
}

TEST(GradCheck, LogSquareSqrt) {
  Rng rng(11);
  Matrix x = Matrix::RandomUniform(2, 3, rng, 0.5, 2.0);
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(Log(Sqrt(Square(v[0]), 1e-3)));
      },
      {x});
}

TEST(GradCheck, AbsAwayFromZero) {
  Matrix x = {{0.5, -0.7}, {1.2, -2.0}};
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) { return Sum(Abs(v[0])); }, {x});
}

TEST(GradCheck, MatMul) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(MatMul(v[0], v[1]));
      },
      {TestInput(3, 4, 12), TestInput(4, 2, 13)});
}

TEST(GradCheck, MatMulChainWithNonlinearity) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(Tanh(MatMul(Relu(MatMul(v[0], v[1])), v[2])));
      },
      {TestInput(2, 3, 14), TestInput(3, 4, 15), TestInput(4, 2, 16)}, 1e-5);
}

TEST(GradCheck, Transpose) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(MatMul(Transpose(v[0]), v[0]));
      },
      {TestInput(3, 2, 17)});
}

TEST(GradCheck, ReshapeSliceConcat) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        Var reshaped = Reshape(v[0], 2, 6);
        Var left = SliceCols(reshaped, 0, 3);
        Var right = SliceCols(reshaped, 3, 3);
        Var rows = ConcatRows({left, right});
        Var top = SliceRows(rows, 0, 2);
        return Sum(Mul(top, top));
      },
      {TestInput(3, 4, 18)});
}

TEST(GradCheck, ConcatColsGradientSplit) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        return Sum(Square(ConcatCols({v[0], v[1]})));
      },
      {TestInput(2, 2, 19), TestInput(2, 3, 20)});
}

TEST(GradCheck, GatherRowsWithDuplicates) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        // Row 1 appears twice: gradient must accumulate.
        return Sum(Square(GatherRows(v[0], {1, 0, 1})));
      },
      {TestInput(3, 4, 21)});
}

TEST(GradCheck, RowBroadcasts) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        Var a = AddRowVector(v[0], v[1]);
        Var b = SubRowVector(a, v[2]);
        Var c = MulRowVector(b, v[1]);
        return Sum(Square(c));
      },
      {TestInput(3, 4, 22), TestInput(1, 4, 23), TestInput(1, 4, 24)});
}

TEST(GradCheck, BroadcastScalar) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        Var s = Mean(v[0]);
        return Sum(Mul(BroadcastScalar(s, 2, 3), v[1]));
      },
      {TestInput(2, 2, 25), TestInput(2, 3, 26)});
}

TEST(GradCheck, Reductions) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        Var rs = RowSum(Square(v[0]));      // n x 1
        Var cs = ColSum(Square(v[0]));      // 1 x m
        return Add(Sum(rs), Add(Sum(cs), Mean(v[0])));
      },
      {TestInput(3, 4, 27)});
}

TEST(GradCheck, SoftmaxRows) {
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        Var w = SoftmaxRows(v[0]);
        // Weighted sum so the gradient is non-trivial.
        return Sum(Mul(w, v[1]));
      },
      {TestInput(3, 5, 28), TestInput(3, 5, 29)});
}

TEST(GradCheck, MaskedSoftmaxRows) {
  Matrix avail = {{1, 0, 1, 1}, {0, 1, 1, 0}, {1, 1, 1, 1}};
  ExpectGradientsMatch(
      [avail](Tape&, const std::vector<Var>& v) {
        Var w = MaskedSoftmaxRows(v[0], avail);
        return Sum(Mul(w, v[1]));
      },
      {TestInput(3, 4, 30), TestInput(3, 4, 31)});
}

TEST(MaskedSoftmaxTest, UnavailableGetZeroWeight) {
  Tape tape;
  Var scores = tape.Leaf({{1.0, 2.0, 3.0}});
  Matrix avail = {{1, 0, 1}};
  Var w = MaskedSoftmaxRows(scores, avail);
  EXPECT_EQ(w.value()(0, 1), 0.0);
  EXPECT_NEAR(w.value()(0, 0) + w.value()(0, 2), 1.0, 1e-12);
}

TEST(MaskedSoftmaxTest, AllMaskedRowIsZero) {
  Tape tape;
  Var scores = tape.Leaf({{1.0, 2.0}});
  Matrix avail = {{0, 0}};
  Var w = MaskedSoftmaxRows(scores, avail);
  EXPECT_EQ(w.value()(0, 0), 0.0);
  EXPECT_EQ(w.value()(0, 1), 0.0);
  // Backward through an all-masked row must not blow up.
  tape.Backward(Sum(w));
  EXPECT_TRUE(scores.grad().AllFinite());
}

TEST(GradCheck, WeightedMseLoss) {
  Matrix target = TestInput(3, 4, 32);
  Matrix weight = {{1, 0, 1, 1}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  ExpectGradientsMatch(
      [target, weight](Tape&, const std::vector<Var>& v) {
        return WeightedMseLoss(Tanh(v[0]), target, weight);
      },
      {TestInput(3, 4, 33)});
}

TEST(GradCheck, WeightedMaeLoss) {
  Matrix target = {{0.0, 0.0}, {0.0, 0.0}};
  Matrix weight = {{1, 1}, {1, 0}};
  // Keep predictions away from the kink at pred == target.
  Matrix pred = {{0.5, -0.8}, {1.5, 0.3}};
  ExpectGradientsMatch(
      [target, weight](Tape&, const std::vector<Var>& v) {
        return WeightedMaeLoss(v[0], target, weight);
      },
      {pred});
}

TEST(LossTest, MseValueCorrect) {
  Tape tape;
  Var pred = tape.Leaf({{1.0, 2.0}});
  Matrix target = {{0.0, 0.0}};
  Matrix weight = {{1.0, 1.0}};
  Var loss = WeightedMseLoss(pred, target, weight);
  EXPECT_NEAR(loss.scalar(), (1.0 + 4.0) / 2.0, 1e-12);
}

TEST(LossTest, MaeIgnoresZeroWeight) {
  Tape tape;
  Var pred = tape.Leaf({{1.0, 100.0}});
  Matrix target = {{0.0, 0.0}};
  Matrix weight = {{1.0, 0.0}};
  Var loss = WeightedMaeLoss(pred, target, weight);
  EXPECT_NEAR(loss.scalar(), 1.0, 1e-12);
}

// A composite graph resembling one attention step, checked end to end.
TEST(GradCheck, AttentionLikeComposite) {
  Matrix avail = {{1, 1, 0}, {1, 1, 0}, {0, 1, 1}};
  ExpectGradientsMatch(
      [avail](Tape&, const std::vector<Var>& v) {
        Var q = MatMul(v[0], v[1]);
        Var k = MatMul(v[0], v[2]);
        Var scores = Scale(MatMul(q, Transpose(k)), 1.0 / std::sqrt(2.0));
        Var w = MaskedSoftmaxRows(scores, avail);
        Var out = MatMul(w, v[0]);
        return Sum(Square(out));
      },
      {TestInput(3, 2, 34), TestInput(2, 2, 35), TestInput(2, 2, 36)}, 1e-5);
}

// Parameterized sweep: gradients of a fixed composite graph must match
// numerics for a range of shapes.
class GradShapeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GradShapeSweep, CompositeGraph) {
  const auto [rows, cols] = GetParam();
  ExpectGradientsMatch(
      [](Tape&, const std::vector<Var>& v) {
        Var h = Tanh(v[0]);
        Var s = RowSum(Square(h));
        return Add(Sum(s), Mean(Mul(h, h)));
      },
      {TestInput(rows, cols, 100 + rows * 13 + cols)});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GradShapeSweep,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 7),
                      std::make_pair(5, 1), std::make_pair(3, 3),
                      std::make_pair(8, 2), std::make_pair(2, 9)));

}  // namespace
}  // namespace ad
}  // namespace deepmvi
