#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dynammo.h"
#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "baselines/stmvl.h"
#include "baselines/trmf.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "scenario/scenarios.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using namespace testutil;

TEST(MeanImputerTest, FillsWithSeriesMean) {
  Matrix values = {{1, 2, 3, 100}, {10, 10, 10, 10}};
  Mask mask(2, 4);
  mask.set_missing(0, 3);
  DataTensor data = DataTensor::FromMatrix(values);
  MeanImputer imputer;
  Matrix out = imputer.Impute(data, mask);
  EXPECT_NEAR(out(0, 3), 2.0, 1e-12);  // mean of {1,2,3}
  EXPECT_EQ(out(1, 0), 10.0);
}

TEST(MeanImputerTest, FullyMissingSeriesUsesGlobalMean) {
  Matrix values = {{4, 4}, {999, 999}};
  Mask mask(2, 2);
  mask.set_missing(1, 0);
  mask.set_missing(1, 1);
  MeanImputer imputer;
  Matrix out = imputer.Impute(DataTensor::FromMatrix(values), mask);
  EXPECT_NEAR(out(1, 0), 4.0, 1e-12);
}

TEST(InterpolationTest, ExactOnLinearSeries) {
  Matrix values(1, 10);
  for (int t = 0; t < 10; ++t) values(0, t) = 3.0 * t + 1.0;
  Mask mask(1, 10);
  mask.SetMissingRange(0, 3, 7);
  LinearInterpolationImputer imputer;
  Matrix out = imputer.Impute(DataTensor::FromMatrix(values), mask);
  for (int t = 3; t < 7; ++t) EXPECT_NEAR(out(0, t), 3.0 * t + 1.0, 1e-9);
}

TEST(InterpolationTest, ConstantExtrapolationAtEdges) {
  Matrix values = {{5, 6, 7, 8, 9}};
  Mask mask(1, 5);
  mask.set_missing(0, 0);
  mask.set_missing(0, 4);
  LinearInterpolationImputer imputer;
  Matrix out = imputer.Impute(DataTensor::FromMatrix(values), mask);
  EXPECT_EQ(out(0, 0), 6.0);  // nearest available to the right
  EXPECT_EQ(out(0, 4), 8.0);  // nearest available to the left
}

TEST(InterpolationTest, FullyMissingSeriesGetsZero) {
  Matrix values = {{1, 2}, {3, 4}};
  Mask mask(2, 2);
  mask.set_missing(1, 0);
  mask.set_missing(1, 1);
  LinearInterpolationImputer imputer;
  Matrix out = imputer.Impute(DataTensor::FromMatrix(values), mask);
  EXPECT_EQ(out(1, 0), 0.0);
}

TEST(SvdImputerTest, RecoversLowRankData) {
  Matrix x = LowRankData(12, 80, 2, 1);
  Mask mask = McarMask(12, 80, 0.1, 2);
  DataTensor data = DataTensor::FromMatrix(x);
  SvdImputer imputer({.rank = 2});
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  EXPECT_LT(MaeOnMissing(out, x, mask), 0.15);
  // Must beat mean imputation comfortably.
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            0.5 * MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(SoftImputerTest, RecoversLowRankData) {
  Matrix x = LowRankData(12, 80, 2, 3);
  Mask mask = McarMask(12, 80, 0.1, 4);
  DataTensor data = DataTensor::FromMatrix(x);
  SoftImputer imputer;
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(SvtImputerTest, RecoversLowRankData) {
  Matrix x = LowRankData(12, 80, 2, 5);
  Mask mask = McarMask(12, 80, 0.1, 6);
  DataTensor data = DataTensor::FromMatrix(x);
  SvtImputer imputer;
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(CdRecImputerTest, RecoversLowRankData) {
  Matrix x = LowRankData(12, 80, 2, 7);
  Mask mask = McarMask(12, 80, 0.1, 8);
  DataTensor data = DataTensor::FromMatrix(x);
  CdRecImputer imputer({.rank = 2});
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  EXPECT_LT(MaeOnMissing(out, x, mask), 0.2);
}

TEST(CdRecImputerTest, ExploitsCrossSeriesCorrelation) {
  // Correlated synthetic data: CDRec should beat pure interpolation on a
  // long missing block because siblings carry the signal.
  SyntheticConfig config;
  config.num_series = 12;
  config.length = 300;
  config.cross_correlation = 0.95;
  config.seasonality_strength = 0.3;
  config.noise_level = 0.05;
  config.seed = 9;
  Matrix x = GenerateSeriesMatrix(config);
  Mask mask(12, 300);
  mask.SetMissingRange(0, 100, 160);  // Long block in series 0.
  DataTensor data = DataTensor::FromMatrix(x);
  CdRecImputer cdrec({.rank = 4});
  LinearInterpolationImputer interp;
  const double cdrec_mae = MaeOnMissing(cdrec.Impute(data, mask), x, mask);
  const double interp_mae = MaeOnMissing(interp.Impute(data, mask), x, mask);
  EXPECT_LT(cdrec_mae, interp_mae);
}

TEST(TrmfImputerTest, RecoversLowRankData) {
  Matrix x = LowRankData(12, 80, 2, 11);
  Mask mask = McarMask(12, 80, 0.1, 12);
  DataTensor data = DataTensor::FromMatrix(x);
  TrmfImputer imputer({.rank = 3});
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(TrmfImputerTest, ArRegularizationHelpsOnSmoothData) {
  // Smooth AR-ish series: TRMF with lags should beat TRMF without.
  SyntheticConfig config;
  config.num_series = 8;
  config.length = 240;
  config.cross_correlation = 0.6;
  config.seasonality_strength = 0.5;
  config.seasonal_periods = {24.0};
  config.noise_level = 0.05;
  config.seed = 13;
  Matrix x = GenerateSeriesMatrix(config);
  Mask mask = McarMask(8, 240, 0.15, 14, /*block=*/8);
  DataTensor data = DataTensor::FromMatrix(x);
  TrmfImputer with_ar({.rank = 4, .lags = {1, 2, 3}});
  TrmfImputer without_ar({.rank = 4, .lags = {}});
  const double mae_ar = MaeOnMissing(with_ar.Impute(data, mask), x, mask);
  const double mae_plain = MaeOnMissing(without_ar.Impute(data, mask), x, mask);
  EXPECT_LT(mae_ar, mae_plain * 1.25);  // AR never catastrophically worse...
  EXPECT_LT(mae_ar, 1.0);               // ...and reasonable in absolute terms.
}

TEST(DynammoGroupingTest, GroupsCorrelatedSeriesTogether) {
  // Two families of series: sines and cosines with noise.
  Rng rng(15);
  Matrix x(6, 200);
  for (int t = 0; t < 200; ++t) {
    const double s = std::sin(2 * M_PI * t / 25.0);
    const double c = std::cos(2 * M_PI * t / 40.0);
    for (int i = 0; i < 3; ++i) {
      x(i, t) = s * (1.0 + 0.1 * i) + 0.02 * rng.Gaussian();
      x(3 + i, t) = c * (1.0 + 0.1 * i) + 0.02 * rng.Gaussian();
    }
  }
  auto groups = internal_dynammo::GroupSeries(x, 3);
  ASSERT_EQ(groups.size(), 2u);
  // First group seeded with series 0 should contain the other sines.
  std::set<int> g0(groups[0].begin(), groups[0].end());
  EXPECT_TRUE(g0.count(1) == 1 && g0.count(2) == 1);
}

TEST(DynammoImputerTest, RecoversLdsGeneratedData) {
  // Data from an actual LDS: z_{t+1} = A z_t, x = C z + noise.
  Rng rng(16);
  const int h = 2, n = 4, t_len = 150;
  // Rotation dynamics (stable oscillator).
  const double theta = 0.2;
  Matrix a = {{std::cos(theta), -std::sin(theta)},
              {std::sin(theta), std::cos(theta)}};
  Matrix c = Matrix::RandomGaussian(n, h, rng);
  Matrix z = Matrix::RandomGaussian(h, 1, rng);
  Matrix x(n, t_len);
  for (int t = 0; t < t_len; ++t) {
    for (int i = 0; i < n; ++i) {
      double v = 0.0;
      for (int b = 0; b < h; ++b) v += c(i, b) * z(b, 0);
      x(i, t) = v + 0.02 * rng.Gaussian();
    }
    z = a.MatMul(z);
  }
  Mask mask(n, t_len);
  mask.SetMissingRange(1, 60, 80);
  DataTensor data = DataTensor::FromMatrix(x);
  DynammoImputer imputer({.group_size = 4, .hidden_dim = 4, .em_iterations = 12});
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            0.7 * MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(StmvlImputerTest, ContractAndAccuracyOnCorrelatedData) {
  SyntheticConfig config;
  config.num_series = 10;
  config.length = 250;
  config.cross_correlation = 0.9;
  config.seasonality_strength = 0.4;
  config.noise_level = 0.05;
  config.seed = 17;
  Matrix x = GenerateSeriesMatrix(config);
  Mask mask = McarMask(10, 250, 0.1, 18);
  DataTensor data = DataTensor::FromMatrix(x);
  StmvlImputer imputer;
  CheckImputerContract(imputer, data, mask);
  Matrix out = imputer.Impute(data, mask);
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            MaeOnMissing(mean.Impute(data, mask), x, mask));
}

// Contract sweep: every baseline honours the Imputer contract on every
// headline scenario.
class BaselineContractSweep : public ::testing::TestWithParam<ScenarioKind> {};

TEST_P(BaselineContractSweep, AllBaselinesHonourContract) {
  SyntheticConfig config;
  config.num_series = 8;
  config.length = 160;
  config.seed = 19;
  Matrix x = GenerateSeriesMatrix(config);
  DataTensor data = DataTensor::FromMatrix(x);
  ScenarioConfig scenario;
  scenario.kind = GetParam();
  scenario.percent_incomplete = 0.5;
  scenario.block_size = 10;
  scenario.seed = 20;
  Mask mask = GenerateScenario(scenario, 8, 160);

  MeanImputer mean;
  LinearInterpolationImputer interp;
  SvdImputer svd({.rank = 3});
  SoftImputer soft;
  SvtImputer svt;
  CdRecImputer cdrec({.rank = 3});
  TrmfImputer trmf({.rank = 3, .outer_iterations = 4});
  DynammoImputer dynammo({.em_iterations = 4});
  StmvlImputer stmvl;
  for (Imputer* imputer :
       std::initializer_list<Imputer*>{&mean, &interp, &svd, &soft, &svt,
                                       &cdrec, &trmf, &dynammo, &stmvl}) {
    CheckImputerContract(*imputer, data, mask);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, BaselineContractSweep,
                         ::testing::Values(ScenarioKind::kMcar,
                                           ScenarioKind::kMissDisj,
                                           ScenarioKind::kMissOver,
                                           ScenarioKind::kBlackout));

}  // namespace
}  // namespace deepmvi
