#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace deepmvi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithMeanStddev) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(19);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitIndependent) {
  Rng parent(43);
  Rng child = parent.Split();
  // Child stream should not track parent's.
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformIntIsDeterministicForSameSeed) {
  // The Lemire rejection step must consume the stream identically on both
  // generators; the unbiased mapping changes values vs the old modulo but
  // never same-seed reproducibility.
  Rng a(101), b(101);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.UniformInt(7), b.UniformInt(7));
    ASSERT_EQ(a.UniformInt(1, 1000000007), b.UniformInt(1, 1000000007));
  }
}

TEST(RngTest, UniformIntApproximatelyUniform) {
  // Frequency check on a small range: with rejection sampling every residue
  // has identical probability; 60000 draws over 6 bins should stay within
  // ~4 sigma of 10000 each.
  Rng rng(53);
  int counts[6] = {0, 0, 0, 0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(6)];
  for (int v = 0; v < 6; ++v) {
    EXPECT_NEAR(counts[v], n / 6, 400) << "value " << v;
  }
}

TEST(RngTest, UniformIntHandlesHugeRanges) {
  // Near-INT_MAX ranges exercise the rejection path (2^64 mod n != 0).
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(2147483647);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 2147483647);
  }
}

TEST(ParallelForTest, RunsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(257, 8, [&](int i) { ++hits[i]; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, WorkerExceptionPropagatesToCaller) {
  // Historical regression: an exception on a worker thread escaped into
  // std::thread and called std::terminate. It must rethrow on the caller
  // after every worker joined.
  EXPECT_THROW(
      ParallelFor(64, 4,
                  [](int i) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);

  // Serial path (1 thread / 1 item) propagates too.
  EXPECT_THROW(
      ParallelFor(4, 1, [](int) { throw std::runtime_error("serial boom"); }),
      std::runtime_error);
  EXPECT_THROW(
      ParallelFor(1, 8, [](int) { throw std::runtime_error("single boom"); }),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionSkipsRemainingIterations) {
  // Deterministic on the serial path: the throw at i == 0 must abandon
  // every later iteration. (On the threaded path the skip point depends on
  // when workers observe the failure flag; exception delivery there is
  // covered by WorkerExceptionPropagatesToCaller.)
  std::atomic<int> ran{0};
  try {
    ParallelFor(1000, 1, [&](int i) {
      if (i == 0) throw std::runtime_error("early");
      ++ran;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "early");
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForWithSlotTest, SlotsAreWithinBoundsAndExclusive) {
  const int threads = 4;
  const int n = 128;
  const int slots = EffectiveThreads(n, threads);
  std::vector<std::atomic<int>> in_use(slots);
  for (auto& s : in_use) s = 0;
  std::atomic<bool> overlap{false};
  ParallelForWithSlot(n, threads, [&](int /*i*/, int slot) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, slots);
    // At most one task may occupy a slot at a time: that is what lets the
    // training loop keep per-slot scratch tapes without locking.
    if (in_use[slot].fetch_add(1) != 0) overlap = true;
    in_use[slot].fetch_sub(1);
  });
  EXPECT_FALSE(overlap.load());
}

TEST(ParallelForWithSlotTest, PersistentPoolReusesWorkerThreads) {
  // The pool keeps its worker threads across calls: after a warm-up
  // region at a given width, further regions at that width must not
  // create any new pool threads (the historical implementation spawned
  // and joined a fresh set per call). Work long enough that every slot
  // participates.
  auto busy_region = [] {
    ParallelForWithSlot(16, 4, [](int /*i*/, int /*slot*/) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  };
  busy_region();  // Warm the pool to >= 4 threads.
  const int64_t after_warm = ParallelPoolThreadsCreated();
  EXPECT_GE(after_warm, 4);
  for (int round = 0; round < 5; ++round) busy_region();
  EXPECT_EQ(ParallelPoolThreadsCreated(), after_warm);

  // Nested fan-out from inside a worker: every inner index still runs.
  std::atomic<int> inner_runs{0};
  ParallelForWithSlot(4, 2, [&](int /*i*/, int /*slot*/) {
    ParallelFor(8, 2, [&](int /*j*/) { ++inner_runs; });
  });
  EXPECT_EQ(inner_runs.load(), 4 * 8);
}

TEST(StatusTest, OkStatus) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad rank"), std::string::npos);
}

TEST(StatusTest, StatusOrValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusTest, StatusOrError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc = acc + std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
}

TEST(TablePrinterTest, AsciiContainsCells) {
  TablePrinter table({"dataset", "mae"});
  table.AddRow({"AirQ", "0.1234"});
  table.AddRow({"Climate", "0.5"});
  std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("AirQ"), std::string::npos);
  EXPECT_NE(ascii.find("0.1234"), std::string::npos);
  EXPECT_NE(ascii.find("mae"), std::string::npos);
}

TEST(TablePrinterTest, CsvRoundTrip) {
  TablePrinter table({"a", "b"});
  table.AddRow({"x,y", "plain"});
  std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 1), "2.0");
}

TEST(LoggingTest, ParseLogSeverity) {
  LogSeverity severity = LogSeverity::kInfo;
  EXPECT_TRUE(ParseLogSeverity("debug", &severity));
  EXPECT_EQ(severity, LogSeverity::kDebug);
  EXPECT_TRUE(ParseLogSeverity("warn", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(ParseLogSeverity("warning", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(ParseLogSeverity("error", &severity));
  EXPECT_EQ(severity, LogSeverity::kError);
  // Unknown input leaves the output untouched.
  EXPECT_FALSE(ParseLogSeverity("verbose", &severity));
  EXPECT_EQ(severity, LogSeverity::kError);
}

TEST(LoggingTest, ParseLogFormat) {
  LogFormat format = LogFormat::kPlain;
  EXPECT_TRUE(ParseLogFormat("json", &format));
  EXPECT_EQ(format, LogFormat::kJson);
  EXPECT_TRUE(ParseLogFormat("kv", &format));
  EXPECT_EQ(format, LogFormat::kKeyValue);
  EXPECT_TRUE(ParseLogFormat("keyvalue", &format));
  EXPECT_EQ(format, LogFormat::kKeyValue);
  EXPECT_TRUE(ParseLogFormat("plain", &format));
  EXPECT_EQ(format, LogFormat::kPlain);
  EXPECT_FALSE(ParseLogFormat("xml", &format));
  EXPECT_EQ(format, LogFormat::kPlain);
}

LogEvent RequestLogEvent() {
  LogEvent event;
  event.severity = LogSeverity::kInfo;
  event.source = "server.cc:42";
  event.message = "http request served";
  event.fields = {{"request_id", "req-7"}, {"path", "/v1/impute"}};
  return event;
}

TEST(LoggingTest, FormatPlainGolden) {
  EXPECT_EQ(FormatLogEvent(RequestLogEvent(), LogFormat::kPlain),
            "[INFO server.cc:42] http request served "
            "request_id=req-7 path=/v1/impute");
}

TEST(LoggingTest, FormatKeyValueGolden) {
  EXPECT_EQ(FormatLogEvent(RequestLogEvent(), LogFormat::kKeyValue),
            "level=INFO src=server.cc:42 msg=\"http request served\" "
            "request_id=req-7 path=/v1/impute");
}

TEST(LoggingTest, FormatJsonGolden) {
  EXPECT_EQ(FormatLogEvent(RequestLogEvent(), LogFormat::kJson),
            "{\"level\":\"INFO\",\"src\":\"server.cc:42\","
            "\"msg\":\"http request served\","
            "\"request_id\":\"req-7\",\"path\":\"/v1/impute\"}");
}

TEST(LoggingTest, KeyValueQuotesAndEscapesAwkwardValues) {
  LogEvent event;
  event.severity = LogSeverity::kWarning;
  event.source = "s:1";
  event.message = "m";
  event.fields = {{"a", "has space"}, {"b", ""}, {"c", "tab\there"},
                  {"d", "plain"}};
  EXPECT_EQ(FormatLogEvent(event, LogFormat::kKeyValue),
            "level=WARN src=s:1 msg=m "
            "a=\"has space\" b=\"\" c=\"tab\\there\" d=plain");
}

TEST(LoggingTest, JsonEscapesControlCharactersAndQuotes) {
  LogEvent event;
  event.severity = LogSeverity::kError;
  event.source = "s:1";
  event.message = "quote \" backslash \\ newline \n bell \x07";
  EXPECT_EQ(FormatLogEvent(event, LogFormat::kJson),
            "{\"level\":\"ERROR\",\"src\":\"s:1\","
            "\"msg\":\"quote \\\" backslash \\\\ newline \\n bell "
            "\\u0007\"}");
}

TEST(LoggingTest, DebugIsBelowDefaultThreshold) {
  EXPECT_LT(static_cast<int>(LogSeverity::kDebug),
            static_cast<int>(LogSeverity::kInfo));
  LogSeverity severity = LogSeverity::kInfo;
  ASSERT_TRUE(ParseLogSeverity("debug", &severity));
  // Lowering the threshold to debug admits every severity.
  EXPECT_GE(static_cast<int>(LogSeverity::kError),
            static_cast<int>(severity));
}

TEST(TablePrinterTest, WriteCsvCreatesFile) {
  TablePrinter table({"k", "v"});
  table.AddRow({"one", "1"});
  std::string path = testing::TempDir() + "/dmvi_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
}

}  // namespace
}  // namespace deepmvi
