#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace deepmvi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithMeanStddev) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(19);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitIndependent) {
  Rng parent(43);
  Rng child = parent.Split();
  // Child stream should not track parent's.
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(StatusTest, OkStatus) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad rank"), std::string::npos);
}

TEST(StatusTest, StatusOrValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusTest, StatusOrError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc = acc + std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
}

TEST(TablePrinterTest, AsciiContainsCells) {
  TablePrinter table({"dataset", "mae"});
  table.AddRow({"AirQ", "0.1234"});
  table.AddRow({"Climate", "0.5"});
  std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("AirQ"), std::string::npos);
  EXPECT_NE(ascii.find("0.1234"), std::string::npos);
  EXPECT_NE(ascii.find("mae"), std::string::npos);
}

TEST(TablePrinterTest, CsvRoundTrip) {
  TablePrinter table({"a", "b"});
  table.AddRow({"x,y", "plain"});
  std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 1), "2.0");
}

TEST(TablePrinterTest, WriteCsvCreatesFile) {
  TablePrinter table({"k", "v"});
  table.AddRow({"one", "1"});
  std::string path = testing::TempDir() + "/dmvi_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
}

}  // namespace
}  // namespace deepmvi
