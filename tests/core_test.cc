#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/simple.h"
#include "core/deepmvi.h"
#include "core/quality_profile.h"
#include "core/trained_deepmvi.h"
#include "core/kernel_regression.h"
#include "core/temporal_transformer.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "scenario/scenarios.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::FastDeepMviConfig;

TEST(TemporalTransformerTest, OutputShape) {
  nn::ParameterStore store;
  Rng rng(1);
  DeepMviConfig config;
  config.window = 5;
  config.filters = 8;
  config.num_heads = 2;
  TemporalTransformer tt(&store, config, rng);
  ad::Tape tape;
  Matrix series(1, 30);
  std::vector<double> window_avail(6, 1.0);
  ad::Var htt = tt.Forward(tape, series, window_avail);
  EXPECT_EQ(htt.rows(), 30);
  EXPECT_EQ(htt.cols(), 8);
  EXPECT_TRUE(htt.value().AllFinite());
}

TEST(TemporalTransformerTest, MaskedWindowValuesCannotLeakPastNeighbours) {
  // A window's content reaches other positions through (a) its own key and
  // value, and (b) its neighbours' queries/keys (Eq. 8-9). When windows
  // j-1, j, j+1 are all unavailable, every such path for window j is
  // either key-masked or belongs to an excluded key, so positions at least
  // two windows away must be unaffected by window j's values.
  nn::ParameterStore store;
  Rng rng(2);
  DeepMviConfig config;
  config.window = 4;
  config.filters = 8;
  config.num_heads = 1;
  TemporalTransformer tt(&store, config, rng);

  Matrix series1 = Matrix::RandomGaussian(1, 32, rng);
  Matrix series2 = series1;
  // Perturb window 3 (positions 12..15).
  for (int t = 12; t < 16; ++t) series2(0, t) += 5.0;
  std::vector<double> avail(8, 1.0);
  avail[2] = avail[3] = avail[4] = 0.0;

  ad::Tape t1, t2;
  Matrix out1 = tt.Forward(t1, series1, avail).value();
  Matrix out2 = tt.Forward(t2, series2, avail).value();
  for (int t = 0; t < 32; ++t) {
    if (t >= 8 && t < 24) continue;  // Windows 2..5 may change (5 via 4's query).
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(out1(t, c), out2(t, c), 1e-9) << "t=" << t;
    }
  }
}

TEST(TemporalTransformerTest, GradientsFlowToAllParameters) {
  nn::ParameterStore store;
  Rng rng(3);
  DeepMviConfig config;
  config.window = 5;
  config.filters = 8;
  config.num_heads = 2;
  TemporalTransformer tt(&store, config, rng);
  ad::Tape tape;
  Matrix series = Matrix::RandomGaussian(1, 40, rng);
  std::vector<double> avail(8, 1.0);
  ad::Var htt = tt.Forward(tape, series, avail);
  tape.Backward(ad::Sum(ad::Square(htt)));
  int with_grad = 0, total = 0;
  for (const auto& p : store.params()) {
    ++total;
    if (p->on_tape(tape) && p->grad_on(tape).MaxAbs() > 0.0) ++with_grad;
  }
  // ReLU dead units can zero a few gradients, but most parameters must
  // receive signal.
  EXPECT_GT(with_grad, total / 2);
}

TEST(KernelRegressionTest, FeatureShapeAndValues) {
  // 2 stores x 3 items.
  Dimension stores{"store", {"s0", "s1"}};
  Dimension items{"item", {"i0", "i1", "i2"}};
  Matrix values(6, 4, 1.0);
  values(3, 2) = 7.0;  // store 1, item 0 at t=2.
  DataTensor data({stores, items}, values);
  Mask mask(6, 4);

  nn::ParameterStore store;
  Rng rng(4);
  DeepMviConfig config;
  config.embedding_dim = 4;
  KernelRegression kr(&store, data.dims(), config, rng);
  EXPECT_EQ(kr.feature_dim(), 6);

  ad::Tape tape;
  // Row (store 0, item 0): store-sibling is (store 1, item 0) = row 3.
  const int row = data.FlattenIndex({0, 0});
  ad::Var features = kr.Forward(tape, data, values, mask, row, {2, 3});
  EXPECT_EQ(features.rows(), 2);
  EXPECT_EQ(features.cols(), 6);
  // U along the store dimension at t=2 must equal the single sibling's
  // value (7.0) regardless of kernel weight; at t=3 it is 1.0.
  EXPECT_NEAR(features.value()(0, 0), 7.0, 1e-6);
  EXPECT_NEAR(features.value()(1, 0), 1.0, 1e-6);
  // Variance of a single sibling is 0.
  EXPECT_NEAR(features.value()(0, 2), 0.0, 1e-12);
}

TEST(KernelRegressionTest, UnavailableSiblingsExcluded) {
  Dimension dim{"series", {"a", "b", "c"}};
  Matrix values = {{0, 0}, {5, 5}, {9, 9}};
  DataTensor data({dim}, values);
  Mask mask(3, 2);
  mask.set_missing(2, 0);  // Series c unavailable at t=0.

  nn::ParameterStore store;
  Rng rng(5);
  DeepMviConfig config;
  KernelRegression kr(&store, data.dims(), config, rng);
  ad::Tape tape;
  ad::Var features = kr.Forward(tape, data, values, mask, 0, {0});
  // Only series b is available at t=0: U = 5 exactly.
  EXPECT_NEAR(features.value()(0, 0), 5.0, 1e-6);
}

TEST(KernelRegressionTest, GradientsReachEmbeddings) {
  Dimension dim{"series", {"a", "b", "c", "d"}};
  Rng data_rng(6);
  Matrix values = Matrix::RandomGaussian(4, 6, data_rng);
  DataTensor data({dim}, values);
  Mask mask(4, 6);

  nn::ParameterStore store;
  Rng rng(7);
  DeepMviConfig config;
  KernelRegression kr(&store, data.dims(), config, rng);
  ad::Tape tape;
  ad::Var features = kr.Forward(tape, data, values, mask, 1, {0, 3});
  tape.Backward(ad::Sum(ad::Square(features)));
  bool embedding_got_grad = false;
  for (const auto& p : store.params()) {
    if (p->on_tape(tape) && p->grad_on(tape).MaxAbs() > 0.0) {
      embedding_got_grad = true;
    }
  }
  EXPECT_TRUE(embedding_got_grad);
}

TEST(DeepMviTest, NamesReflectAblations) {
  EXPECT_EQ(DeepMviImputer().name(), "DeepMVI");
  DeepMviConfig no_tt;
  no_tt.use_temporal_transformer = false;
  EXPECT_EQ(DeepMviImputer(no_tt).name(), "DeepMVI-NoTT");
  DeepMviConfig flat;
  flat.flatten_multidim = true;
  EXPECT_EQ(DeepMviImputer(flat).name(), "DeepMVI1D");
  DeepMviConfig no_ctx;
  no_ctx.use_context_window = false;
  EXPECT_EQ(DeepMviImputer(no_ctx).name(), "DeepMVI-NoContext");
}

TEST(DeepMviTest, ContractOnSmallData) {
  SyntheticConfig data_config;
  data_config.num_series = 6;
  data_config.length = 120;
  data_config.seed = 8;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(x);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 9;
  Mask mask = GenerateScenario(scenario, 6, 120);

  DeepMviImputer imputer(FastDeepMviConfig());
  Matrix out = imputer.Impute(data, mask);
  ASSERT_EQ(out.rows(), 6);
  ASSERT_EQ(out.cols(), 120);
  EXPECT_TRUE(out.AllFinite());
  for (int r = 0; r < 6; ++r) {
    for (int t = 0; t < 120; ++t) {
      if (mask.available(r, t)) {
        EXPECT_EQ(out(r, t), x(r, t));
      }
    }
  }
  EXPECT_GT(imputer.train_stats().epochs_run, 0);
  EXPECT_EQ(imputer.train_stats().window_used, 10);
}

TEST(DeepMviTest, BeatsMeanImputationOnSeasonalData) {
  SyntheticConfig data_config;
  data_config.num_series = 8;
  data_config.length = 240;
  data_config.seasonal_periods = {24.0};
  data_config.seasonality_strength = 0.9;
  data_config.cross_correlation = 0.6;
  data_config.noise_level = 0.05;
  data_config.seed = 10;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(x);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.missing_fraction = 0.1;
  scenario.seed = 11;
  Mask mask = GenerateScenario(scenario, 8, 240);

  DeepMviConfig config = FastDeepMviConfig();
  config.max_epochs = 25;
  DeepMviImputer deep(config);
  MeanImputer mean;
  const double deep_mae = MaeOnMissing(deep.Impute(data, mask), x, mask);
  const double mean_mae = MaeOnMissing(mean.Impute(data, mask), x, mask);
  EXPECT_LT(deep_mae, 0.8 * mean_mae)
      << "DeepMVI " << deep_mae << " vs Mean " << mean_mae;
}

TEST(DeepMviTest, KernelRegressionCarriesBlackMarketSiblingSignal) {
  // Two nearly identical series; a long block missing in one. With cross
  // signal the error must be far below the series' own variation.
  Rng rng(12);
  Matrix x(4, 200);
  for (int t = 0; t < 200; ++t) {
    const double base = std::sin(2 * M_PI * t / 35.0) + 0.3 * std::sin(t * 0.91);
    for (int r = 0; r < 4; ++r) {
      x(r, t) = base * (1.0 + 0.05 * r) + 0.02 * rng.Gaussian();
    }
  }
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(4, 200);
  mask.SetMissingRange(0, 80, 120);

  DeepMviConfig config = FastDeepMviConfig();
  config.max_epochs = 25;
  DeepMviImputer imputer(config);
  Matrix out = imputer.Impute(data, mask);
  const double mae = MaeOnMissing(out, x, mask);
  EXPECT_LT(mae, 0.25) << "sibling signal not exploited";
}

TEST(DeepMviTest, HandlesBlackoutWithoutSiblings) {
  // Blackout: all series missing in the same range; only within-series
  // signal available. Seasonal data keeps it learnable.
  SyntheticConfig data_config;
  data_config.num_series = 5;
  data_config.length = 300;
  data_config.seasonal_periods = {30.0};
  data_config.seasonality_strength = 0.95;
  data_config.cross_correlation = 0.1;
  data_config.noise_level = 0.05;
  data_config.seed = 13;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(x);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kBlackout;
  scenario.block_size = 30;
  scenario.seed = 14;
  Mask mask = GenerateScenario(scenario, 5, 300);

  DeepMviConfig config = FastDeepMviConfig();
  config.max_epochs = 25;
  DeepMviImputer deep(config);
  MeanImputer mean;
  const double deep_mae = MaeOnMissing(deep.Impute(data, mask), x, mask);
  const double mean_mae = MaeOnMissing(mean.Impute(data, mask), x, mask);
  EXPECT_TRUE(deep.Impute(data, mask).AllFinite());
  EXPECT_LT(deep_mae, mean_mae * 1.05)
      << "DeepMVI " << deep_mae << " vs Mean " << mean_mae;
}

TEST(DeepMviTest, MultidimensionalSiblingsUsed) {
  // 3 stores x 4 items with strong store coherence: sibling stores carry
  // the signal for a missing block.
  Rng rng(15);
  Dimension stores{"store", {"s0", "s1", "s2"}};
  Dimension items{"item", {"i0", "i1", "i2", "i3"}};
  Matrix values(12, 150);
  for (int i = 0; i < 4; ++i) {
    std::vector<double> base(150);
    for (int t = 0; t < 150; ++t) {
      base[t] = std::sin(2 * M_PI * t / (20.0 + 7 * i)) + 0.1 * rng.Gaussian();
    }
    for (int s = 0; s < 3; ++s) {
      for (int t = 0; t < 150; ++t) {
        values(s * 4 + i, t) = base[t] * (1.0 + 0.1 * s) + 0.02 * rng.Gaussian();
      }
    }
  }
  DataTensor data({stores, items}, values);
  Mask mask(12, 150);
  mask.SetMissingRange(0, 50, 90);  // (s0, i0)

  DeepMviConfig config = FastDeepMviConfig();
  DeepMviImputer imputer(config);
  Matrix out = imputer.Impute(data, mask);
  EXPECT_LT(MaeOnMissing(out, values, mask), 0.3);
}

TEST(DeepMviTest, AblationsRunAndHonourContract) {
  SyntheticConfig data_config;
  data_config.num_series = 5;
  data_config.length = 100;
  data_config.seed = 16;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(x);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 17;
  Mask mask = GenerateScenario(scenario, 5, 100);

  for (int variant = 0; variant < 4; ++variant) {
    DeepMviConfig config = FastDeepMviConfig();
    config.max_epochs = 3;
    if (variant == 0) config.use_temporal_transformer = false;
    if (variant == 1) config.use_context_window = false;
    if (variant == 2) config.use_kernel_regression = false;
    if (variant == 3) config.use_fine_grained = false;
    DeepMviImputer imputer(config);
    Matrix out = imputer.Impute(data, mask);
    EXPECT_TRUE(out.AllFinite()) << imputer.name();
    for (int r = 0; r < 5; ++r) {
      for (int t = 0; t < 100; ++t) {
        if (mask.available(r, t)) {
          ASSERT_EQ(out(r, t), x(r, t)) << imputer.name();
        }
      }
    }
  }
}

TEST(DeepMviTest, Flatten1DVariantRuns) {
  Rng rng(18);
  Dimension stores{"store", {"s0", "s1"}};
  Dimension items{"item", {"i0", "i1", "i2"}};
  Matrix values = Matrix::RandomGaussian(6, 80, rng);
  DataTensor data({stores, items}, values);
  Mask mask(6, 80);
  mask.SetMissingRange(2, 20, 30);

  DeepMviConfig config = FastDeepMviConfig();
  config.max_epochs = 3;
  config.flatten_multidim = true;
  DeepMviImputer imputer(config);
  Matrix out = imputer.Impute(data, mask);
  EXPECT_TRUE(out.AllFinite());
  EXPECT_EQ(imputer.name(), "DeepMVI1D");
}

TEST(DeepMviTest, WindowAutoSelection) {
  // Large missing blocks (mean > 100) must select w = 20.
  SyntheticConfig data_config;
  data_config.num_series = 4;
  data_config.length = 600;
  data_config.seed = 19;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(4, 600);
  mask.SetMissingRange(0, 100, 250);  // Block of 150.

  DeepMviConfig config = FastDeepMviConfig();
  config.max_epochs = 1;
  DeepMviImputer imputer(config);
  imputer.Impute(data, mask);
  EXPECT_EQ(imputer.train_stats().window_used, 20);
}

TEST(DeepMviTest, ImputationIsBitIdenticalForSameSeed) {
  // Determinism regression guard: training and inference draw every random
  // number from the config seed, so two fresh imputers with the same
  // config must produce bit-identical matrices. The parallel training
  // schedule keeps this by construction (sample generation on one RNG
  // stream, per-sample tapes, sample-order gradient reduction); the
  // companion test below locks in the stronger cross-thread-count
  // guarantee.
  testutil::SeasonalCase c = testutil::MakeSeasonalCase(17, 5, 120);
  DeepMviConfig config = testutil::TinyDeepMviConfig();
  config.seed = 99;

  DeepMviImputer first(config);
  Matrix out1 = first.Impute(c.data, c.mask);
  DeepMviImputer second(config);
  Matrix out2 = second.Impute(c.data, c.mask);

  testutil::ExpectMatricesBitIdentical(out1, out2, "same-seed impute");
}

TEST(DeepMviTest, TrainingIsBitIdenticalAcrossThreadCounts) {
  // The data-parallel Fit schedule must be a pure wall-clock optimization:
  // for any num_threads the trained model — and therefore its predictions
  // — is bit-identical to the serial run. Gradients are reduced in sample
  // order and the optimizer runs on the calling thread, so this holds by
  // construction; this test is the contract.
  testutil::SeasonalCase c = testutil::MakeSeasonalCase(23, 5, 120);
  DeepMviConfig config = testutil::TinyDeepMviConfig();
  config.seed = 7;
  config.batch_size = 8;  // Give workers real batches to race over.

  config.num_threads = 1;
  Matrix serial = DeepMviImputer(config).Fit(c.data, c.mask).Predict(c.data, c.mask);

  for (int threads : {2, 8}) {
    config.num_threads = threads;
    DeepMviImputer imputer(config);
    Matrix parallel = imputer.Fit(c.data, c.mask).Predict(c.data, c.mask);
    testutil::ExpectMatricesBitIdentical(
        parallel, serial, "threads=" + std::to_string(threads));
  }
}

// ---- Training reference profile ---------------------------------------------

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(QualityProfileTest, FitAttachesProfileMatchingTrainingData) {
  testutil::SeasonalCase c = testutil::MakeSeasonalCase(71, 5, 120);
  DeepMviConfig config = testutil::TinyDeepMviConfig();
  TrainedDeepMvi trained = DeepMviImputer(config).Fit(c.data, c.mask);

  const QualityProfile* profile = trained.quality_profile();
  ASSERT_NE(profile, nullptr);
  ASSERT_EQ(profile->num_series(), 5);
  for (int r = 0; r < 5; ++r) {
    const QualityProfile::Series& series =
        profile->series[static_cast<size_t>(r)];
    // Counts partition the timeline by the training mask.
    int64_t available = 0;
    for (int t = 0; t < 120; ++t) {
      if (!c.mask.missing(r, t)) ++available;
    }
    EXPECT_EQ(series.count, available) << "series " << r;
    EXPECT_EQ(series.count + series.missing, 120) << "series " << r;
    ASSERT_EQ(series.decile_edges.size(),
              static_cast<size_t>(QualityProfile::kNumDecileEdges));
    // Moments are over raw (unnormalized) available values.
    double mean = 0.0, lo = 0.0, hi = 0.0;
    bool first = true;
    for (int t = 0; t < 120; ++t) {
      if (c.mask.missing(r, t)) continue;
      const double v = c.data.values()(r, t);
      mean += v;
      lo = first ? v : std::min(lo, v);
      hi = first ? v : std::max(hi, v);
      first = false;
    }
    mean /= static_cast<double>(available);
    EXPECT_NEAR(series.mean, mean, 1e-9) << "series " << r;
    EXPECT_DOUBLE_EQ(series.min, lo) << "series " << r;
    EXPECT_DOUBLE_EQ(series.max, hi) << "series " << r;
    // Decile edges are nondecreasing and inside the observed range.
    for (size_t d = 0; d < series.decile_edges.size(); ++d) {
      EXPECT_GE(series.decile_edges[d], lo);
      EXPECT_LE(series.decile_edges[d], hi);
      if (d > 0) EXPECT_GE(series.decile_edges[d], series.decile_edges[d - 1]);
    }
  }
  EXPECT_NEAR(profile->MissingRate(), 0.1, 0.05);
}

TEST(QualityProfileTest, RecordSurvivesSaveLoadRoundTrip) {
  testutil::SeasonalCase c = testutil::MakeSeasonalCase(73, 5, 120);
  TrainedDeepMvi trained =
      DeepMviImputer(testutil::TinyDeepMviConfig()).Fit(c.data, c.mask);
  const std::string path = testutil::TempPath("profile_roundtrip.dmvi");
  ASSERT_TRUE(trained.Save(path).ok());

  StatusOr<TrainedDeepMvi> loaded = TrainedDeepMvi::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const QualityProfile* original = trained.quality_profile();
  const QualityProfile* restored = loaded->quality_profile();
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->num_series(), original->num_series());
  for (int r = 0; r < original->num_series(); ++r) {
    const auto& want = original->series[static_cast<size_t>(r)];
    const auto& got = restored->series[static_cast<size_t>(r)];
    EXPECT_EQ(got.count, want.count);
    EXPECT_EQ(got.missing, want.missing);
    EXPECT_EQ(got.mean, want.mean);        // Bit-exact: doubles round-trip.
    EXPECT_EQ(got.stddev, want.stddev);
    EXPECT_EQ(got.min, want.min);
    EXPECT_EQ(got.max, want.max);
    EXPECT_EQ(got.decile_edges, want.decile_edges);
  }

  // Re-saving the loaded model reproduces the original file exactly —
  // the profile record is part of the checkpoint's byte identity.
  const std::string resaved = testutil::TempPath("profile_resave.dmvi");
  ASSERT_TRUE(loaded->Save(resaved).ok());
  EXPECT_EQ(FileBytes(path), FileBytes(resaved));
}

TEST(QualityProfileTest, LegacyCheckpointWithoutRecordLoadsAndServes) {
  testutil::SeasonalCase c = testutil::MakeSeasonalCase(79, 5, 120);
  TrainedDeepMvi trained =
      DeepMviImputer(testutil::TinyDeepMviConfig()).Fit(c.data, c.mask);
  const std::string full_path = testutil::TempPath("profile_full.dmvi");
  ASSERT_TRUE(trained.Save(full_path).ok());

  // Synthesize a pre-profile checkpoint by stripping the trailing DMVQ
  // record: serialize the model's own profile to learn the record's exact
  // size, then truncate the file by that many bytes.
  std::ostringstream record;
  ASSERT_TRUE(
      AppendQualityProfileRecord(record, *trained.quality_profile()).ok());
  const std::string full_bytes = FileBytes(full_path);
  ASSERT_GT(full_bytes.size(), record.str().size());
  const std::string legacy_bytes =
      full_bytes.substr(0, full_bytes.size() - record.str().size());
  const std::string legacy_path = testutil::TempPath("profile_legacy.dmvi");
  {
    std::ofstream out(legacy_path, std::ios::binary);
    out << legacy_bytes;
  }

  StatusOr<TrainedDeepMvi> legacy = TrainedDeepMvi::Load(legacy_path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->quality_profile(), nullptr);
  // Inference is untouched by the missing profile.
  testutil::ExpectMatricesBitIdentical(legacy->Predict(c.data, c.mask),
                                       trained.Predict(c.data, c.mask),
                                       "legacy predict");
  // Re-saving a legacy model writes legacy bytes: loading never invents a
  // profile, so old checkpoints stay byte-stable through load/save cycles.
  const std::string legacy_resaved =
      testutil::TempPath("profile_legacy_resave.dmvi");
  ASSERT_TRUE(legacy->Save(legacy_resaved).ok());
  EXPECT_EQ(FileBytes(legacy_resaved), legacy_bytes);
}

TEST(QualityProfileTest, CorruptTrailingRecordIsAnError) {
  testutil::SeasonalCase c = testutil::MakeSeasonalCase(83, 5, 120);
  TrainedDeepMvi trained =
      DeepMviImputer(testutil::TinyDeepMviConfig()).Fit(c.data, c.mask);
  const std::string path = testutil::TempPath("profile_corrupt.dmvi");
  ASSERT_TRUE(trained.Save(path).ok());
  std::string bytes = FileBytes(path);
  // Chop mid-record: a partial DMVQ body must fail loudly, not silently
  // degrade to "no profile".
  bytes.resize(bytes.size() - 3);
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  EXPECT_FALSE(TrainedDeepMvi::Load(path).ok());
}

TEST(QualityProfileTest, ComputeIsMaskAware) {
  // Direct unit check of the computation: a hand-built source with known
  // values, one masked cell, and one NaN in an *available* slot — the NaN
  // is excluded from moments but still counted as available.
  Matrix values(2, 6);
  for (int t = 0; t < 6; ++t) {
    values(0, t) = static_cast<double>(t + 1);  // 1..6
    values(1, t) = 10.0;
  }
  values(1, 2) = std::nan("");
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 6);
  mask.set_missing(0, 3);
  storage::InMemoryDataSource source(&data);

  StatusOr<QualityProfile> profile = ComputeQualityProfile(source, mask);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->num_series(), 2);
  EXPECT_EQ(profile->series[0].count, 5);
  EXPECT_EQ(profile->series[0].missing, 1);
  EXPECT_NEAR(profile->series[0].mean, (1 + 2 + 3 + 5 + 6) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(profile->series[0].min, 1.0);
  EXPECT_DOUBLE_EQ(profile->series[0].max, 6.0);
  EXPECT_EQ(profile->series[1].count, 6);  // NaN slot is still "available".
  EXPECT_EQ(profile->series[1].missing, 0);
  EXPECT_DOUBLE_EQ(profile->series[1].mean, 10.0);
  EXPECT_DOUBLE_EQ(profile->series[1].stddev, 0.0);
}

}  // namespace
}  // namespace deepmvi
