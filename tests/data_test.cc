#include <gtest/gtest.h>

#include <cmath>

#include "data/presets.h"
#include "data/synthetic.h"

namespace deepmvi {
namespace {

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig c;
  c.num_series = 7;
  c.length = 123;
  Matrix m = GenerateSeriesMatrix(c);
  EXPECT_EQ(m.rows(), 7);
  EXPECT_EQ(m.cols(), 123);
  EXPECT_TRUE(m.AllFinite());
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig c;
  c.seed = 99;
  Matrix a = GenerateSeriesMatrix(c);
  Matrix b = GenerateSeriesMatrix(c);
  EXPECT_TRUE(a.ApproxEquals(b, 0.0));
  c.seed = 100;
  Matrix d = GenerateSeriesMatrix(c);
  EXPECT_FALSE(a.ApproxEquals(d, 1e-6));
}

TEST(SyntheticTest, SeasonalityStrengthRaisesAutocorrelation) {
  SyntheticConfig weak;
  weak.num_series = 8;
  weak.length = 800;
  weak.seasonal_periods = {50.0};
  weak.seasonality_strength = 0.05;
  weak.cross_correlation = 0.1;
  weak.seed = 3;

  SyntheticConfig strong = weak;
  strong.seasonality_strength = 0.95;

  auto weak_chars = MeasureCharacteristics(GenerateSeriesMatrix(weak));
  auto strong_chars = MeasureCharacteristics(GenerateSeriesMatrix(strong));
  EXPECT_GT(strong_chars.seasonality_score, weak_chars.seasonality_score);
  EXPECT_GT(strong_chars.seasonality_score, 0.5);
}

TEST(SyntheticTest, CrossCorrelationRaisesRelatedness) {
  SyntheticConfig low;
  low.num_series = 10;
  low.length = 600;
  low.cross_correlation = 0.05;
  low.seasonality_strength = 0.2;
  low.seed = 4;

  SyntheticConfig high = low;
  high.cross_correlation = 0.95;

  auto low_chars = MeasureCharacteristics(GenerateSeriesMatrix(low));
  auto high_chars = MeasureCharacteristics(GenerateSeriesMatrix(high));
  EXPECT_GT(high_chars.relatedness_score, low_chars.relatedness_score + 0.1);
}

TEST(SyntheticTest, AutocorrelationOfPureSine) {
  std::vector<double> sine(200);
  for (int t = 0; t < 200; ++t) sine[t] = std::sin(2 * M_PI * t / 20.0);
  EXPECT_NEAR(Autocorrelation(sine, 20), 1.0, 0.05);
  EXPECT_NEAR(Autocorrelation(sine, 10), -1.0, 0.05);
}

TEST(PresetTest, AllNamesConstruct) {
  for (const auto& name : AllDatasetNames()) {
    DataTensor data = MakeDataset(name, DatasetScale::kReduced, 1);
    EXPECT_GT(data.num_series(), 0) << name;
    EXPECT_GT(data.num_times(), 0) << name;
    EXPECT_TRUE(data.values().AllFinite()) << name;
  }
}

TEST(PresetTest, IsDatasetName) {
  EXPECT_TRUE(IsDatasetName("AirQ"));
  EXPECT_TRUE(IsDatasetName("M5"));
  EXPECT_FALSE(IsDatasetName("NotADataset"));
}

TEST(PresetTest, MultidimDatasetsHaveTwoDims) {
  DataTensor janata = MakeDataset("JanataHack");
  EXPECT_EQ(janata.num_dims(), 2);
  EXPECT_EQ(janata.dim(0).name, "store");
  EXPECT_EQ(janata.dim(1).name, "item");
  EXPECT_EQ(janata.num_series(), janata.dim(0).size() * janata.dim(1).size());
  EXPECT_EQ(janata.num_times(), 134);

  DataTensor m5 = MakeDataset("M5");
  EXPECT_EQ(m5.num_dims(), 2);
}

TEST(PresetTest, FullScaleMatchesPaperDimensions) {
  DataTensor airq = MakeDataset("AirQ", DatasetScale::kFull);
  EXPECT_EQ(airq.num_series(), 10);
  EXPECT_EQ(airq.num_times(), 1000);

  DataTensor janata = MakeDataset("JanataHack", DatasetScale::kFull);
  EXPECT_EQ(janata.dim(0).size(), 76);
  EXPECT_EQ(janata.dim(1).size(), 28);
  EXPECT_EQ(janata.num_times(), 134);
}

TEST(PresetTest, JanataHackMoreCoherentAcrossStoresThanM5) {
  // JanataHack: high relatedness across stores for a given product; M5 low
  // (Table 1). Compare correlation between sibling series along stores.
  auto sibling_corr = [](const DataTensor& d) {
    double acc = 0.0;
    int count = 0;
    const int items = d.dim(1).size();
    for (int i = 0; i < items && count < 40; ++i) {
      // Series of item i at stores 0 and 1.
      auto a = d.values().Row(d.FlattenIndex({0, i}));
      auto b = d.values().Row(d.FlattenIndex({1, i}));
      acc += PearsonCorrelation(a, b);
      ++count;
    }
    return acc / count;
  };
  const double janata = sibling_corr(MakeDataset("JanataHack"));
  const double m5 = sibling_corr(MakeDataset("M5"));
  EXPECT_GT(janata, m5);
  EXPECT_GT(janata, 0.5);
}

TEST(PresetTest, Table1QualitativeOrdering) {
  // Chlorine (high/high) should show more seasonality than Meteo (low) and
  // more relatedness than Climate (low).
  auto chlorine = MeasureCharacteristics(MakeDataset("Chlorine").values());
  auto meteo = MeasureCharacteristics(MakeDataset("Meteo").values());
  auto climate = MeasureCharacteristics(MakeDataset("Climate").values());
  EXPECT_GT(chlorine.seasonality_score, meteo.seasonality_score);
  EXPECT_GT(chlorine.relatedness_score, climate.relatedness_score);
}

}  // namespace
}  // namespace deepmvi
