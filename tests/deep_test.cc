#include <gtest/gtest.h>

#include <cmath>

#include "baselines/simple.h"
#include "deep/brits.h"
#include "deep/gpvae.h"
#include "deep/transformer_imputer.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "scenario/scenarios.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using namespace testutil;

void CheckContract(Imputer& imputer, const SeasonalCase& c) {
  CheckImputerContract(imputer, c.data, c.mask);
}

TEST(TransformerImputerTest, ContractAndAccuracy) {
  SeasonalCase c = MakeSeasonalCase(1);
  TransformerImputer::Config config;
  config.max_epochs = 25;
  config.samples_per_epoch = 48;
  config.patience = 6;
  TransformerImputer imputer(config);
  Matrix out = imputer.Impute(c.data, c.mask);
  ASSERT_TRUE(out.AllFinite());
  for (int r = 0; r < out.rows(); ++r) {
    for (int t = 0; t < out.cols(); ++t) {
      if (c.mask.available(r, t)) {
        ASSERT_EQ(out(r, t), c.x(r, t));
      }
    }
  }
  MeanImputer mean;
  const double mae = MaeOnMissing(out, c.x, c.mask);
  const double mean_mae =
      MaeOnMissing(mean.Impute(c.data, c.mask), c.x, c.mask);
  // The vanilla transformer is the weakest deep baseline at this small
  // training budget (consistent with its mid-pack standing in the paper);
  // it must at least stay in the vicinity of mean imputation.
  EXPECT_LT(mae, 1.15 * mean_mae)
      << "Transformer " << mae << " vs mean " << mean_mae;
}

TEST(TransformerImputerTest, HandlesSeriesShorterThanContext) {
  SeasonalCase c = MakeSeasonalCase(2, 4, 60);  // Shorter than max_context.
  TransformerImputer::Config config;
  config.max_epochs = 4;
  config.samples_per_epoch = 16;
  TransformerImputer imputer(config);
  CheckContract(imputer, c);
}

TEST(BritsImputerTest, ContractAndAccuracy) {
  SeasonalCase c = MakeSeasonalCase(3);
  BritsImputer::Config config;
  config.max_epochs = 15;
  config.hidden_dim = 32;
  BritsImputer imputer(config);
  CheckContract(imputer, c);
  MeanImputer mean;
  const double mae = MaeOnMissing(imputer.Impute(c.data, c.mask), c.x, c.mask);
  const double mean_mae =
      MaeOnMissing(mean.Impute(c.data, c.mask), c.x, c.mask);
  EXPECT_LT(mae, mean_mae) << "BRITS " << mae << " vs mean " << mean_mae;
}

TEST(BritsImputerTest, UsesCrossSeriesSignal) {
  // Two near-copies: the column-vector input lets BRITS read the sibling
  // directly at the same time step.
  Rng rng(4);
  Matrix x(4, 150);
  for (int t = 0; t < 150; ++t) {
    const double base = std::sin(2 * M_PI * t / 30.0);
    for (int r = 0; r < 4; ++r) {
      x(r, t) = base * (1.0 + 0.1 * r) + 0.02 * rng.Gaussian();
    }
  }
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(4, 150);
  mask.SetMissingRange(0, 60, 90);
  BritsImputer::Config config;
  config.max_epochs = 20;
  config.hidden_dim = 32;
  BritsImputer imputer(config);
  Matrix out = imputer.Impute(data, mask);
  EXPECT_LT(MaeOnMissing(out, x, mask), 0.5);
}

TEST(GpVaeImputerTest, ContractAndAccuracy) {
  SeasonalCase c = MakeSeasonalCase(5);
  GpVaeImputer::Config config;
  config.max_epochs = 20;
  GpVaeImputer imputer(config);
  CheckContract(imputer, c);
  MeanImputer mean;
  const double mae = MaeOnMissing(imputer.Impute(c.data, c.mask), c.x, c.mask);
  const double mean_mae =
      MaeOnMissing(mean.Impute(c.data, c.mask), c.x, c.mask);
  EXPECT_LT(mae, 1.2 * mean_mae) << "GPVAE " << mae << " vs mean " << mean_mae;
}

TEST(GpVaeImputerTest, LatentSmoothnessInterpolatesBlackout) {
  // Correlated series + blackout: the VAE's latent path carries the column
  // structure across the gap.
  SeasonalCase c = MakeSeasonalCase(6);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kBlackout;
  scenario.block_size = 15;
  scenario.seed = 7;
  c.mask = GenerateScenario(scenario, c.x.rows(), c.x.cols());
  GpVaeImputer::Config config;
  config.max_epochs = 15;
  GpVaeImputer imputer(config);
  CheckContract(imputer, c);
}

// All deep baselines across scenarios: contract only (fast configs).
class DeepContractSweep : public ::testing::TestWithParam<ScenarioKind> {};

TEST_P(DeepContractSweep, AllDeepBaselines) {
  SeasonalCase c = MakeSeasonalCase(8, 5, 120);
  ScenarioConfig scenario;
  scenario.kind = GetParam();
  scenario.percent_incomplete = 0.6;
  scenario.block_size = 10;
  scenario.seed = 9;
  c.mask = GenerateScenario(scenario, 5, 120);

  TransformerImputer::Config tc;
  tc.max_epochs = 2;
  tc.samples_per_epoch = 8;
  TransformerImputer transformer(tc);
  BritsImputer::Config bc;
  bc.max_epochs = 2;
  bc.hidden_dim = 16;
  bc.passes_per_epoch = 1;
  BritsImputer brits(bc);
  GpVaeImputer::Config gc;
  gc.max_epochs = 2;
  gc.passes_per_epoch = 1;
  GpVaeImputer gpvae(gc);
  for (Imputer* imputer :
       std::initializer_list<Imputer*>{&transformer, &brits, &gpvae}) {
    CheckContract(*imputer, c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, DeepContractSweep,
                         ::testing::Values(ScenarioKind::kMcar,
                                           ScenarioKind::kMissDisj,
                                           ScenarioKind::kMissOver,
                                           ScenarioKind::kBlackout));

}  // namespace
}  // namespace deepmvi
