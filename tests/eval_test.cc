#include <gtest/gtest.h>

#include <cmath>

#include "baselines/simple.h"
#include "data/presets.h"
#include "eval/analytics.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace deepmvi {
namespace {

TEST(MetricsTest, MaeOnMissingOnlyCountsMissing) {
  Matrix truth = {{1, 2, 3}};
  Matrix imputed = {{1, 5, 3}};  // Error of 3 at position 1.
  Mask mask(1, 3);
  mask.set_missing(0, 1);
  EXPECT_NEAR(MaeOnMissing(imputed, truth, mask), 3.0, 1e-12);
  // Errors on available cells are ignored.
  imputed(0, 0) = 100.0;
  EXPECT_NEAR(MaeOnMissing(imputed, truth, mask), 3.0, 1e-12);
}

TEST(MetricsTest, RmsePenalizesLargeErrors) {
  Matrix truth = {{0, 0}};
  Matrix imputed = {{3, 4}};
  Mask mask(1, 2);
  mask.set_missing(0, 0);
  mask.set_missing(0, 1);
  EXPECT_NEAR(MaeOnMissing(imputed, truth, mask), 3.5, 1e-12);
  EXPECT_NEAR(RmseOnMissing(imputed, truth, mask), std::sqrt(12.5), 1e-12);
}

TEST(MetricsTest, MaeWholeMatrix) {
  Matrix a = {{1, 1}, {1, 1}};
  Matrix b = {{0, 2}, {1, 1}};
  EXPECT_NEAR(Mae(a, b), 0.5, 1e-12);
}

TEST(AnalyticsTest, AggregateOverFirstDim1D) {
  Matrix values = {{2, 4}, {4, 8}};
  DataTensor data = DataTensor::FromMatrix(values);
  Matrix agg = AggregateOverFirstDim(data, values);
  EXPECT_EQ(agg.rows(), 1);
  EXPECT_NEAR(agg(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(agg(0, 1), 6.0, 1e-12);
}

TEST(AnalyticsTest, AggregateOverFirstDim2D) {
  // 2 stores x 3 items: aggregate over stores -> per-item series.
  Dimension stores{"store", {"s0", "s1"}};
  Dimension items{"item", {"i0", "i1", "i2"}};
  Matrix values(6, 2);
  // store 0: items get value 1, 2, 3; store 1: 3, 4, 5.
  for (int i = 0; i < 3; ++i) {
    values(i, 0) = values(i, 1) = i + 1;
    values(3 + i, 0) = values(3 + i, 1) = i + 3;
  }
  DataTensor data({stores, items}, values);
  Matrix agg = AggregateOverFirstDim(data, values);
  EXPECT_EQ(agg.rows(), 3);
  EXPECT_NEAR(agg(0, 0), 2.0, 1e-12);  // (1+3)/2
  EXPECT_NEAR(agg(2, 1), 4.0, 1e-12);  // (3+5)/2
}

TEST(AnalyticsTest, DropCellSkipsMissing) {
  Matrix values = {{2, 2}, {10, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 2);
  mask.set_missing(1, 0);  // Value 10 is missing.
  Matrix agg = AggregateDropCell(data, values, mask);
  EXPECT_NEAR(agg(0, 0), 2.0, 1e-12);  // Only the available 2 counts.
  EXPECT_NEAR(agg(0, 1), 3.0, 1e-12);
}

TEST(AnalyticsTest, DropCellFallsBackWhenAllMissing) {
  Matrix values = {{2, 2}, {4, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 2);
  mask.set_missing(0, 0);
  mask.set_missing(1, 0);
  Matrix agg = AggregateDropCell(data, values, mask);
  EXPECT_NEAR(agg(0, 0), 3.0, 1e-12);  // Falls back to full average.
}

TEST(AnalyticsTest, PerfectImputationHasNonNegativeGain) {
  Matrix values = {{1, 5, 3}, {2, 6, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 3);
  mask.set_missing(0, 1);
  // Imputed == truth: method aggregate error is 0, so the gain equals
  // DropCell's error, which is >= 0.
  const double gain = AnalyticsGainOverDropCell(data, values, values, mask);
  EXPECT_GE(gain, 0.0);
  EXPECT_GT(gain, 1e-6);  // DropCell is biased here (5 dropped from avg).
}

TEST(RunnerTest, ProtocolProducesFiniteMetrics) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 3);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 0.5;
  scenario.seed = 4;
  LinearInterpolationImputer imputer;
  ExperimentResult result = RunExperiment(data, scenario, imputer);
  EXPECT_EQ(result.imputer_name, "LinearInterp");
  EXPECT_EQ(result.scenario_name, "MCAR");
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GE(result.rmse, result.mae);
  EXPECT_GT(result.missing_cells, 0);
  EXPECT_GE(result.runtime_seconds, 0.0);
}

TEST(RunnerTest, MeanImputerHasMaeAboutOneOnNormalizedData) {
  // After z-scoring, series-mean imputation has expected absolute error
  // ~E|N(0,1)| = 0.8 on MCAR cells of a noisy series; must be in a sane
  // range.
  DataTensor data = MakeDataset("Meteo", DatasetScale::kReduced, 5);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 6;
  MeanImputer imputer;
  ExperimentResult result = RunExperiment(data, scenario, imputer);
  EXPECT_GT(result.mae, 0.2);
  EXPECT_LT(result.mae, 2.0);
}

TEST(RunnerTest, ImputeAndExtractSeriesDenormalizes) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 7);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kBlackout;
  scenario.block_size = 10;
  scenario.seed = 8;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());
  LinearInterpolationImputer imputer;
  ImputedSeries series = ImputeAndExtractSeries(data, mask, imputer, 0);
  ASSERT_EQ(series.truth.size(), static_cast<size_t>(data.num_times()));
  ASSERT_EQ(series.imputed.size(), series.truth.size());
  // Available positions match the original data exactly (denormalized round trip).
  for (int t = 0; t < data.num_times(); ++t) {
    if (!series.missing[t]) {
      EXPECT_NEAR(series.imputed[t], series.truth[t], 1e-9);
    }
  }
}

}  // namespace
}  // namespace deepmvi
