#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/simple.h"
#include "data/presets.h"
#include "eval/analytics.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/suite.h"

namespace deepmvi {
namespace {

std::unique_ptr<Imputer> SimpleFactory(const std::string& name) {
  if (name == "Mean") return std::make_unique<MeanImputer>();
  if (name == "LinearInterp") {
    return std::make_unique<LinearInterpolationImputer>();
  }
  return nullptr;
}

SuiteSpec SmallGrid(int threads) {
  SuiteSpec spec;
  spec.datasets = {"AirQ", "Meteo"};
  spec.imputers = {"Mean", "LinearInterp"};
  ScenarioConfig mcar;
  mcar.kind = ScenarioKind::kMcar;
  mcar.percent_incomplete = 1.0;
  mcar.seed = 11;
  ScenarioConfig blackout;
  blackout.kind = ScenarioKind::kBlackout;
  blackout.block_size = 12;
  blackout.seed = 11;
  spec.scenarios = {mcar, blackout};
  spec.factory = SimpleFactory;
  spec.threads = threads;
  return spec;
}

TEST(MetricsTest, MaeOnMissingOnlyCountsMissing) {
  Matrix truth = {{1, 2, 3}};
  Matrix imputed = {{1, 5, 3}};  // Error of 3 at position 1.
  Mask mask(1, 3);
  mask.set_missing(0, 1);
  EXPECT_NEAR(MaeOnMissing(imputed, truth, mask), 3.0, 1e-12);
  // Errors on available cells are ignored.
  imputed(0, 0) = 100.0;
  EXPECT_NEAR(MaeOnMissing(imputed, truth, mask), 3.0, 1e-12);
}

TEST(MetricsTest, RmsePenalizesLargeErrors) {
  Matrix truth = {{0, 0}};
  Matrix imputed = {{3, 4}};
  Mask mask(1, 2);
  mask.set_missing(0, 0);
  mask.set_missing(0, 1);
  EXPECT_NEAR(MaeOnMissing(imputed, truth, mask), 3.5, 1e-12);
  EXPECT_NEAR(RmseOnMissing(imputed, truth, mask), std::sqrt(12.5), 1e-12);
}

TEST(MetricsTest, MaeWholeMatrix) {
  Matrix a = {{1, 1}, {1, 1}};
  Matrix b = {{0, 2}, {1, 1}};
  EXPECT_NEAR(Mae(a, b), 0.5, 1e-12);
}

TEST(AnalyticsTest, AggregateOverFirstDim1D) {
  Matrix values = {{2, 4}, {4, 8}};
  DataTensor data = DataTensor::FromMatrix(values);
  Matrix agg = AggregateOverFirstDim(data, values);
  EXPECT_EQ(agg.rows(), 1);
  EXPECT_NEAR(agg(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(agg(0, 1), 6.0, 1e-12);
}

TEST(AnalyticsTest, AggregateOverFirstDim2D) {
  // 2 stores x 3 items: aggregate over stores -> per-item series.
  Dimension stores{"store", {"s0", "s1"}};
  Dimension items{"item", {"i0", "i1", "i2"}};
  Matrix values(6, 2);
  // store 0: items get value 1, 2, 3; store 1: 3, 4, 5.
  for (int i = 0; i < 3; ++i) {
    values(i, 0) = values(i, 1) = i + 1;
    values(3 + i, 0) = values(3 + i, 1) = i + 3;
  }
  DataTensor data({stores, items}, values);
  Matrix agg = AggregateOverFirstDim(data, values);
  EXPECT_EQ(agg.rows(), 3);
  EXPECT_NEAR(agg(0, 0), 2.0, 1e-12);  // (1+3)/2
  EXPECT_NEAR(agg(2, 1), 4.0, 1e-12);  // (3+5)/2
}

TEST(AnalyticsTest, DropCellSkipsMissing) {
  Matrix values = {{2, 2}, {10, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 2);
  mask.set_missing(1, 0);  // Value 10 is missing.
  Matrix agg = AggregateDropCell(data, values, mask);
  EXPECT_NEAR(agg(0, 0), 2.0, 1e-12);  // Only the available 2 counts.
  EXPECT_NEAR(agg(0, 1), 3.0, 1e-12);
}

TEST(AnalyticsTest, DropCellFallsBackWhenAllMissing) {
  Matrix values = {{2, 2}, {4, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 2);
  mask.set_missing(0, 0);
  mask.set_missing(1, 0);
  Matrix agg = AggregateDropCell(data, values, mask);
  EXPECT_NEAR(agg(0, 0), 3.0, 1e-12);  // Falls back to full average.
}

TEST(AnalyticsTest, PerfectImputationHasNonNegativeGain) {
  Matrix values = {{1, 5, 3}, {2, 6, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 3);
  mask.set_missing(0, 1);
  // Imputed == truth: method aggregate error is 0, so the gain equals
  // DropCell's error, which is >= 0.
  const double gain = AnalyticsGainOverDropCell(data, values, values, mask);
  EXPECT_GE(gain, 0.0);
  EXPECT_GT(gain, 1e-6);  // DropCell is biased here (5 dropped from avg).
}

TEST(RunnerTest, ProtocolProducesFiniteMetrics) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 3);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 0.5;
  scenario.seed = 4;
  LinearInterpolationImputer imputer;
  ExperimentResult result = RunExperiment(data, scenario, imputer);
  EXPECT_EQ(result.imputer_name, "LinearInterp");
  EXPECT_EQ(result.scenario_name, "MCAR");
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GE(result.rmse, result.mae);
  EXPECT_GT(result.missing_cells, 0);
  EXPECT_GE(result.runtime_seconds, 0.0);
}

TEST(RunnerTest, MeanImputerHasMaeAboutOneOnNormalizedData) {
  // After z-scoring, series-mean imputation has expected absolute error
  // ~E|N(0,1)| = 0.8 on MCAR cells of a noisy series; must be in a sane
  // range.
  DataTensor data = MakeDataset("Meteo", DatasetScale::kReduced, 5);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 6;
  MeanImputer imputer;
  ExperimentResult result = RunExperiment(data, scenario, imputer);
  EXPECT_GT(result.mae, 0.2);
  EXPECT_LT(result.mae, 2.0);
}

TEST(RunnerTest, ImputeAndExtractSeriesDenormalizes) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 7);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kBlackout;
  scenario.block_size = 10;
  scenario.seed = 8;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());
  LinearInterpolationImputer imputer;
  ImputedSeries series = ImputeAndExtractSeries(data, mask, imputer, 0);
  ASSERT_EQ(series.truth.size(), static_cast<size_t>(data.num_times()));
  ASSERT_EQ(series.imputed.size(), series.truth.size());
  // Available positions match the original data exactly (denormalized round trip).
  for (int t = 0; t < data.num_times(); ++t) {
    if (!series.missing[t]) {
      EXPECT_NEAR(series.imputed[t], series.truth[t], 1e-9);
    }
  }
}

TEST(SuiteTest, GridOrderIsDeterministicDatasetMajor) {
  SuiteResult suite = RunSuite(SmallGrid(/*threads=*/2));
  ASSERT_EQ(suite.cells.size(), 8u);  // 2 datasets x 2 scenarios x 2 imputers.
  EXPECT_EQ(suite.cells[0].dataset, "AirQ");
  EXPECT_EQ(suite.cells[0].scenario_name, "MCAR");
  EXPECT_EQ(suite.cells[0].imputer, "Mean");
  EXPECT_EQ(suite.cells[1].imputer, "LinearInterp");
  EXPECT_EQ(suite.cells[2].scenario_name, "Blackout");
  EXPECT_EQ(suite.cells[4].dataset, "Meteo");
  EXPECT_GE(suite.wall_seconds, 0.0);
  EXPECT_EQ(suite.num_failed(), 0);
}

TEST(SuiteTest, ParallelRunMatchesSerialRunExperiment) {
  // The acceptance property of the batch runner: fanning the grid over
  // worker threads changes nothing — every cell equals a direct serial
  // RunExperiment with the same dataset, scenario, and imputer.
  SuiteResult parallel = RunSuite(SmallGrid(/*threads=*/4));
  for (const SuiteCell& cell : parallel.cells) {
    ASSERT_TRUE(cell.ok) << cell.error;
    DataTensor data = MakeDataset(cell.dataset, DatasetScale::kReduced, 1);
    std::unique_ptr<Imputer> imputer = SimpleFactory(cell.imputer);
    ExperimentResult serial = RunExperiment(data, cell.scenario, *imputer);
    EXPECT_EQ(cell.result.mae, serial.mae) << cell.dataset << " " << cell.imputer;
    EXPECT_EQ(cell.result.rmse, serial.rmse);
    EXPECT_EQ(cell.result.analytics_gain, serial.analytics_gain);
    EXPECT_EQ(cell.result.missing_cells, serial.missing_cells);
  }
}

TEST(SuiteTest, ProgressCallbackCoversEveryCell) {
  SuiteSpec spec = SmallGrid(/*threads=*/3);
  int calls = 0, last_done = 0, last_total = 0;
  spec.progress = [&](int done, int total) {
    ++calls;
    last_done = done;
    last_total = total;
  };
  SuiteResult suite = RunSuite(spec);
  EXPECT_EQ(calls, static_cast<int>(suite.cells.size()));
  EXPECT_EQ(last_done, last_total);
  EXPECT_EQ(last_total, static_cast<int>(suite.cells.size()));
}

TEST(SuiteTest, UnknownNamesBecomeFailedCellsNotCrashes) {
  SuiteSpec spec = SmallGrid(/*threads=*/2);
  spec.datasets = {"AirQ", "NoSuchDataset"};
  spec.imputers = {"Mean", "NoSuchImputer"};
  SuiteResult suite = RunSuite(spec);
  ASSERT_EQ(suite.cells.size(), 8u);
  EXPECT_EQ(suite.num_failed(), 6);  // Only AirQ x Mean cells succeed.
  for (const SuiteCell& cell : suite.cells) {
    if (cell.dataset == "AirQ" && cell.imputer == "Mean") {
      EXPECT_TRUE(cell.ok);
    } else {
      EXPECT_FALSE(cell.ok);
      EXPECT_FALSE(cell.error.empty());
    }
  }
}

TEST(SuiteTest, JsonAndCsvRenderEveryCell) {
  SuiteResult suite = RunSuite(SmallGrid(/*threads=*/2));
  const std::string json = SuiteToJson(suite);
  EXPECT_NE(json.find("\"num_cells\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"num_failed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"dataset\": \"Meteo\""), std::string::npos);
  EXPECT_NE(json.find("\"mae\":"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  TablePrinter table = SuiteToTable(suite);
  EXPECT_EQ(table.num_rows(), 8);
}

TEST(SuiteTest, ParseScenarioKindInvertsScenarioName) {
  for (ScenarioKind kind :
       {ScenarioKind::kMcar, ScenarioKind::kMissDisj, ScenarioKind::kMissOver,
        ScenarioKind::kBlackout, ScenarioKind::kMissPoint,
        ScenarioKind::kMultiBlackout, ScenarioKind::kMnar,
        ScenarioKind::kDrift}) {
    StatusOr<ScenarioKind> parsed = ParseScenarioKind(ScenarioName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseScenarioKind("NotAScenario").ok());
}

TEST(RunnerTest, MnarExperimentProducesFiniteMetrics) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 3);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMnar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 12;
  LinearInterpolationImputer imputer;
  ExperimentResult result = RunExperiment(data, scenario, imputer);
  EXPECT_EQ(result.scenario_name, "MNAR");
  EXPECT_TRUE(std::isfinite(result.mae));
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GT(result.missing_cells, 0);
}

TEST(RunnerTest, DriftExperimentScoresTransformedValues) {
  // Drift rewrites the ground truth before masking, so the mean imputer's
  // error must reflect the drifted series (strictly worse than scoring a
  // flat copy would be is hard to assert portably; finiteness and the
  // straddle-the-jump mask shape are the contract).
  DataTensor data = MakeDataset("Meteo", DatasetScale::kReduced, 9);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kDrift;
  scenario.percent_incomplete = 1.0;
  scenario.block_size = 8;
  scenario.seed = 14;
  MeanImputer imputer;
  ExperimentResult result = RunExperiment(data, scenario, imputer);
  EXPECT_EQ(result.scenario_name, "Drift");
  EXPECT_TRUE(std::isfinite(result.mae));
  EXPECT_GT(result.mae, 0.0);
  EXPECT_GT(result.missing_cells, 0);
}

TEST(SuiteTest, ProductionScenarioGridScoresEveryCell) {
  // The production grid (MultiBlackout, MNAR, Drift) must flow through
  // RunSuite like the paper scenarios: every cell ok, metrics rendered
  // into the suite JSON under the new scenario names.
  SuiteSpec spec;
  spec.datasets = {"AirQ"};
  spec.imputers = {"Mean", "LinearInterp"};
  for (ScenarioKind kind :
       {ScenarioKind::kMultiBlackout, ScenarioKind::kMnar,
        ScenarioKind::kDrift}) {
    ScenarioConfig config;
    config.kind = kind;
    config.percent_incomplete = 1.0;
    config.seed = 11;
    spec.scenarios.push_back(config);
  }
  spec.factory = SimpleFactory;
  spec.threads = 3;
  SuiteResult suite = RunSuite(spec);
  ASSERT_EQ(suite.cells.size(), 6u);
  for (const SuiteCell& cell : suite.cells) {
    ASSERT_TRUE(cell.ok) << cell.scenario_name << ": " << cell.error;
    EXPECT_TRUE(std::isfinite(cell.result.mae)) << cell.scenario_name;
    EXPECT_GT(cell.result.missing_cells, 0) << cell.scenario_name;
  }
  const std::string json = SuiteToJson(suite);
  EXPECT_NE(json.find("\"scenario\": \"MultiBlackout\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"MNAR\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"Drift\""), std::string::npos);
}

}  // namespace
}  // namespace deepmvi
