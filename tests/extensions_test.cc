// Tests for the extension components: the TKCM and MRNN baselines and the
// DeepMVI forecaster (the paper's stated future work).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/simple.h"
#include "baselines/tkcm.h"
#include "core/forecaster.h"
#include "data/synthetic.h"
#include "deep/mrnn.h"
#include "eval/metrics.h"
#include "scenario/scenarios.h"

namespace deepmvi {
namespace {

TEST(TkcmTest, ContractOnSeasonalData) {
  SyntheticConfig config;
  config.num_series = 6;
  config.length = 240;
  config.seasonal_periods = {24.0};
  config.seasonality_strength = 0.9;
  config.cross_correlation = 0.7;
  config.noise_level = 0.05;
  config.seed = 1;
  Matrix x = GenerateSeriesMatrix(config);
  DataTensor data = DataTensor::FromMatrix(x);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 0.5;
  scenario.seed = 2;
  Mask mask = GenerateScenario(scenario, 6, 240);

  TkcmImputer imputer;
  Matrix out = imputer.Impute(data, mask);
  EXPECT_TRUE(out.AllFinite());
  for (int r = 0; r < 6; ++r) {
    for (int t = 0; t < 240; ++t) {
      if (mask.available(r, t)) {
        ASSERT_EQ(out(r, t), x(r, t));
      }
    }
  }
  // On strongly periodic, correlated data the pattern matcher must beat
  // per-series mean imputation.
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(TkcmTest, ExactOnPeriodicRepeats) {
  // A noiseless periodic dataset: matched cases reproduce the values
  // almost exactly.
  const int period = 20;
  Matrix x(3, 200);
  for (int t = 0; t < 200; ++t) {
    for (int r = 0; r < 3; ++r) {
      x(r, t) = std::sin(2 * M_PI * t / period + 0.3 * r);
    }
  }
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(3, 200);
  mask.SetMissingRange(0, 100, 105);
  TkcmImputer imputer;
  Matrix out = imputer.Impute(data, mask);
  EXPECT_LT(MaeOnMissing(out, x, mask), 0.05);
}

TEST(MrnnTest, ContractAndCrossSeriesAccuracy) {
  // Highly correlated series: the cross-stream stage should track them.
  Rng rng(3);
  Matrix x(4, 160);
  for (int t = 0; t < 160; ++t) {
    const double base = std::sin(2 * M_PI * t / 32.0);
    for (int r = 0; r < 4; ++r) {
      x(r, t) = base * (1.0 + 0.1 * r) + 0.03 * rng.Gaussian();
    }
  }
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(4, 160);
  mask.SetMissingRange(1, 60, 80);

  MrnnImputer::Config config;
  config.max_epochs = 15;
  MrnnImputer imputer(config);
  Matrix out = imputer.Impute(data, mask);
  EXPECT_TRUE(out.AllFinite());
  for (int r = 0; r < 4; ++r) {
    for (int t = 0; t < 160; ++t) {
      if (mask.available(r, t)) {
        ASSERT_EQ(out(r, t), x(r, t));
      }
    }
  }
  MeanImputer mean;
  EXPECT_LT(MaeOnMissing(out, x, mask),
            MaeOnMissing(mean.Impute(data, mask), x, mask));
}

TEST(ForecasterTest, ShapeAndFiniteness) {
  SyntheticConfig config;
  config.num_series = 4;
  config.length = 200;
  config.seasonal_periods = {25.0};
  config.seasonality_strength = 0.9;
  config.noise_level = 0.05;
  config.seed = 4;
  Matrix x = GenerateSeriesMatrix(config);
  DataTensor data = DataTensor::FromMatrix(x);
  Mask mask(4, 200);

  DeepMviConfig model_config;
  model_config.max_epochs = 5;
  model_config.samples_per_epoch = 32;
  model_config.patience = 2;
  DeepMviForecaster forecaster(model_config);
  Matrix forecast = forecaster.Forecast(data, mask, 20);
  EXPECT_EQ(forecast.rows(), 4);
  EXPECT_EQ(forecast.cols(), 20);
  EXPECT_TRUE(forecast.AllFinite());
}

TEST(ForecasterTest, BeatsLastValueCarryOnSeasonalData) {
  // Train on the first 320 steps, forecast the next 20, compare against
  // carrying the last observed value forward. A seasonal signal makes the
  // carry baseline poor at half-period horizons.
  SyntheticConfig config;
  config.num_series = 6;
  config.length = 340;
  config.seasonal_periods = {40.0};
  config.seasonality_strength = 0.95;
  config.cross_correlation = 0.3;
  config.noise_level = 0.04;
  config.ar_coefficient = 0.5;
  config.seed = 5;
  Matrix full = GenerateSeriesMatrix(config);
  const int history = 320, horizon = 20;
  DataTensor train_data =
      DataTensor::FromMatrix(full.Block(0, 0, 6, history));
  Mask mask(6, history);

  DeepMviConfig model_config;
  model_config.max_epochs = 18;
  model_config.samples_per_epoch = 96;
  DeepMviForecaster forecaster(model_config);
  Matrix forecast = forecaster.Forecast(train_data, mask, horizon);

  double model_err = 0.0, carry_err = 0.0;
  for (int r = 0; r < 6; ++r) {
    const double last = full(r, history - 1);
    for (int h = 0; h < horizon; ++h) {
      model_err += std::fabs(forecast(r, h) - full(r, history + h));
      carry_err += std::fabs(last - full(r, history + h));
    }
  }
  EXPECT_LT(model_err, carry_err)
      << "forecast " << model_err / (6 * horizon) << " vs carry "
      << carry_err / (6 * horizon);
}

}  // namespace
}  // namespace deepmvi
