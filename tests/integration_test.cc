// Cross-module integration tests: the full benchmark protocol (preset
// dataset -> scenario -> normalization -> imputer -> metrics) for every
// algorithm family, plus end-to-end properties that span modules.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/dynammo.h"
#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "baselines/stmvl.h"
#include "baselines/trmf.h"
#include "core/deepmvi.h"
#include "data/presets.h"
#include "deep/brits.h"
#include "deep/gpvae.h"
#include "deep/transformer_imputer.h"
#include "eval/analytics.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::TinyDeepMviConfig;

TEST(IntegrationTest, FullProtocolOnEveryPreset) {
  // The whole pipeline must hold together on every dataset preset.
  for (const auto& name : AllDatasetNames()) {
    DataTensor data = MakeDataset(name, DatasetScale::kReduced, 2);
    ScenarioConfig scenario;
    scenario.kind = ScenarioKind::kMcar;
    scenario.percent_incomplete = 0.5;
    scenario.seed = 3;
    LinearInterpolationImputer imputer;
    ExperimentResult result = RunExperiment(data, scenario, imputer);
    EXPECT_GT(result.mae, 0.0) << name;
    EXPECT_TRUE(std::isfinite(result.analytics_gain)) << name;
  }
}

TEST(IntegrationTest, EveryImputerRunsOnAirQ) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 4);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 0.5;
  scenario.seed = 5;

  std::vector<std::unique_ptr<Imputer>> imputers;
  imputers.push_back(std::make_unique<MeanImputer>());
  imputers.push_back(std::make_unique<LinearInterpolationImputer>());
  imputers.push_back(std::make_unique<SvdImputer>());
  imputers.push_back(std::make_unique<SoftImputer>());
  imputers.push_back(std::make_unique<SvtImputer>());
  imputers.push_back(std::make_unique<CdRecImputer>());
  imputers.push_back(std::make_unique<TrmfImputer>(
      TrmfImputer::Config{.outer_iterations = 3}));
  imputers.push_back(std::make_unique<DynammoImputer>(
      DynammoImputer::Config{.em_iterations = 3}));
  imputers.push_back(std::make_unique<StmvlImputer>());
  imputers.push_back(std::make_unique<BritsImputer>(
      BritsImputer::Config{.hidden_dim = 16, .max_epochs = 2,
                           .passes_per_epoch = 1}));
  imputers.push_back(std::make_unique<GpVaeImputer>(
      GpVaeImputer::Config{.max_epochs = 2, .passes_per_epoch = 1}));
  imputers.push_back(std::make_unique<TransformerImputer>(
      TransformerImputer::Config{.max_epochs = 2, .samples_per_epoch = 8}));
  imputers.push_back(std::make_unique<DeepMviImputer>(TinyDeepMviConfig()));

  for (auto& imputer : imputers) {
    ExperimentResult result = RunExperiment(data, scenario, *imputer);
    EXPECT_GT(result.mae, 0.0) << imputer->name();
    EXPECT_LT(result.mae, 10.0) << imputer->name();
    EXPECT_GE(result.rmse, result.mae - 1e-12) << imputer->name();
  }
}

TEST(IntegrationTest, StructureExploitingMethodsBeatMeanOnTemperature) {
  // Temperature: high seasonality + high relatedness. Every structure-
  // aware conventional method must beat per-series mean imputation.
  DataTensor data = MakeDataset("Temperature", DatasetScale::kReduced, 6);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 7;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());

  MeanImputer mean;
  const double mean_mae = RunExperimentWithMask(data, mask, mean).mae;

  CdRecImputer cdrec;
  SvdImputer svd;
  TrmfImputer trmf;
  StmvlImputer stmvl;
  for (Imputer* imputer :
       std::initializer_list<Imputer*>{&cdrec, &svd, &trmf, &stmvl}) {
    const double mae = RunExperimentWithMask(data, mask, *imputer).mae;
    EXPECT_LT(mae, mean_mae) << imputer->name() << " " << mae << " vs mean "
                             << mean_mae;
  }
}

TEST(IntegrationTest, BlackoutDefeatsCrossSeriesOnlyMethods) {
  // In a blackout the same range is missing everywhere, so methods that
  // only exploit cross-series structure (SVDImp) cannot beat simple
  // interpolation, while they typically do under MissDisj. This is the
  // core contrast of the paper's Sec 5.3.
  DataTensor data = MakeDataset("Temperature", DatasetScale::kReduced, 8);

  ScenarioConfig blackout;
  blackout.kind = ScenarioKind::kBlackout;
  blackout.block_size = 50;
  blackout.seed = 9;
  Mask blackout_mask =
      GenerateScenario(blackout, data.num_series(), data.num_times());

  ScenarioConfig disj;
  disj.kind = ScenarioKind::kMissDisj;
  disj.percent_incomplete = 1.0;
  disj.seed = 9;
  Mask disj_mask = GenerateScenario(disj, data.num_series(), data.num_times());

  SvdImputer svd;
  LinearInterpolationImputer interp;
  const double svd_blackout = RunExperimentWithMask(data, blackout_mask, svd).mae;
  const double interp_blackout =
      RunExperimentWithMask(data, blackout_mask, interp).mae;
  const double svd_disj = RunExperimentWithMask(data, disj_mask, svd).mae;
  const double interp_disj = RunExperimentWithMask(data, disj_mask, interp).mae;

  // Under MissDisj, siblings carry the block: SVD wins clearly.
  EXPECT_LT(svd_disj, 0.8 * interp_disj);
  // Under Blackout the advantage collapses (ratio much closer to 1).
  EXPECT_GT(svd_blackout / interp_blackout, 0.8 * svd_disj / interp_disj);
}

TEST(IntegrationTest, NormalizationInvariance) {
  // Scaling and shifting a series must not change the normalized-space
  // error of a scale-invariant pipeline (the runner z-scores per series).
  DataTensor data = MakeDataset("Gas", DatasetScale::kReduced, 10);
  Matrix scaled = data.values();
  for (int t = 0; t < scaled.cols(); ++t) {
    scaled(0, t) = scaled(0, t) * 37.0 + 1000.0;
  }
  DataTensor scaled_data = DataTensor::FromMatrix(scaled);

  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 11;

  SvdImputer svd_a, svd_b;
  const double mae_a = RunExperiment(data.Flattened1D(), scenario, svd_a).mae;
  const double mae_b = RunExperiment(scaled_data, scenario, svd_b).mae;
  EXPECT_NEAR(mae_a, mae_b, 1e-9);
}

TEST(IntegrationTest, AnalyticsGainMatchesManualComputation) {
  DataTensor data = MakeDataset("Climate", DatasetScale::kReduced, 12);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.seed = 13;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());

  LinearInterpolationImputer imputer;
  ExperimentResult result = RunExperimentWithMask(data, mask, imputer);

  auto stats = data.ComputeNormalization(mask);
  DataTensor normalized = data.Normalized(stats);
  Matrix imputed = imputer.Impute(normalized, mask);
  const double manual = AnalyticsGainOverDropCell(normalized,
                                                  normalized.values(),
                                                  imputed, mask);
  EXPECT_NEAR(result.analytics_gain, manual, 1e-12);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // Identical seeds => identical results across whole runs, including
  // DeepMVI training.
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 14);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 0.5;
  scenario.seed = 15;
  DeepMviImputer a(TinyDeepMviConfig());
  DeepMviImputer b(TinyDeepMviConfig());
  const double mae_a = RunExperiment(data, scenario, a).mae;
  const double mae_b = RunExperiment(data, scenario, b).mae;
  EXPECT_EQ(mae_a, mae_b);
}

TEST(IntegrationTest, MultidimAggregationShapesConsistent) {
  DataTensor data = MakeDataset("M5", DatasetScale::kReduced, 16);
  Matrix agg = AggregateOverFirstDim(data, data.values());
  EXPECT_EQ(agg.rows(), data.dim(1).size());
  EXPECT_EQ(agg.cols(), data.num_times());
  // Aggregate of the aggregate-compatible flatten must preserve overall
  // mean.
  EXPECT_NEAR(agg.Mean(), data.values().Mean(), 1e-9);
}

}  // namespace
}  // namespace deepmvi
