#include <gtest/gtest.h>

#include <fstream>

#include "data/io.h"
#include "data/presets.h"
#include "scenario/scenarios.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::TempPath;

TEST(IoTest, RoundTrip1D) {
  Matrix values = {{1.5, -2.25, 3.0}, {0.0, 4.5, -6.125}};
  DataTensor data = DataTensor::FromMatrix(values);
  const std::string path = TempPath("roundtrip_1d.csv");
  ASSERT_TRUE(WriteDataTensor(data, path).ok());

  StatusOr<DataTensor> loaded = ReadDataTensor(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_series(), 2);
  EXPECT_EQ(loaded->num_times(), 3);
  EXPECT_TRUE(loaded->values().ApproxEquals(values, 0.0));
}

TEST(IoTest, RoundTripMultidimPreservesDimensions) {
  Dimension stores{"store", {"a", "b"}};
  Dimension items{"item", {"x", "y", "z"}};
  Rng rng(1);
  DataTensor data({stores, items}, Matrix::RandomGaussian(6, 4, rng));
  const std::string path = TempPath("roundtrip_2d.csv");
  ASSERT_TRUE(WriteDataTensor(data, path).ok());

  StatusOr<DataTensor> loaded = ReadDataTensor(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_dims(), 2);
  EXPECT_EQ(loaded->dim(0).name, "store");
  EXPECT_EQ(loaded->dim(1).members[2], "z");
  EXPECT_TRUE(loaded->values().ApproxEquals(data.values(), 1e-15));
}

TEST(IoTest, MissingCellsWrittenAsNanAndReadBack) {
  Matrix values = {{1, 2, 3, 4}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(1, 4);
  mask.set_missing(0, 1);
  mask.set_missing(0, 3);
  const std::string path = TempPath("with_missing.csv");
  ASSERT_TRUE(WriteDataTensor(data, path, &mask).ok());

  Mask loaded_mask;
  StatusOr<DataTensor> loaded = ReadDataTensor(path, &loaded_mask);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded_mask.missing(0, 1));
  EXPECT_TRUE(loaded_mask.missing(0, 3));
  EXPECT_TRUE(loaded_mask.available(0, 0));
  EXPECT_EQ(loaded->values()(0, 0), 1.0);
  EXPECT_EQ(loaded->values()(0, 1), 0.0);  // Stored as 0 under the mask.
}

TEST(IoTest, ReadsPlainCsvWithEmptyFieldsAsMissing) {
  const std::string path = TempPath("plain.csv");
  std::ofstream out(path);
  out << "1.0,,3.0\n4.0,5.0,nan\n";
  out.close();
  Mask mask;
  StatusOr<DataTensor> loaded = ReadDataTensor(path, &mask);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_series(), 2);
  EXPECT_TRUE(mask.missing(0, 1));
  EXPECT_TRUE(mask.missing(1, 2));
  EXPECT_EQ(mask.CountMissing(), 2);
}

TEST(IoTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  std::ofstream out(path);
  out << "1,2,3\n4,5\n";
  out.close();
  EXPECT_FALSE(ReadDataTensor(path).ok());
}

TEST(IoTest, RejectsNonNumeric) {
  const std::string path = TempPath("bad.csv");
  std::ofstream out(path);
  out << "1,hello,3\n";
  out.close();
  EXPECT_FALSE(ReadDataTensor(path).ok());
}

TEST(IoTest, RejectsDimensionMismatch) {
  const std::string path = TempPath("badshape.csv");
  std::ofstream out(path);
  out << "# dim:store=a|b\n# dim:item=x|y\n";  // Implies 4 series.
  out << "1,2\n3,4\n5,6\n";                    // Only 3 rows.
  out.close();
  EXPECT_FALSE(ReadDataTensor(path).ok());
}

TEST(IoTest, MissingFileFails) {
  EXPECT_FALSE(ReadDataTensor("/nonexistent/file.csv").ok());
  EXPECT_FALSE(ReadMask("/nonexistent/file.csv").ok());
}

TEST(IoTest, MaskRoundTrip) {
  Mask mask(3, 5);
  mask.set_missing(0, 0);
  mask.SetMissingRange(2, 1, 4);
  const std::string path = TempPath("mask.csv");
  ASSERT_TRUE(WriteMask(mask, path).ok());
  StatusOr<Mask> loaded = ReadMask(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == mask);
}

TEST(IoTest, MaskRejectsNonBinary) {
  const std::string path = TempPath("badmask.csv");
  std::ofstream out(path);
  out << "1,0,2\n";
  out.close();
  EXPECT_FALSE(ReadMask(path).ok());
}

TEST(IoTest, PresetSurvivesRoundTripWithScenario) {
  DataTensor data = MakeDataset("AirQ", DatasetScale::kReduced, 9);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 0.5;
  scenario.seed = 10;
  Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());
  const std::string path = TempPath("airq.csv");
  ASSERT_TRUE(WriteDataTensor(data, path, &mask).ok());

  Mask loaded_mask;
  StatusOr<DataTensor> loaded = ReadDataTensor(path, &loaded_mask);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded_mask == mask);
  // Available cells match exactly.
  for (int r = 0; r < data.num_series(); ++r) {
    for (int t = 0; t < data.num_times(); ++t) {
      if (mask.available(r, t)) {
        ASSERT_DOUBLE_EQ(loaded->values()(r, t), data.values()(r, t));
      }
    }
  }
}


TEST(CsvSeriesReaderTest, StreamsRowsIdenticalToReadDataTensor) {
  Dimension stores{"store", {"a", "b"}};
  Dimension items{"item", {"x", "y"}};
  Matrix values = {{1.0, 2.5}, {3.0, -4.5}, {0.25, 6.0}, {7.5, 8.0}};
  DataTensor data({stores, items}, values);
  Mask mask(4, 2);
  mask.set_missing(1, 1);
  const std::string path = TempPath("stream.csv");
  ASSERT_TRUE(WriteDataTensor(data, path, &mask).ok());

  Mask loaded_mask;
  StatusOr<DataTensor> slurped = ReadDataTensor(path, &loaded_mask);
  ASSERT_TRUE(slurped.ok());

  StatusOr<CsvSeriesReader> reader = CsvSeriesReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<double> row;
  std::vector<uint8_t> missing;
  int r = 0;
  while (true) {
    StatusOr<bool> more = reader->NextRow(&row, &missing);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_LT(r, 4);
    for (int t = 0; t < 2; ++t) {
      EXPECT_EQ(row[t], slurped->values()(r, t)) << r << "," << t;
      EXPECT_EQ(missing[t] != 0, loaded_mask.missing(r, t)) << r << "," << t;
    }
    ++r;
  }
  EXPECT_EQ(r, 4);
  EXPECT_EQ(reader->rows_read(), 4);
  EXPECT_EQ(reader->num_cols(), 2);
  // Dimension headers precede the data, so dims are complete.
  ASSERT_EQ(reader->dims().size(), 2u);
  EXPECT_EQ(reader->dims()[0].name, "store");
  EXPECT_EQ(reader->dims()[1].members, items.members);
}

TEST(CsvSeriesReaderTest, RejectsRaggedAndNonNumericRows) {
  const std::string path = TempPath("ragged_stream.csv");
  std::ofstream(path) << "1,2,3\n4,5\n";
  StatusOr<CsvSeriesReader> reader = CsvSeriesReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<double> row;
  std::vector<uint8_t> missing;
  ASSERT_TRUE(reader->NextRow(&row, &missing).ok());
  EXPECT_FALSE(reader->NextRow(&row, &missing).ok());

  std::ofstream(path, std::ios::trunc) << "1,pear,3\n";
  reader = CsvSeriesReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->NextRow(&row, &missing).ok());
}

}  // namespace
}  // namespace deepmvi
