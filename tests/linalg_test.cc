#include <gtest/gtest.h>

#include <cmath>

#include "linalg/centroid.h"
#include "linalg/solvers.h"
#include "linalg/svd.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::ColumnsOrthonormal;
using testutil::RandomSpd;

TEST(SvdTest, ReconstructsTallMatrix) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(8, 5, rng);
  SvdResult svd = JacobiSvd(a);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(a, 1e-8));
}

TEST(SvdTest, ReconstructsWideMatrix) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(4, 9, rng);
  SvdResult svd = JacobiSvd(a);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(a, 1e-8));
}

TEST(SvdTest, SingularValuesSortedNonNegative) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(6, 6, rng);
  SvdResult svd = JacobiSvd(a);
  for (size_t i = 0; i + 1 < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i], svd.singular_values[i + 1]);
  }
  for (double s : svd.singular_values) EXPECT_GE(s, 0.0);
}

TEST(SvdTest, FactorsOrthonormal) {
  Rng rng(4);
  Matrix a = Matrix::RandomGaussian(7, 5, rng);
  SvdResult svd = JacobiSvd(a);
  EXPECT_TRUE(ColumnsOrthonormal(svd.u));
  EXPECT_TRUE(ColumnsOrthonormal(svd.v));
}

TEST(SvdTest, KnownDiagonalCase) {
  Matrix a = {{3, 0}, {0, 2}};
  SvdResult svd = JacobiSvd(a);
  EXPECT_NEAR(svd.singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 2.0, 1e-10);
}

TEST(SvdTest, LowRankTruncationExactForLowRankInput) {
  Rng rng(5);
  // Build an exactly rank-2 matrix.
  Matrix u = Matrix::RandomGaussian(10, 2, rng);
  Matrix v = Matrix::RandomGaussian(6, 2, rng);
  Matrix a = u.MatMulTranspose(v);
  Matrix rec = TruncatedSvdReconstruct(a, 2);
  EXPECT_TRUE(rec.ApproxEquals(a, 1e-8));
  // Third singular value should be ~0.
  SvdResult svd = JacobiSvd(a);
  EXPECT_LT(svd.singular_values[2], 1e-8);
}

TEST(SvdTest, TruncationIsBestApproximation) {
  Rng rng(6);
  Matrix a = Matrix::RandomGaussian(8, 8, rng);
  // Error of rank-k approx should decrease with k.
  double prev = 1e18;
  for (int k = 1; k <= 8; k *= 2) {
    double err = (TruncatedSvdReconstruct(a, k) - a).Norm();
    EXPECT_LE(err, prev + 1e-12);
    prev = err;
  }
  EXPECT_NEAR(prev, 0.0, 1e-8);
}

TEST(CholeskyTest, FactorAndSolve) {
  Rng rng(7);
  Matrix a = RandomSpd(5, rng);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->MatMulTranspose(*l).ApproxEquals(a, 1e-8));

  Matrix x_true = Matrix::RandomGaussian(5, 2, rng);
  Matrix b = a.MatMul(x_true);
  Matrix x = CholeskySolve(*l, b);
  EXPECT_TRUE(x.ApproxEquals(x_true, 1e-8));
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = {{1, 0}, {0, -1}};
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(SolveSpdTest, HandlesNearSingularWithJitter) {
  // Rank-deficient PSD matrix; SolveSpd should still return finite values.
  Matrix a = {{1, 1}, {1, 1}};
  Matrix b = {{2}, {2}};
  Matrix x = SolveSpd(a, b);
  EXPECT_TRUE(x.AllFinite());
  EXPECT_TRUE(a.MatMul(x).ApproxEquals(b, 1e-3));
}

TEST(RidgeTest, ShrinksTowardZero) {
  Rng rng(8);
  Matrix a = Matrix::RandomGaussian(20, 3, rng);
  Matrix x_true = {{1.0}, {-2.0}, {0.5}};
  Matrix b = a.MatMul(x_true);
  Matrix x_small = RidgeSolve(a, b, 1e-8);
  EXPECT_TRUE(x_small.ApproxEquals(x_true, 1e-5));
  Matrix x_large = RidgeSolve(a, b, 1e6);
  EXPECT_LT(x_large.Norm(), x_small.Norm());
}

TEST(QrTest, Factorization) {
  Rng rng(9);
  Matrix a = Matrix::RandomGaussian(8, 4, rng);
  QrResult qr = HouseholderQr(a);
  EXPECT_TRUE(qr.q.MatMul(qr.r).ApproxEquals(a, 1e-9));
  EXPECT_TRUE(ColumnsOrthonormal(qr.q));
  // R upper triangular.
  for (int r = 1; r < qr.r.rows(); ++r) {
    for (int c = 0; c < r; ++c) EXPECT_NEAR(qr.r(r, c), 0.0, 1e-10);
  }
}

TEST(LeastSquaresTest, RecoversExactSolution) {
  Rng rng(10);
  Matrix a = Matrix::RandomGaussian(12, 4, rng);
  Matrix x_true = Matrix::RandomGaussian(4, 1, rng);
  Matrix b = a.MatMul(x_true);
  Matrix x = LeastSquaresSolve(a, b);
  EXPECT_TRUE(x.ApproxEquals(x_true, 1e-8));
}

TEST(LeastSquaresTest, MinimizesResidualForOverdetermined) {
  Rng rng(11);
  Matrix a = Matrix::RandomGaussian(20, 3, rng);
  Matrix b = Matrix::RandomGaussian(20, 1, rng);
  Matrix x = LeastSquaresSolve(a, b);
  // Perturbations should not improve the residual.
  const double base = (a.MatMul(x) - b).SquaredNorm();
  for (int i = 0; i < 3; ++i) {
    Matrix xp = x;
    xp(i, 0) += 1e-3;
    EXPECT_GE((a.MatMul(xp) - b).SquaredNorm(), base);
  }
}

TEST(InverseTest, MatchesIdentity) {
  Rng rng(12);
  Matrix a = RandomSpd(4, rng);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(a.MatMul(*inv).ApproxEquals(Matrix::Identity(4), 1e-8));
}

TEST(InverseTest, SingularFails) {
  Matrix a = {{1, 2}, {2, 4}};
  EXPECT_FALSE(Inverse(a).ok());
}

TEST(DeterminantTest, KnownValues) {
  Matrix a = {{2, 0}, {0, 3}};
  EXPECT_NEAR(Determinant(a), 6.0, 1e-12);
  Matrix b = {{1, 2}, {2, 4}};
  EXPECT_NEAR(Determinant(b), 0.0, 1e-12);
  Matrix c = {{0, 1}, {1, 0}};
  EXPECT_NEAR(Determinant(c), -1.0, 1e-12);
}

TEST(CentroidTest, SignVectorMaximizesNorm) {
  Rng rng(13);
  Matrix x = Matrix::RandomGaussian(6, 4, rng);
  std::vector<int> z = MaximizingSignVector(x);
  // Objective of returned z.
  auto objective = [&](const std::vector<int>& sign) {
    std::vector<double> s(x.cols(), 0.0);
    for (int i = 0; i < x.rows(); ++i) {
      for (int j = 0; j < x.cols(); ++j) s[j] += sign[i] * x(i, j);
    }
    return Dot(s, s);
  };
  const double obj = objective(z);
  // Local optimality: no single flip improves.
  for (int i = 0; i < x.rows(); ++i) {
    auto flipped = z;
    flipped[i] = -flipped[i];
    EXPECT_LE(objective(flipped), obj + 1e-9);
  }
}

TEST(CentroidTest, FullRankReconstructs) {
  Rng rng(14);
  Matrix x = Matrix::RandomGaussian(6, 5, rng);
  CentroidResult cd = CentroidDecomposition(x, 5);
  EXPECT_TRUE(cd.Reconstruct().ApproxEquals(x, 1e-6));
}

TEST(CentroidTest, RelevanceColumnsUnitNorm) {
  Rng rng(15);
  Matrix x = Matrix::RandomGaussian(8, 6, rng);
  CentroidResult cd = CentroidDecomposition(x, 3);
  for (int k = 0; k < 3; ++k) {
    double norm2 = 0.0;
    for (int j = 0; j < 6; ++j) norm2 += cd.r(j, k) * cd.r(j, k);
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(CentroidTest, LowRankInputRecovered) {
  Rng rng(16);
  Matrix u = Matrix::RandomGaussian(10, 2, rng);
  Matrix v = Matrix::RandomGaussian(7, 2, rng);
  Matrix x = u.MatMulTranspose(v);
  CentroidResult cd = CentroidDecomposition(x, 2);
  // Centroid decomposition of a rank-2 matrix with 2 components should be
  // near-exact (CD tracks SVD closely).
  EXPECT_LT((cd.Reconstruct() - x).Norm() / x.Norm(), 0.2);
}

TEST(CentroidTest, TruncationReducesErrorMonotonically) {
  Rng rng(17);
  Matrix x = Matrix::RandomGaussian(10, 8, rng);
  double prev = 1e18;
  for (int k = 1; k <= 8; k += 2) {
    CentroidResult cd = CentroidDecomposition(x, k);
    double err = (cd.Reconstruct() - x).Norm();
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

}  // namespace
}  // namespace deepmvi
