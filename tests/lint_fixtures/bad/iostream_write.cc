// Golden fixture: process-stream writes from library code. Linted under a
// src/ path these must trip the iostream rule; under tools/ they must not.
#include <iostream>

void BadReport(int value) {
  std::cout << "value=" << value << "\n";
  std::cerr << "oops\n";
}
