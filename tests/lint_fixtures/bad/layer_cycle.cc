// Golden fixture: upward include through the layer DAG. Linted as a
// src/tensor/ file, both includes reach layers tensor must not see.
#include "serve/service.h"
#include "net/server.h"
#include "common/status.h"

int Fine() { return 0; }
