// Golden fixture: raw synchronization primitives. Every line below must
// trip the sync-primitive rule when linted as library code.
#include <mutex>
#include <condition_variable>

struct BadLocking {
  void Touch() {
    std::lock_guard<std::mutex> lock(mu);
    ++value;
  }
  std::mutex mu;
  std::condition_variable cv;
  int value = 0;
};
