// Golden fixture: raw randomness. Both the engine type and the libc call
// must trip the raw-rng rule.
#include <random>

int BadRandom() {
  std::mt19937 engine(42);
  std::random_device device;
  return static_cast<int>(engine()) + static_cast<int>(device()) + rand();
}
