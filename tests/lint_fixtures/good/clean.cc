// Golden fixture: the approved idioms — wrapper mutex, seeded Rng,
// structured logging, downward includes only. Must lint clean under any
// src/ path that may include common/.
#include "common/logging.h"
#include "common/mutex.h"
#include "common/rng.h"

struct GoodLocking {
  int Bump() {
    deepmvi::MutexLock lock(&mu);
    return ++value;
  }
  deepmvi::Mutex mu;
  int value = 0;
};

double GoodRandom() {
  deepmvi::Rng rng(1234);
  return rng.Uniform();
}
