// Golden fixture: the per-line exemption marker and comment stripping.
// The banned include is waived by its marker; banned tokens inside
// comments must never count. The whole file lints clean.
#include <mutex>  // dmvi-lint: allow-sync-primitive

/* A block comment mentioning std::mutex and rand() must never count. */
// Neither must a line comment: std::condition_variable, std::cout.

int Fine() { return 0; }
