// Self-tests for the repo-invariant linter (tools/lint): golden bad
// fixtures must trip exactly their rule, golden good fixtures must lint
// clean, and — the teeth — the real tree must have zero violations.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace deepmvi {
namespace {

namespace fs = std::filesystem;
using lint::LintFileContents;
using lint::LintTree;
using lint::Violation;

std::string ReadFixture(const std::string& name) {
  const fs::path path = fs::path(DMVI_LINT_FIXTURE_DIR) / name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::map<std::string, int> CountByRule(const std::vector<Violation>& found) {
  std::map<std::string, int> counts;
  for (const Violation& violation : found) ++counts[violation.rule];
  return counts;
}

std::string Describe(const std::vector<Violation>& found) {
  std::string out;
  for (const Violation& violation : found) {
    out += lint::FormatViolation(violation) + "\n";
  }
  return out;
}

TEST(LintTest, NakedMutexFixtureTripsSyncPrimitiveRule) {
  const std::vector<Violation> found = LintFileContents(
      "src/fake/naked_mutex.cc", ReadFixture("bad/naked_mutex.cc"));
  const auto counts = CountByRule(found);
  // Both includes, the lock_guard line, and the two member lines.
  EXPECT_EQ(counts.at("sync-primitive"), 5) << Describe(found);
  EXPECT_EQ(counts.size(), 1u) << Describe(found);
}

TEST(LintTest, RawRngFixtureTripsRngRule) {
  const std::vector<Violation> found = LintFileContents(
      "src/fake/raw_rng.cc", ReadFixture("bad/raw_rng.cc"));
  const auto counts = CountByRule(found);
  // The engine line, the random_device line, and the rand() line
  // (<random> itself stays legal: distributions are fine over Rng).
  EXPECT_EQ(counts.at("raw-rng"), 3) << Describe(found);
  EXPECT_EQ(counts.size(), 1u) << Describe(found);
}

TEST(LintTest, IostreamFixtureTripsOnlyInLibraryCode) {
  const std::string contents = ReadFixture("bad/iostream_write.cc");
  const std::vector<Violation> in_src =
      LintFileContents("src/fake/iostream_write.cc", contents);
  const auto counts = CountByRule(in_src);
  // The include, the cout line, and the cerr line.
  EXPECT_EQ(counts.at("iostream"), 3) << Describe(in_src);
  // The same bytes under tools/ are legal: CLIs print.
  EXPECT_TRUE(LintFileContents("tools/iostream_write.cc", contents).empty());
}

TEST(LintTest, LayerCycleFixtureTripsDagRule) {
  const std::string contents = ReadFixture("bad/layer_cycle.cc");
  const std::vector<Violation> upward =
      LintFileContents("src/tensor/layer_cycle.cc", contents);
  const auto counts = CountByRule(upward);
  // serve/ and net/ are above tensor; common/ is always reachable.
  EXPECT_EQ(counts.at("layer-include"), 2) << Describe(upward);
  // The top layer may include everything the fixture names.
  EXPECT_TRUE(
      LintFileContents("src/net/layer_cycle.cc", contents).empty());
}

TEST(LintTest, GoodFixturesLintClean) {
  for (const char* name : {"good/clean.cc", "good/exempted.cc"}) {
    const std::vector<Violation> found =
        LintFileContents("src/storage/fixture.cc", ReadFixture(name));
    EXPECT_TRUE(found.empty()) << name << ":\n" << Describe(found);
  }
}

TEST(LintTest, MissingNodiscardIsReported) {
  // A fake repo whose status.h lost the attribute.
  const fs::path root =
      fs::temp_directory_path() / "dmvi_lint_test_fake_repo";
  fs::create_directories(root / "src" / "common");
  std::ofstream(root / "src" / "common" / "status.h")
      << "class Status {};\n";
  const std::vector<Violation> found = LintTree(root.string(), {});
  const auto counts = CountByRule(found);
  EXPECT_EQ(counts.at("status-nodiscard"), 2) << Describe(found);
  fs::remove_all(root);
}

// The teeth: the real tree must be invariant-clean. A failure here names
// the file and line that regressed.
TEST(LintTest, RepositoryTreeIsClean) {
  const std::vector<Violation> found =
      LintTree(DMVI_LINT_REPO_ROOT, {"src", "tools", "tests"});
  EXPECT_TRUE(found.empty()) << Describe(found);
}

}  // namespace
}  // namespace deepmvi
