// Tests for the src/net HTTP front-end: the incremental HTTP/1.1 parser
// (split reads, size caps, keep-alive), the JSON codec, and — the central
// contract — that imputation served over a loopback socket is bit-identical
// to calling ImputationService directly. The network layer must change
// where bytes travel, never which bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "common/rng.h"
#include "core/deepmvi.h"
#include "data/io.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/codec.h"
#include "net/endpoints.h"
#include "net/http.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "scenario/scenarios.h"
#include "serve/quality_monitor.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::ExpectMatricesBitIdentical;
using testutil::MakeSeasonalCase;
using testutil::SeasonalCase;
using testutil::TempPath;
using testutil::TinyDeepMviConfig;

// ---- HttpParser -------------------------------------------------------------

net::HttpParser RequestParser(net::ParserLimits limits = {}) {
  return net::HttpParser(net::HttpParser::Mode::kRequest, limits);
}

TEST(HttpParserTest, ParsesSimpleRequestDeliveredWhole) {
  const std::string wire =
      "POST /v1/impute HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
  net::HttpParser parser = RequestParser();
  EXPECT_EQ(parser.Feed(wire.data(), wire.size()), wire.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().method, "POST");
  EXPECT_EQ(parser.message().target, "/v1/impute");
  EXPECT_EQ(parser.message().version, "HTTP/1.1");
  EXPECT_EQ(parser.message().Header("host"), "x");  // Lower-cased name.
  EXPECT_EQ(parser.message().body, "hello");
}

TEST(HttpParserTest, ByteAtATimeFeedParsesIdentically) {
  // The hard case for an incremental parser: every read boundary at once.
  const std::string wire =
      "POST /a HTTP/1.1\r\ncontent-length: 11\r\nx-k: v\r\n\r\nsplit bodies";
  net::HttpParser parser = RequestParser();
  for (const char c : wire) {
    ASSERT_FALSE(parser.failed()) << parser.error_message();
    parser.Feed(&c, 1);
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().body, "split bodie");  // 11 bytes declared.
  EXPECT_EQ(parser.message().Header("x-k"), "v");
}

TEST(HttpParserTest, PipelinedSecondRequestIsLeftUnconsumed) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string wire = first + "GET /b HTTP/1.1\r\n\r\n";
  net::HttpParser parser = RequestParser();
  const size_t used = parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(used, first.size());
  EXPECT_EQ(parser.message().target, "/a");

  parser.Reset();
  parser.Feed(wire.data() + used, wire.size() - used);
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().target, "/b");
}

TEST(HttpParserTest, OversizedHeadIs431) {
  net::ParserLimits limits;
  limits.max_header_bytes = 64;
  net::HttpParser parser = RequestParser(limits);
  const std::string wire = "GET / HTTP/1.1\r\nx-pad: " +
                           std::string(200, 'a') + "\r\n\r\n";
  parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), 431);
}

TEST(HttpParserTest, OversizedDeclaredBodyIs413) {
  net::ParserLimits limits;
  limits.max_body_bytes = 10;
  net::HttpParser parser = RequestParser(limits);
  const std::string wire =
      "POST / HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world";
  parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), 413);
}

TEST(HttpParserTest, MalformedFramingIs400) {
  for (const char* wire : {
           "GARBAGE\r\n\r\n",                                 // No target.
           "GET /a HTTP/2.0\r\n\r\n",                         // Bad version.
           "GET a HTTP/1.1\r\n\r\n",                          // Non-origin.
           "GET /a HTTP/1.1\r\nbad header\r\n\r\n",           // No colon.
           "GET /a HTTP/1.1\r\nkey : v\r\n\r\n",              // Space pre-colon.
           "POST /a HTTP/1.1\r\ncontent-length: nan\r\n\r\n"  // Bad length.
       }) {
    net::HttpParser parser = RequestParser();
    parser.Feed(wire, std::string(wire).size());
    EXPECT_TRUE(parser.failed()) << wire;
    EXPECT_EQ(parser.error_code(), 400) << wire;
  }
}

TEST(HttpParserTest, ConflictingContentLengthsAre400) {
  // The request-smuggling vector: two framings of one message.
  const std::string wire =
      "POST /a HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 50\r\n\r\n";
  net::HttpParser parser = RequestParser();
  parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), 400);

  // Equal duplicates are tolerated (RFC 7230 allows either).
  const std::string same =
      "POST /a HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok";
  net::HttpParser tolerant = RequestParser();
  tolerant.Feed(same.data(), same.size());
  ASSERT_TRUE(tolerant.done());
  EXPECT_EQ(tolerant.message().body, "ok");
}

TEST(HttpParserTest, ChunkedTransferEncodingIs501) {
  const std::string wire =
      "POST /a HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
  net::HttpParser parser = RequestParser();
  parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), 501);
}

TEST(HttpParserTest, ParsesResponsesAndKeepAliveDefaults) {
  const std::string wire =
      "HTTP/1.1 404 Not Found\r\ncontent-length: 2\r\n\r\nno";
  net::HttpParser parser(net::HttpParser::Mode::kResponse);
  parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().status_code, 404);
  EXPECT_EQ(parser.message().reason, "Not Found");
  EXPECT_EQ(parser.message().body, "no");
  EXPECT_TRUE(net::WantsKeepAlive(parser.message()));  // 1.1 default.

  net::HttpMessage closing;
  closing.SetHeader("connection", "close");
  EXPECT_FALSE(net::WantsKeepAlive(closing));
  net::HttpMessage old_version;
  old_version.version = "HTTP/1.0";
  EXPECT_FALSE(net::WantsKeepAlive(old_version));  // 1.0 default.
}

TEST(HttpParserTest, SerializeThenParseRoundTrips) {
  net::HttpMessage response = net::MakeResponse(200, "payload", "text/plain");
  const std::string wire = net::SerializeResponse(response);
  net::HttpParser parser(net::HttpParser::Mode::kResponse);
  parser.Feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().status_code, 200);
  EXPECT_EQ(parser.message().body, "payload");
  EXPECT_EQ(parser.message().Header("content-type"), "text/plain");
  EXPECT_EQ(parser.message().Header("content-length"), "7");
}

TEST(HttpParserTest, SplitInvarianceAtEveryByteBoundary) {
  // Property: the parse result must not depend on where the read boundary
  // falls. Exercise every 2-way split of a request with headers + body.
  const std::string wire =
      "POST /v1/impute HTTP/1.1\r\nHost: a\r\ncontent-length: 9\r\n"
      "x-trace: zz\r\n\r\nbody bits";
  net::HttpParser whole = RequestParser();
  whole.Feed(wire.data(), wire.size());
  ASSERT_TRUE(whole.done());

  for (size_t split = 0; split <= wire.size(); ++split) {
    net::HttpParser parser = RequestParser();
    size_t used = parser.Feed(wire.data(), split);
    if (!parser.done()) {
      ASSERT_FALSE(parser.failed()) << "split at " << split << ": "
                                    << parser.error_message();
      used += parser.Feed(wire.data() + used, wire.size() - used);
    }
    ASSERT_TRUE(parser.done()) << "split at " << split;
    EXPECT_EQ(parser.message().method, whole.message().method);
    EXPECT_EQ(parser.message().target, whole.message().target);
    EXPECT_EQ(parser.message().version, whole.message().version);
    EXPECT_EQ(parser.message().body, whole.message().body);
    EXPECT_EQ(parser.message().Header("host"), "a");
    EXPECT_EQ(parser.message().Header("x-trace"), "zz");
    EXPECT_EQ(used, wire.size()) << "split at " << split;
  }
}

TEST(HttpParserTest, SeededMutationsNeverCrashAndFailWithKnownCodes) {
  // Property-style fuzz: random byte mutations + truncations of a valid
  // request, fed in random chunk sizes, must always end in done() or
  // failed() with one of the parser's documented HTTP codes — never a
  // crash, hang, or stray code. Seeded, so a failure replays exactly.
  const std::string base =
      "POST /v1/impute HTTP/1.1\r\nHost: fuzz\r\ncontent-length: 12\r\n"
      "accept: text/csv\r\n\r\n{\"model\":1}\n";
  Rng rng(20240807);
  for (int iter = 0; iter < 600; ++iter) {
    std::string wire = base;
    const int edits = 1 + rng.UniformInt(4);
    for (int e = 0; e < edits; ++e) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(static_cast<int>(wire.size())));
      wire[pos] = static_cast<char>(rng.UniformInt(256));
    }
    if (rng.Uniform() < 0.25) {
      wire.resize(static_cast<size_t>(
          rng.UniformInt(static_cast<int>(wire.size()) + 1)));
    }

    net::HttpParser parser = RequestParser();
    size_t offset = 0;
    while (offset < wire.size() && !parser.done() && !parser.failed()) {
      const size_t chunk = 1 + static_cast<size_t>(rng.UniformInt(7));
      const size_t len = std::min(chunk, wire.size() - offset);
      const size_t used = parser.Feed(wire.data() + offset, len);
      offset += used;
      if (used == 0) break;  // Parser refuses further input: terminal.
    }
    if (parser.failed()) {
      const int code = parser.error_code();
      EXPECT_TRUE(code == 400 || code == 413 || code == 431 || code == 501)
          << "iter " << iter << " produced code " << code;
    }
  }
}

// ---- JSON -------------------------------------------------------------------

TEST(JsonTest, ParsesDocumentShapes) {
  StatusOr<net::JsonValue> doc = net::ParseJson(
      R"({"s": "a\"b\n", "n": -1.5e2, "t": true, "f": false, "z": null,
          "arr": [1, 2, [3]], "obj": {"k": "v"}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("s").string_value(), "a\"b\n");
  EXPECT_EQ(doc->at("n").number_value(), -150.0);
  EXPECT_TRUE(doc->at("t").bool_value());
  EXPECT_FALSE(doc->at("f").bool_value());
  EXPECT_TRUE(doc->at("z").is_null());
  ASSERT_EQ(doc->at("arr").array_items().size(), 3u);
  EXPECT_EQ(doc->at("arr").array_items()[2].array_items()[0].number_value(),
            3.0);
  EXPECT_EQ(doc->at("obj").at("k").string_value(), "v");
  EXPECT_TRUE(doc->at("missing").is_null());  // Safe chaining.
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* text : {"", "{", "[1,", "{\"k\" 1}", "{\"k\":}", "tru",
                           "\"unterminated", "1 2", "{\"k\":1,}", "nul"}) {
    StatusOr<net::JsonValue> doc = net::ParseJson(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
    EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonTest, DepthIsCapped) {
  std::string bomb(2000, '[');
  EXPECT_FALSE(net::ParseJson(bomb).ok());
}

TEST(JsonTest, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  StatusOr<net::JsonValue> doc =
      net::ParseJson("\"" + net::EscapeJson(nasty) + "\"");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->string_value(), nasty);
}

TEST(JsonTest, SeededMutationsNeverCrashTheCodec) {
  // Mutated/truncated documents through ParseJson and the full impute
  // decoder: the only acceptable failure is InvalidArgument. Seeded for
  // exact replay under ASan/UBSan.
  const std::string base =
      R"({"model": "m", "values": [[1.5, null, 3e2], [4, 5, 6]],)"
      R"( "query": {"row": 1, "t_start": 2, "block_len": 3}, "format": "json"})";
  Rng rng(41507);
  for (int iter = 0; iter < 800; ++iter) {
    std::string text = base;
    const int edits = 1 + rng.UniformInt(5);
    for (int e = 0; e < edits; ++e) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(static_cast<int>(text.size())));
      text[pos] = static_cast<char>(rng.UniformInt(256));
    }
    if (rng.Uniform() < 0.2) {
      text.resize(static_cast<size_t>(
          rng.UniformInt(static_cast<int>(text.size()) + 1)));
    }
    StatusOr<net::JsonValue> doc = net::ParseJson(text);
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument)
          << "iter " << iter;
    }
    net::HttpMessage request;
    request.method = "POST";
    request.target = "/v1/impute";
    request.body = text;
    StatusOr<net::ImputeApiRequest> decoded = net::DecodeImputeRequest(request);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
          << "iter " << iter;
    }
  }
}

// ---- Fault injection --------------------------------------------------------

TEST(FaultInjectorTest, SameSeedReplaysIdenticalSchedule) {
  net::FaultInjector::Config config;
  config.seed = 1234;
  config.read = {0.2, 0.3, 0.1};
  config.write = {0.1, 0.4, 0.05};
  net::FaultInjector a(config);
  net::FaultInjector b(config);
  config.seed = 1235;
  net::FaultInjector c(config);

  bool other_seed_differs = false;
  for (int i = 0; i < 400; ++i) {
    const size_t requested = 2 + static_cast<size_t>(i % 300);
    const bool read_op = (i % 2 == 0);
    const net::FaultInjector::Decision da =
        read_op ? a.NextRead(requested) : a.NextWrite(requested);
    const net::FaultInjector::Decision db =
        read_op ? b.NextRead(requested) : b.NextWrite(requested);
    const net::FaultInjector::Decision dc =
        read_op ? c.NextRead(requested) : c.NextWrite(requested);
    ASSERT_EQ(static_cast<int>(da.action), static_cast<int>(db.action))
        << "op " << i;
    ASSERT_EQ(da.cap, db.cap) << "op " << i;
    if (da.action == net::FaultInjector::Action::kShort) {
      EXPECT_GE(da.cap, 1u);
      EXPECT_LT(da.cap, requested);  // Strict prefix.
    }
    if (da.action != dc.action || da.cap != dc.cap) other_seed_differs = true;
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0);
  EXPECT_TRUE(other_seed_differs) << "seed does not influence the schedule";
}

TEST(FaultInjectorTest, ZeroRatesAreCleanAndOneByteOpsNeverShorten) {
  net::FaultInjector::Config clean;
  clean.seed = 9;
  net::FaultInjector quiet(clean);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(quiet.NextRead(64).action, net::FaultInjector::Action::kNone);
    EXPECT_EQ(quiet.NextWrite(64).action, net::FaultInjector::Action::kNone);
  }
  EXPECT_EQ(quiet.injected(), 0);

  net::FaultInjector::Config shorty;
  shorty.seed = 9;
  shorty.read.short_rate = 1.0;
  net::FaultInjector injector(shorty);
  for (int i = 0; i < 50; ++i) {
    // A 1-byte read cannot be a strict prefix: the shim passes it through.
    EXPECT_EQ(injector.NextRead(1).action, net::FaultInjector::Action::kNone);
    const net::FaultInjector::Decision d = injector.NextRead(10);
    EXPECT_EQ(d.action, net::FaultInjector::Action::kShort);
    EXPECT_GE(d.cap, 1u);
    EXPECT_LE(d.cap, 9u);
  }
}

// ---- Impute request decoding ------------------------------------------------

net::HttpMessage PostBody(std::string body, const std::string& accept = "") {
  net::HttpMessage request;
  request.method = "POST";
  request.target = "/v1/impute";
  request.body = std::move(body);
  if (!accept.empty()) request.SetHeader("accept", accept);
  return request;
}

TEST(CodecTest, DecodesQueryBaseAndInlineModes) {
  StatusOr<net::ImputeApiRequest> query = net::DecodeImputeRequest(PostBody(
      R"({"model": "m", "query": {"row": 2, "t_start": 5, "block_len": 3}})"));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->model, "m");
  ASSERT_TRUE(query->has_query);
  EXPECT_EQ(query->query.row, 2);
  EXPECT_EQ(query->query.t_start, 5);
  EXPECT_EQ(query->query.block_len, 3);
  EXPECT_FALSE(query->csv_response);

  StatusOr<net::ImputeApiRequest> base =
      net::DecodeImputeRequest(PostBody("", "text/csv"));
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->model, "default");
  EXPECT_FALSE(base->has_query);
  EXPECT_FALSE(base->has_inline_data);
  EXPECT_TRUE(base->csv_response);

  StatusOr<net::ImputeApiRequest> inline_mode = net::DecodeImputeRequest(
      PostBody(R"({"values": [[1, null, 3], [4, 5, null]]})"));
  ASSERT_TRUE(inline_mode.ok()) << inline_mode.status().ToString();
  ASSERT_TRUE(inline_mode->has_inline_data);
  EXPECT_EQ(inline_mode->inline_values.rows(), 2);
  EXPECT_EQ(inline_mode->inline_values.cols(), 3);
  EXPECT_EQ(inline_mode->inline_values(0, 0), 1.0);
  EXPECT_TRUE(inline_mode->inline_mask.missing(0, 1));
  EXPECT_TRUE(inline_mode->inline_mask.missing(1, 2));
  EXPECT_EQ(inline_mode->inline_mask.CountMissing(), 2);

  // "format" overrides Accept.
  StatusOr<net::ImputeApiRequest> forced =
      net::DecodeImputeRequest(PostBody(R"({"format": "csv"})"));
  ASSERT_TRUE(forced.ok());
  EXPECT_TRUE(forced->csv_response);
}

TEST(CodecTest, RejectsBadImputeBodies) {
  for (const char* body : {
           "not json at all",
           "[1, 2, 3]",                                    // Not an object.
           R"({"model": 7})",                              // Bad type.
           R"({"query": {"row": -1}})",                    // Negative.
           R"({"query": {"row": 0, "t_start": 0, "block_len": 0}})",
           R"({"values": []})",                            // Empty.
           R"({"values": [[1], [2, 3]]})",                 // Ragged.
           R"({"values": [[1, "x"]]})",                    // Bad cell.
           R"({"values": [[1]], "query": {"row": 0, "t_start": 0,
               "block_len": 1}})",                         // Both modes.
           R"({"format": "xml"})",
       }) {
    StatusOr<net::ImputeApiRequest> decoded =
        net::DecodeImputeRequest(PostBody(body));
    EXPECT_FALSE(decoded.ok()) << "accepted: " << body;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << body;
  }
}

// ---- Server + client round trips --------------------------------------------

/// One small trained model shared by the loopback suites.
struct ServedCase {
  SeasonalCase data_case;
  serve::ImputationService service;
  std::shared_ptr<const DataTensor> shared_data;

  explicit ServedCase(serve::ServiceConfig config = {},
                      uint64_t seed = 91)
      : data_case(MakeSeasonalCase(seed, 5, 120)), service(config) {
    DeepMviConfig model_config = TinyDeepMviConfig();
    model_config.seed = 79;
    DeepMviImputer imputer(model_config);
    TrainedDeepMvi model = imputer.Fit(data_case.data, data_case.mask);
    DMVI_CHECK(service.registry().Register("default", std::move(model)).ok());
    shared_data = std::make_shared<const DataTensor>(data_case.data);
  }

  net::ServingContext Context() {
    net::ServingContext ctx;
    ctx.service = &service;
    ctx.data = shared_data;
    ctx.base_mask = data_case.mask;
    return ctx;
  }
};

TEST(HttpServerTest, StartStopAndBindFailureIsStatusNotAbort) {
  net::ServerConfig config;
  net::HttpServer server(config);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);

  // Second server on the same port: bind fails as a Status.
  net::ServerConfig clash;
  clash.port = server.port();
  net::HttpServer other(clash);
  Status status = other.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);

  server.Stop();
  server.Stop();  // Idempotent.

  // A bad host string also fails recoverably.
  net::ServerConfig bad_host;
  bad_host.host = "not-an-address";
  EXPECT_FALSE(net::HttpServer(bad_host).Start().ok());
}

TEST(HttpServerTest, RoutesKeepAliveErrorsAndOversizedMessages) {
  net::ServerConfig config;
  config.limits.max_body_bytes = 1024;
  net::HttpServer server(config);
  server.Handle("GET", "/ping", [](const net::HttpMessage&) {
    return net::MakeResponse(200, "pong", "text/plain");
  });
  server.Handle("GET", "/boom", [](const net::HttpMessage&) -> net::HttpMessage {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // Keep-alive: several requests on one connection, including error
  // responses, which must not kill it.
  for (int i = 0; i < 3; ++i) {
    StatusOr<net::HttpMessage> pong = client.Get("/ping");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_EQ(pong->status_code, 200);
    EXPECT_EQ(pong->body, "pong");
    EXPECT_EQ(pong->Header("connection"), "keep-alive");
  }
  StatusOr<net::HttpMessage> missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
  StatusOr<net::HttpMessage> wrong_method =
      client.Post("/ping", "", "text/plain");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status_code, 405);
  StatusOr<net::HttpMessage> threw = client.Get("/boom");
  ASSERT_TRUE(threw.ok());
  EXPECT_EQ(threw->status_code, 500);
  EXPECT_NE(threw->body.find("handler exploded"), std::string::npos);

  // Oversized body: 413 and the server closes the connection; the client
  // survives via reconnect on the next request.
  StatusOr<net::HttpMessage> huge =
      client.Post("/ping", std::string(4096, 'x'), "text/plain");
  ASSERT_TRUE(huge.ok()) << huge.status().ToString();
  EXPECT_EQ(huge->status_code, 413);
  EXPECT_EQ(huge->Header("connection"), "close");
  StatusOr<net::HttpMessage> after = client.Get("/ping");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->status_code, 200);

  EXPECT_GE(server.requests_served(), 7);
  server.Stop();
}

TEST(HttpTest, TargetPathAndQueryParameter) {
  EXPECT_EQ(net::TargetPath("/debug/profile?seconds=2"), "/debug/profile");
  EXPECT_EQ(net::TargetPath("/healthz"), "/healthz");
  EXPECT_EQ(net::TargetPath("/a?"), "/a");
  EXPECT_EQ(net::QueryParameter("/p?seconds=2&hz=500", "seconds"), "2");
  EXPECT_EQ(net::QueryParameter("/p?seconds=2&hz=500", "hz"), "500");
  EXPECT_EQ(net::QueryParameter("/p?seconds=2", "missing"), "");
  EXPECT_EQ(net::QueryParameter("/p?flag&x=1", "flag"), "");
  EXPECT_EQ(net::QueryParameter("/p", "x"), "");
}

TEST(HttpServerTest, QueryStringsRouteToTheBarePath) {
  net::HttpServer server;
  server.Handle("GET", "/echo", [](const net::HttpMessage& request) {
    return net::MakeResponse(
        200, net::QueryParameter(request.target, "v"), "text/plain");
  });
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  StatusOr<net::HttpMessage> with_query = client.Get("/echo?v=42");
  ASSERT_TRUE(with_query.ok()) << with_query.status().ToString();
  EXPECT_EQ(with_query->status_code, 200);
  EXPECT_EQ(with_query->body, "42");
  // The query string affects neither 404 nor 405 classification.
  EXPECT_EQ(client.Get("/nope?v=1")->status_code, 404);
  EXPECT_EQ(client.Post("/echo?v=1", "", "text/plain")->status_code, 405);
  server.Stop();
}

TEST(HttpServerTest, ManyConcurrentClientsAreServed) {
  net::ServerConfig config;
  config.num_workers = 3;
  net::HttpServer server(config);
  std::atomic<int> handled{0};
  server.Handle("GET", "/count", [&handled](const net::HttpMessage&) {
    ++handled;
    return net::MakeResponse(200, "ok", "text/plain");
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::Client client("127.0.0.1", server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        StatusOr<net::HttpMessage> response = client.Get("/count");
        if (!response.ok() || response->status_code != 200) ++failures;
      }
      (void)c;
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled.load(), kClients * kRequestsEach);
  server.Stop();
}

TEST(HttpServerTest, ShortReadsWritesAndEintrAreInvisibleToClients) {
  // Transparent faults — short transfers and EINTR on both directions of
  // both ends — must never change an HTTP outcome: every request succeeds
  // and every echoed body comes back byte-identical. The injected()
  // counters prove the schedule actually fired.
  net::FaultInjector::Config server_faults;
  server_faults.seed = 4242;
  server_faults.read = {0.15, 0.25, 0.0};
  server_faults.write = {0.15, 0.25, 0.0};
  net::ServerConfig config;
  config.fault = std::make_shared<net::FaultInjector>(server_faults);
  net::HttpServer server(config);
  server.Handle("POST", "/echo", [](const net::HttpMessage& request) {
    return net::MakeResponse(200, request.body, "text/plain");
  });
  ASSERT_TRUE(server.Start().ok());

  net::FaultInjector::Config client_faults;
  client_faults.seed = 777;
  client_faults.read = {0.1, 0.3, 0.0};
  client_faults.write = {0.1, 0.3, 0.0};
  auto client_fault = std::make_shared<net::FaultInjector>(client_faults);
  net::Client client("127.0.0.1", server.port());
  client.SetFaultInjector(client_fault);

  for (int i = 0; i < 25; ++i) {
    // Growing payloads force multi-chunk sends so short writes bite.
    const std::string payload =
        "payload-" + std::to_string(i) + "-" + std::string(i * 123, 'x');
    StatusOr<net::HttpMessage> response =
        client.Post("/echo", payload, "text/plain");
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
    EXPECT_EQ(response->body, payload) << "request " << i;
  }
  EXPECT_GT(config.fault->injected(), 0) << "server schedule never fired";
  EXPECT_GT(client_fault->injected(), 0) << "client schedule never fired";
  server.Stop();
}

TEST(HttpServerTest, ResetFaultsFailTheRequestNotTheServer) {
  net::HttpServer server;
  server.Handle("GET", "/ping", [](const net::HttpMessage&) {
    return net::MakeResponse(200, "pong", "text/plain");
  });
  ASSERT_TRUE(server.Start().ok());

  // Client whose every send is reset: the request fails as a Status (no
  // crash, no hang), and a clean client on the same server still works.
  net::FaultInjector::Config send_reset;
  send_reset.seed = 5;
  send_reset.write.reset_rate = 1.0;
  net::Client faulty("127.0.0.1", server.port());
  faulty.SetFaultInjector(std::make_shared<net::FaultInjector>(send_reset));
  StatusOr<net::HttpMessage> broken = faulty.Get("/ping");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kIoError);

  net::Client clean("127.0.0.1", server.port());
  StatusOr<net::HttpMessage> pong = clean.Get("/ping");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->status_code, 200);
  server.Stop();

  // Server whose every recv is reset: connections die mid-request, the
  // client reports IoError, and the server itself keeps running.
  net::FaultInjector::Config recv_reset;
  recv_reset.seed = 6;
  recv_reset.read.reset_rate = 1.0;
  net::ServerConfig dropping_config;
  dropping_config.fault = std::make_shared<net::FaultInjector>(recv_reset);
  net::HttpServer dropping(dropping_config);
  dropping.Handle("GET", "/ping", [](const net::HttpMessage&) {
    return net::MakeResponse(200, "pong", "text/plain");
  });
  ASSERT_TRUE(dropping.Start().ok());
  net::Client victim("127.0.0.1", dropping.port());
  StatusOr<net::HttpMessage> dropped = victim.Get("/ping");
  EXPECT_FALSE(dropped.ok());
  EXPECT_TRUE(dropping.running());
  dropping.Stop();
}

TEST(HttpServerTest, AcceptQueueSaturationDelaysButNeverDropsRequests) {
  // One worker + a one-slot backlog: with three concurrent clients the
  // queue saturates (observable via pending_connections) and the accept
  // loop backpressures instead of queueing unboundedly. Once the latch
  // opens, every request completes — saturation delays, never drops.
  net::ServerConfig config;
  config.num_workers = 1;
  config.max_pending_connections = 1;
  net::HttpServer server(config);
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  server.Handle("GET", "/slow", [&](const net::HttpMessage&) {
    ++entered;
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return net::MakeResponse(200, "ok", "text/plain");
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  std::atomic<int> oks{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      net::Client client("127.0.0.1", server.port());
      StatusOr<net::HttpMessage> response = client.Get("/slow");
      if (response.ok() && response->status_code == 200) ++oks;
    });
  }

  int observed_pending = 0;
  for (int spin = 0; spin < 2000; ++spin) {
    observed_pending = std::max(observed_pending, server.pending_connections());
    if (entered.load() >= 1 && observed_pending >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(entered.load(), 1);
  EXPECT_EQ(observed_pending, 1) << "backlog must fill to its bound, no more";

  release.store(true);
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(oks.load(), kClients);
  EXPECT_EQ(server.pending_connections(), 0);
  server.Stop();
}

TEST(ServingEndpointsTest, LoopbackImputationBitMatchesDirectServiceCalls) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  const std::vector<serve::WorkloadQuery> queries = serve::SynthesizeWorkload(
      6, /*max_block_len=*/10, served.data_case.data.num_series(),
      served.data_case.data.num_times(), /*seed=*/43);
  for (const serve::WorkloadQuery& query : queries) {
    // Direct in-process answer.
    serve::ImputationResponse direct = served.service.Impute(
        serve::MakeQueryRequest("default", served.shared_data,
                                served.data_case.mask, query));
    ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();

    // Same query over the wire, JSON cells.
    const std::string body =
        "{\"query\": {\"row\": " + std::to_string(query.row) +
        ", \"t_start\": " + std::to_string(query.t_start) +
        ", \"block_len\": " + std::to_string(query.block_len) + "}}";
    StatusOr<net::HttpMessage> response =
        client.Post("/v1/impute", body, "application/json");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status_code, 200) << response->body;

    StatusOr<net::JsonValue> doc = net::ParseJson(response->body);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const Mask applied =
        serve::ApplyQuery(served.data_case.mask, query);
    ASSERT_EQ(doc->at("cells").array_items().size(),
              static_cast<size_t>(applied.CountMissing()));
    // Every imputed cell must equal the direct Predict bit for bit —
    // precision-17 JSON round-trips doubles exactly.
    for (const net::JsonValue& cell : doc->at("cells").array_items()) {
      const int r = static_cast<int>(cell.at("series").number_value());
      const int t = static_cast<int>(cell.at("time").number_value());
      EXPECT_EQ(cell.at("value").number_value(), direct.imputed(r, t))
          << "cell (" << r << "," << t << ")";
    }
  }
  server.Stop();
}

TEST(ServingEndpointsTest, CsvResponseIsByteIdenticalToWriteDataTensor) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // Reference: the in-process base-mask imputation, written by the same
  // WriteDataTensor path dmvi_train/dmvi_serve --impute-csv use.
  serve::ImputationRequest request;
  request.model = "default";
  request.data = served.shared_data;
  request.mask = served.data_case.mask;
  serve::ImputationResponse direct = served.service.Impute(request);
  ASSERT_TRUE(direct.status.ok());
  const std::string path = TempPath("net_reference_impute.csv");
  ASSERT_TRUE(WriteDataTensor(DataTensor(served.shared_data->dims(),
                                         direct.imputed),
                              path)
                  .ok());
  std::ifstream in(path, std::ios::binary);
  std::string reference((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::remove(path.c_str());

  StatusOr<net::HttpMessage> response = client.Post(
      "/v1/impute", "{\"model\": \"default\"}", "application/json",
      "text/csv");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status_code, 200);
  EXPECT_EQ(response->Header("content-type"), "text/csv");
  EXPECT_EQ(response->body, reference);  // Byte identity across transports.
  server.Stop();
}

TEST(ServingEndpointsTest, InlineValuesModeImputesWithoutServedDataset) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // The served model expects 5 series x >= window times; send a matching
  // inline matrix with two nulls.
  const int n = served.data_case.data.num_series();
  const int t_len = served.data_case.data.num_times();
  std::ostringstream body;
  body.precision(17);
  body << "{\"values\": [";
  for (int r = 0; r < n; ++r) {
    body << (r > 0 ? ", [" : "[");
    for (int t = 0; t < t_len; ++t) {
      if (t > 0) body << ", ";
      if (r == 1 && (t == 7 || t == 8)) {
        body << "null";
      } else {
        body << served.data_case.data.values()(r, t);
      }
    }
    body << "]";
  }
  body << "]}";
  StatusOr<net::HttpMessage> response =
      client.Post("/v1/impute", body.str(), "application/json");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status_code, 200) << response->body;
  StatusOr<net::JsonValue> doc = net::ParseJson(response->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->at("cells").array_items().size(), 2u);

  // Inline values + CSV reply (regression: the response must be encoded
  // from the inline dataset after the request was moved into Submit).
  StatusOr<net::HttpMessage> csv =
      client.Post("/v1/impute", body.str(), "application/json", "text/csv");
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  ASSERT_EQ(csv->status_code, 200) << csv->body;
  EXPECT_EQ(csv->Header("content-type"), "text/csv");
  // One data line per series plus the anonymous dimension header.
  EXPECT_NE(csv->body.find("# dim:"), std::string::npos);
  EXPECT_EQ(std::count(csv->body.begin(), csv->body.end(), '\n'),
            n + 1);
  server.Stop();
}

TEST(ServingEndpointsTest, AdminEndpointsHealthMetricsReload) {
  ServedCase served;
  net::ServingContext ctx = served.Context();
  int reloads = 0;
  std::string last_model, last_path;
  ctx.reload = [&](const std::string& model, const std::string& path) {
    ++reloads;
    last_model = model;
    last_path = path;
    return model == "default" ? Status::OK()
                              : Status::NotFound("unknown model " + model);
  };
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, ctx);
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  StatusOr<net::HttpMessage> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health->status_code, 200);
  StatusOr<net::JsonValue> health_doc = net::ParseJson(health->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_EQ(health_doc->at("status").string_value(), "ok");
  EXPECT_EQ(health_doc->at("num_series").number_value(),
            served.data_case.data.num_series());
  ASSERT_EQ(health_doc->at("models").array_items().size(), 1u);
  EXPECT_EQ(health_doc->at("models").array_items()[0].string_value(),
            "default");

  // /metrics is Prometheus text exposition now; the legacy JSON payload
  // moved to /metrics.json.
  StatusOr<net::HttpMessage> metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status_code, 200);
  EXPECT_EQ(metrics->Header("content-type"), "text/plain; version=0.0.4");
  EXPECT_NE(metrics->body.find("# TYPE dmvi_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("dmvi_cache_hits_total"), std::string::npos);
  EXPECT_NE(metrics->body.find("dmvi_request_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("dmvi_queue_depth"), std::string::npos);

  StatusOr<net::HttpMessage> metrics_json = client.Get("/metrics.json");
  ASSERT_TRUE(metrics_json.ok());
  ASSERT_EQ(metrics_json->status_code, 200);
  StatusOr<net::JsonValue> metrics_doc = net::ParseJson(metrics_json->body);
  ASSERT_TRUE(metrics_doc.ok()) << metrics_json->body;
  EXPECT_TRUE(metrics_doc->at("requests").is_number());
  EXPECT_TRUE(metrics_doc->at("cache_hits").is_number());

  // Reload: default model, explicit path, unknown model, malformed body.
  EXPECT_EQ(client.Post("/admin/reload", "", "application/json")
                ->status_code,
            200);
  EXPECT_EQ(reloads, 1);
  EXPECT_EQ(last_model, "default");
  EXPECT_EQ(last_path, "");
  EXPECT_EQ(client
                .Post("/admin/reload",
                      R"({"model": "default", "path": "/tmp/other.dmvi"})",
                      "application/json")
                ->status_code,
            200);
  EXPECT_EQ(last_path, "/tmp/other.dmvi");
  EXPECT_EQ(client
                .Post("/admin/reload", R"({"model": "ghost"})",
                      "application/json")
                ->status_code,
            404);
  EXPECT_EQ(client.Post("/admin/reload", "{not json", "application/json")
                ->status_code,
            400);
  server.Stop();
}

TEST(ServingEndpointsTest, DebugEndpointsServeRecorderAndState) {
  obs::FlightRecorder recorder(/*capacity=*/8,
                               /*slow_threshold_seconds=*/1e-9);
  serve::ServiceConfig service_config;
  service_config.recorder = &recorder;
  ServedCase served(service_config);
  obs::MetricsRegistry metrics;
  net::ServingContext ctx = served.Context();
  ctx.recorder = &recorder;
  ctx.metrics = &metrics;
  ctx.build_commit = "cafef00d";
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, ctx);
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // Drive one request through so the recorder has something to show.
  net::HttpMessage impute;
  impute.method = "POST";
  impute.target = "/v1/impute";
  impute.body = R"({"model": "default",
                    "query": {"row": 1, "t_start": 10, "block_len": 4}})";
  impute.SetHeader("content-type", "application/json");
  impute.SetHeader("x-request-id", "debug-req-0");
  StatusOr<net::HttpMessage> response = client.RoundTrip(impute);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status_code, 200);

  StatusOr<net::HttpMessage> requests = client.Get("/debug/requests");
  ASSERT_TRUE(requests.ok());
  ASSERT_EQ(requests->status_code, 200);
  EXPECT_EQ(requests->Header("content-type"), "application/json");
  StatusOr<net::JsonValue> doc = net::ParseJson(requests->body);
  ASSERT_TRUE(doc.ok()) << requests->body;
  EXPECT_EQ(doc->at("capacity").number_value(), 8);
  EXPECT_DOUBLE_EQ(doc->at("slow_threshold_seconds").number_value(), 1e-9);
  EXPECT_EQ(doc->at("total_recorded").number_value(), 1);
  ASSERT_EQ(doc->at("records").array_items().size(), 1u);
  const net::JsonValue& record = doc->at("records").array_items()[0];
  EXPECT_EQ(record.at("request_id").string_value(), "debug-req-0");
  EXPECT_TRUE(record.at("ok").bool_value());
  EXPECT_GT(record.at("latency_seconds").number_value(), 0.0);

  // A nanosecond threshold makes every request slow.
  StatusOr<net::HttpMessage> slow = client.Get("/debug/slow");
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->status_code, 200);
  StatusOr<net::JsonValue> slow_doc = net::ParseJson(slow->body);
  ASSERT_TRUE(slow_doc.ok()) << slow->body;
  EXPECT_EQ(slow_doc->at("total_slow").number_value(), 1);
  ASSERT_EQ(slow_doc->at("records").array_items().size(), 1u);

  StatusOr<net::HttpMessage> state = client.Get("/debug/state");
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->status_code, 200);
  StatusOr<net::JsonValue> state_doc = net::ParseJson(state->body);
  ASSERT_TRUE(state_doc.ok()) << state->body;
  EXPECT_EQ(state_doc->at("build_commit").string_value(), "cafef00d");
  EXPECT_GE(state_doc->at("uptime_seconds").number_value(), 0.0);
  EXPECT_GT(state_doc->at("pid").number_value(), 0);
  EXPECT_FALSE(state_doc->at("profiler_running").bool_value());
#if defined(__linux__)
  EXPECT_TRUE(state_doc->at("process_stats_ok").bool_value());
  EXPECT_GT(state_doc->at("rss_bytes").number_value(), 0);
  EXPECT_GT(state_doc->at("open_fds").number_value(), 0);
#endif
  server.Stop();
}

TEST(ServingEndpointsTest, DebugRequestsWithoutRecorderIs503) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());
  for (const char* path : {"/debug/requests", "/debug/slow"}) {
    StatusOr<net::HttpMessage> response = client.Get(path);
    ASSERT_TRUE(response.ok()) << path;
    EXPECT_EQ(response->status_code, 503) << path;
  }
  // /debug/state needs no recorder.
  EXPECT_EQ(client.Get("/debug/state")->status_code, 200);
  server.Stop();
}

TEST(ServingEndpointsTest, DebugProfileAnswersCollapsedStacksOrBusy) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // Invalid parameters clamp rather than fail; the window itself may be
  // FailedPrecondition (503) where CPU-clock timers are unavailable.
  StatusOr<net::HttpMessage> profile =
      client.Get("/debug/profile?seconds=1&hz=200");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_TRUE(profile->status_code == 200 || profile->status_code == 503)
      << profile->status_code << " " << profile->body;
  if (profile->status_code == 200) {
    EXPECT_EQ(profile->Header("x-dmvi-profile-hz"), "200");
    // The seconds header reports the measured window, >= the requested 1s.
    EXPECT_GE(std::atof(profile->Header("x-dmvi-profile-seconds").c_str()),
              1.0);
    EXPECT_FALSE(profile->Header("x-dmvi-profile-samples").empty());
    // An idle server consumes no CPU, so zero samples (empty body) is
    // legitimate; any samples must fold into collapsed-stack lines.
    if (!profile->body.empty()) {
      EXPECT_NE(profile->body.find(' '), std::string::npos);
    }
    EXPECT_FALSE(obs::CpuProfiler::IsRunning());
  }
  server.Stop();
}

TEST(ServingEndpointsTest, MetricsExportProcessPoolAndTraceGauges) {
  obs::CollectingTraceSink sink;
  ServedCase served;
  obs::MetricsRegistry metrics;
  net::ServingContext ctx = served.Context();
  ctx.metrics = &metrics;
  ctx.trace_sink = &sink;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, ctx);
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  StatusOr<net::HttpMessage> scraped = client.Get("/metrics");
  ASSERT_TRUE(scraped.ok());
  ASSERT_EQ(scraped->status_code, 200);
  const std::string& text = scraped->body;
  for (const char* metric :
       {"# TYPE dmvi_accept_queue_high_water gauge",
        "# TYPE dmvi_pool_threads_created_total counter",
        "# TYPE dmvi_trace_dropped_spans_total counter",
        "# TYPE dmvi_process_resident_bytes gauge",
        "# TYPE dmvi_process_cpu_seconds gauge",
        "# TYPE dmvi_process_open_fds gauge"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
  server.Stop();
}

TEST(ServingEndpointsTest, LatencyHistogramCarriesRequestIdExemplars) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  net::HttpMessage impute;
  impute.method = "POST";
  impute.target = "/v1/impute";
  impute.body = R"({"model": "default",
                    "query": {"row": 0, "t_start": 5, "block_len": 3}})";
  impute.SetHeader("content-type", "application/json");
  impute.SetHeader("x-request-id", "exemplar-7");
  ASSERT_EQ(client.RoundTrip(impute)->status_code, 200);

  StatusOr<net::HttpMessage> scraped = client.Get("/metrics");
  ASSERT_TRUE(scraped.ok());
  // The latency bucket the request landed in cites it by id, OpenMetrics
  // exemplar syntax: `... } <count> # {request_id="exemplar-7"} <value>`.
  EXPECT_NE(scraped->body.find("# {request_id=\"exemplar-7\"}"),
            std::string::npos)
      << scraped->body;
  server.Stop();
}

TEST(ServingEndpointsTest, MalformedImputeBodyIs400WithStatusMessage) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  StatusOr<net::HttpMessage> bad_json =
      client.Post("/v1/impute", "{oops", "application/json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status_code, 400);
  EXPECT_NE(bad_json->body.find("JSON parse error"), std::string::npos);

  StatusOr<net::HttpMessage> bad_model = client.Post(
      "/v1/impute", R"({"model": "ghost"})", "application/json");
  ASSERT_TRUE(bad_model.ok());
  EXPECT_EQ(bad_model->status_code, 404);
  EXPECT_NE(bad_model->body.find("ghost"), std::string::npos);
  server.Stop();
}

TEST(ServingEndpointsTest, CacheOnAndOffServeIdenticalBytesOverLoopback) {
  // Two services over two servers: one cached, one not. Replies must be
  // byte-identical (the cache may change latency, never bytes), and the
  // cached service must record hits on repeats.
  serve::ServiceConfig cached_config;
  cached_config.cache_mb = 8.0;
  ServedCase cached(cached_config);
  ServedCase uncached;

  net::HttpServer cached_server, uncached_server;
  net::RegisterServingEndpoints(&cached_server, cached.Context());
  net::RegisterServingEndpoints(&uncached_server, uncached.Context());
  ASSERT_TRUE(cached_server.Start().ok());
  ASSERT_TRUE(uncached_server.Start().ok());
  net::Client cached_client("127.0.0.1", cached_server.port());
  net::Client uncached_client("127.0.0.1", uncached_server.port());

  const std::string body =
      R"({"query": {"row": 1, "t_start": 10, "block_len": 6}})";
  std::string first_body;
  for (int round = 0; round < 3; ++round) {
    StatusOr<net::HttpMessage> hot =
        cached_client.Post("/v1/impute", body, "application/json");
    StatusOr<net::HttpMessage> cold =
        uncached_client.Post("/v1/impute", body, "application/json");
    ASSERT_TRUE(hot.ok() && cold.ok());
    ASSERT_EQ(hot->status_code, 200);
    // Identical modulo the latency line, which is timing, not payload:
    // compare the cells arrays.
    auto cells = [](const std::string& text) {
      const size_t at = text.find("\"cells\"");
      return text.substr(at);
    };
    EXPECT_EQ(cells(hot->body), cells(cold->body)) << "round " << round;
    if (round == 0) {
      first_body = cells(hot->body);
    } else {
      EXPECT_EQ(cells(hot->body), first_body);
    }
  }
  serve::TelemetrySnapshot snap = cached.service.telemetry();
  EXPECT_EQ(snap.cache_misses, 1);
  EXPECT_EQ(snap.cache_hits, 2);
  ASSERT_NE(cached.service.response_cache(), nullptr);
  EXPECT_EQ(cached.service.response_cache()->stats().hits, 2);
  EXPECT_EQ(uncached.service.response_cache(), nullptr);
  EXPECT_EQ(uncached.service.telemetry().cache_hits, 0);

  cached_server.Stop();
  uncached_server.Stop();
}

TEST(ServingEndpointsTest, HealthzReportsQueueDepthAndLadderState) {
  // Ladder off (both watermarks 0): /healthz says so and still reports
  // the pressure signals.
  ServedCase off;
  net::HttpServer off_server;
  net::RegisterServingEndpoints(&off_server, off.Context());
  ASSERT_TRUE(off_server.Start().ok());
  net::Client off_client("127.0.0.1", off_server.port());
  StatusOr<net::HttpMessage> health = off_client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health->status_code, 200);
  StatusOr<net::JsonValue> doc = net::ParseJson(health->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("degradation").string_value(), "off");
  EXPECT_EQ(doc->at("degrade_watermark").number_value(), 0.0);
  EXPECT_EQ(doc->at("shed_watermark").number_value(), 0.0);
  EXPECT_FALSE(doc->at("queue_depth").is_null());
  EXPECT_FALSE(doc->at("pending_connections").is_null());
  off_server.Stop();

  // Ladder configured but idle: state is "ready" and the watermarks are
  // surfaced for operators.
  serve::ServiceConfig ladder_config;
  ladder_config.degrade_watermark = 3;
  ladder_config.shed_watermark = 6;
  ServedCase ladder(ladder_config);
  net::HttpServer ladder_server;
  net::RegisterServingEndpoints(&ladder_server, ladder.Context());
  ASSERT_TRUE(ladder_server.Start().ok());
  net::Client ladder_client("127.0.0.1", ladder_server.port());
  StatusOr<net::HttpMessage> ready = ladder_client.Get("/healthz");
  ASSERT_TRUE(ready.ok());
  StatusOr<net::JsonValue> ready_doc = net::ParseJson(ready->body);
  ASSERT_TRUE(ready_doc.ok());
  EXPECT_EQ(ready_doc->at("degradation").string_value(), "ready");
  EXPECT_EQ(ready_doc->at("degrade_watermark").number_value(), 3.0);
  EXPECT_EQ(ready_doc->at("shed_watermark").number_value(), 6.0);
  ladder_server.Stop();
}

TEST(ServingEndpointsTest, DegradedResponsesCarryMarkerInJsonCsvAndMetrics) {
  // Pressure pinned above the degrade watermark: every wire response must
  // be the fallback imputer's bits plus an explicit marker — JSON in the
  // body and header, CSV via the header only (its body format is fixed).
  serve::ServiceConfig config;
  config.degrade_watermark = 1;
  ServedCase served(config);
  served.service.SetPressureProbe([] { return 10; });
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  serve::WorkloadQuery query;
  query.row = 1;
  query.t_start = 10;
  query.block_len = 6;
  const std::string body =
      R"({"query": {"row": 1, "t_start": 10, "block_len": 6}})";
  StatusOr<net::HttpMessage> json =
      client.Post("/v1/impute", body, "application/json");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  ASSERT_EQ(json->status_code, 200) << json->body;
  EXPECT_EQ(json->Header("x-dmvi-degraded"), "LinearInterp");
  StatusOr<net::JsonValue> doc = net::ParseJson(json->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("status").string_value(), "degraded");
  EXPECT_TRUE(doc->at("degraded").bool_value());
  EXPECT_EQ(doc->at("degrade_method").string_value(), "LinearInterp");

  // The degraded cells are the fallback's, bit for bit across the wire.
  const Mask applied = serve::ApplyQuery(served.data_case.mask, query);
  LinearInterpolationImputer fallback;
  const Matrix expected = fallback.Impute(served.data_case.data, applied);
  ASSERT_EQ(doc->at("cells").array_items().size(),
            static_cast<size_t>(applied.CountMissing()));
  for (const net::JsonValue& cell : doc->at("cells").array_items()) {
    const int r = static_cast<int>(cell.at("series").number_value());
    const int t = static_cast<int>(cell.at("time").number_value());
    EXPECT_EQ(cell.at("value").number_value(), expected(r, t))
        << "cell (" << r << "," << t << ")";
  }

  StatusOr<net::HttpMessage> csv = client.Post(
      "/v1/impute", R"({"format": "csv"})", "application/json");
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  ASSERT_EQ(csv->status_code, 200) << csv->body;
  EXPECT_EQ(csv->Header("content-type"), "text/csv");
  EXPECT_EQ(csv->Header("x-dmvi-degraded"), "LinearInterp");
  EXPECT_EQ(csv->body.find("degraded"), std::string::npos)
      << "CSV body format must not change under degradation";

  StatusOr<net::HttpMessage> metrics = client.Get("/metrics.json");
  ASSERT_TRUE(metrics.ok());
  StatusOr<net::JsonValue> metrics_doc = net::ParseJson(metrics->body);
  ASSERT_TRUE(metrics_doc.ok()) << metrics->body;
  EXPECT_GE(metrics_doc->at("degraded").number_value(), 2.0);
  EXPECT_EQ(metrics_doc->at("shed").number_value(), 0.0);
  // The Prometheus exposition carries the same counters.
  StatusOr<net::HttpMessage> prom = client.Get("/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->body.find("# TYPE dmvi_degraded_total counter"),
            std::string::npos)
      << prom->body;
  EXPECT_NE(prom->body.find("dmvi_shed_total 0"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopFinishesInFlightRequestsBeforeExiting) {
  net::HttpServer server;
  std::atomic<bool> handler_entered{false};
  server.Handle("GET", "/slow", [&](const net::HttpMessage&) {
    handler_entered = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return net::MakeResponse(200, "done late", "text/plain");
  });
  ASSERT_TRUE(server.Start().ok());

  StatusOr<net::HttpMessage> response = Status::Internal("not run");
  std::thread requester([&] {
    net::Client client("127.0.0.1", server.port());
    response = client.Get("/slow");
  });
  while (!handler_entered) std::this_thread::sleep_for(
      std::chrono::milliseconds(5));
  server.Stop();  // Must wait for the in-flight /slow, not cut it off.
  requester.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "done late");
}

// ---- Observability: request ids, spans, bit-identity ------------------------

TEST(HttpServerTest, EveryResponseCarriesARequestId) {
  net::HttpServer server;
  server.Handle("GET", "/ping", [](const net::HttpMessage& request) {
    // Handlers see the id too (the server stamps it onto the request).
    net::HttpMessage response =
        net::MakeResponse(200, request.Header("x-request-id"), "text/plain");
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // Client-supplied id is honored and echoed.
  net::HttpMessage request;
  request.method = "GET";
  request.target = "/ping";
  request.SetHeader("x-request-id", "client-id-1");
  StatusOr<net::HttpMessage> supplied = client.RoundTrip(request);
  ASSERT_TRUE(supplied.ok());
  EXPECT_EQ(supplied->Header("x-dmvi-request-id"), "client-id-1");
  EXPECT_EQ(supplied->body, "client-id-1");

  // Without one the server mints req-<n>, distinct per request.
  StatusOr<net::HttpMessage> first = client.Get("/ping");
  StatusOr<net::HttpMessage> second = client.Get("/ping");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Header("x-dmvi-request-id").rfind("req-", 0), 0u);
  EXPECT_NE(first->Header("x-dmvi-request-id"),
            second->Header("x-dmvi-request-id"));
  server.Stop();
}

TEST(HttpServerTest, RequestSpanFamilyCoversTheWholeRequestPath) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink);
  obs::MetricsRegistry metrics;

  serve::ServiceConfig service_config;
  service_config.tracer = &tracer;
  service_config.metrics = &metrics;
  ServedCase served(service_config);
  net::ServerConfig server_config;
  server_config.tracer = &tracer;
  server_config.metrics = &metrics;
  net::HttpServer server(server_config);
  net::ServingContext ctx = served.Context();
  ctx.tracer = &tracer;
  ctx.metrics = &metrics;
  net::RegisterServingEndpoints(&server, ctx);
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  net::HttpMessage request;
  request.method = "POST";
  request.target = "/v1/impute";
  request.body = "{\"model\": \"default\"}";
  request.SetHeader("content-type", "application/json");
  request.SetHeader("x-request-id", "traced-1");
  ASSERT_EQ(client.RoundTrip(request)->status_code, 200);
  server.Stop();

  // Expected family: one root http.request with read/handle/write
  // children, and the handler chain (decode, queue.wait, service.process
  // with model.predict inside, encode) all under http.handle — one
  // connected trace stamped with the request id.
  std::vector<obs::SpanRecord> records = sink.records();
  std::map<std::string, obs::SpanRecord> by_name;
  for (const obs::SpanRecord& record : records) {
    if (record.request_id == "traced-1" || record.name == "model.predict") {
      by_name[record.name] = record;
    }
  }
  for (const char* name :
       {"http.request", "http.read", "http.handle", "http.write",
        "impute.decode", "queue.wait", "service.process", "model.predict",
        "impute.encode"}) {
    EXPECT_TRUE(by_name.count(name)) << "missing span " << name;
  }
  const obs::SpanRecord& root = by_name.at("http.request");
  EXPECT_EQ(root.parent_span_id, 0u);
  for (const auto& [name, record] : by_name) {
    EXPECT_EQ(record.trace_id, root.trace_id) << name;
  }
  const uint64_t handle_id = by_name.at("http.handle").span_id;
  EXPECT_EQ(by_name.at("http.read").parent_span_id, root.span_id);
  EXPECT_EQ(by_name.at("http.write").parent_span_id, root.span_id);
  EXPECT_EQ(by_name.at("impute.decode").parent_span_id, handle_id);
  EXPECT_EQ(by_name.at("queue.wait").parent_span_id, handle_id);
  EXPECT_EQ(by_name.at("service.process").parent_span_id, handle_id);
  EXPECT_EQ(by_name.at("model.predict").parent_span_id,
            by_name.at("service.process").span_id);

  // The shared registry saw the HTTP counter and stage histograms.
  EXPECT_GE(metrics.CounterNamed("dmvi_http_requests_total", "")->value(), 1);
  EXPECT_GT(metrics.HistogramNamed("dmvi_stage_http_handle_seconds", "")
                ->Snapshot()
                .count,
            0);
}

TEST(ServingEndpointsTest, TracingDoesNotChangeServedBytes) {
  // Serve the identical base-mask imputation twice — once plain, once with
  // tracing + metrics wired through server, context, and service — and
  // compare the response bodies byte for byte (the same bar CI enforces
  // with cmp on the loadgen CSV).
  auto fetch = [](bool traced, std::string* csv_body, std::string* json_body) {
    obs::CollectingTraceSink sink;
    obs::Tracer tracer(&sink, obs::TraceLevel::kKernel);
    obs::MetricsRegistry metrics;

    serve::ServiceConfig service_config;
    if (traced) {
      service_config.tracer = &tracer;
      service_config.metrics = &metrics;
    }
    ServedCase served(service_config);
    net::ServerConfig server_config;
    if (traced) {
      server_config.tracer = &tracer;
      server_config.metrics = &metrics;
    }
    net::HttpServer server(server_config);
    net::ServingContext ctx = served.Context();
    if (traced) {
      ctx.tracer = &tracer;
      ctx.metrics = &metrics;
    }
    net::RegisterServingEndpoints(&server, ctx);
    ASSERT_TRUE(server.Start().ok());
    net::Client client("127.0.0.1", server.port());
    StatusOr<net::HttpMessage> csv = client.Post(
        "/v1/impute", "{\"model\": \"default\"}", "application/json",
        "text/csv");
    ASSERT_TRUE(csv.ok());
    ASSERT_EQ(csv->status_code, 200);
    *csv_body = csv->body;
    StatusOr<net::HttpMessage> json = client.Post(
        "/v1/impute", "{\"model\": \"default\"}", "application/json");
    ASSERT_TRUE(json.ok());
    ASSERT_EQ(json->status_code, 200);
    *json_body = json->body;
    server.Stop();
    if (traced) {
      EXPECT_FALSE(sink.records().empty());
    }
  };

  std::string plain_csv, plain_json, traced_csv, traced_json;
  fetch(false, &plain_csv, &plain_json);
  fetch(true, &traced_csv, &traced_json);
  EXPECT_EQ(plain_csv, traced_csv) << "tracing changed CSV response bytes";
  // The JSON body embeds latency_seconds — a wall-clock reading that
  // differs between any two runs regardless of tracing. Strip that one
  // line; every other byte (every imputed value) must match exactly.
  auto without_latency_line = [](std::string body) {
    const size_t at = body.find("\"latency_seconds\"");
    if (at == std::string::npos) return body;
    const size_t line_start = body.rfind('\n', at) + 1;
    const size_t line_end = body.find('\n', at);
    body.erase(line_start, line_end - line_start + 1);
    return body;
  };
  EXPECT_EQ(without_latency_line(plain_json),
            without_latency_line(traced_json))
      << "tracing changed JSON response bytes";
}

// ---- Model-quality endpoints ------------------------------------------------

/// Inline-values /v1/impute body for `values` at precision 17, with one
/// null cell so there is something to impute.
std::string InlineBody(const Matrix& values) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"model\": \"default\", \"values\": [";
  for (int r = 0; r < values.rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (int t = 0; t < values.cols(); ++t) {
      if (t > 0) os << ", ";
      if (r == 0 && t == 0) {
        os << "null";
      } else {
        os << values(r, t);
      }
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

TEST(ServingEndpointsTest, QualityEndpointsScoreDriftAcrossTheStack) {
  serve::QualityMonitor monitor;
  serve::ServiceConfig service_config;
  service_config.quality = &monitor;
  ServedCase served(service_config);
  obs::MetricsRegistry metrics;
  net::ServingContext ctx = served.Context();
  ctx.quality = &monitor;
  ctx.metrics = &metrics;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, ctx);
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());

  // No traffic yet: the monitor exists but holds no model state, so the
  // health rung reports the absence of a scored reference, not a fault.
  StatusOr<net::HttpMessage> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  StatusOr<net::JsonValue> health_doc = net::ParseJson(health->body);
  ASSERT_TRUE(health_doc.ok()) << health->body;
  EXPECT_EQ(health_doc->at("quality").string_value(), "no-reference");
  EXPECT_DOUBLE_EQ(health_doc->at("drift_threshold").number_value(), 0.2);

  // Matched traffic: a query-mode request observes the served dataset —
  // the very distribution the reference profile was trained on.
  net::HttpMessage impute;
  impute.method = "POST";
  impute.target = "/v1/impute";
  impute.body = R"({"model": "default",
                    "query": {"row": 1, "t_start": 10, "block_len": 4}})";
  impute.SetHeader("content-type", "application/json");
  ASSERT_EQ(client.RoundTrip(impute)->status_code, 200);

  health_doc = net::ParseJson(client.Get("/healthz")->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_EQ(health_doc->at("quality").string_value(), "ok");

  StatusOr<net::HttpMessage> quality = client.Get("/debug/quality");
  ASSERT_TRUE(quality.ok());
  ASSERT_EQ(quality->status_code, 200);
  EXPECT_EQ(quality->Header("content-type"), "application/json");
  StatusOr<net::JsonValue> doc = net::ParseJson(quality->body);
  ASSERT_TRUE(doc.ok()) << quality->body;
  EXPECT_EQ(doc->at("quality").string_value(), "ok");
  ASSERT_EQ(doc->at("models").array_items().size(), 1u);
  {
    const net::JsonValue& model = doc->at("models").array_items()[0];
    EXPECT_EQ(model.at("model").string_value(), "default");
    EXPECT_EQ(model.at("status").string_value(), "ok");
    EXPECT_TRUE(model.at("has_reference").bool_value());
    EXPECT_EQ(model.at("requests_observed").number_value(), 1);
    EXPECT_LT(model.at("drift_score").number_value(), 0.1);
    EXPECT_EQ(model.at("series").array_items().size(), 5u);
    const net::JsonValue& series = model.at("series").array_items()[0];
    EXPECT_TRUE(series.at("scored").bool_value());
    EXPECT_GE(series.at("live_count").number_value(), 50);
    EXPECT_TRUE(model.at("selfscore").at("history").is_array());
  }
  // The drift gauge and missing-rate gauge are exported once scored.
  StatusOr<net::HttpMessage> metrics_text = client.Get("/metrics");
  ASSERT_TRUE(metrics_text.ok());
  EXPECT_NE(metrics_text->body.find("dmvi_model_drift_score"),
            std::string::npos);
  EXPECT_NE(metrics_text->body.find("dmvi_model_input_missing_rate"),
            std::string::npos);
  EXPECT_NE(metrics_text->body.find("dmvi_model_reloads_total 0"),
            std::string::npos);
  EXPECT_NE(metrics_text->body.find("dmvi_model_age_seconds"),
            std::string::npos);

  // Drifted traffic: inline-values requests carrying a 3-sigma sensor
  // drift shift the live bins past the threshold; the rung flips.
  ScenarioConfig drift;
  drift.kind = ScenarioKind::kDrift;
  drift.percent_incomplete = 1.0;
  drift.drift_rate = 3.0;
  const Matrix shifted =
      ApplyScenarioTransform(drift, served.data_case.data.values());
  const std::string drifted_body = InlineBody(shifted);
  for (int i = 0; i < 3; ++i) {
    net::HttpMessage inline_request;
    inline_request.method = "POST";
    inline_request.target = "/v1/impute";
    inline_request.body = drifted_body;
    inline_request.SetHeader("content-type", "application/json");
    ASSERT_EQ(client.RoundTrip(inline_request)->status_code, 200);
  }
  doc = net::ParseJson(client.Get("/debug/quality")->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->at("quality").string_value(), "drifting");
  EXPECT_GT(doc->at("models").array_items()[0].at("drift_score")
                .number_value(),
            0.2);
  health_doc = net::ParseJson(client.Get("/healthz")->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_EQ(health_doc->at("quality").string_value(), "drifting");
  server.Stop();
}

TEST(ServingEndpointsTest, QualityEndpointsWithoutMonitor) {
  ServedCase served;
  net::HttpServer server;
  net::RegisterServingEndpoints(&server, served.Context());
  ASSERT_TRUE(server.Start().ok());
  net::Client client("127.0.0.1", server.port());
  StatusOr<net::HttpMessage> quality = client.Get("/debug/quality");
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->status_code, 503);
  StatusOr<net::JsonValue> health_doc =
      net::ParseJson(client.Get("/healthz")->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_EQ(health_doc->at("quality").string_value(), "off");
  // /debug/state carries the reload accounting with or without a monitor.
  StatusOr<net::JsonValue> state_doc =
      net::ParseJson(client.Get("/debug/state")->body);
  ASSERT_TRUE(state_doc.ok());
  EXPECT_EQ(state_doc->at("model_registrations").number_value(), 1);
  EXPECT_EQ(state_doc->at("model_reloads").number_value(), 0);
  EXPECT_EQ(state_doc->at("last_registered_model").string_value(),
            "default");
  EXPECT_GE(state_doc->at("model_age_seconds").number_value(), 0.0);
  server.Stop();
}

}  // namespace
}  // namespace deepmvi
