#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/parameter.h"
#include "nn/serialize.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace nn {
namespace {

using ad::Tape;
using ad::Var;

TEST(InitTest, XavierWithinLimits) {
  Rng rng(1);
  Matrix w = XavierUniform(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  EXPECT_LE(w.MaxAbs(), limit);
  EXPECT_GT(w.MaxAbs(), 0.0);
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  Matrix w = HeNormal(1000, 50, rng);
  const double var = w.SquaredNorm() / w.size();
  EXPECT_NEAR(var, 2.0 / 1000.0, 5e-4);
}

TEST(ParameterTest, OnTapeReturnsSameVarPerTape) {
  ParameterStore store;
  Parameter* p = store.Create("w", Matrix(2, 2, 1.0));
  Tape tape;
  Var a = p->OnTape(tape);
  Var b = p->OnTape(tape);
  EXPECT_EQ(a.index(), b.index());
  EXPECT_EQ(tape.num_nodes(), 1);
}

TEST(ParameterTest, SharedParameterAccumulatesGradient) {
  ParameterStore store;
  Parameter* p = store.Create("w", Matrix(1, 1, 3.0));
  Tape tape;
  Var w = p->OnTape(tape);
  Var w2 = p->OnTape(tape);
  Var loss = ad::Sum(ad::Mul(w, w2));  // loss = w^2 => dloss/dw = 2w = 6.
  tape.Backward(loss);
  EXPECT_NEAR(p->grad_on(tape)(0, 0), 6.0, 1e-12);
}

TEST(LinearTest, ForwardShapeAndValue) {
  ParameterStore store;
  Rng rng(3);
  Linear layer(&store, "fc", 3, 2, rng);
  Tape tape;
  Var x = tape.Constant(Matrix(4, 3, 1.0));
  Var y = layer.Forward(tape, x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 2);
  // All rows identical since input rows are identical.
  EXPECT_NEAR(y.value()(0, 0), y.value()(3, 0), 1e-12);
}

TEST(LinearTest, LearnsLinearMap) {
  // Fit y = 2x - 1 with a 1->1 linear layer.
  ParameterStore store;
  Rng rng(4);
  Linear layer(&store, "fc", 1, 1, rng);
  Adam adam(&store, {.learning_rate = 0.1, .clip_norm = 0.0});
  Tape tape;
  for (int step = 0; step < 200; ++step) {
    tape.Reset();
    Matrix xs(8, 1), ys(8, 1), w(8, 1, 1.0);
    for (int i = 0; i < 8; ++i) {
      xs(i, 0) = static_cast<double>(i) / 4.0 - 1.0;
      ys(i, 0) = 2.0 * xs(i, 0) - 1.0;
    }
    Var pred = layer.Forward(tape, tape.Constant(xs));
    Var loss = ad::WeightedMseLoss(pred, ys, w);
    tape.Backward(loss);
    adam.Step(tape);
  }
  // Evaluate.
  tape.Reset();
  Matrix probe(1, 1, 0.5);
  Var pred = layer.Forward(tape, tape.Constant(probe));
  EXPECT_NEAR(pred.value()(0, 0), 0.0, 0.05);
}

TEST(EmbeddingTest, LookupMatchesTable) {
  ParameterStore store;
  Rng rng(5);
  Embedding emb(&store, "e", 4, 3, rng);
  Tape tape;
  Var rows = emb.Forward(tape, {2, 0});
  EXPECT_EQ(rows.rows(), 2);
  EXPECT_EQ(rows.cols(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(rows.value()(0, c), emb.table_value()(2, c));
    EXPECT_EQ(rows.value()(1, c), emb.table_value()(0, c));
  }
}

TEST(Conv1dTest, WindowsAreContiguous) {
  ParameterStore store;
  Rng rng(6);
  Conv1dNonOverlap conv(&store, "conv", 2, 3, rng);
  Tape tape;
  // Series of length 6 -> 3 windows.
  Var series = tape.Constant({{1, 2, 3, 4, 5, 6}});
  Var features = conv.Forward(tape, series);
  EXPECT_EQ(features.rows(), 3);
  EXPECT_EQ(features.cols(), 3);
}

TEST(Conv1dTest, EquivalentToManualLinear) {
  ParameterStore store;
  Rng rng(7);
  Conv1dNonOverlap conv(&store, "conv", 3, 2, rng);
  Tape tape;
  Matrix series(1, 6);
  for (int i = 0; i < 6; ++i) series(0, i) = i + 1;
  Var out = conv.Forward(tape, tape.Constant(series));
  // Second window [4,5,6] must produce the same features as feeding it as
  // the only window.
  Tape tape2;
  Matrix window(1, 3);
  for (int i = 0; i < 3; ++i) window(0, i) = i + 4;
  Var out2 = conv.Forward(tape2, tape2.Constant(window));
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(out.value()(1, c), out2.value()(0, c), 1e-12);
  }
}

TEST(FeedForwardTest, ShapeAndGradientFlow) {
  ParameterStore store;
  Rng rng(8);
  FeedForward ff(&store, "ff", 4, 8, 2, rng);
  Tape tape;
  Var x = tape.Leaf(Matrix(3, 4, 0.5));
  Var y = ff.Forward(tape, x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
  tape.Backward(ad::Sum(y));
  // At least one parameter should get nonzero gradient.
  double total = 0.0;
  for (const auto& p : store.params()) {
    if (p->on_tape(tape)) total += p->grad_on(tape).MaxAbs();
  }
  EXPECT_GT(total, 0.0);
}

TEST(PositionalEncodingTest, MatchesFormula) {
  Matrix enc = SinusoidalPositionalEncoding(16, 8);
  EXPECT_EQ(enc.rows(), 16);
  EXPECT_EQ(enc.cols(), 8);
  // t = 0: sin(0) = 0 for even, cos(0) = 1 for odd.
  for (int r = 0; r < 8; ++r) {
    EXPECT_NEAR(enc(0, r), r % 2 == 0 ? 0.0 : 1.0, 1e-12);
  }
  // Spot check Eq. 2 at t=3, r=2.
  EXPECT_NEAR(enc(3, 2), std::sin(3.0 / std::pow(10000.0, 2.0 / 8.0)), 1e-12);
  EXPECT_NEAR(enc(3, 3), std::cos(3.0 / std::pow(10000.0, 2.0 / 8.0)), 1e-12);
}

TEST(AttentionTest, OutputShapeAndMasking) {
  ParameterStore store;
  Rng rng(9);
  AttentionConfig config{.model_dim = 8, .num_heads = 2};
  MultiHeadSelfAttention attn(&store, "attn", config, rng);
  Tape tape;
  Var x = tape.Leaf(Matrix::RandomGaussian(5, 8, rng));
  std::vector<double> avail = {1, 1, 0, 1, 1};
  Var y = attn.Forward(tape, x, avail);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
  EXPECT_TRUE(y.value().AllFinite());
}

TEST(AttentionTest, MaskedKeyDoesNotInfluenceOutput) {
  ParameterStore store;
  Rng rng(10);
  AttentionConfig config{.model_dim = 4, .num_heads = 1};
  MultiHeadSelfAttention attn(&store, "attn", config, rng);

  Matrix x1 = Matrix::RandomGaussian(4, 4, rng);
  Matrix x2 = x1;
  // Change only row 2, which is masked out as a key everywhere.
  for (int c = 0; c < 4; ++c) x2(2, c) += 10.0;
  std::vector<double> avail = {1, 1, 0, 1};

  Tape t1;
  Var y1 = attn.Forward(t1, t1.Constant(x1), avail);
  Tape t2;
  Var y2 = attn.Forward(t2, t2.Constant(x2), avail);
  // Outputs at other query positions must be identical: the masked key
  // cannot contribute value vectors.
  for (int q = 0; q < 4; ++q) {
    if (q == 2) continue;  // Its own query uses its own (changed) input.
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(y1.value()(q, c), y2.value()(q, c), 1e-9) << "q=" << q;
    }
  }
}

TEST(GruTest, StateShapeAndBounds) {
  ParameterStore store;
  Rng rng(11);
  GruCell cell(&store, "gru", 3, 5, rng);
  Tape tape;
  Var x = tape.Constant(Matrix(1, 3, 0.5));
  Var h = tape.Constant(Matrix(1, 5, 0.0));
  Var h1 = cell.Forward(tape, x, h);
  EXPECT_EQ(h1.rows(), 1);
  EXPECT_EQ(h1.cols(), 5);
  // GRU state from zero state is bounded by tanh range.
  EXPECT_LE(h1.value().MaxAbs(), 1.0);
}

TEST(GruTest, LearnsToRememberInput) {
  // Train a GRU to output the first input after 3 steps (memory task).
  ParameterStore store;
  Rng rng(12);
  const int hidden = 8;
  GruCell cell(&store, "gru", 1, hidden, rng);
  Linear readout(&store, "read", hidden, 1, rng);
  Adam adam(&store, {.learning_rate = 0.02, .clip_norm = 5.0});
  Tape tape;
  Rng data_rng(13);
  double final_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    tape.Reset();
    const double target = data_rng.Uniform(-1.0, 1.0);
    Var h = tape.Constant(Matrix(1, hidden));
    for (int t = 0; t < 3; ++t) {
      Matrix input(1, 1, t == 0 ? target : 0.0);
      h = cell.Forward(tape, tape.Constant(input), h);
    }
    Var pred = readout.Forward(tape, h);
    Matrix target_m(1, 1, target);
    Var loss = ad::WeightedMseLoss(pred, target_m, Matrix(1, 1, 1.0));
    tape.Backward(loss);
    adam.Step(tape);
    final_loss = loss.scalar();
  }
  EXPECT_LT(final_loss, 0.05);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||x - 3||^2.
  ParameterStore store;
  Parameter* p = store.Create("x", Matrix(1, 1, 0.0));
  Adam adam(&store, {.learning_rate = 0.1, .clip_norm = 0.0});
  Tape tape;
  for (int i = 0; i < 300; ++i) {
    tape.Reset();
    Var x = p->OnTape(tape);
    Var loss = ad::Sum(ad::Square(ad::AddScalar(x, -3.0)));
    tape.Backward(loss);
    adam.Step(tape);
  }
  EXPECT_NEAR(p->value()(0, 0), 3.0, 1e-2);
}

TEST(AdamTest, SkipsUnusedParameters) {
  ParameterStore store;
  Parameter* used = store.Create("used", Matrix(1, 1, 1.0));
  Parameter* unused = store.Create("unused", Matrix(1, 1, 7.0));
  Adam adam(&store);
  Tape tape;
  Var x = used->OnTape(tape);
  Var loss = ad::Sum(ad::Square(x));
  tape.Backward(loss);
  adam.Step(tape);
  EXPECT_EQ(unused->value()(0, 0), 7.0);
  EXPECT_NE(used->value()(0, 0), 1.0);
}

TEST(AdamTest, HandlesSeveralOnTapeParametersWithoutGradients) {
  // Regression: parameters materialized on the tape but disconnected from
  // the loss have no allocated gradient. Step must hand the optimizer a
  // correctly-shaped zero per parameter — collecting references to the
  // tape's shared zero-matrix cache handed every such parameter the shape
  // of the last one queried (out-of-bounds reads for differing shapes).
  ParameterStore store;
  Parameter* connected = store.Create("connected", Matrix(1, 1, 1.0));
  Parameter* idle_big = store.Create("idle_big", Matrix(3, 4, 2.0));
  Parameter* idle_small = store.Create("idle_small", Matrix(2, 3, 5.0));
  Adam adam(&store);
  Tape tape;
  idle_big->OnTape(tape);
  idle_small->OnTape(tape);
  Var loss = ad::Sum(ad::Square(connected->OnTape(tape)));
  tape.Backward(loss);
  adam.Step(tape);
  EXPECT_NE(connected->value()(0, 0), 1.0);
  // Zero gradient + zero moments: the idle parameters stay untouched.
  EXPECT_TRUE(idle_big->value().ApproxEquals(Matrix(3, 4, 2.0), 0.0));
  EXPECT_TRUE(idle_small->value().ApproxEquals(Matrix(2, 3, 5.0), 0.0));
}

TEST(AdamTest, ClippingBoundsUpdateReportsNorm) {
  ParameterStore store;
  Parameter* p = store.Create("x", Matrix(1, 1, 0.0));
  Adam adam(&store, {.learning_rate = 1.0, .clip_norm = 0.001});
  Tape tape;
  Var x = p->OnTape(tape);
  Var loss = ad::Sum(ad::Scale(x, 1000.0));
  tape.Backward(loss);
  double norm = adam.Step(tape);
  EXPECT_NEAR(norm, 1000.0, 1e-9);
}

// ---- Serialization (nn/serialize.h) ----------------------------------------

/// A store with irrational-valued parameters (every bit pattern exercised)
/// and nonzero Adam moments.
void FillStore(ParameterStore& store, uint64_t seed) {
  Rng rng(seed);
  Parameter* a = store.Create("layer.weight", Matrix::RandomGaussian(7, 3, rng));
  Parameter* b = store.Create("layer.bias", Matrix::RandomGaussian(1, 3, rng));
  a->adam_m() = Matrix::RandomGaussian(7, 3, rng);
  a->adam_v() = Matrix::RandomGaussian(7, 3, rng);
  b->adam_m() = Matrix::RandomGaussian(1, 3, rng);
  b->adam_v() = Matrix::RandomGaussian(1, 3, rng);
}

using testutil::ExpectMatricesBitIdentical;

TEST(SerializeTest, MatrixRoundTripIsExact) {
  Rng rng(21);
  Matrix m = Matrix::RandomGaussian(5, 9, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteMatrix(buffer, m).ok());
  StatusOr<Matrix> back = ReadMatrix(buffer);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectMatricesBitIdentical(*back, m);
}

TEST(SerializeTest, EmptyMatrixRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteMatrix(buffer, Matrix()).ok());
  StatusOr<Matrix> back = ReadMatrix(buffer);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows(), 0);
  EXPECT_EQ(back->cols(), 0);
}

TEST(SerializeTest, StoreRoundTripsThroughFileBitIdentical) {
  ParameterStore store;
  FillStore(store, 22);
  const std::string path = testutil::TempPath("store_roundtrip.dmvp");
  ASSERT_TRUE(SaveParameterStoreToFile(store, path).ok());

  // Destination rebuilt with different values; load must restore value and
  // both Adam moments exactly.
  ParameterStore fresh;
  FillStore(fresh, 23);
  Status loaded = LoadParameterStoreFromFile(path, fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  ASSERT_EQ(fresh.params().size(), store.params().size());
  for (const auto& p : store.params()) {
    Parameter* q = fresh.Find(p->name());
    ASSERT_NE(q, nullptr) << p->name();
    ExpectMatricesBitIdentical(q->value(), p->value());
    ExpectMatricesBitIdentical(q->adam_m(), p->adam_m());
    ExpectMatricesBitIdentical(q->adam_v(), p->adam_v());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadIsNameKeyedNotOrderKeyed) {
  ParameterStore store;
  FillStore(store, 24);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameterStore(store, buffer).ok());

  // Same parameters created in the opposite order.
  ParameterStore reordered;
  reordered.Create("layer.bias", Matrix(1, 3, -1.0));
  reordered.Create("layer.weight", Matrix(7, 3, -1.0));
  ASSERT_TRUE(LoadParameterStore(buffer, reordered).ok());
  ExpectMatricesBitIdentical(reordered.Find("layer.weight")->value(),
                     store.Find("layer.weight")->value());
  ExpectMatricesBitIdentical(reordered.Find("layer.bias")->value(),
                     store.Find("layer.bias")->value());
}

TEST(SerializeTest, CorruptMagicIsAnErrorNotACrash) {
  ParameterStore store;
  FillStore(store, 25);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameterStore(store, buffer).ok());
  std::string bytes = buffer.str();
  bytes[0] = 'X';  // Break the magic.
  std::stringstream corrupt(bytes);
  ParameterStore dst;
  FillStore(dst, 25);
  Status status = LoadParameterStore(corrupt, dst);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, TruncatedFileIsAnErrorNotACrash) {
  ParameterStore store;
  FillStore(store, 26);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameterStore(store, buffer).ok());
  const std::string bytes = buffer.str();
  // Cut at several depths: inside the header, inside a name, inside a
  // matrix body.
  for (size_t cut : {size_t{2}, size_t{9}, size_t{17}, bytes.size() - 5}) {
    std::stringstream truncated(bytes.substr(0, cut));
    ParameterStore dst;
    FillStore(dst, 26);
    Status status = LoadParameterStore(truncated, dst);
    EXPECT_FALSE(status.ok()) << "cut at " << cut;
  }
}

TEST(SerializeTest, ParameterCountMismatchIsAnError) {
  ParameterStore store;
  FillStore(store, 27);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameterStore(store, buffer).ok());
  ParameterStore smaller;
  smaller.Create("layer.weight", Matrix(7, 3));
  Status status = LoadParameterStore(buffer, smaller);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchIsAnError) {
  ParameterStore store;
  FillStore(store, 28);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameterStore(store, buffer).ok());
  ParameterStore wrong_shape;
  wrong_shape.Create("layer.weight", Matrix(7, 4));  // 3 -> 4 columns.
  wrong_shape.Create("layer.bias", Matrix(1, 3));
  Status status = LoadParameterStore(buffer, wrong_shape);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, DuplicateParameterRecordIsAnError) {
  // Count equality alone would accept a file naming one parameter twice
  // and another never — that must not count as a complete restore.
  ParameterStore store;
  FillStore(store, 29);
  // Forge a store section: header (magic + version + count=2) followed by
  // the same parameter record twice.
  std::stringstream forged;
  forged.write("DMVP", 4);
  WritePod(forged, static_cast<uint32_t>(1));
  WritePod(forged, static_cast<uint64_t>(2));
  ASSERT_TRUE(WriteParameter(forged, *store.params()[0]).ok());
  ASSERT_TRUE(WriteParameter(forged, *store.params()[0]).ok());
  ParameterStore dst;
  FillStore(dst, 29);
  Status status = LoadParameterStore(forged, dst);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("twice"), std::string::npos);
}

TEST(SerializeTest, MissingFileIsAnIoError) {
  ParameterStore store;
  Status status =
      LoadParameterStoreFromFile("/nonexistent/nowhere.dmvp", store);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace nn
}  // namespace deepmvi
